// Unit and property tests for the parallel merge sort.
#include "parallel/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {
namespace {

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, MatchesStdSortOnRandomInput) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> data(n);
  Xoshiro256 rng(n * 31 + 1);
  for (auto& x : data) x = rng();
  auto reference = data;
  parallel_sort(data.begin(), data.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(data, reference);
}

TEST_P(SortSizes, MatchesStdSortWithManyDuplicates) {
  const std::size_t n = GetParam();
  std::vector<int> data(n);
  Xoshiro256 rng(n * 13 + 7);
  for (auto& x : data) x = static_cast<int>(rng.next_below(8));  // heavy ties
  auto reference = data;
  parallel_sort(data.begin(), data.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(data, reference);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 17, 1000, 16'383, 16'384, 16'385, 100'000,
                                           500'000));

TEST(Sort, AlreadySortedAndReversed) {
  std::vector<int> asc(50'000);
  for (std::size_t i = 0; i < asc.size(); ++i) asc[i] = static_cast<int>(i);
  auto desc = asc;
  std::reverse(desc.begin(), desc.end());
  auto expect = asc;

  parallel_sort(asc.begin(), asc.end());
  EXPECT_EQ(asc, expect);
  parallel_sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, expect);
}

TEST(Sort, CustomComparatorDescending) {
  std::vector<int> data(100'000);
  Xoshiro256 rng(5);
  for (auto& x : data) x = static_cast<int>(rng.next_below(1'000'000));
  auto reference = data;
  parallel_sort(data.begin(), data.end(), std::greater<>{});
  std::sort(reference.begin(), reference.end(), std::greater<>{});
  EXPECT_EQ(data, reference);
}

/// Forces the blocked parallel path even on single-core machines (the
/// OpenMP pool oversubscribes, which is fine for correctness coverage).
class SortForcedParallel : public ::testing::Test {
 protected:
  void SetUp() override { original_ = set_num_workers(4); }
  void TearDown() override { set_num_workers(original_); }
  int original_ = 1;
};

TEST_F(SortForcedParallel, BlockedMergePathMatchesStdSort) {
  for (const std::size_t n : {std::size_t{16'384}, std::size_t{100'000}, std::size_t{250'001}}) {
    std::vector<std::uint64_t> data(n);
    Xoshiro256 rng(n);
    for (auto& x : data) x = rng.next_below(1000);  // duplicates stress merges
    auto reference = data;
    parallel_sort(data.begin(), data.end());
    std::sort(reference.begin(), reference.end());
    ASSERT_EQ(data, reference) << "n=" << n;
  }
}

TEST_F(SortForcedParallel, NonPowerOfTwoAndDescending) {
  std::vector<int> data(77'777);
  Xoshiro256 rng(3);
  for (auto& x : data) x = static_cast<int>(rng.next_below(1u << 30));
  auto reference = data;
  parallel_sort(data.begin(), data.end(), std::greater<>{});
  std::sort(reference.begin(), reference.end(), std::greater<>{});
  EXPECT_EQ(data, reference);
}

TEST(Sort, SortsPairsLexicographically) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> data(200'000);
  Xoshiro256 rng(11);
  for (auto& p : data) {
    p.first = static_cast<std::uint32_t>(rng.next_below(1000));
    p.second = static_cast<std::uint32_t>(rng.next_below(1000));
  }
  auto reference = data;
  parallel_sort(data.begin(), data.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(data, reference);
}

}  // namespace
}  // namespace c3
