// c3tool — command-line front end for the library.
//
//   c3tool gen      --kind social --n 10000 --m 80000 --seed 1 --out g.txt
//   c3tool stats    --in g.txt
//   c3tool count    --in g.txt --k 7 [--alg c3list|cd|hybrid|kclist|arbcount]
//   c3tool sweep    --in g.txt [--kmin 3 --kmax 0] [--alg A]   (prepare once,
//                   query every k; kmax 0 = up to the clique number)
//   c3tool maxclique --in g.txt
//   c3tool convert  --in g.txt --out g.metis
//
// Input format is chosen by extension (.txt/.mtx/.metis/.graph/.bin); see
// graph/io.hpp. Generators: social, collab, topo, mesh, spectral, rating,
// bio, er, rmat, ba, hypercube, complete.
#include <cstdio>
#include <cstring>
#include <string>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

Graph generate(const CommandLine& cli) {
  const std::string kind = cli.get_string("kind", "social");
  const auto n = static_cast<node_t>(cli.get_int("n", 10'000));
  const auto m = static_cast<edge_t>(cli.get_int("m", 8 * static_cast<long long>(n)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (kind == "social") return social_like(n, m, cli.get_double("closure", 0.4), seed);
  if (kind == "collab")
    return collaboration_like(n, static_cast<count_t>(cli.get_int("papers", n / 2)),
                              static_cast<node_t>(cli.get_int("team", 16)), seed);
  if (kind == "topo")
    return topology_like(n, static_cast<node_t>(cli.get_int("attach", 3)),
                         cli.get_double("closure", 0.5), seed);
  if (kind == "mesh") return mesh_like(n, static_cast<node_t>(cli.get_int("knn", 16)), seed);
  if (kind == "spectral")
    return spectral_like(n, static_cast<node_t>(cli.get_int("band", 8)),
                         static_cast<node_t>(cli.get_int("window", 24)),
                         static_cast<node_t>(cli.get_int("stride", 12)), seed);
  if (kind == "rating")
    return rating_projection(n, static_cast<node_t>(cli.get_int("items", 120)),
                             static_cast<node_t>(cli.get_int("ratings", 8)), seed);
  if (kind == "bio")
    return bio_like(n, m, static_cast<node_t>(cli.get_int("modules", 60)),
                    static_cast<node_t>(cli.get_int("module_size", 22)),
                    cli.get_double("density", 0.7), seed);
  if (kind == "er") return erdos_renyi(n, m, seed);
  if (kind == "rmat") return rmat(n, m, 0.57, 0.19, 0.19, seed);
  if (kind == "ba") return barabasi_albert(n, static_cast<node_t>(cli.get_int("attach", 3)), seed);
  if (kind == "hypercube") return hypercube(static_cast<node_t>(cli.get_int("dim", 10)));
  if (kind == "complete") return complete_graph(n);
  std::fprintf(stderr, "c3tool: unknown generator kind '%s'\n", kind.c_str());
  std::exit(2);
}

void write_any(const Graph& g, const std::string& out) {
  if (out.size() >= 4 && out.substr(out.size() - 4) == ".bin") {
    write_graph_binary(out, g);
  } else if (out.size() >= 6 && out.substr(out.size() - 6) == ".metis") {
    write_graph_metis(out, g);
  } else {
    write_edge_list(out, g);
  }
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "c3list") return Algorithm::C3List;
  if (name == "cd") return Algorithm::C3ListCD;
  if (name == "hybrid") return Algorithm::Hybrid;
  if (name == "kclist") return Algorithm::KCList;
  if (name == "arbcount") return Algorithm::ArbCount;
  if (name == "brute") return Algorithm::BruteForce;
  std::fprintf(stderr, "c3tool: unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

int cmd_gen(const CommandLine& cli) {
  const Graph g = generate(cli);
  const std::string out = cli.get_string("out", "graph.txt");
  write_any(g, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_stats(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const GraphStats s = compute_stats(g);
  const node_t sigma = community_degeneracy(g);
  Table t({"|V|", "|E|", "|T|", "s", "sigma", "maxdeg", "E/V", "T/V", "T/E"});
  t.add_row({with_commas(s.nodes), with_commas(s.edges), with_commas(s.triangles),
             std::to_string(s.degeneracy), std::to_string(sigma), std::to_string(s.max_degree),
             strfmt("%.2f", s.edges_per_node), strfmt("%.2f", s.triangles_per_node),
             strfmt("%.2f", s.triangles_per_edge)});
  t.print();
  return 0;
}

int cmd_count(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const int k = static_cast<int>(cli.get_int("k", 5));
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));
  opts.triangle_growth = cli.has_flag("triangle-growth");
  if (cli.has_flag("no-prune")) opts.distance_pruning = false;
  WallTimer timer;
  const CliqueResult r = count_cliques(g, k, opts);
  std::printf("%llu %d-cliques in %.3f s (%s; prep %.3f s, gamma %u)\n",
              static_cast<unsigned long long>(r.count), k, timer.seconds(),
              algorithm_name(opts.algorithm), r.stats.preprocess_seconds, r.stats.gamma);
  return 0;
}

int cmd_sweep(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const int kmin = static_cast<int>(cli.get_int("kmin", 3));
  const int kmax = static_cast<int>(cli.get_int("kmax", 0));
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));
  opts.triangle_growth = cli.has_flag("triangle-growth");
  if (cli.has_flag("no-prune")) opts.distance_pruning = false;

  // Prepare once; every query below reuses the artifacts (its stats report
  // zero preprocess seconds).
  const PreparedGraph engine(g, opts);
  WallTimer prep_timer;
  engine.prepare();
  const int hi = kmax > 0 ? kmax : static_cast<int>(engine.clique_number_upper_bound());
  std::printf("%s prepared in %.3f s (omega <= %d)\n", algorithm_name(opts.algorithm),
              prep_timer.seconds(), static_cast<int>(engine.clique_number_upper_bound()));

  Table t({"k", "#cliques", "search[s]"});
  for (int k = kmin; k <= hi; ++k) {
    const CliqueResult r = engine.count(k);
    t.add_row({std::to_string(k), with_commas(r.count), strfmt("%.3f", r.stats.search_seconds)});
    if (r.count == 0 && k >= 3) break;  // past the clique number
  }
  t.print();
  return 0;
}

int cmd_maxclique(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  WallTimer timer;
  const auto witness = find_max_clique(g);
  std::printf("omega = %zu (%.3f s); witness:", witness.size(), timer.seconds());
  for (const node_t v : witness) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

int cmd_convert(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const std::string out = cli.get_string("out", "graph.bin");
  write_any(g, out);
  std::printf("converted to %s (%u vertices, %llu edges)\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

void usage() {
  std::puts(
      "usage: c3tool <gen|stats|count|sweep|maxclique|convert> [--flags]\n"
      "  gen       --kind K --n N [--m M --seed S] --out FILE\n"
      "  stats     --in FILE\n"
      "  count     --in FILE --k K [--alg A] [--triangle-growth] [--no-prune]\n"
      "  sweep     --in FILE [--kmin 3] [--kmax 0] [--alg A]  (prepare once, all k)\n"
      "  maxclique --in FILE\n"
      "  convert   --in FILE --out FILE");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const CommandLine cli(argc - 1, argv + 1);
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "stats") return cmd_stats(cli);
    if (command == "count") return cmd_count(cli);
    if (command == "sweep") return cmd_sweep(cli);
    if (command == "maxclique") return cmd_maxclique(cli);
    if (command == "convert") return cmd_convert(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "c3tool: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
