#include "clique/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Small queries go through the concurrent phase; everything that fans out
/// internally (many k values, long witness searches, whole-graph tallies)
/// keeps the full worker pool in the sequential phase.
bool is_light(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Count:
    case QueryKind::HasClique:
    case QueryKind::FindClique:
      return true;
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts:
    case QueryKind::Spectrum:
    case QueryKind::MaxClique:
      return false;
  }
  return false;
}

/// Whether a query can touch the prepared artifacts. Trivial sizes (k <= 2
/// everywhere, spectra clamped to kmax <= 2) are answered from the graph
/// alone, so a batch of only those must not trigger preparation.
bool needs_artifacts(const BatchQuery& q) noexcept {
  switch (q.kind) {
    case QueryKind::Count:
    case QueryKind::HasClique:
    case QueryKind::FindClique:
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts:
      return q.k > 2;
    case QueryKind::Spectrum:
      return q.kmax <= 0 || q.kmax > 2;
    case QueryKind::MaxClique:
      return true;
  }
  return true;
}

BatchResult execute_one(const PreparedGraph& engine, const BatchQuery& q) {
  BatchResult out;
  out.kind = q.kind;
  out.k = q.k;
  WallTimer timer;
  switch (q.kind) {
    case QueryKind::Count: {
      const CliqueResult r = engine.count(q.k);
      out.count = r.count;
      out.stats = r.stats;
      break;
    }
    case QueryKind::HasClique:
      out.found = engine.has_clique(q.k);
      break;
    case QueryKind::FindClique: {
      auto witness = engine.find_clique(q.k);
      out.found = witness.has_value();
      if (witness.has_value()) out.witness = std::move(*witness);
      break;
    }
    case QueryKind::PerVertexCounts:
      out.per_counts = engine.per_vertex_counts(q.k);
      break;
    case QueryKind::PerEdgeCounts:
      out.per_counts = engine.per_edge_counts(q.k);
      break;
    case QueryKind::Spectrum:
      out.spectrum = engine.spectrum(q.kmax);
      out.omega = out.spectrum.omega;
      break;
    case QueryKind::MaxClique:
      out.witness = engine.max_clique();
      out.omega = static_cast<node_t>(out.witness.size());
      out.found = !out.witness.empty();
      break;
  }
  out.seconds = timer.seconds();
  return out;
}

/// The executor fan-out of QueryBatch::run's concurrent phase: `threads`
/// std::threads pull light-query indices off a shared cursor with the
/// worker cap split between them. The caller holds the process-wide cap
/// mutex; the cap is restored on every exit path.
void run_light_concurrent(const PreparedGraph& engine, const std::vector<BatchQuery>& queries,
                          const std::vector<std::size_t>& light, std::size_t threads, int pool,
                          std::vector<BatchResult>& results) {
  const int old_cap = set_num_workers(std::max(1, pool / static_cast<int>(threads)));
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_guard;
  std::vector<std::thread> executors;
  executors.reserve(threads);
  try {
    for (std::size_t t = 0; t < threads; ++t) {
      executors.emplace_back([&] {
        for (;;) {
          const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
          if (slot >= light.size()) return;
          const std::size_t i = light[slot];
          try {
            results[i] = execute_one(engine, queries[i]);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_guard);
            if (first_error == nullptr) first_error = std::current_exception();
          }
        }
      });
    }
  } catch (...) {
    // Thread spawn failed (e.g. EAGAIN): stop handing out work, join the
    // executors that did start, and restore the cap — the failure
    // surfaces as a catchable exception instead of std::terminate.
    cursor.store(light.size(), std::memory_order_relaxed);
    for (std::thread& th : executors) th.join();
    set_num_workers(old_cap);
    throw;
  }
  for (std::thread& th : executors) th.join();
  set_num_workers(old_cap);
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace

int QueryBatch::add(const BatchQuery& query) {
  queries_.push_back(query);
  return static_cast<int>(queries_.size()) - 1;
}

std::vector<BatchResult> QueryBatch::run(int concurrency) const {
  const PreparedGraph& engine = *engine_;
  std::vector<BatchResult> results(queries_.size());
  if (queries_.empty()) return results;

  // Force the artifacts before any executor thread starts — but only if
  // some query can use them — so per-query seconds measure search only and
  // no thread stalls on the prepare latch. Spectrum and max-clique queries
  // additionally consult the clique-number upper bound, which for some
  // configurations (BruteForce: the exact degeneracy) is an artifact
  // prepare() alone does not build — force it too whenever such a query is
  // in the batch.
  bool any_artifacts = false;
  bool any_upper_bound = false;
  for (const BatchQuery& q : queries_) {
    any_artifacts = any_artifacts || needs_artifacts(q);
    any_upper_bound = any_upper_bound || ((q.kind == QueryKind::Spectrum && needs_artifacts(q)) ||
                                          q.kind == QueryKind::MaxClique);
  }
  if (any_artifacts) engine.prepare();
  if (any_upper_bound) (void)engine.clique_number_upper_bound();

  std::vector<std::size_t> light, heavy;
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    (is_light(queries_[i].kind) ? light : heavy).push_back(i);
  }

  bool light_done = false;
  if (concurrency != 1 && light.size() > 1) {
    // Concurrent phase: split the worker cap so `threads` simultaneous
    // queries together use about one pool's worth of workers, then hand
    // each executor thread queries off a shared cursor. The cap is process
    // global, so the save/split/restore must not interleave with another
    // batch's — concurrent phases of different batches serialize on one
    // process-wide mutex (each wants the whole machine anyway), and the
    // pool is read only under it so one batch's temporary split can never
    // leak into another's sizing. Other engines in the process see the
    // reduced value for the duration of this phase — the price of keeping
    // the loop substrate configuration-free; restored before the heavy
    // phase. A 1-worker pool falls through to the shared serial path.
    static std::mutex cap_mutex;
    std::unique_lock<std::mutex> cap_lock(cap_mutex);
    const int pool = num_workers();
    const int want = concurrency > 0 ? concurrency : pool;
    const auto threads = static_cast<std::size_t>(
        std::clamp(want, 1, static_cast<int>(light.size())));
    if (threads > 1) {
      run_light_concurrent(engine, queries_, light, threads, pool, results);
      light_done = true;
    }
  }
  if (!light_done) {
    for (const std::size_t i : light) results[i] = execute_one(engine, queries_[i]);
  }

  // Sequential phase: heavy queries keep the full pool for their internal
  // parallelism.
  for (const std::size_t i : heavy) results[i] = execute_one(engine, queries_[i]);
  return results;
}

std::vector<BatchResult> run_query_batch(const PreparedGraph& engine,
                                         const std::vector<BatchQuery>& queries,
                                         int concurrency) {
  QueryBatch batch(engine);
  for (const BatchQuery& q : queries) (void)batch.add(q);
  return batch.run(concurrency);
}

const char* query_kind_name(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Count:
      return "count";
    case QueryKind::HasClique:
      return "hasclique";
    case QueryKind::FindClique:
      return "findclique";
    case QueryKind::PerVertexCounts:
      return "vertexcounts";
    case QueryKind::PerEdgeCounts:
      return "edgecounts";
    case QueryKind::Spectrum:
      return "spectrum";
    case QueryKind::MaxClique:
      return "maxclique";
  }
  return "?";
}

}  // namespace c3
