// Parallel prefix sums (scans).
//
// Scans are the backbone of the PRAM-style operations the paper relies on:
// "Perform a parallel prefix sum to gather the elements in the intersection"
// (Section 2.2), CSR offset construction, and parallel packing. Implemented
// as the classic two-pass blocked scan: per-block sums, serial scan over the
// (few) block sums, then per-block local scans. O(n) work, O(n/p + p) depth.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/parallel.hpp"

namespace c3 {

/// Exclusive prefix sum: out[i] = init + sum of in[0..i). Returns the grand
/// total (init + sum of all elements). `in` and `out` may alias.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out, T init = T{}) {
  const std::size_t n = in.size();
  if (n == 0) return init;
  const int workers = num_workers();
  const std::size_t min_block = 4096;
  if (workers <= 1 || n < 2 * min_block) {
    T carry = init;
    for (std::size_t i = 0; i < n; ++i) {
      const T value = in[i];  // copy first: allows in == out
      out[i] = carry;
      carry += value;
    }
    return carry;
  }

  const std::size_t blocks =
      std::min<std::size_t>(static_cast<std::size_t>(workers) * 4, (n + min_block - 1) / min_block);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> block_total(blocks, T{});

  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        T sum = T{};
        for (std::size_t i = lo; i < hi; ++i) sum += in[i];
        block_total[b] = sum;
      },
      1);

  T carry = init;
  for (std::size_t b = 0; b < blocks; ++b) {
    const T sum = block_total[b];
    block_total[b] = carry;
    carry += sum;
  }

  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        T local = block_total[b];
        for (std::size_t i = lo; i < hi; ++i) {
          const T value = in[i];
          out[i] = local;
          local += value;
        }
      },
      1);
  return carry;
}

/// Inclusive prefix sum: out[i] = init + sum of in[0..i]. Returns the total.
/// `in` and `out` may alias (same blocked structure as exclusive_scan).
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out, T init = T{}) {
  const std::size_t n = in.size();
  if (n == 0) return init;
  const int workers = num_workers();
  const std::size_t min_block = 4096;
  if (workers <= 1 || n < 2 * min_block) {
    T carry = init;
    for (std::size_t i = 0; i < n; ++i) {
      carry += in[i];
      out[i] = carry;
    }
    return carry;
  }

  const std::size_t blocks =
      std::min<std::size_t>(static_cast<std::size_t>(workers) * 4, (n + min_block - 1) / min_block);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> block_total(blocks, T{});

  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        T sum = T{};
        for (std::size_t i = lo; i < hi; ++i) sum += in[i];
        block_total[b] = sum;
      },
      1);

  T carry = init;
  for (std::size_t b = 0; b < blocks; ++b) {
    const T sum = block_total[b];
    block_total[b] = carry;
    carry += sum;
  }

  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        T local = block_total[b];
        for (std::size_t i = lo; i < hi; ++i) {
          local += in[i];
          out[i] = local;
        }
      },
      1);
  return carry;
}

}  // namespace c3
