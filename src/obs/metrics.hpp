// Process-wide metrics registry: counters, gauges, and log-scale latency
// histograms, registered by name + labels and rendered as Prometheus text.
//
// The paper's own evaluation is measurement-driven — per-phase runtimes,
// work counters, variance over repetitions — and the serving layers each
// grew a private counter block (CliqueStats, FrontEndStats, AnswerCache
// shards). This registry is the one place those signals meet so an external
// monitor can read them continuously: the `metrics` admin word on a running
// server renders every registered metric as text exposition.
//
// Design constraints, in order:
//
//   * The *record* path must be cheap enough to sit on the query hot path.
//     Counter::add is one relaxed fetch_add on a per-thread cache-line
//     shard (merge-on-read), Gauge::add one relaxed fetch_add, and
//     Histogram::observe one log2 + one relaxed fetch_add on a bucket.
//     Nothing on the record path takes a lock or allocates.
//   * Reads are rare (a scrape every few seconds) and may be approximate
//     under concurrent writes — sums of relaxed loads, exactly like the
//     sharded AnswerCache counters.
//   * Registration is rare and serialized by a mutex; a (name, labels) pair
//     registered twice returns the *same* metric object, so independent
//     subsystems (or repeated constructions in tests) can share series
//     without coordinating. Registering the same pair as a different
//     metric type throws.
//
// Histograms use fixed log-scale buckets (4 per octave from 1 microsecond
// to ~2 minutes) and render as Prometheus *summaries* with precomputed
// p50/p95/p99 — the quantile interpolation itself lives in
// util/run_stats.hpp (quantile_from_log_buckets) next to the Welford
// accumulator it complements.
//
// The whole subsystem has an off switch: C3_OBS=off in the environment (or
// set_enabled(false)) makes every record site skip its work, which is what
// the overhead benchmark (bench_obs) compares against.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace c3::obs {

/// Global telemetry switch. Initialized from the environment: C3_OBS=off
/// (or 0/false) disables every record site. Reads are one relaxed load.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Stable small index for the calling thread (assigned round-robin on first
/// use), used to stripe counters across cache lines.
[[nodiscard]] std::size_t thread_stripe() noexcept;

/// Monotonic counter, per-thread sharded: add() touches only the calling
/// thread's cache-line slot, value() merges on read. Never decrements.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_stripe() & (kShards - 1)].value.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Instantaneous signed value (queue depths, in-flight counts, open
/// connections). add/sub from any thread; set() for sampled values.
class Gauge {
 public:
  void add(std::int64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) noexcept { value_.fetch_sub(n, std::memory_order_relaxed); }
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale latency histogram over seconds. Buckets span
/// [1 microsecond, ~2 minutes) at 4 per octave (ratio 2^(1/4) ~ 19% relative
/// resolution, which also bounds the quantile interpolation error); values
/// outside the span land in the first/last bucket. observe() is one log2
/// plus one relaxed fetch_add; quantile() walks the cumulative counts.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 112;  // 27 octaves x 4 + 4 overflow
  static constexpr double kMinSeconds = 1e-6;
  static constexpr double kBucketsPerOctave = 4.0;

  void observe(double seconds) noexcept;

  /// Upper bound (seconds) of bucket `i` — the value quantiles interpolate
  /// against. Exposed for rendering and tests.
  [[nodiscard]] static double bucket_upper_bound(std::size_t i) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum_seconds() const noexcept;
  /// q in [0,1]; 0 with no observations. Error bounded by the bucket ratio.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Copies the bucket counts (index i = observations <= bucket_upper_bound(i)
  /// and > the previous bound) for rendering.
  [[nodiscard]] std::array<std::uint64_t, kBuckets> snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// The process-wide name -> metric table. Lookup/registration is mutex-
/// serialized (rare); the returned references stay valid for the process
/// lifetime — call sites cache them in function-local statics so the hot
/// path never re-enters the registry.
///
/// `labels` is the rendered Prometheus label body without braces, e.g.
/// `stage="parse"` or `kind="count",graph="web"`; empty for none. Samples of
/// one name render grouped under one # TYPE line, as the exposition format
/// requires.
class Registry {
 public:
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, std::string_view labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name, std::string_view labels = {});

  /// Prometheus text exposition of every registered metric: counters and
  /// gauges as single samples, histograms as summaries with quantile="0.5/
  /// 0.95/0.99" samples plus _sum and _count. Ends with "# EOF\n"
  /// (OpenMetrics-style), which doubles as the line protocol's terminator.
  [[nodiscard]] std::string render() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace c3::obs
