#include "clique/kclist.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

struct Env {
  const Digraph* dag;
  const CliqueCallback* callback;
};

// Early-stop state rides in w.ctx (SearchContext::poll_stop / request_stop),
// the same shared-flag mechanism the community-centric searches use.

count_t kclist_rec(const Env& env, CliqueScratch& w, int l) {
  ++w.ctr.recursive_calls;
  if (w.ctx.poll_stop()) return 0;
  const std::vector<node_t>& S = w.levels[static_cast<std::size_t>(l)];
  const Digraph& dag = *env.dag;

  if (l == 2) {
    // Count the edges that stayed at level 2: each closes a clique.
    count_t found = 0;
    for (const node_t v : S) {
      for (const node_t x : dag.out_neighbors(v)) {
        ++w.ctr.pairs_probed;
        if (w.label[x] != 2) continue;
        if (env.callback != nullptr && w.ctx.poll_stop()) return found;
        ++found;
        if (env.callback != nullptr) {
          w.clique_stack.push_back(dag.original_id(v));
          w.clique_stack.push_back(dag.original_id(x));
          if (!(*env.callback)(std::span<const node_t>(w.clique_stack))) w.ctx.request_stop();
          w.clique_stack.pop_back();
          w.clique_stack.pop_back();
          if (w.ctx.stopped) return found;
        }
      }
    }
    w.ctr.leaf_work += found;
    return found;
  }

  count_t total = 0;
  std::vector<node_t>& next = w.levels[static_cast<std::size_t>(l - 1)];
  for (const node_t v : S) {
    if (w.ctx.poll_stop()) break;
    // Descend into N+(v) ∩ S: exactly the out-neighbors still labeled l.
    next.clear();
    for (const node_t x : dag.out_neighbors(v)) {
      ++w.ctr.pairs_probed;
      if (w.label[x] == l) {
        w.label[x] = l - 1;
        next.push_back(x);
        ++w.ctr.edges_matched;
      }
    }
    if (static_cast<int>(next.size()) >= l - 1) {
      if (env.callback != nullptr) w.clique_stack.push_back(dag.original_id(v));
      total += kclist_rec(env, w, l - 1);
      if (env.callback != nullptr) w.clique_stack.pop_back();
    }
    // Backtrack: restore the labels consumed above.
    for (const node_t x : next) w.label[x] = l;
  }
  return total;
}

}  // namespace

CliqueResult kclist_search(const Digraph& dag, int k, const CliqueCallback* callback,
                           const CliqueOptions& opts, QueryScratch& scratch) {
  (void)opts;
  if (k > 255) throw std::invalid_argument("kclist: k too large");
  CliqueResult result;
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = result.stats.order_quality;

  WallTimer search_timer;
  const node_t n = dag.num_nodes();
  result.stats.top_level_tasks = n;
  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;
  Env env{&dag, callback};

  try {
    parallel_for_dynamic(
        0, n,
        [&](std::size_t u) {
          if (stop.load(std::memory_order_relaxed)) return;
          CliqueScratch& w = scratch.local();
          w.ctx.callback = callback;
          w.ctx.stop = callback != nullptr ? &stop : nullptr;
          if (w.label.size() < static_cast<std::size_t>(n)) w.label.assign(n, 0);
          if (w.levels.size() < static_cast<std::size_t>(k))
            w.levels.resize(static_cast<std::size_t>(k));
          const auto out = dag.out_neighbors(static_cast<node_t>(u));
          if (static_cast<int>(out.size()) < k - 1) return;

          // Dense-subproblem path (counting only): when N+(u) is dense
          // enough, re-represent it as a bitset LocalGraph and run the
          // vertex-growth recursion on the SIMD kernels instead of the CSR
          // label filtering. The arc bound costs one pass over N+(u).
          if (callback == nullptr) {
            std::int64_t arcs_upper = 0;
            for (const node_t x : out) {
              arcs_upper += std::min<std::int64_t>(
                  static_cast<std::int64_t>(dag.out_neighbors(x).size()),
                  static_cast<std::int64_t>(out.size()));
            }
            if (use_dense_subproblem(static_cast<int>(out.size()), arcs_upper)) {
              build_local_graph(dag, out, w.lg);
              w.ctx.lg = &w.lg;
              w.ctx.ctr = &w.ctr;
              ++w.ctr.dense_subproblems;
              w.count += search_cliques_vertex_all(w.ctx, k - 1);
              return;
            }
          }

          std::vector<node_t>& top = w.levels[static_cast<std::size_t>(k - 1)];
          top.assign(out.begin(), out.end());
          for (const node_t x : top) w.label[x] = k - 1;
          if (callback != nullptr) {
            w.clique_stack.clear();
            w.clique_stack.push_back(dag.original_id(static_cast<node_t>(u)));
          }
          w.count += kclist_rec(env, w, k - 1);
          for (const node_t x : top) w.label[x] = 0;
        },
        1);
  } catch (...) {
    // The unwind skipped the label backtracking above; flag the lease so
    // the next query's reset_query re-zeroes before trusting the invariant.
    scratch.labels_dirty = true;
    throw;
  }

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult kclist_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::KCList;
  return PreparedGraph(g, o).count(k);
}

CliqueResult kclist_list(const Graph& g, int k, const CliqueCallback& callback,
                         const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::KCList;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
