// Concurrency stress tests for the query engine: many std::threads issuing
// mixed queries against ONE PreparedGraph must (a) agree with serial ground
// truth on every result, (b) build each prepared artifact exactly once no
// matter how many queries race for it, and (c) attribute the preparation
// cost to exactly the queries that paid it. Run under ThreadSanitizer by
// `./ci.sh tsan` — these tests are the reason that config exists.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "clique/spectrum.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 3;

/// Serial ground truth for one graph: counts for k = 3..6, the spectrum,
/// and the clique number, computed on a throwaway engine.
struct GroundTruth {
  count_t counts[4] = {0, 0, 0, 0};
  CliqueSpectrum spectrum;
  node_t omega = 0;

  GroundTruth(const Graph& g, const CliqueOptions& opts) {
    const PreparedGraph engine(g, opts);
    for (int k = 3; k <= 6; ++k) counts[k - 3] = engine.count(k).count;
    spectrum = engine.spectrum();
    omega = engine.max_clique_size();
  }
};

/// Expected artifact builds per algorithm: C3List needs the DAG and the
/// communities; C3ListCD the edge order; the orientation-based three just
/// the DAG.
int expected_artifacts(Algorithm alg) {
  switch (alg) {
    case Algorithm::C3List:
      return 2;
    case Algorithm::C3ListCD:
      return 1;
    default:
      return 1;
  }
}

void stress_one_engine(const Graph& g, Algorithm alg) {
  CliqueOptions opts;
  opts.algorithm = alg;
  const GroundTruth truth(g, opts);

  // One shared engine, cold: the first queries race to prepare it.
  const PreparedGraph engine(g, opts);
  std::atomic<int> mismatches{0};
  std::atomic<int> builders{0};  // queries that reported preprocess cost

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Every thread mixes query types; the k rotation staggers them.
        const int k = 3 + (t + round) % 4;
        const CliqueResult r = engine.count(k);
        if (r.count != truth.counts[k - 3]) mismatches.fetch_add(1);
        if (r.stats.preprocess_seconds > 0.0) builders.fetch_add(1);

        if (engine.has_clique(static_cast<int>(truth.omega) + 1)) mismatches.fetch_add(1);
        if (!engine.has_clique(static_cast<int>(truth.omega))) mismatches.fetch_add(1);

        if (t % 2 == 0) {
          const CliqueSpectrum spec = engine.spectrum();
          if (spec.counts != truth.spectrum.counts || spec.omega != truth.spectrum.omega)
            mismatches.fetch_add(1);
        } else {
          if (engine.max_clique_size() != truth.omega) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0) << algorithm_name(alg);
  // The latches collapse all racing preparations into exactly one build per
  // artifact...
  EXPECT_EQ(engine.artifacts_built(), expected_artifacts(alg)) << algorithm_name(alg);
  // ...whose cost is attributed to the building queries only: at most one
  // query can have built each artifact. (count(k) needs ≤ 2 artifacts, the
  // decision/spectrum queries can build the rest, but never more reporters
  // than artifacts.)
  EXPECT_LE(builders.load(), expected_artifacts(alg)) << algorithm_name(alg);
  EXPECT_GT(engine.prepare_seconds(), 0.0) << algorithm_name(alg);
}

TEST(ConcurrentQueries, MixedQueriesMatchSerialGroundTruthC3List) {
  stress_one_engine(social_like(500, 4000, 0.4, 17), Algorithm::C3List);
}

TEST(ConcurrentQueries, MixedQueriesMatchSerialGroundTruthC3ListCD) {
  stress_one_engine(erdos_renyi(300, 2400, 23), Algorithm::C3ListCD);
}

TEST(ConcurrentQueries, MixedQueriesMatchSerialGroundTruthHybrid) {
  stress_one_engine(erdos_renyi(300, 2400, 29), Algorithm::Hybrid);
}

TEST(ConcurrentQueries, MixedQueriesMatchSerialGroundTruthKCList) {
  stress_one_engine(barabasi_albert(400, 5, 31), Algorithm::KCList);
}

TEST(ConcurrentQueries, MixedQueriesMatchSerialGroundTruthArbCount) {
  stress_one_engine(barabasi_albert(400, 5, 37), Algorithm::ArbCount);
}

TEST(ConcurrentQueries, RacingPrepareCallsBuildOnce) {
  const Graph g = social_like(400, 3200, 0.4, 41);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] { engine.prepare(); });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(engine.artifacts_built(), 2);
  const double after_race = engine.prepare_seconds();
  EXPECT_GT(after_race, 0.0);
  // Later queries reuse: no further preparation, zero attributed cost.
  const CliqueResult r = engine.count(4);
  EXPECT_EQ(r.stats.preprocess_seconds, 0.0);
  EXPECT_EQ(engine.prepare_seconds(), after_race);
}

TEST(ConcurrentQueries, ConcurrentListingsSeeIsolatedStopFlags) {
  // Thread A lists everything; thread B stops after the first clique. B's
  // early stop must not leak into A's enumeration (isolated per-lease stop
  // flags) — pre-lease, a shared scratch pool made this a data race.
  const Graph g = erdos_renyi(200, 1600, 43);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);
  const count_t expect = engine.count(4).count;
  ASSERT_GT(expect, 0u);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        std::atomic<count_t> seen{0};
        const CliqueResult r = engine.list(4, [&](std::span<const node_t>) {
          seen.fetch_add(1, std::memory_order_relaxed);
          return true;
        });
        if (r.count != expect || seen.load() != expect) mismatches.fetch_add(1);
      } else {
        if (!engine.find_clique(4).has_value()) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace c3
