// Streaming statistics over repeated measurements.
//
// The paper reports arithmetic averages over >= 10 repetitions and discusses
// the empirical standard deviation of runtimes (Appendix B.2); this
// accumulator provides exactly those summary statistics for the bench
// harness, using Welford's numerically stable online update.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace c3 {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Relative standard deviation (stddev / mean), as the paper quotes
  /// ("standard deviation of the runtimes is less than 5.2%").
  [[nodiscard]] double rel_stddev() const noexcept {
    return mean_ != 0.0 ? stddev() / mean_ : 0.0;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace c3
