// Exact degeneracy ordering (Section 4.1, Lemma 4.1).
//
// The degeneracy order repeatedly removes a vertex of minimum degree in the
// remaining subgraph (Matula & Beck's smallest-last order). Orienting the
// graph by this order bounds every out-degree by the degeneracy s, and
// therefore every edge community by s - 1 — the quantity gamma that drives
// the work bound of Theorem 2.1. O(n + m) work, O(n) depth (inherently
// sequential peeling).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

struct DegeneracyResult {
  /// order[i] = the vertex peeled i-th; orienting by this order gives
  /// max out-degree == degeneracy.
  std::vector<node_t> order;
  /// The degeneracy s of the graph (max degree at removal time).
  node_t degeneracy = 0;
  /// core[v] = the core number of v (largest j such that v belongs to the
  /// j-core); max over v equals the degeneracy.
  std::vector<node_t> core;
};

/// Computes the exact degeneracy order with a bucket queue.
[[nodiscard]] DegeneracyResult degeneracy_order(const Graph& g);

}  // namespace c3
