#include "clique/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "clique/api.hpp"
#include "clique/arbcount.hpp"
#include "clique/bruteforce.hpp"
#include "clique/c3list.hpp"
#include "clique/c3list_cd.hpp"
#include "clique/hybrid.hpp"
#include "clique/kclist.hpp"
#include "clique/order_util.hpp"
#include "obs/metrics.hpp"
#include "order/approx_degeneracy.hpp"
#include "order/degeneracy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/scratch_pool.hpp"
#include "util/bitkernels.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Trivial clique sizes that need no prepared artifacts. k <= 0 -> none;
/// k == 1 -> vertices; k == 2 -> edges.
bool trivial_k(const Graph& g, int k, const CliqueCallback* callback, CliqueResult& out) {
  if (k > 2) return false;
  if (k <= 0) return true;
  if (k == 1) {
    out.count = g.num_nodes();
    if (callback != nullptr) {
      out.count = 0;
      for (node_t v = 0; v < g.num_nodes(); ++v) {
        const node_t clique[] = {v};
        ++out.count;
        if (!(*callback)(clique)) break;
      }
    }
    out.stats.cliques = out.count;
    return true;
  }
  out.count = g.num_edges();
  if (callback != nullptr) {
    out.count = 0;
    for (const Edge& e : g.endpoints()) {
      const node_t clique[] = {e.u, e.v};
      ++out.count;
      if (!(*callback)(clique)) break;
    }
  }
  out.stats.cliques = out.count;
  return true;
}

}  // namespace

// Thread-safety of lazy preparation: each artifact is guarded by its own
// std::once_flag. The first query to need it runs the build inside
// call_once while concurrent queries block on the latch; the optional is
// written only inside the latched region and read only after it, so reads
// need no further synchronization. Timing: the builder adds the elapsed
// seconds to the engine-wide total *and* to its own query's `prep`
// accumulator — waiting queries report 0, preserving the "preprocess cost
// is attributed to the query that paid it" contract under concurrency.
struct PreparedGraph::Memo {
  std::once_flag dag_once, comms_once, edge_order_once, degeneracy_once;
  std::optional<Digraph> dag;
  std::optional<EdgeCommunities> comms;
  std::optional<EdgeOrderResult> edge_order;
  std::optional<node_t> exact_degeneracy;
  // Published state of each optional above (set with release after the value
  // is written): lets the snapshot writer's *_if_built accessors read the
  // artifacts without taking the latch, racing safely with builders.
  std::atomic<bool> dag_ready{false}, comms_ready{false}, edge_order_ready{false},
      degeneracy_ready{false};
  std::atomic<double> prepare_seconds{0.0};
  std::atomic<int> artifacts_built{0};
  // Cached cost_bound(): value, keyed by the artifacts_built count it was
  // computed under (-1 = never computed). Racing recomputes are benign —
  // every thread derives the same value for the same artifact state.
  std::atomic<double> cost_bound_value{0.0};
  std::atomic<int> cost_bound_key{-1};
  ScratchPool<QueryScratch> pool;

  /// Runs `build` at most once behind `flag`, with the accounting contract
  /// in one place: the builder's elapsed time lands in the engine-wide
  /// total, the artifact counter, and the building query's `prep`.
  template <typename Build>
  void build_once(std::once_flag& flag, std::atomic<bool>& ready, double& prep, Build&& build) {
    std::call_once(flag, [&] {
      WallTimer timer;
      build();
      const double s = timer.seconds();
      ready.store(true, std::memory_order_release);
      prepare_seconds.fetch_add(s, std::memory_order_relaxed);
      artifacts_built.fetch_add(1, std::memory_order_relaxed);
      prep += s;
    });
  }

  /// Installs an already-built artifact (the snapshot loader's path): fires
  /// the latch with a plain move — no build, no time — so later queries see
  /// it as prepared. Counts toward artifacts_built like a lazy build would.
  template <typename T, typename Opt>
  void install(std::once_flag& flag, std::atomic<bool>& ready, Opt& slot, T&& value) {
    std::call_once(flag, [&] {
      slot.emplace(std::forward<T>(value));
      ready.store(true, std::memory_order_release);
      artifacts_built.fetch_add(1, std::memory_order_relaxed);
    });
  }
};

PreparedGraph::PreparedGraph(const Graph& g, const CliqueOptions& opts)
    : g_(&g), opts_(opts), memo_(std::make_unique<Memo>()) {}

PreparedGraph::PreparedGraph(const Graph& g, const CliqueOptions& opts, PreparedArtifacts loaded)
    : PreparedGraph(g, opts) {
  if (loaded.dag.has_value()) {
    memo_->install(memo_->dag_once, memo_->dag_ready, memo_->dag, *std::move(loaded.dag));
  }
  if (loaded.communities.has_value()) {
    memo_->install(memo_->comms_once, memo_->comms_ready, memo_->comms,
                   *std::move(loaded.communities));
  }
  if (loaded.edge_order.has_value()) {
    memo_->install(memo_->edge_order_once, memo_->edge_order_ready, memo_->edge_order,
                   *std::move(loaded.edge_order));
  }
  if (loaded.exact_degeneracy.has_value()) {
    memo_->install(memo_->degeneracy_once, memo_->degeneracy_ready, memo_->exact_degeneracy,
                   *loaded.exact_degeneracy);
  }
}

PreparedGraph::PreparedGraph(PreparedGraph&&) noexcept = default;
PreparedGraph& PreparedGraph::operator=(PreparedGraph&&) noexcept = default;
PreparedGraph::~PreparedGraph() = default;

double PreparedGraph::prepare_seconds() const noexcept {
  return memo_->prepare_seconds.load(std::memory_order_relaxed);
}

int PreparedGraph::artifacts_built() const noexcept {
  return memo_->artifacts_built.load(std::memory_order_relaxed);
}

const Digraph* PreparedGraph::dag_if_built() const noexcept {
  return memo_->dag_ready.load(std::memory_order_acquire) ? &*memo_->dag : nullptr;
}

const EdgeCommunities* PreparedGraph::communities_if_built() const noexcept {
  return memo_->comms_ready.load(std::memory_order_acquire) ? &*memo_->comms : nullptr;
}

const EdgeOrderResult* PreparedGraph::edge_order_if_built() const noexcept {
  return memo_->edge_order_ready.load(std::memory_order_acquire) ? &*memo_->edge_order : nullptr;
}

std::optional<node_t> PreparedGraph::exact_degeneracy_if_built() const noexcept {
  if (!memo_->degeneracy_ready.load(std::memory_order_acquire)) return std::nullopt;
  return memo_->exact_degeneracy;
}

const Digraph& PreparedGraph::dag(double& prep) const {
  memo_->build_once(memo_->dag_once, memo_->dag_ready, prep, [&] {
    std::vector<node_t> order;
    switch (opts_.algorithm) {
      case Algorithm::ArbCount:
        // ArbCount's paper-native default is the (2+eps)-approximate order.
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ApproxDegeneracy, opts_.order_seed);
        break;
      case Algorithm::Hybrid:
        // The hybrid's outer order is always the low-depth approximate one;
        // the exact degeneracy order is recomputed per out-neighborhood
        // inside the search (Section 4.2).
        order = approx_degeneracy_order(*g_, opts_.eps).order;
        break;
      default:
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ExactDegeneracy, opts_.order_seed);
        break;
    }
    memo_->dag.emplace(Digraph::orient(*g_, order));
  });
  return *memo_->dag;
}

const EdgeCommunities& PreparedGraph::communities(double& prep) const {
  const Digraph& d = dag(prep);  // built (and attributed) first
  memo_->build_once(memo_->comms_once, memo_->comms_ready, prep,
                    [&] { memo_->comms.emplace(EdgeCommunities::build(d)); });
  return *memo_->comms;
}

const EdgeOrderResult& PreparedGraph::edge_order(double& prep) const {
  memo_->build_once(memo_->edge_order_once, memo_->edge_order_ready, prep, [&] {
    memo_->edge_order.emplace(opts_.edge_order == EdgeOrderKind::ExactCommunityDegeneracy
                                  ? community_degeneracy_order(*g_)
                                  : approx_community_degeneracy_order(*g_, opts_.eps));
  });
  return *memo_->edge_order;
}

node_t PreparedGraph::exact_degeneracy(double& prep) const {
  memo_->build_once(memo_->degeneracy_once, memo_->degeneracy_ready, prep,
                    [&] { memo_->exact_degeneracy = degeneracy_order(*g_).degeneracy; });
  return *memo_->exact_degeneracy;
}

void PreparedGraph::prepare() const {
  double prep = 0.0;
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      (void)communities(prep);
      break;
    case Algorithm::C3ListCD:
      (void)edge_order(prep);
      break;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      (void)dag(prep);
      break;
    case Algorithm::BruteForce:
      break;
  }
}

node_t PreparedGraph::upper_bound(double& prep) const {
  if (g_->num_nodes() == 0) return 0;
  if (g_->num_edges() == 0) return 1;
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      // A k-clique needs a community of k-2 (Observation 1).
      return communities(prep).max_size() + 2;
    case Algorithm::C3ListCD:
      // Its lowest-ordered edge has the remaining k-2 vertices in V'(e).
      return edge_order(prep).sigma + 2;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      // The clique's lowest-ranked vertex sees the rest in N+(v).
      return dag(prep).max_out_degree() + 1;
    case Algorithm::BruteForce:
      break;
  }
  // omega <= s + 1 for an s-degenerate graph.
  return exact_degeneracy(prep) + 1;
}

node_t PreparedGraph::clique_number_upper_bound() const {
  double prep = 0.0;  // cost still accrues to prepare_seconds()
  return upper_bound(prep);
}

double PreparedGraph::cost_bound() const noexcept {
  const int built = memo_->artifacts_built.load(std::memory_order_acquire);
  if (memo_->cost_bound_key.load(std::memory_order_acquire) == built) {
    return memo_->cost_bound_value.load(std::memory_order_relaxed);
  }
  double bound = std::sqrt(std::max(0.0, 2.0 * static_cast<double>(g_->num_edges())));
  if (const Digraph* d = dag_if_built()) bound = static_cast<double>(d->max_out_degree());
  if (const EdgeCommunities* c = communities_if_built()) {
    bound = static_cast<double>(c->max_size());
  }
  // Value before key, so a reader that matches the key sees this value (or
  // a concurrent equal one).
  memo_->cost_bound_value.store(bound, std::memory_order_relaxed);
  memo_->cost_bound_key.store(built, std::memory_order_release);
  return bound;
}

CliqueResult PreparedGraph::dispatch(int k, const CliqueCallback* callback, double& prep) const {
  switch (opts_.algorithm) {
    case Algorithm::C3List: {
      const Digraph& d = dag(prep);
      const EdgeCommunities& c = communities(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return c3list_search(d, c, k, callback, opts_, *lease);
    }
    case Algorithm::C3ListCD: {
      const EdgeOrderResult& order = edge_order(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return c3list_cd_search(*g_, order, k, callback, opts_, *lease);
    }
    case Algorithm::Hybrid: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return hybrid_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::KCList: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return kclist_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::ArbCount: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return arbcount_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::BruteForce: {
      CliqueResult r;
      WallTimer timer;
      r.count = callback != nullptr ? brute_force_list(*g_, k, *callback)
                                    : brute_force_count(*g_, k);
      r.stats.cliques = r.count;
      r.stats.search_seconds = timer.seconds();
      return r;
    }
  }
  throw std::invalid_argument("PreparedGraph: unknown algorithm");
}

CliqueResult PreparedGraph::execute(int k, const CliqueCallback* callback) const {
  double prep = 0.0;
  CliqueResult result;
  if (!trivial_k(*g_, k, callback, result)) result = dispatch(k, callback, prep);
  // Only preparation performed during *this* query; 0 on reuse or when
  // another query built the artifacts while we waited.
  result.stats.preprocess_seconds = prep;
  return result;
}

/// Budget / cancel-token polling for one run(). expired() is called from
/// listing callbacks (any worker — everything it touches is atomic or
/// read-only) and between a Spectrum's k values / a MaxClique's probes; once
/// it observes expiry the `tripped` latch stays set so the answer can be
/// marked truncated. Inactive control (no budget, no token) costs one branch
/// per poll.
struct PreparedGraph::QueryControl {
  const std::atomic<bool>* cancel = nullptr;
  double budget = 0.0;
  WallTimer timer;  // started when run() starts
  std::atomic<bool> tripped{false};

  [[nodiscard]] bool active() const noexcept { return cancel != nullptr || budget > 0.0; }

  /// Emission-frequency poll: the cancel token is checked every call (one
  /// relaxed load), the budget clock only every 256th call per thread — so
  /// counting through the listing path costs ~an atomic load per clique,
  /// not a clock read.
  [[nodiscard]] bool expired() noexcept {
    if (!active()) return false;
    if (tripped.load(std::memory_order_relaxed)) return true;
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      tripped.store(true, std::memory_order_relaxed);
      return true;
    }
    if (budget > 0.0) {
      thread_local unsigned stride = 0;
      if ((++stride & 0xFFu) == 0 && timer.seconds() > budget) {
        tripped.store(true, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Accumulation poll for the per-vertex/per-edge tally loops, where every
  /// emission does O(k)..O(k^2) atomic work and a thread may see fewer than
  /// 256 emissions in a long search — expired()'s per-thread stride would
  /// then never read the clock and a budget could sail past mid-k. This one
  /// strides on a query-wide counter instead: the clock is read on the very
  /// first emission and every 64th after that, regardless of how the
  /// emissions spread across workers.
  [[nodiscard]] bool expired_accum() noexcept {
    if (!active()) return false;
    if ((accum_polls.fetch_add(1, std::memory_order_relaxed) & 0x3Fu) == 0) {
      return expired_now();
    }
    return expired();
  }

  std::atomic<std::uint64_t> accum_polls{0};

  /// Boundary poll (between a spectrum's k values, a max-clique's probes):
  /// always reads the clock, so coarse-grained budget checks fire promptly.
  [[nodiscard]] bool expired_now() noexcept {
    if (!active()) return false;
    if (tripped.load(std::memory_order_relaxed)) return true;
    if ((cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
        (budget > 0.0 && timer.seconds() > budget)) {
      tripped.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  [[nodiscard]] bool was_tripped() const noexcept {
    return tripped.load(std::memory_order_relaxed);
  }
};

Answer PreparedGraph::run(const Query& query) const {
  // The per-query worker cap applies to this thread's parallel loops only —
  // the process-global cap is never touched, so concurrent queries with
  // different caps cannot race (see parallel.hpp WorkerCapScope).
  const WorkerCapScope cap(query.opts.max_workers);
  QueryControl control;
  control.cancel = query.opts.cancel.get();
  control.budget = query.opts.budget_seconds;

  Answer answer;
  answer.kind = query.kind;
  answer.k = query.k;
  WallTimer timer;

  switch (query.kind) {
    case QueryKind::Count: {
      CliqueResult r;
      if (!control.active()) {
        r = execute(query.k, nullptr);  // pure counting mode, no callback cost
      } else {
        const CliqueCallback counter = [&](std::span<const node_t>) {
          return !control.expired();
        };
        r = execute(query.k, &counter);
      }
      answer.count = r.count;
      answer.stats = r.stats;
      answer.truncated = control.was_tripped();
      break;
    }
    case QueryKind::List: {
      std::mutex guard;
      bool excess = false;  // a clique beyond the limit was actually seen
      const count_t limit = query.opts.result_limit;
      const CliqueCallback collect = [&](std::span<const node_t> clique) {
        if (control.expired()) return false;
        const std::lock_guard<std::mutex> lock(guard);
        if (limit > 0 && answer.cliques.size() >= static_cast<std::size_t>(limit)) {
          // Only an over-limit emission proves the listing is incomplete — a
          // graph with exactly `limit` cliques finishes untruncated.
          excess = true;
          return false;
        }
        answer.cliques.emplace_back(clique.begin(), clique.end());
        return true;
      };
      const CliqueResult r = execute(query.k, &collect);
      answer.stats = r.stats;
      answer.count = static_cast<count_t>(answer.cliques.size());
      answer.truncated = control.was_tripped() || excess;
      break;
    }
    case QueryKind::HasClique:
    case QueryKind::FindClique: {
      if (query.k <= 0) break;  // no 0-clique by convention (found stays false)
      std::mutex guard;
      bool found = false;
      std::optional<std::vector<node_t>> witness;
      const bool want = query.kind == QueryKind::FindClique && query.opts.want_witness;
      const CliqueCallback stop_at_first = [&](std::span<const node_t> clique) {
        if (control.expired()) return false;
        const std::lock_guard<std::mutex> lock(guard);
        found = true;
        if (want && !witness.has_value()) witness.emplace(clique.begin(), clique.end());
        return false;  // stop the enumeration
      };
      const CliqueResult r = execute(query.k, &stop_at_first);
      answer.stats = r.stats;
      answer.found = found;
      if (witness.has_value()) answer.witness = std::move(*witness);
      // An aborted fruitless probe proves nothing; a found witness stands.
      answer.truncated = !found && control.was_tripped();
      break;
    }
    case QueryKind::PerVertexCounts: {
      std::vector<std::atomic<count_t>> acc(g_->num_nodes());
      const CliqueCallback tally = [&](std::span<const node_t> clique) {
        if (control.expired_accum()) return false;
        for (const node_t v : clique) acc[v].fetch_add(1, std::memory_order_relaxed);
        return true;
      };
      const CliqueResult r = execute(query.k, &tally);
      answer.stats = r.stats;
      answer.per_counts.resize(g_->num_nodes());
      for (node_t v = 0; v < g_->num_nodes(); ++v) {
        answer.per_counts[v] = acc[v].load(std::memory_order_relaxed);
      }
      answer.truncated = control.was_tripped();
      break;
    }
    case QueryKind::PerEdgeCounts: {
      std::vector<std::atomic<count_t>> acc(g_->num_edges());
      const CliqueCallback tally = [&](std::span<const node_t> clique) {
        if (control.expired_accum()) return false;
        for (std::size_t i = 0; i < clique.size(); ++i) {
          for (std::size_t j = i + 1; j < clique.size(); ++j) {
            const edge_t e = g_->edge_id(clique[i], clique[j]);
            acc[e].fetch_add(1, std::memory_order_relaxed);
          }
        }
        return true;
      };
      const CliqueResult r = execute(query.k, &tally);
      answer.stats = r.stats;
      answer.per_counts.resize(g_->num_edges());
      for (edge_t e = 0; e < g_->num_edges(); ++e) {
        answer.per_counts[e] = acc[e].load(std::memory_order_relaxed);
      }
      answer.truncated = control.was_tripped();
      break;
    }
    case QueryKind::Spectrum: {
      CliqueSpectrum& out = answer.spectrum;
      [&] {
        out.counts.assign(2, 0);
        if (g_->num_nodes() == 0) return;
        out.counts[1] = g_->num_nodes();
        out.omega = 1;
        // kmax clamps the trivial sizes too ("every k = 1..min(kmax, omega)").
        if (g_->num_edges() == 0 || query.kmax == 1) return;
        out.counts.push_back(g_->num_edges());
        out.omega = 2;
        // The k >= 3 loop below could never run; don't build artifacts for it.
        if (query.kmax == 2) return;

        double prep = 0.0;
        const auto ub = static_cast<int>(upper_bound(prep));
        const int limit = query.kmax > 0 ? std::min(query.kmax, ub) : ub;
        const CliqueCallback counter = [&](std::span<const node_t>) {
          return !control.expired();
        };
        for (int k = 3; k <= limit; ++k) {
          if (control.expired_now()) {
            answer.truncated = true;
            break;
          }
          // Under active control, count through the listing path so the
          // budget can cut inside a k; a cut k's partial count is dropped.
          const CliqueResult r = dispatch(k, control.active() ? &counter : nullptr, prep);
          out.search_seconds += r.stats.search_seconds;
          if (control.was_tripped()) {
            answer.truncated = true;
            break;
          }
          if (r.count == 0) break;
          out.counts.push_back(r.count);
          out.omega = static_cast<node_t>(k);
        }
        out.preprocess_seconds = prep;
      }();
      answer.stats.preprocess_seconds = out.preprocess_seconds;
      answer.stats.search_seconds = out.search_seconds;
      answer.omega = out.omega;
      answer.count = out.counts.empty() ? 0 : out.counts.back();
      break;
    }
    case QueryKind::MaxClique:
      run_max_clique(query, answer, control);
      break;
  }
  answer.seconds = timer.seconds();
  return answer;
}

namespace {

/// Per-kind registry series, resolved once (the registry lookup takes a
/// mutex; the hot path must not).
struct KindMetrics {
  obs::Counter* total;
  obs::Histogram* seconds;
};

KindMetrics& kind_metrics(QueryKind kind) {
  static std::array<KindMetrics, 8> table = [] {
    std::array<KindMetrics, 8> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string labels =
          std::string("kind=\"") + query_kind_name(static_cast<QueryKind>(i)) + "\"";
      t[i] = {&obs::Registry::global().counter("c3_queries_total", labels),
              &obs::Registry::global().histogram("c3_query_seconds", labels)};
    }
    return t;
  }();
  return table[static_cast<std::size_t>(kind)];
}

}  // namespace

Answer PreparedGraph::run(const Query& query, obs::TraceContext* trace) const {
  const bool telemetry = obs::enabled();
  if (trace == nullptr && !telemetry) return run(query);

  const std::uint64_t search_start_ns = trace != nullptr ? trace->now_ns() : 0;
  const Answer answer = run(query);

  if (trace != nullptr) {
    const std::uint64_t end_ns = trace->now_ns();
    // Preparation runs inside the search (lazily, at its start); report it
    // as a sub-span so the trace shows the first-query build cost that the
    // reuse guarantee later makes vanish.
    const auto prep_ns = static_cast<std::uint64_t>(
        std::max(0.0, answer.stats.preprocess_seconds) * 1e9);
    if (prep_ns > 0) trace->add_span(obs::Stage::Prepare, search_start_ns, prep_ns);
    trace->add_span(obs::Stage::Search, search_start_ns,
                    end_ns > search_start_ns ? end_ns - search_start_ns : 0);
    trace->mark_truncated(answer.truncated);
    trace->annotate("algorithm", algorithm_name(opts_.algorithm));
    trace->annotate("kernel_backend",
                    bits::kernel_backend_name(bits::active_kernel_backend()));
    const CliqueStats& s = answer.stats;
    // dense_subproblems counts the searches routed to the bitset local-graph
    // path; with top_level_tasks it answers "which representation ran".
    trace->annotate("dense_subproblems", std::to_string(s.dense_subproblems));
    trace->annotate("top_level_tasks", std::to_string(s.top_level_tasks));
    trace->annotate("recursive_calls", std::to_string(s.recursive_calls));
    trace->annotate("pairs_probed", std::to_string(s.pairs_probed));
    trace->annotate("edges_matched", std::to_string(s.edges_matched));
    trace->annotate("intersection_words", std::to_string(s.intersection_words));
    trace->annotate("leaf_work", std::to_string(s.leaf_work));
    trace->annotate("count", std::to_string(answer.count));
  }

  if (telemetry) {
    KindMetrics& m = kind_metrics(query.kind);
    m.total->add();
    m.seconds->observe(answer.seconds);
  }
  return answer;
}

void PreparedGraph::run_max_clique(const Query& query, Answer& answer,
                                   QueryControl& control) const {
  if (g_->num_nodes() == 0) return;  // omega 0, no witness
  if (g_->num_edges() == 0) {
    answer.omega = 1;
    if (query.opts.want_witness) answer.witness = {0};
    answer.found = true;
    return;
  }

  // Binary search over "does a mid-clique exist" in [2, upper bound]. Each
  // successful probe keeps its witness when one is wanted, so the final
  // answer usually needs no extra search.
  const bool want = query.opts.want_witness;
  std::optional<std::vector<node_t>> best;
  const auto probe = [&](node_t size) -> std::optional<std::vector<node_t>> {
    std::mutex guard;
    bool found = false;
    std::optional<std::vector<node_t>> witness;
    const CliqueCallback stop_at_first = [&](std::span<const node_t> clique) {
      if (control.expired()) return false;
      const std::lock_guard<std::mutex> lock(guard);
      found = true;
      if (want && !witness.has_value()) witness.emplace(clique.begin(), clique.end());
      return false;
    };
    (void)execute(static_cast<int>(size), &stop_at_first);
    if (!found) return std::nullopt;
    if (!want) return std::vector<node_t>{};  // marker: found, witness unwanted
    return witness;
  };

  node_t lo = 2;  // always feasible: the graph has an edge
  node_t hi = clique_number_upper_bound();
  while (lo < hi) {
    if (control.expired_now()) {
      answer.truncated = true;
      break;
    }
    const node_t mid = lo + (hi - lo + 1) / 2;
    std::optional<std::vector<node_t>> witness = probe(mid);
    if (witness.has_value()) {
      lo = mid;
      best = std::move(witness);
    } else {
      if (control.was_tripped()) {
        // The probe was cut short before finding anything: "no mid-clique"
        // is unproven, so stop with the best verified bound.
        answer.truncated = true;
        break;
      }
      hi = mid - 1;
    }
  }
  answer.omega = lo;

  if (want) {
    if (best.has_value() && best->size() == static_cast<std::size_t>(lo)) {
      // A verified lo-clique is already in hand — hand it out even when the
      // budget cut the search short (a truncated answer is a valid partial:
      // omega is a proven lower bound and the witness proves it).
      answer.witness = std::move(*best);
    } else if (!answer.truncated) {
      if (auto witness = probe(lo); witness.has_value()) {
        answer.witness = std::move(*witness);
      } else if (control.was_tripped()) {
        // The final witness search itself was cut before finding anything.
        answer.truncated = true;
      }
    }
  }
  answer.found = want ? !answer.witness.empty() : answer.omega > 0;
}

// ------------------------------------------------- named wrappers over run()

CliqueResult PreparedGraph::count(int k) const {
  Query q;
  q.kind = QueryKind::Count;
  q.k = k;
  const Answer a = run(q);
  CliqueResult r;
  r.count = a.count;
  r.stats = a.stats;
  return r;
}

CliqueResult PreparedGraph::list(int k, const CliqueCallback& callback) const {
  // The callback primitive run()'s enumeration kinds are built on — the one
  // named method that is not a Query wrapper (a std::function cannot
  // round-trip through the Query value type).
  return execute(k, &callback);
}

CliqueSpectrum PreparedGraph::spectrum(int kmax) const {
  Query q;
  q.kind = QueryKind::Spectrum;
  q.kmax = kmax;
  Answer a = run(q);
  return std::move(a.spectrum);
}

std::vector<count_t> PreparedGraph::per_vertex_counts(int k) const {
  Query q;
  q.kind = QueryKind::PerVertexCounts;
  q.k = k;
  Answer a = run(q);
  return std::move(a.per_counts);
}

std::vector<count_t> PreparedGraph::per_edge_counts(int k) const {
  Query q;
  q.kind = QueryKind::PerEdgeCounts;
  q.k = k;
  Answer a = run(q);
  return std::move(a.per_counts);
}

bool PreparedGraph::has_clique(int k) const {
  Query q;
  q.kind = QueryKind::HasClique;
  q.k = k;
  return run(q).found;
}

std::optional<std::vector<node_t>> PreparedGraph::find_clique(int k) const {
  Query q;
  q.kind = QueryKind::FindClique;
  q.k = k;
  Answer a = run(q);
  if (!a.found) return std::nullopt;
  return std::move(a.witness);
}

node_t PreparedGraph::max_clique_size() const {
  Query q;
  q.kind = QueryKind::MaxClique;
  q.opts.want_witness = false;  // omega only — skip the witness search
  return run(q).omega;
}

std::vector<node_t> PreparedGraph::max_clique() const {
  Query q;
  q.kind = QueryKind::MaxClique;
  Answer a = run(q);
  return std::move(a.witness);
}

}  // namespace c3
