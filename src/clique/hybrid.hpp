// The hybrid approach of Section 4.2.
//
// A (2+eps)-approximate degeneracy order (default eps = 0.5, the paper's
// "2.5-approximate") already guarantees every out-neighborhood has O(s)
// vertices; the depth-expensive exact degeneracy order is then computed only
// *inside* each out-neighborhood subgraph G[N+(v)], where it costs O(s)
// depth instead of O(n). Running the recursive search per vertex with c=k-1
// gives O(k n s ((s+3-k)/2)^(k-2)) work and O(s + k log s + log^2 n) depth —
// the middle row of Table 1.
#pragma once

#include "clique/c3list.hpp"
#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "parallel/padded.hpp"

namespace c3 {

/// Counts all k-cliques with the hybrid scheme.
[[nodiscard]] CliqueResult hybrid_count(const Graph& g, int k, const CliqueOptions& opts = {});

/// Listing variant.
[[nodiscard]] CliqueResult hybrid_list(const Graph& g, int k, const CliqueCallback& callback,
                                       const CliqueOptions& opts = {});

/// Search half on a prepared (approximate-order) orientation: requires
/// k >= 3; computes the exact inner order per out-neighborhood. `callback`
/// may be null (counting). `scratch` is this query's leased state (see
/// c3list_search).
[[nodiscard]] CliqueResult hybrid_search(const Digraph& dag, int k,
                                         const CliqueCallback* callback, const CliqueOptions& opts,
                                         QueryScratch& scratch);

}  // namespace c3
