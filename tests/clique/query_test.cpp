// The typed Query/Answer surface: text round-tripping (parse_query /
// format_query / format_answer), precise parse errors naming the offending
// token, run(Query) equivalence with every named method across all
// algorithms, and the per-query resource controls (worker caps, result
// limits, budgets, cancel tokens).
#include "clique/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <sstream>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

// ------------------------------------------------------------ text round trip

TEST(QueryText, RoundTripsEveryKindAndOption) {
  // A fuzz-ish table: every kind crossed with representative option
  // combinations must survive parse(format(q)) exactly.
  const std::vector<QueryKind> kinds = {
      QueryKind::Count,           QueryKind::List,          QueryKind::HasClique,
      QueryKind::FindClique,      QueryKind::PerVertexCounts,
      QueryKind::PerEdgeCounts,   QueryKind::Spectrum,      QueryKind::MaxClique,
  };
  std::vector<QueryOptions> option_sets;
  option_sets.emplace_back();  // defaults
  {
    QueryOptions o;
    o.max_workers = 2;
    option_sets.push_back(o);
  }
  {
    QueryOptions o;
    o.result_limit = 100;
    o.budget_seconds = 0.25;
    option_sets.push_back(o);
  }
  {
    QueryOptions o;
    o.want_witness = false;
    o.max_workers = 7;
    o.budget_seconds = 1.5;
    option_sets.push_back(o);
  }

  for (const QueryKind kind : kinds) {
    for (const QueryOptions& opts : option_sets) {
      for (const int size : {1, 3, 9}) {
        Query q;
        q.kind = kind;
        q.opts = opts;
        switch (kind) {
          case QueryKind::Spectrum:
            q.kmax = size - 1;  // exercises kmax = 0 (omitted) too
            break;
          case QueryKind::MaxClique:
            break;
          default:
            q.k = size;
        }
        const std::string text = format_query(q);
        const Query back = parse_query(text);
        EXPECT_TRUE(back == q) << "round trip changed '" << text << "' into '"
                               << format_query(back) << "'";
      }
    }
  }
}

TEST(QueryText, ParsesTheLegacyBatchGrammar) {
  // Every line c3tool batch accepted before the typed surface must still
  // parse to the same query.
  EXPECT_TRUE(parse_query("count 5") == (Query{QueryKind::Count, 5, 0, {}}));
  EXPECT_TRUE(parse_query("hasclique 4") == (Query{QueryKind::HasClique, 4, 0, {}}));
  EXPECT_TRUE(parse_query("findclique 3") == (Query{QueryKind::FindClique, 3, 0, {}}));
  EXPECT_TRUE(parse_query("vertexcounts 4") == (Query{QueryKind::PerVertexCounts, 4, 0, {}}));
  EXPECT_TRUE(parse_query("edgecounts 3") == (Query{QueryKind::PerEdgeCounts, 3, 0, {}}));
  EXPECT_TRUE(parse_query("spectrum") == (Query{QueryKind::Spectrum, 0, 0, {}}));
  EXPECT_TRUE(parse_query("spectrum 6") == (Query{QueryKind::Spectrum, 0, 6, {}}));
  EXPECT_TRUE(parse_query("maxclique") == (Query{QueryKind::MaxClique, 0, 0, {}}));
  EXPECT_TRUE(parse_query("  count 5  # trailing comment") ==
              (Query{QueryKind::Count, 5, 0, {}}));
}

/// The parse must fail and the error must name the offending token.
void expect_parse_error(const std::string& line, const std::string& expected_token) {
  try {
    (void)parse_query(line);
    FAIL() << "expected '" << line << "' to be rejected";
  } catch (const QueryParseError& e) {
    EXPECT_EQ(e.token(), expected_token) << "for line '" << line << "': " << e.what();
    EXPECT_NE(std::string(e.what()).find(expected_token), std::string::npos)
        << "message must name the token: " << e.what();
  }
}

TEST(QueryText, BadInputsNameTheOffendingToken) {
  expect_parse_error("cuont 5", "cuont");                 // typo'd kind
  expect_parse_error("count x7", "x7");                   // non-numeric k
  expect_parse_error("count -3", "-3");                   // negative k
  expect_parse_error("count 0", "0");                     // k < 1
  expect_parse_error("count 99999999999999999999", "99999999999999999999");  // overflow
  expect_parse_error("count 5 extra", "extra");           // trailing garbage
  expect_parse_error("spectrum 4.5", "4.5");              // fractional kmax
  expect_parse_error("spectrum 99999999999", "99999999999");  // kmax out of range
  expect_parse_error("count 5 workers=9999999", "9999999");   // workers out of range
  expect_parse_error("maxclique 5", "5");                 // maxclique takes no k
  expect_parse_error("count 5 frobs=1", "frobs=1");       // unknown option
  expect_parse_error("count 5 workers=abc", "abc");       // bad option value
  expect_parse_error("count 5 budget=-1", "-1");          // negative budget
  expect_parse_error("count 5 budget=nanx", "nanx");      // junk double
  expect_parse_error("count 5 witness=2", "witness=2");   // witness not 0/1
  expect_parse_error("list", "");                         // missing k
}

TEST(QueryText, MaxCliqueRejectsBareK) {
  // `maxclique 5` is the classic typo for `hasclique 5`; it must not
  // silently run a (far more expensive) different query.
  EXPECT_THROW((void)parse_query("maxclique 5"), QueryParseError);
}

TEST(QueryText, ParseQueryFileSkipsBlanksAndNamesBadLines) {
  std::istringstream good("# header comment\n"
                          "\n"
                          "count 3\n"
                          "  spectrum 4   # inline comment\n"
                          "maxclique\n");
  const std::vector<Query> queries = parse_query_file(good);
  ASSERT_EQ(queries.size(), 3u);
  EXPECT_EQ(queries[0].kind, QueryKind::Count);
  EXPECT_EQ(queries[1].kind, QueryKind::Spectrum);
  EXPECT_EQ(queries[1].kmax, 4);
  EXPECT_EQ(queries[2].kind, QueryKind::MaxClique);

  std::istringstream bad("count 3\n\ncuont 4\n");
  try {
    (void)parse_query_file(bad);
    FAIL() << "expected the bad line to be rejected";
  } catch (const QueryParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_EQ(e.token(), "cuont");
  }
}

TEST(QueryText, RoundTripSurvivesACancelToken) {
  // A cancel token has no text form; it is execution state, not part of the
  // question. format_query must omit it and parse(format(q)) == q must hold
  // with the token set (the old equality compared the shared_ptr by
  // identity, so this round trip used to fail).
  Query q;
  q.kind = QueryKind::Count;
  q.k = 4;
  q.opts.max_workers = 3;
  q.opts.cancel = std::make_shared<std::atomic<bool>>(false);
  const std::string text = format_query(q);
  EXPECT_EQ(text.find("cancel"), std::string::npos) << text;
  const Query back = parse_query(text);
  EXPECT_TRUE(back == q) << "round trip changed '" << text << "'";

  // Two queries differing only in their token (set vs unset, or two distinct
  // tokens with the same value) ask the same question.
  Query other = q;
  other.opts.cancel = std::make_shared<std::atomic<bool>>(false);
  EXPECT_TRUE(q == other);
  other.opts.cancel.reset();
  EXPECT_TRUE(q == other);
}

TEST(QueryText, CommentsGlueToTokensAndCrlfIsTolerated) {
  // '#' starts a comment even with no whitespace before it — the comment
  // must not fuse into the preceding token.
  EXPECT_TRUE(parse_query("count 4#glued") == (Query{QueryKind::Count, 4, 0, {}}));
  EXPECT_TRUE(parse_query("spectrum#x") == (Query{QueryKind::Spectrum, 0, 0, {}}));
  expect_parse_error("count#4", "");  // the comment ate K: missing-K error

  // Lines arriving from CRLF files (or raw TCP) keep their '\r'; it must
  // parse as whitespace, not leak into the last token.
  EXPECT_TRUE(parse_query("count 4\r") == (Query{QueryKind::Count, 4, 0, {}}));
  Query capped{QueryKind::Count, 4, 0, {}};
  capped.opts.max_workers = 2;
  EXPECT_TRUE(parse_query("count 4 workers=2\r") == capped);
  std::istringstream crlf("count 3\r\n\r\nspectrum 4\r\n");
  const std::vector<Query> queries = parse_query_file(crlf);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].k, 3);
  EXPECT_EQ(queries[1].kmax, 4);
}

TEST(QueryText, ExplicitDefaultOptionsParseAndRoundTrip) {
  // workers=0 (no cap) and limit=0 (unlimited) are the defaults spelled out
  // explicitly; both must parse, and formatting then omits them.
  const Query workers0 = parse_query("count 4 workers=0");
  EXPECT_EQ(workers0.opts.max_workers, 0);
  EXPECT_EQ(format_query(workers0), "count 4");
  const Query limit0 = parse_query("list 3 limit=0");
  EXPECT_EQ(limit0.opts.result_limit, 0u);
  EXPECT_EQ(format_query(limit0), "list 3");
}

TEST(QueryText, OverRangeCliqueSizesAreRejected) {
  // k fits an int and is capped at 2^30; both the fits-in-long-long and the
  // beyond-long-long spellings must fail naming the token.
  expect_parse_error("count 2000000000", "2000000000");
  expect_parse_error("hasclique 99999999999999999999", "99999999999999999999");
}

TEST(QueryText, CanonicalQuestionStripsExecutionOnlyOptions) {
  // canonical_question keeps what shapes the answer (kind, k/kmax, limit,
  // witness) and zeroes what only shapes execution (workers, budget,
  // cancel) — the normalization the answer cache keys on.
  Query q;
  q.kind = QueryKind::List;
  q.k = 4;
  q.opts.max_workers = 8;
  q.opts.budget_seconds = 2.5;
  q.opts.result_limit = 10;
  q.opts.want_witness = false;
  q.opts.cancel = std::make_shared<std::atomic<bool>>(false);

  const Query canon = canonical_question(q);
  EXPECT_EQ(canon.opts.max_workers, 0);
  EXPECT_EQ(canon.opts.budget_seconds, 0.0);
  EXPECT_EQ(canon.opts.cancel, nullptr);
  EXPECT_EQ(canon.opts.result_limit, 10u);
  EXPECT_FALSE(canon.opts.want_witness);
  EXPECT_EQ(format_query(canon), "list 4 limit=10 witness=0");

  Query same = q;
  same.opts.max_workers = 1;
  same.opts.budget_seconds = 0.0;
  same.opts.cancel.reset();
  EXPECT_TRUE(same_question(q, same));
  EXPECT_TRUE(canonical_question(q) == canonical_question(same));

  Query different = q;
  different.opts.result_limit = 11;
  EXPECT_FALSE(same_question(q, different));
  different = q;
  different.k = 5;
  EXPECT_FALSE(same_question(q, different));
}

TEST(QueryText, FormatAnswerRendersEveryKind) {
  Answer a;
  a.kind = QueryKind::Count;
  a.k = 5;
  a.count = 42;
  EXPECT_EQ(format_answer(a), "count 5: 42 cliques");
  a.truncated = true;
  EXPECT_EQ(format_answer(a), "count 5: 42 cliques [truncated]");

  Answer has;
  has.kind = QueryKind::HasClique;
  has.k = 3;
  has.found = true;
  EXPECT_EQ(format_answer(has), "hasclique 3: yes");

  Answer find;
  find.kind = QueryKind::FindClique;
  find.k = 3;
  find.found = true;
  find.witness = {4, 7, 9};
  EXPECT_EQ(format_answer(find), "findclique 3: 4 7 9");

  Answer spec;
  spec.kind = QueryKind::Spectrum;
  spec.spectrum.omega = 3;
  spec.spectrum.counts = {0, 4, 5, 1};
  EXPECT_EQ(format_answer(spec), "spectrum: omega 3, counts 0 4 5 1");

  Answer mc;
  mc.kind = QueryKind::MaxClique;
  mc.omega = 3;
  mc.witness = {1, 2, 3};
  EXPECT_EQ(format_answer(mc), "maxclique: omega 3, witness 1 2 3");
}

// -------------------------------------------- run(Query) vs named methods

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
          Algorithm::KCList, Algorithm::ArbCount, Algorithm::BruteForce};
}

Query make(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

TEST(QueryRun, MatchesNamedMethodsForEveryAlgorithm) {
  const Graph g = social_like(220, 1700, 0.45, 23);
  for (const Algorithm alg : all_algorithms()) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);

    for (const int k : {2, 3, 4, 5}) {
      EXPECT_EQ(engine.run(make(QueryKind::Count, k)).count, engine.count(k).count)
          << algorithm_name(alg) << " k=" << k;
      EXPECT_EQ(engine.run(make(QueryKind::HasClique, k)).found, engine.has_clique(k))
          << algorithm_name(alg) << " k=" << k;
      EXPECT_EQ(engine.run(make(QueryKind::PerVertexCounts, k)).per_counts,
                engine.per_vertex_counts(k))
          << algorithm_name(alg) << " k=" << k;
      EXPECT_EQ(engine.run(make(QueryKind::PerEdgeCounts, k)).per_counts,
                engine.per_edge_counts(k))
          << algorithm_name(alg) << " k=" << k;
    }

    const Answer spec = engine.run(make(QueryKind::Spectrum));
    const CliqueSpectrum named = engine.spectrum();
    EXPECT_EQ(spec.spectrum.counts, named.counts) << algorithm_name(alg);
    EXPECT_EQ(spec.spectrum.omega, named.omega) << algorithm_name(alg);
    EXPECT_EQ(spec.omega, named.omega) << algorithm_name(alg);

    const Answer mc = engine.run(make(QueryKind::MaxClique));
    EXPECT_EQ(mc.omega, engine.max_clique_size()) << algorithm_name(alg);
    EXPECT_EQ(mc.witness.size(), static_cast<std::size_t>(mc.omega)) << algorithm_name(alg);
    for (std::size_t i = 0; i < mc.witness.size(); ++i) {
      for (std::size_t j = i + 1; j < mc.witness.size(); ++j) {
        EXPECT_TRUE(g.has_edge(mc.witness[i], mc.witness[j])) << algorithm_name(alg);
      }
    }

    const Answer find = engine.run(make(QueryKind::FindClique, 4));
    EXPECT_EQ(find.found, engine.has_clique(4)) << algorithm_name(alg);
    if (find.found) {
      ASSERT_EQ(find.witness.size(), 4u) << algorithm_name(alg);
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i + 1; j < 4; ++j) {
          EXPECT_TRUE(g.has_edge(find.witness[i], find.witness[j])) << algorithm_name(alg);
        }
      }
    }
  }
}

TEST(QueryRun, ListMaterializesExactlyTheCliques) {
  const Graph g = erdos_renyi(120, 900, 31);
  const PreparedGraph engine(g, {});
  const int k = 4;

  // Ground truth via the callback primitive.
  std::set<std::vector<node_t>> expected;
  std::mutex guard;
  (void)engine.list(k, [&](std::span<const node_t> clique) {
    std::vector<node_t> sorted(clique.begin(), clique.end());
    std::sort(sorted.begin(), sorted.end());
    const std::lock_guard<std::mutex> lock(guard);
    expected.insert(std::move(sorted));
    return true;
  });

  const Answer a = engine.run(make(QueryKind::List, k));
  EXPECT_FALSE(a.truncated);
  EXPECT_EQ(a.count, static_cast<count_t>(a.cliques.size()));
  std::set<std::vector<node_t>> got;
  for (const std::vector<node_t>& clique : a.cliques) {
    std::vector<node_t> sorted = clique;
    std::sort(sorted.begin(), sorted.end());
    got.insert(std::move(sorted));
  }
  EXPECT_EQ(got, expected);
}

TEST(QueryRun, ListHonorsResultLimit) {
  const Graph g = social_like(200, 1600, 0.5, 3);
  const PreparedGraph engine(g, {});
  const count_t total = engine.count(3).count;
  ASSERT_GT(total, 10u);

  Query q = make(QueryKind::List, 3);
  q.opts.result_limit = 10;
  const Answer a = engine.run(q);
  EXPECT_EQ(a.cliques.size(), 10u);
  EXPECT_EQ(a.count, 10u);
  EXPECT_TRUE(a.truncated);
  for (const std::vector<node_t>& clique : a.cliques) {
    ASSERT_EQ(clique.size(), 3u);
    EXPECT_TRUE(g.has_edge(clique[0], clique[1]));
    EXPECT_TRUE(g.has_edge(clique[0], clique[2]));
    EXPECT_TRUE(g.has_edge(clique[1], clique[2]));
  }

  // A limit of exactly the clique count is a complete listing — not
  // truncated (only an over-limit emission proves incompleteness).
  Query exact = make(QueryKind::List, 3);
  exact.opts.result_limit = total;
  const Answer b = engine.run(exact);
  EXPECT_EQ(b.cliques.size(), static_cast<std::size_t>(total));
  EXPECT_FALSE(b.truncated);
}

TEST(QueryRun, PerQueryWorkerCapAppliesInsideTheQueryOnly) {
  const Graph g = erdos_renyi(150, 1000, 17);
  const PreparedGraph engine(g, {});
  engine.prepare();
  const int before = num_workers();

  // A per-thread cap is visible inside a query's enumeration (the loops it
  // launches inherit it) — the mechanism run() uses for opts.max_workers.
  {
    const WorkerCapScope cap(1);
    std::atomic<bool> saw_capped{true};
    std::atomic<bool> called{false};
    (void)engine.list(3, [&](std::span<const node_t>) {
      called.store(true, std::memory_order_relaxed);
      if (num_workers() != 1) saw_capped.store(false, std::memory_order_relaxed);
      return true;
    });
    EXPECT_TRUE(called.load());
    EXPECT_TRUE(saw_capped.load());
  }
  EXPECT_EQ(num_workers(), before) << "scope must restore the thread";

  // run() applies opts.max_workers itself: correct answers, and the global
  // worker count is never written.
  Query q = make(QueryKind::Count, 4);
  q.opts.max_workers = 1;
  EXPECT_EQ(engine.run(q).count, engine.count(4).count);
  EXPECT_EQ(num_workers(), before);
}

TEST(QueryRun, CancelTokenTruncates) {
  const Graph g = social_like(300, 2600, 0.5, 11);
  const PreparedGraph engine(g, {});
  engine.prepare();

  Query q = make(QueryKind::Count, 4);
  q.opts.cancel = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  const Answer a = engine.run(q);
  EXPECT_TRUE(a.truncated);
  EXPECT_LE(a.count, engine.count(4).count);

  // An untripped token changes nothing.
  Query free_q = make(QueryKind::Count, 4);
  free_q.opts.cancel = std::make_shared<std::atomic<bool>>(false);
  const Answer full = engine.run(free_q);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.count, engine.count(4).count);
}

TEST(QueryRun, BudgetTruncatesPerCountsEvenWithFewEmissions) {
  // Regression: the per-vertex/per-edge accumulation loops used to poll the
  // budget clock only every 256th emission *per thread*, so on a graph with
  // fewer than 256 cliques per thread the budget never fired at all. The
  // accumulators now stride-poll a query-wide counter that reads the clock
  // on the very first emission — an already-expired budget must truncate on
  // any graph that has at least one clique.
  const Graph g = social_like(200, 1600, 0.5, 3);
  const PreparedGraph engine(g, {});
  engine.prepare();
  ASSERT_GT(engine.count(3).count, 0u);

  for (const QueryKind kind : {QueryKind::PerVertexCounts, QueryKind::PerEdgeCounts}) {
    Query q = make(kind, 3);
    q.opts.budget_seconds = 1e-9;  // expired before the first emission
    const Answer cut = engine.run(q);
    EXPECT_TRUE(cut.truncated) << query_kind_name(kind);

    // A generous budget changes nothing: full, untruncated answers equal to
    // the named methods.
    Query roomy = make(kind, 3);
    roomy.opts.budget_seconds = 3600.0;
    const Answer full = engine.run(roomy);
    EXPECT_FALSE(full.truncated) << query_kind_name(kind);
    EXPECT_EQ(full.per_counts, kind == QueryKind::PerVertexCounts
                                   ? engine.per_vertex_counts(3)
                                   : engine.per_edge_counts(3))
        << query_kind_name(kind);
  }
}

TEST(QueryRun, CancelTokenCutsPerCountsAccumulation) {
  // Cancel tokens are polled on every emission (no stride): a pre-tripped
  // token must truncate per-vertex/per-edge accumulation immediately.
  const Graph g = social_like(200, 1600, 0.5, 3);
  const PreparedGraph engine(g, {});
  engine.prepare();
  for (const QueryKind kind : {QueryKind::PerVertexCounts, QueryKind::PerEdgeCounts}) {
    Query q = make(kind, 3);
    q.opts.cancel = std::make_shared<std::atomic<bool>>(true);
    EXPECT_TRUE(engine.run(q).truncated) << query_kind_name(kind);
  }
}

TEST(QueryRun, BudgetTruncatesSpectrumSafely) {
  const Graph g = social_like(400, 3600, 0.5, 7);
  const PreparedGraph engine(g, {});
  engine.prepare();
  const CliqueSpectrum full = engine.spectrum();

  // An effectively-zero budget must cut the sweep but still return a valid
  // prefix of the spectrum (trivial sizes at least).
  Query q = make(QueryKind::Spectrum);
  q.opts.budget_seconds = 1e-9;
  const Answer a = engine.run(q);
  EXPECT_TRUE(a.truncated);
  ASSERT_GE(a.spectrum.counts.size(), 2u);
  for (std::size_t k = 0; k < a.spectrum.counts.size(); ++k) {
    ASSERT_LT(k, full.counts.size());
    EXPECT_EQ(a.spectrum.counts[k], full.counts[k]) << "prefix diverged at k=" << k;
  }

  // A generous budget returns the full spectrum untruncated.
  Query roomy = make(QueryKind::Spectrum);
  roomy.opts.budget_seconds = 3600.0;
  const Answer b = engine.run(roomy);
  EXPECT_FALSE(b.truncated);
  EXPECT_EQ(b.spectrum.counts, full.counts);
}

TEST(QueryRun, MaxCliqueWithoutWitness) {
  const Graph g = erdos_renyi(150, 1200, 5);
  const PreparedGraph engine(g, {});
  Query q = make(QueryKind::MaxClique);
  q.opts.want_witness = false;
  const Answer a = engine.run(q);
  EXPECT_EQ(a.omega, engine.max_clique_size());
  EXPECT_TRUE(a.witness.empty());
  EXPECT_TRUE(a.found);
}

TEST(QueryRun, EstimateCostIsMonotoneAndArtifactAware) {
  const Graph g = social_like(500, 4000, 0.4, 9);
  const PreparedGraph engine(g, {});

  // Monotone in k, spectrum/maxclique dominate a single count, and the
  // estimate never triggers preparation.
  const double c3 = estimate_query_cost(engine, make(QueryKind::Count, 3));
  const double c6 = estimate_query_cost(engine, make(QueryKind::Count, 6));
  const double c9 = estimate_query_cost(engine, make(QueryKind::Count, 9));
  EXPECT_LE(c3, c6);
  EXPECT_LE(c6, c9);
  EXPECT_GE(estimate_query_cost(engine, make(QueryKind::Spectrum)), c6);
  EXPECT_GE(estimate_query_cost(engine, make(QueryKind::MaxClique)), c3);
  EXPECT_EQ(engine.artifacts_built(), 0) << "estimation must not prepare";

  // After preparation the estimate uses the real artifacts; it stays finite
  // and positive.
  engine.prepare();
  EXPECT_GT(estimate_query_cost(engine, make(QueryKind::Count, 6)), 0.0);
}

}  // namespace
}  // namespace c3
