#include "order/community_degeneracy.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "parallel/pack.hpp"
#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"

namespace c3 {
namespace {

/// Per-edge merge over the endpoints' neighborhoods, invoking
/// f(w, partner_edge_uw, partner_edge_vw) for each common neighbor w.
template <typename F>
void for_each_wedge(const Graph& g, node_t u, node_t v, F&& f) {
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  const auto idu = g.edge_ids(u);
  const auto idv = g.edge_ids(v);
  std::size_t a = 0, b = 0;
  while (a < nu.size() && b < nv.size()) {
    if (nu[a] < nv[b]) {
      ++a;
    } else if (nu[a] > nv[b]) {
      ++b;
    } else {
      f(nu[a], idu[a], idv[b]);
      ++a;
      ++b;
    }
  }
}

}  // namespace

// Algorithm 4 of the paper: per round, select all edges supporting at most
// (3 + eps) * T / m triangles (T, m of the *remaining* graph), append them to
// the order (tie-broken by edge id), remove them, and update the partner
// edges' counts. Observation 6 bounds the rounds by O(log_{1+eps} m);
// Lemma 4.4 bounds every candidate set by (3 + eps) * sigma.
EdgeOrderResult approx_community_degeneracy_order(const Graph& g, double eps) {
  if (eps <= 0.0)
    throw std::invalid_argument("approx_community_degeneracy_order: eps must be positive");
  const edge_t m = g.num_edges();
  const auto endpoints = g.endpoints();
  EdgeOrderResult result;
  result.order.reserve(m);
  result.pos.assign(m, static_cast<edge_t>(-1));
  result.candidate_offsets.assign(m + 1, 0);
  if (m == 0) return result;

  // Step 1-2 of Algorithm 4: per-edge triangle counts.
  std::vector<std::atomic<node_t>> cnt(m);
  parallel_for(
      0, m,
      [&](std::size_t e) {
        node_t c = 0;
        for_each_wedge(g, endpoints[e].u, endpoints[e].v,
                       [&](node_t, edge_t, edge_t) { ++c; });
        cnt[e].store(c, std::memory_order_relaxed);
      },
      64);
  count_t triangles_remaining = parallel_sum<count_t>(0, m, [&](std::size_t e) {
                                  return cnt[e].load(std::memory_order_relaxed);
                                }) /
                                3;

  std::vector<edge_t> alive(m);
  for (edge_t e = 0; e < m; ++e) alive[e] = e;

  // Per-edge candidate sets, filled round by round; flattened at the end.
  std::vector<std::vector<node_t>> candidates(m);

  while (!alive.empty()) {
    ++result.rounds;
    const double avg = 3.0 * static_cast<double>(triangles_remaining) /
                       static_cast<double>(alive.size());
    const auto threshold = static_cast<node_t>((1.0 + eps / 3.0) * avg);
    // (3 + eps) * T / m == (1 + eps/3) * (3T/m); written via the per-edge
    // average 3T/m so the zero-triangle round peels everything at once.

    std::vector<edge_t> peeled = pack_if<edge_t>(alive, [&](std::size_t i) {
      return cnt[alive[i]].load(std::memory_order_relaxed) <= threshold;
    });
    std::vector<edge_t> survivors = pack_if<edge_t>(alive, [&](std::size_t i) {
      return cnt[alive[i]].load(std::memory_order_relaxed) > threshold;
    });

    // Final order positions: earlier rounds first, ties by edge id (peeled
    // is id-sorted because pack preserves the order of `alive`).
    const edge_t base = static_cast<edge_t>(result.order.size());
    for (std::size_t i = 0; i < peeled.size(); ++i) {
      result.pos[peeled[i]] = base + i;
      result.order.push_back(peeled[i]);
    }

    // For each peeled edge e, enumerate the triangles that are still alive
    // at round start and in which e is the lowest-positioned edge. That
    // triangle is recorded in V'(e), and each *surviving* partner edge
    // loses one triangle.
    std::atomic<count_t> destroyed{0};
    parallel_for(
        0, peeled.size(),
        [&](std::size_t i) {
          const edge_t e = peeled[i];
          const edge_t epos = result.pos[e];
          count_t local_destroyed = 0;
          for_each_wedge(g, endpoints[e].u, endpoints[e].v,
                         [&](node_t w, edge_t f, edge_t h) {
                           const edge_t fpos = result.pos[f];
                           const edge_t hpos = result.pos[h];
                           // Partner removed in an earlier round: triangle
                           // already gone before this round.
                           if (fpos < base || hpos < base) return;
                           // e must be the first of the triangle's edges in
                           // the final order to own it.
                           if (fpos != static_cast<edge_t>(-1) && fpos < epos) return;
                           if (hpos != static_cast<edge_t>(-1) && hpos < epos) return;
                           candidates[e].push_back(w);
                           ++local_destroyed;
                           if (fpos == static_cast<edge_t>(-1))
                             cnt[f].fetch_sub(1, std::memory_order_relaxed);
                           if (hpos == static_cast<edge_t>(-1))
                             cnt[h].fetch_sub(1, std::memory_order_relaxed);
                         });
          destroyed.fetch_add(local_destroyed, std::memory_order_relaxed);
        },
        4);
    triangles_remaining -= destroyed.load(std::memory_order_relaxed);
    alive = std::move(survivors);
  }

  // Flatten per-edge candidate vectors into the CSR and record the bound.
  node_t max_candidates = 0;
  for (edge_t e = 0; e < m; ++e) {
    result.candidate_offsets[e + 1] =
        result.candidate_offsets[e] + candidates[e].size();
    max_candidates = std::max(max_candidates, static_cast<node_t>(candidates[e].size()));
  }
  result.candidate_members.resize(result.candidate_offsets[m]);
  parallel_for(0, m, [&](std::size_t e) {
    std::copy(candidates[e].begin(), candidates[e].end(),
              result.candidate_members.begin() +
                  static_cast<std::ptrdiff_t>(result.candidate_offsets[e]));
  });
  result.sigma = max_candidates;
  return result;
}

}  // namespace c3
