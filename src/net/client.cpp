#include "net/client.hpp"

#include <stdexcept>

namespace c3::net {

std::string LineClient::request(std::string_view line) {
  if (!send(line)) throw std::runtime_error("c3::net: send failed (connection lost)");
  std::optional<std::string> response = read_line();
  if (!response.has_value()) {
    throw std::runtime_error("c3::net: connection closed before a response arrived");
  }
  return *std::move(response);
}

std::string LineClient::scrape_metrics() {
  if (!send("metrics")) throw std::runtime_error("c3::net: send failed (connection lost)");
  std::string out;
  for (;;) {
    std::optional<std::string> line = read_line();
    if (!line.has_value()) {
      throw std::runtime_error("c3::net: connection closed mid-exposition (no # EOF)");
    }
    out += *line;
    out += '\n';
    if (*line == "# EOF") return out;
  }
}

std::optional<std::string> LineClient::read_line() {
  std::string line;
  switch (channel_.read_line(line, timeout_)) {
    case LineChannel::ReadStatus::Line:
      return line;
    case LineChannel::ReadStatus::Closed:
      return std::nullopt;
    case LineChannel::ReadStatus::Timeout:
      throw std::runtime_error("c3::net: response timed out");
    case LineChannel::ReadStatus::TooLong:
      throw std::runtime_error("c3::net: response line too long");
    case LineChannel::ReadStatus::Failed:
      break;
  }
  throw std::runtime_error("c3::net: read failed");
}

}  // namespace c3::net
