// Direct tests of the Algorithm 2 engine on hand-built local subgraphs.
#include "clique/recursive.hpp"

#include <gtest/gtest.h>

#include "clique/combinatorics.hpp"

namespace c3 {
namespace {

struct EngineFixture {
  LocalGraph lg;
  SearchContext ctx;
  LocalCounters ctr;

  explicit EngineFixture(int n) {
    lg.reset(n);
    ctx.lg = &lg;
    ctx.ctr = &ctr;
    ctx.prune = true;
  }

  count_t count_all(int c) { return search_cliques_all(ctx, c); }
};

TEST(RecursiveEngine, BaseCaseCountsCandidates) {
  EngineFixture f(5);  // no edges
  EXPECT_EQ(f.count_all(1), 5u);
}

TEST(RecursiveEngine, BaseCaseCountsEdges) {
  EngineFixture f(4);
  f.lg.add_edge(0, 1);
  f.lg.add_edge(2, 3);
  f.lg.add_edge(0, 3);
  EXPECT_EQ(f.count_all(2), 3u);
}

TEST(RecursiveEngine, CompleteLocalGraphClosedForms) {
  const int n = 10;
  for (int c = 1; c <= n; ++c) {
    EngineFixture f(n);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) f.lg.add_edge(a, b);
    }
    EXPECT_EQ(f.count_all(c), binomial(n, c)) << "c=" << c;
  }
}

TEST(RecursiveEngine, PathHasNoTriangles) {
  EngineFixture f(6);
  for (int a = 0; a + 1 < 6; ++a) f.lg.add_edge(a, a + 1);
  EXPECT_EQ(f.count_all(3), 0u);
  EXPECT_EQ(f.count_all(2), 5u);
}

TEST(RecursiveEngine, CrossesWordBoundary) {
  // A complete local graph on 70 vertices exercises the 2-word bitset path.
  const int n = 70;
  EngineFixture f(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) f.lg.add_edge(a, b);
  }
  EXPECT_EQ(f.count_all(3), binomial(70, 3));
  EXPECT_EQ(f.count_all(4), binomial(70, 4));
}

TEST(RecursiveEngine, IntervalRestrictionPreventsDoubleCounting) {
  // Two triangles sharing an edge: {0,1,2} and {0,2,3} (edges 01 02 12 23 03).
  // A 3-clique search must count each exactly once even though vertex 0 and
  // 2 are common neighbors of several pairs.
  EngineFixture f(4);
  f.lg.add_edge(0, 1);
  f.lg.add_edge(0, 2);
  f.lg.add_edge(1, 2);
  f.lg.add_edge(2, 3);
  f.lg.add_edge(0, 3);
  EXPECT_EQ(f.count_all(3), 2u);
}

TEST(RecursiveEngine, CountersTrackProbes) {
  EngineFixture f(8);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) f.lg.add_edge(a, b);
  }
  (void)f.count_all(4);
  EXPECT_GT(f.ctr.pairs_probed, 0u);
  EXPECT_GT(f.ctr.edges_matched, 0u);
  EXPECT_GE(f.ctr.pairs_probed, f.ctr.edges_matched);
  EXPECT_GT(f.ctr.recursive_calls, 0u);
}

TEST(RecursiveEngine, PruneFlagOnlyChangesWork) {
  for (const bool prune : {true, false}) {
    EngineFixture f(12);
    for (int a = 0; a < 12; ++a) {
      for (int b = a + 1; b < 12; ++b) f.lg.add_edge(a, b);
    }
    f.ctx.prune = prune;
    EXPECT_EQ(f.count_all(6), binomial(12, 6)) << "prune=" << prune;
  }
}

TEST(RecursiveEngine, ListingReportsChosenVertices) {
  EngineFixture f(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) f.lg.add_edge(a, b);
  }
  const node_t to_orig[] = {100, 101, 102, 103};
  std::vector<std::vector<node_t>> reported;
  const CliqueCallback cb = [&](std::span<const node_t> clique) {
    std::vector<node_t> sorted(clique.begin(), clique.end());
    std::sort(sorted.begin(), sorted.end());
    reported.push_back(sorted);
    return true;
  };
  f.ctx.callback = &cb;
  f.ctx.member_to_orig = to_orig;
  EXPECT_EQ(f.count_all(3), 4u);
  ASSERT_EQ(reported.size(), 4u);
  for (const auto& c : reported) {
    ASSERT_EQ(c.size(), 3u);
    for (const node_t v : c) {
      ASSERT_GE(v, 100u);
      ASSERT_LE(v, 103u);
    }
  }
}

}  // namespace
}  // namespace c3
