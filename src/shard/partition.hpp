// Partitioner — splits a graph into vertex-ownership shards (DESIGN.md
// Section 9).
//
// A shard owns a contiguous vertex range [lo, hi). Ownership of *cliques*
// follows from ownership of vertices: every k-clique belongs to the shard
// owning its minimum vertex id (its root under the identity order). That
// makes ownership a true partition of the clique set — the property every
// scatter-gather merge in ShardedEngine rests on — without constraining
// which vertex order or algorithm each shard's engine uses internally.
//
// To let a shard count its owned cliques locally, its subgraph must contain
// every clique rooted in it. A clique rooted at u consists of u plus
// neighbors of u with larger ids, so it suffices to add the *halo*: the
// neighbors of owned vertices with id >= hi. (Neighbors with id < lo root
// their cliques in an earlier shard; ids in [lo, hi) are already owned.)
// The shard subgraph is the induced graph on owned ++ halo, relabeled
// 0..|V_s|-1 with owned vertices first — ascending relabeling, so local id
// order mirrors global id order and "min vertex is owned" becomes the O(1)
// test "min local id < owned_count".
//
// A shard's local count over-counts by exactly the cliques rooted in its
// halo — and those are precisely the cliques of the induced halo subgraph
// (every vertex of a halo-rooted clique has id >= hi, hence lies in the
// halo). So each shard also carries G[halo] and its owned tally is the
// difference of two black-box engine answers. See ShardedEngine.
//
// Two policies pick the ranges: VertexRange (equal vertex counts) and
// EdgeBlock (ranges balanced by degree mass — contiguous edge blocks, the
// better proxy for per-shard work on skewed graphs).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "graph/types.hpp"

namespace c3::shard {

enum class PartitionPolicy : std::uint8_t {
  VertexRange,  ///< ranges of (near-)equal vertex count
  EdgeBlock,    ///< ranges of (near-)equal degree mass
};

[[nodiscard]] const char* partition_policy_name(PartitionPolicy p) noexcept;

struct ShardingOptions {
  int shards = 2;  ///< clamped to [1, num_nodes] range count (empty shards allowed)
  PartitionPolicy policy = PartitionPolicy::EdgeBlock;
};

/// One shard's owned vertex range [lo, hi). Ranges are contiguous,
/// non-overlapping, and cover [0, n) in order; a range may be empty.
struct ShardRange {
  node_t lo = 0;
  node_t hi = 0;
  [[nodiscard]] node_t size() const noexcept { return hi - lo; }
};

/// The owned ranges for `opts.shards` shards under `opts.policy`. Always
/// returns exactly max(1, opts.shards) ranges.
[[nodiscard]] std::vector<ShardRange> partition_ranges(const Graph& g,
                                                       const ShardingOptions& opts);

/// Everything one shard needs, extracted from the parent graph:
///   * main: the induced subgraph on owned ++ halo (owned first, both
///     ascending — main.to_parent is strictly increasing);
///   * halo: the halo's global ids (ascending; to_parent[owned_count + i]);
///   * halo_sub: the induced subgraph on the halo alone (empty when no halo);
///   * edge maps: local undirected edge id -> parent edge id, for main and
///     halo_sub (the per-edge merge needs them; every local edge exists in
///     the parent by construction).
struct ShardPart {
  ShardRange range;
  std::vector<node_t> halo;
  InducedSubgraph main;
  std::vector<edge_t> edge_map;
  InducedSubgraph halo_sub;
  std::vector<edge_t> halo_edge_map;

  [[nodiscard]] node_t owned_count() const noexcept { return range.size(); }
};

/// Extracts the shard for `range` from `g`.
[[nodiscard]] ShardPart build_shard(const Graph& g, ShardRange range);

}  // namespace c3::shard
