// Immutable undirected graph in compressed sparse row (CSR) form.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/array_store.hpp"

namespace c3 {

/// An undirected simple graph: no self-loops, no multi-edges. Adjacency
/// lists are sorted ascending by neighbor id, enabling O(log d) edge probes
/// and linear-time sorted intersections.
///
/// Construction goes through GraphBuilder (graph/builder.hpp) or the
/// generators (graph/gen/generators.hpp); this class only holds the final
/// CSR arrays and read accessors.
class Graph {
 public:
  Graph() = default;

  /// Assembles a graph from prebuilt CSR arrays. `offsets` has n+1 entries;
  /// `adj` has 2m entries, each vertex's slice sorted ascending;
  /// `edge_ids` (parallel to `adj`) maps each directed slot to its
  /// undirected edge id in [0, m). Invariants are the builder's
  /// responsibility; use GraphBuilder unless you are a generator.
  Graph(std::vector<edge_t> offsets, std::vector<node_t> adj, std::vector<edge_t> edge_ids);

  /// Assembles a graph from complete prebuilt arrays — including the
  /// endpoint table — without any recomputation. Used by the snapshot loader
  /// to sit a Graph over borrowed (mmap-backed) sections; every array may be
  /// an ArrayStore view. Invariants are the caller's responsibility.
  [[nodiscard]] static Graph from_parts(ArrayStore<edge_t> offsets, ArrayStore<node_t> adj,
                                        ArrayStore<edge_t> edge_ids, ArrayStore<Edge> endpoints);

  [[nodiscard]] node_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<node_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges m (the adjacency arrays hold 2m slots).
  [[nodiscard]] edge_t num_edges() const noexcept { return adj_.size() / 2; }

  [[nodiscard]] node_t degree(node_t u) const noexcept {
    return static_cast<node_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Neighbors of u, sorted ascending.
  [[nodiscard]] std::span<const node_t> neighbors(node_t u) const noexcept {
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  /// Undirected edge ids of u's incident edges, parallel to neighbors(u).
  [[nodiscard]] std::span<const edge_t> edge_ids(node_t u) const noexcept {
    return {edge_ids_.data() + offsets_[u], edge_ids_.data() + offsets_[u + 1]};
  }

  /// O(log d) membership test.
  [[nodiscard]] bool has_edge(node_t u, node_t v) const noexcept;

  /// Undirected edge id of {u, v}, or static_cast<edge_t>(-1) if absent.
  [[nodiscard]] edge_t edge_id(node_t u, node_t v) const noexcept;

  /// Endpoint table: endpoints()[id] is the edge {u, v} with u < v. Built
  /// eagerly at construction, O(1) lookups.
  [[nodiscard]] std::span<const Edge> endpoints() const noexcept { return endpoints_; }

  [[nodiscard]] node_t max_degree() const noexcept;

  /// Raw CSR access for algorithms that stream the whole structure (and for
  /// the snapshot writer, which serializes these arrays verbatim).
  [[nodiscard]] std::span<const edge_t> raw_offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const node_t> raw_adjacency() const noexcept { return adj_; }
  [[nodiscard]] std::span<const edge_t> raw_edge_ids() const noexcept { return edge_ids_; }

 private:
  // ArrayStore so a snapshot-loaded Graph can borrow mmap-backed sections;
  // built graphs own their arrays as before.
  ArrayStore<edge_t> offsets_;   // n+1
  ArrayStore<node_t> adj_;       // 2m, per-vertex sorted
  ArrayStore<edge_t> edge_ids_;  // 2m, undirected edge id per slot
  ArrayStore<Edge> endpoints_;   // m, {u, v} with u < v
};

}  // namespace c3
