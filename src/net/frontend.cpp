#include "net/frontend.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "util/bitkernels.hpp"

namespace c3::net {
namespace {

/// Error payloads travel on one line: fold any newline an exception message
/// might carry into spaces.
std::string one_line(std::string_view text) {
  std::string out(text);
  std::replace(out.begin(), out.end(), '\n', ' ');
  std::replace(out.begin(), out.end(), '\r', ' ');
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

/// RAII slot in a graph's admission gate: the constructor blocks until the
/// graph has a free execution slot, the destructor frees it and wakes one
/// waiter. Gates are per graph id, so waiting on a hot graph never consumes
/// capacity of a cold one.
class LineFrontEnd::Admission {
 public:
  Admission(LineFrontEnd& fe, const std::string& id) : fe_(fe) {
    std::unique_lock<std::mutex> lock(fe_.gate_mutex_);
    // std::map nodes are stable and gates are never erased, so the pointer
    // outlives the lock.
    gate_ = &fe_.gates_[id];
    gate_->free_slot.wait(lock,
                          [&] { return gate_->inflight < fe_.opts_.max_inflight_per_graph; });
    gate_->inflight += 1;
    gate_->peak = std::max(gate_->peak, gate_->inflight);
  }

  ~Admission() {
    {
      const std::lock_guard<std::mutex> lock(fe_.gate_mutex_);
      gate_->inflight -= 1;
    }
    gate_->free_slot.notify_one();
  }

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

 private:
  LineFrontEnd& fe_;
  GraphGate* gate_ = nullptr;
};

LineFrontEnd::LineFrontEnd(const CliqueService& service, AnswerCache* cache,
                           FrontEndOptions opts)
    : service_(&service), cache_(cache), opts_(opts) {
  opts_.max_inflight_per_graph = std::max(1, opts_.max_inflight_per_graph);
}

void LineFrontEnd::set_stats_suffix_source(std::function<std::string()> source) {
  stats_suffix_ = std::move(source);
}

std::uint64_t LineFrontEnd::fingerprint_for(const std::string& id, const PreparedGraph& engine) {
  {
    const std::shared_lock<std::shared_mutex> lock(fingerprint_mutex_);
    if (const auto it = fingerprints_.find(id); it != fingerprints_.end()) return it->second;
  }
  const std::uint64_t fp = engine_fingerprint(id, engine);
  const std::unique_lock<std::shared_mutex> lock(fingerprint_mutex_);
  return fingerprints_.emplace(id, fp).first->second;
}

std::string LineFrontEnd::stats_line() const {
  const FrontEndStats s = stats();
  std::string line = "stats: requests=" + std::to_string(s.requests) +
                     " answered=" + std::to_string(s.answered) +
                     " errors=" + std::to_string(s.errors) +
                     " peak_inflight=" + std::to_string(s.peak_inflight) +
                     " graphs=" + std::to_string(service_->size());
  line += " cache_hits=" + std::to_string(s.cache.hits) +
          " cache_misses=" + std::to_string(s.cache.misses) +
          " cache_evictions=" + std::to_string(s.cache.evictions) +
          " cache_entries=" + std::to_string(s.cache.entries);
  line += std::string(" kernel=") + bits::kernel_backend_name(bits::active_kernel_backend());
  if (stats_suffix_) {
    const std::string suffix = stats_suffix_();
    if (!suffix.empty()) line += ' ' + suffix;
  }
  return line;
}

LineFrontEnd::Reply LineFrontEnd::process(std::string_view raw) {
  const std::string_view line = trim(raw);
  if (line.empty() || line.front() == '#') return Reply{std::string(), false, false};

  // Admin commands are bare words, never valid graph ids in a request (a
  // request needs a second token), so they cannot shadow catalog entries.
  if (line == "ping") return Reply{"pong", true, false};
  if (line == "quit" || line == "bye") return Reply{"bye", true, true};
  if (line == "stats") return Reply{stats_line(), true, false};
  if (line == "catalog") {
    std::string out = "catalog:";
    for (const ServiceGraphInfo& info : service_->catalog()) out += ' ' + info.id;
    return Reply{std::move(out), true, false};
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto fail = [&](std::string message) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Reply{"error: " + one_line(message), true, false};
  };

  const std::size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    return fail("expected '<graph-id> <query>', got '" + std::string(line) +
                "' (admin commands: stats catalog ping quit)");
  }
  const std::string id(line.substr(0, space));
  const std::string_view query_text = line.substr(space + 1);

  if (!service_->has_graph(id)) {
    return fail("unknown graph '" + id + "' (see: catalog)");
  }

  Query query;
  try {
    query = parse_query(query_text);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  try {
    const PreparedGraph& engine = service_->engine(id);  // may open a snapshot
    const std::uint64_t fp = fingerprint_for(id, engine);
    AnswerCache::Key key;
    if (cache_ != nullptr) {
      key = AnswerCache::make_key(fp, query);
      if (std::optional<Answer> hit = cache_->lookup(key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        answered_.fetch_add(1, std::memory_order_relaxed);
        return Reply{format_answer(*hit), true, false};
      }
    }
    Answer answer;
    {
      const Admission slot(*this, id);  // bounded per-graph execution
      answer = engine.run(query);
    }
    if (cache_ != nullptr) (void)cache_->insert(key, answer);  // refuses truncated
    answered_.fetch_add(1, std::memory_order_relaxed);
    return Reply{format_answer(answer), true, false};
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

FrontEndStats LineFrontEnd::stats() const {
  FrontEndStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.answered = answered_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    for (const auto& [id, gate] : gates_) s.peak_inflight = std::max(s.peak_inflight, gate.peak);
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

}  // namespace c3::net
