// ShardedEngine — scatter-gather query execution over a vertex-ownership
// partition (DESIGN.md Section 9).
//
// Each shard is an independent PreparedGraph over its subgraph (owned
// vertices plus halo, see partition.hpp) — prepared, snapshotted, and
// queried exactly like any unsharded engine. A query scatters one sub-query
// per shard (the per-query worker cap split across shards, budget and
// cancel token passed through), then gathers the sub-answers into one
// Answer whose counting results are *bit-identical* to an unsharded engine
// over the whole graph:
//
//   owned(s) = answer(G_s) - answer(G_s[halo])
//
// Cliques of G_s rooted in the halo are exactly the cliques of the induced
// halo subgraph, so the difference of two black-box engine answers is the
// count of cliques owned by s — and owned cliques partition the clique set,
// so the per-shard differences sum to the global answer. This works per
// total count, per vertex, per edge (through the shard's local->global edge
// maps), and per spectrum entry, for any of the six algorithms, because
// nothing about the engines' internals is assumed.
//
// The non-counting kinds compose without halo runs: HasClique ORs the
// shards (a clique in any induced subgraph is a clique of G; the root shard
// finds every clique of G), FindClique takes any shard's witness mapped to
// global ids, MaxClique takes the max omega (same two-sided argument), and
// List filters each shard's enumeration down to its owned cliques — the
// result limit is applied at the merge, not per shard, so halo-rooted
// duplicates can never crowd out owned cliques.
//
// Stats merge through accumulate_stats (common.hpp): counters and times
// sum across sub-queries, quality figures take the max, and the merged
// count overwrites stats.cliques. A sub-answer cut by budget/cancel marks
// the merged answer truncated.
//
// Two construction modes: from a Graph (partition + build + own
// everything), or from LoadedShard views handed out by an open sharded
// manifest (snapshot/shard_manifest.hpp) — the engine then borrows
// everything and owns nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "shard/partition.hpp"

namespace c3::shard {

/// One shard's borrowed pieces, for constructing a ShardedEngine over
/// memory owned elsewhere (a sharded snapshot's mapping). All spans and
/// engines must outlive the ShardedEngine.
struct LoadedShard {
  const PreparedGraph* main = nullptr;  ///< engine over owned ++ halo
  const PreparedGraph* halo = nullptr;  ///< engine over the halo; null when empty
  node_t first_owned = 0;
  node_t owned_count = 0;
  std::span<const node_t> halo_ids;            ///< ascending global ids
  std::span<const edge_t> edge_map;            ///< main local edge -> global edge
  std::span<const edge_t> halo_edge_map;       ///< halo local edge -> global edge
};

class ShardedEngine {
 public:
  /// Partitions `g` under `sharding` and builds every shard in place: the
  /// subgraphs, edge maps, and one PreparedGraph per shard (plus one per
  /// non-empty halo), all owned by this engine. `g` itself is not retained.
  ShardedEngine(const Graph& g, const ShardingOptions& sharding, const CliqueOptions& opts = {});

  /// Wraps shards loaded from a sharded manifest. `shards` must be ordered
  /// by first_owned and form a partition of [0, num_nodes).
  ShardedEngine(std::vector<LoadedShard> shards, node_t num_nodes, edge_t num_edges,
                const CliqueOptions& opts, PartitionPolicy policy);

  ShardedEngine(ShardedEngine&&) noexcept;
  ShardedEngine& operator=(ShardedEngine&&) noexcept;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  /// Scatter-gather execution (see header comment). Thread-safe: the
  /// per-shard engines are reentrant and the merge is per-call state.
  [[nodiscard]] Answer run(const Query& query) const;

  /// As run(), recording one Stage::ShardSearch span per shard sub-query
  /// into `trace` (from the gathering thread — TraceContext is
  /// single-threaded) and annotating shard count and policy. `trace` may be
  /// nullptr.
  [[nodiscard]] Answer run(const Query& query, obs::TraceContext* trace) const;

  /// Forces every shard engine (main and halo) fully prepared, including
  /// the clique-number upper bound — one shard at a time, each engine
  /// parallelizing internally over the full worker pool.
  void prepare() const;

  [[nodiscard]] std::size_t num_shards() const noexcept;
  [[nodiscard]] node_t num_nodes() const noexcept;
  [[nodiscard]] edge_t num_edges() const noexcept;
  [[nodiscard]] const CliqueOptions& options() const noexcept;
  [[nodiscard]] PartitionPolicy policy() const noexcept;

  /// Max over the shard engines' bounds — valid globally, since every
  /// clique of G lives inside its root's shard subgraph.
  [[nodiscard]] node_t clique_number_upper_bound() const;

  // Per-shard access (the manifest writer and tests).
  [[nodiscard]] const PreparedGraph& main_engine(std::size_t shard) const;
  [[nodiscard]] const PreparedGraph* halo_engine(std::size_t shard) const;  ///< null: empty halo
  [[nodiscard]] node_t first_owned(std::size_t shard) const;
  [[nodiscard]] node_t owned_count(std::size_t shard) const;
  [[nodiscard]] std::span<const node_t> halo_ids(std::size_t shard) const;
  [[nodiscard]] std::span<const edge_t> edge_map(std::size_t shard) const;
  [[nodiscard]] std::span<const edge_t> halo_edge_map(std::size_t shard) const;

 private:
  struct Shard;
  [[nodiscard]] Answer gather(const Query& query, std::vector<Answer> mains,
                              std::vector<Answer> halos) const;

  std::vector<Shard> shards_;
  node_t num_nodes_ = 0;
  edge_t num_edges_ = 0;
  CliqueOptions opts_;
  PartitionPolicy policy_ = PartitionPolicy::EdgeBlock;
};

/// Identity of a sharded engine for answer-cache keying — the sharded
/// analogue of engine_fingerprint. Folds the graph id, the
/// artifact-determining options, the global shape, and the partition
/// (policy, shard count, per-shard ranges), plus a domain tag so a sharded
/// and unsharded registration of the same graph never alias.
[[nodiscard]] std::uint64_t sharded_fingerprint(std::string_view graph_id,
                                                const ShardedEngine& engine);

}  // namespace c3::shard
