// Tests for the exact degeneracy order (Lemma 4.1).
#include "order/degeneracy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy_order(complete_graph(8)).degeneracy, 7u);
  EXPECT_EQ(degeneracy_order(cycle_graph(10)).degeneracy, 2u);
  EXPECT_EQ(degeneracy_order(star_graph(100)).degeneracy, 1u);
  EXPECT_EQ(degeneracy_order(path_graph(10)).degeneracy, 1u);
  EXPECT_EQ(degeneracy_order(grid_graph(8, 8)).degeneracy, 2u);
  EXPECT_EQ(degeneracy_order(hypercube(7)).degeneracy, 7u);
  // Complete multipartite: degeneracy = n - (largest part) = 12 - 3.
  EXPECT_EQ(degeneracy_order(turan_graph(12, 4)).degeneracy, 9u);
  // Section 1.1: the star is 1-degenerate despite max degree n-1.
  EXPECT_EQ(degeneracy_order(star_graph(100)).degeneracy, 1u);
}

TEST(Degeneracy, EmptyAndTinyGraphs) {
  EXPECT_EQ(degeneracy_order(Graph{}).degeneracy, 0u);
  EXPECT_EQ(degeneracy_order(complete_graph(1)).degeneracy, 0u);
  EXPECT_EQ(degeneracy_order(complete_graph(2)).degeneracy, 1u);
}

TEST(Degeneracy, OrderIsPermutation) {
  const Graph g = erdos_renyi(500, 2000, 4);
  const DegeneracyResult r = degeneracy_order(g);
  std::vector<bool> seen(g.num_nodes(), false);
  for (const node_t v : r.order) {
    ASSERT_LT(v, g.num_nodes());
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_EQ(r.order.size(), g.num_nodes());
}

TEST(Degeneracy, OrientingByOrderBoundsOutDegreeByS) {
  // The defining property: orienting by the degeneracy order gives max
  // out-degree exactly s.
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = social_like(800, 6000, 0.3, seed);
    const DegeneracyResult r = degeneracy_order(g);
    const Digraph dag = Digraph::orient(g, r.order);
    EXPECT_EQ(dag.max_out_degree(), r.degeneracy) << "seed " << seed;
  }
}

TEST(Degeneracy, CoreNumbersAreCorrect) {
  const Graph g = erdos_renyi(300, 1500, 8);
  const DegeneracyResult r = degeneracy_order(g);
  const node_t s = r.degeneracy;
  EXPECT_EQ(*std::max_element(r.core.begin(), r.core.end()), s);

  // The k-core property: the subgraph induced by {v : core[v] >= k} has
  // minimum degree >= k within itself, for every k.
  for (node_t k = 1; k <= s; ++k) {
    for (node_t v = 0; v < g.num_nodes(); ++v) {
      if (r.core[v] < k) continue;
      node_t deg_in_core = 0;
      for (const node_t w : g.neighbors(v)) deg_in_core += r.core[w] >= k ? 1 : 0;
      ASSERT_GE(deg_in_core, k) << "vertex " << v << " in " << k << "-core";
    }
  }
}

TEST(Degeneracy, CoreMonotoneAlongOrder) {
  // Removal degrees are non-decreasing along the smallest-last order, which
  // is what makes them core numbers.
  const Graph g = chung_lu(400, 2400, 0.6, 15);
  const DegeneracyResult r = degeneracy_order(g);
  for (std::size_t i = 1; i < r.order.size(); ++i) {
    ASSERT_GE(r.core[r.order[i]], r.core[r.order[i - 1]]);
  }
}

}  // namespace
}  // namespace c3
