// ScratchPool / Lease semantics: warm reuse of returned objects, growth
// under contention (concurrent leases never share), RAII return, and move
// behavior of leases.
#include "parallel/scratch_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

namespace c3 {
namespace {

struct Buffer {
  std::vector<int> data;
};

TEST(ScratchPool, AcquireCreatesWhenEmpty) {
  ScratchPool<Buffer> pool;
  EXPECT_EQ(pool.idle(), 0u);
  const auto lease = pool.acquire();
  EXPECT_NE(lease.get(), nullptr);
  EXPECT_EQ(pool.idle(), 0u);  // the only object is checked out
}

TEST(ScratchPool, ReleaseReturnsWarmObject) {
  ScratchPool<Buffer> pool;
  Buffer* first = nullptr;
  {
    const auto lease = pool.acquire();
    first = lease.get();
    lease->data.assign(1000, 7);  // warm the buffer
  }
  EXPECT_EQ(pool.idle(), 1u);
  const auto lease = pool.acquire();
  // Same object, capacity intact: sequential queries reuse warm buffers.
  EXPECT_EQ(lease.get(), first);
  EXPECT_GE(lease->data.capacity(), 1000u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ScratchPool, ConcurrentLeasesAreDistinct) {
  ScratchPool<Buffer> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(b.get(), c.get());
  a.release();
  b.release();
  c.release();
  EXPECT_EQ(pool.idle(), 3u);  // the pool grew to peak contention
}

TEST(ScratchPool, MoveTransfersOwnership) {
  ScratchPool<Buffer> pool;
  auto a = pool.acquire();
  Buffer* raw = a.get();
  auto b = std::move(a);
  EXPECT_EQ(a.get(), nullptr);  // NOLINT(bugprone-use-after-move): post-move state is specified
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool.idle(), 0u);  // still exactly one checkout
  b.release();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ScratchPool, MoveAssignReleasesPrevious) {
  ScratchPool<Buffer> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  Buffer* b_raw = b.get();
  a = std::move(b);  // a's original object must return to the pool
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(a.get(), b_raw);
}

TEST(ScratchPool, ManyThreadsHammerAcquireRelease) {
  ScratchPool<Buffer> pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> overlaps{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        auto lease = pool.acquire();
        // Exclusive ownership: nobody else writes this object while leased.
        lease->data.assign(16, r);
        for (const int x : lease->data) {
          if (x != r) overlaps.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(overlaps.load(), 0);
  // Everything returned; the pool never exceeded peak concurrency.
  EXPECT_GE(pool.idle(), 1u);
  EXPECT_LE(pool.idle(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace c3
