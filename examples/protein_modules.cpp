// Protein-complex discovery in a gene-association network — the
// bioinformatics application from the paper's introduction (cliques as
// functional modules / complexes).
//
// Builds a Bio-SC-HT-like functional association network with embedded
// complexes, then: (1) enumerates maximal cliques (Bron-Kerbosch with the
// degeneracy-order outer loop), (2) ranks vertices by k-clique
// participation, (3) verifies the top-ranked group really is a module via
// the exact k-clique count inside it.
//
//   ./protein_modules [--n 2500] [--seed 7]
#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const auto n = static_cast<c3::node_t>(cli.get_int("n", 2500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  std::printf("== protein_modules: clique-based module discovery ==\n");
  const c3::Graph g = c3::bio_like(n, 8'000, /*modules=*/40, /*module_size=*/22,
                                   /*module_density=*/0.6, seed);
  std::printf("network: %u genes, %llu associations\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // 1. Maximal cliques (candidate complexes), with a size histogram.
  std::map<std::size_t, c3::count_t> histogram;
  std::mutex mutex;
  c3::WallTimer t_bk;
  const c3::count_t maximal = c3::list_maximal_cliques(g, [&](std::span<const c3::node_t> c) {
    const std::lock_guard<std::mutex> lock(mutex);
    ++histogram[c.size()];
    return true;
  });
  std::printf("maximal cliques: %llu in %.3f s; size histogram (>=5):\n",
              static_cast<unsigned long long>(maximal), t_bk.seconds());
  for (const auto& [size, count] : histogram) {
    if (size >= 5)
      std::printf("  size %2zu: %llu\n", size, static_cast<unsigned long long>(count));
  }

  // 2. Rank genes by 5-clique participation (module centrality).
  const int k = 5;
  const auto participation = c3::per_vertex_clique_counts(g, k);
  std::vector<c3::node_t> ranked(g.num_nodes());
  for (c3::node_t v = 0; v < g.num_nodes(); ++v) ranked[v] = v;
  std::sort(ranked.begin(), ranked.end(),
            [&](c3::node_t a, c3::node_t b) { return participation[a] > participation[b]; });
  std::printf("\ntop genes by %d-clique participation:\n", k);
  for (int i = 0; i < 5; ++i) {
    std::printf("  gene %5u: %llu cliques\n", ranked[static_cast<std::size_t>(i)],
                static_cast<unsigned long long>(participation[ranked[static_cast<std::size_t>(i)]]));
  }

  // 3. Extract the densest 5-clique module and validate it.
  const c3::DensestResult module = c3::kclique_densest_peeling(g, k);
  std::printf("\ndensest %d-clique module: %zu genes, density %.2f\n", k,
              module.vertices.size(), module.density);
  if (!module.vertices.empty()) {
    const c3::InducedSubgraph sub = c3::induced_subgraph(g, module.vertices);
    const auto inside = c3::count_cliques(sub.graph, k);
    std::printf("  verified: %llu %d-cliques inside the module\n",
                static_cast<unsigned long long>(inside.count), k);
    const c3::node_t omega = c3::max_clique_size(sub.graph);
    std::printf("  largest complex inside: %u genes\n", omega);
  }
  return 0;
}
