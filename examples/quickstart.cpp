// Quickstart: build a graph, count and list cliques.
//
//   ./quickstart                # run on a small generated social graph
//   ./quickstart --file g.txt   # run on your own edge list (u v per line)
//   ./quickstart --k 5
#include <cstdio>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 5));

  // 1. Get a graph: from a file, or generated.
  c3::Graph g;
  if (const auto file = cli.get("file")) {
    g = c3::read_graph(*file);
    std::printf("loaded %s\n", file->c_str());
  } else {
    g = c3::social_like(/*n=*/20'000, /*m=*/150'000, /*closure=*/0.4, /*seed=*/42);
    std::printf("generated a social-network-like graph\n");
  }
  std::printf("  %u vertices, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Structural parameters (these drive the algorithm's work bounds).
  const c3::DegeneracyResult deg = c3::degeneracy_order(g);
  std::printf("  degeneracy s = %u (=> no clique larger than %u)\n", deg.degeneracy,
              deg.degeneracy + 1);

  // 3. Count k-cliques with the paper's community-centric algorithm.
  c3::WallTimer timer;
  const c3::CliqueResult result = c3::count_cliques(g, k);
  std::printf("  #%d-cliques = %llu   (%.3f s, gamma = %u)\n", k,
              static_cast<unsigned long long>(result.count), timer.seconds(),
              result.stats.gamma);

  // 4. List a few of them.
  std::printf("  first three %d-cliques:\n", k);
  int shown = 0;
  (void)c3::list_cliques(g, k, [&](std::span<const c3::node_t> clique) {
    std::printf("   ");
    for (const c3::node_t v : clique) std::printf(" %u", v);
    std::printf("\n");
    return ++shown < 3;
  });

  // 5. The largest clique in the graph.
  const auto best = c3::find_max_clique(g);
  std::printf("  maximum clique size omega = %zu\n", best.size());
  return 0;
}
