#include "clique/bron_kerbosch.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "order/degeneracy.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

struct BkState {
  const Graph* g;
  const CliqueCallback* callback;
  std::vector<node_t> r;  // current clique
  count_t found = 0;
  node_t largest = 0;
  bool stopped = false;
};

/// Sorted intersection helper: out = a ∩ N(v).
void intersect_neighbors(const Graph& g, const std::vector<node_t>& a, node_t v,
                         std::vector<node_t>& out) {
  out.clear();
  const auto nbrs = g.neighbors(v);
  std::set_intersection(a.begin(), a.end(), nbrs.begin(), nbrs.end(), std::back_inserter(out));
}

/// Classic Bron-Kerbosch with Tomita pivoting: choose the pivot p from
/// P ∪ X maximizing |P ∩ N(p)| and only branch on P \ N(p).
void bk(BkState& st, std::vector<node_t>& p, std::vector<node_t>& x) {
  if (st.stopped) return;
  if (p.empty() && x.empty()) {
    ++st.found;
    st.largest = std::max(st.largest, static_cast<node_t>(st.r.size()));
    if (st.callback != nullptr && !(*st.callback)(std::span<const node_t>(st.r)))
      st.stopped = true;
    return;
  }
  if (p.empty()) return;

  const Graph& g = *st.g;
  // Pivot selection over P ∪ X.
  node_t pivot = kInvalidNode;
  std::size_t best = 0;
  for (const auto* side : {&p, &x}) {
    for (const node_t cand : *side) {
      const auto nbrs = g.neighbors(cand);
      std::size_t inter = 0;
      std::size_t i = 0, j = 0;
      while (i < p.size() && j < nbrs.size()) {
        if (p[i] < nbrs[j]) {
          ++i;
        } else if (p[i] > nbrs[j]) {
          ++j;
        } else {
          ++inter;
          ++i;
          ++j;
        }
      }
      if (pivot == kInvalidNode || inter > best) {
        pivot = cand;
        best = inter;
      }
    }
  }

  // Branch vertices: P minus the pivot's neighborhood.
  std::vector<node_t> branch;
  {
    const auto nbrs = g.neighbors(pivot);
    std::set_difference(p.begin(), p.end(), nbrs.begin(), nbrs.end(),
                        std::back_inserter(branch));
  }

  std::vector<node_t> p2, x2;
  for (const node_t v : branch) {
    if (st.stopped) return;
    intersect_neighbors(g, p, v, p2);
    intersect_neighbors(g, x, v, x2);
    st.r.push_back(v);
    bk(st, p2, x2);
    st.r.pop_back();
    // Move v from P to X (both stay sorted).
    p.erase(std::lower_bound(p.begin(), p.end(), v));
    x.insert(std::lower_bound(x.begin(), x.end(), v), v);
  }
}

struct BkResult {
  count_t count = 0;
  node_t largest = 0;
};

BkResult run(const Graph& g, const CliqueCallback* callback) {
  const node_t n = g.num_nodes();
  if (n == 0) return {};
  // Eppstein et al.: one BK call per vertex v, restricted to the later part
  // of the degeneracy order — P starts as N(v) after v, X as N(v) before v,
  // so every maximal clique is rooted at its order-minimal vertex.
  const DegeneracyResult deg = degeneracy_order(g);
  std::vector<node_t> rank(n);
  for (node_t i = 0; i < n; ++i) rank[deg.order[i]] = i;

  PerWorker<BkResult> partial;
  std::atomic<bool> stop{false};
  parallel_for_dynamic(
      0, n,
      [&](std::size_t i) {
        if (stop.load(std::memory_order_relaxed)) return;
        const node_t v = deg.order[i];
        BkState st;
        st.g = &g;
        st.callback = callback;
        std::vector<node_t> p, x;
        for (const node_t w : g.neighbors(v)) {
          (rank[w] > rank[v] ? p : x).push_back(w);
        }
        // Neighbor lists are id-sorted; keep P/X id-sorted for merges.
        st.r.push_back(v);
        bk(st, p, x);
        partial.local().count += st.found;
        partial.local().largest = std::max(partial.local().largest, st.largest);
        if (st.stopped) stop.store(true, std::memory_order_relaxed);
      },
      1);
  return partial.reduce(BkResult{}, [](BkResult a, BkResult b) {
    return BkResult{a.count + b.count, std::max(a.largest, b.largest)};
  });
}

}  // namespace

count_t count_maximal_cliques(const Graph& g) { return run(g, nullptr).count; }

count_t list_maximal_cliques(const Graph& g, const CliqueCallback& callback) {
  return run(g, &callback).count;
}

node_t max_clique_size_bk(const Graph& g) { return run(g, nullptr).largest; }

}  // namespace c3
