#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace c3::obs {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_request_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The per-stage latency histograms the `metrics` word reports quantiles
/// from. One per stage, registered once; index by enum value.
Histogram& stage_histogram(Stage s) {
  static std::array<Histogram*, kStageCount> table = [] {
    std::array<Histogram*, kStageCount> t{};
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::string labels =
          std::string("stage=\"") + stage_name(static_cast<Stage>(i)) + "\"";
      t[i] = &Registry::global().histogram("c3_stage_seconds", labels);
    }
    return t;
  }();
  return *table[static_cast<std::size_t>(s)];
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::Parse:
      return "parse";
    case Stage::AdmissionWait:
      return "admission_wait";
    case Stage::CacheLookup:
      return "cache_lookup";
    case Stage::Prepare:
      return "prepare";
    case Stage::Search:
      return "search";
    case Stage::Format:
      return "format";
    case Stage::SocketWrite:
      return "socket_write";
    case Stage::ShardSearch:
      return "shard_search";
  }
  return "unknown";
}

// --------------------------------------------------------------- TraceRecord

std::uint64_t TraceRecord::total_ns() const noexcept {
  std::uint64_t end = 0;
  for (const Span& s : spans) end = std::max(end, s.start_ns + s.duration_ns);
  return end;
}

std::uint64_t TraceRecord::stage_ns(Stage s) const noexcept {
  for (const Span& span : spans) {
    if (span.stage == s) return span.duration_ns;
  }
  return 0;
}

// -------------------------------------------------------------- TraceContext

TraceContext::TraceContext(std::string graph_id, std::string query_text)
    : start_steady_ns_(steady_now_ns()) {
  record_.request_id = next_request_id();
  record_.start_epoch_us = start_steady_ns_ / 1000;
  record_.graph_id = std::move(graph_id);
  record_.query_text = std::move(query_text);
  // One span per stage plus headroom, and the usual handful of search
  // annotations: reserving up front keeps the per-request record at two
  // allocations instead of a realloc per push_back.
  record_.spans.reserve(kStageCount + 1);
  record_.annotations.reserve(8);
}

TraceContext::~TraceContext() {
  if (!finished_) finish();
}

std::uint64_t TraceContext::now_ns() const noexcept {
  return steady_now_ns() - start_steady_ns_;
}

void TraceContext::add_span(Stage stage, std::uint64_t start_ns, std::uint64_t duration_ns) {
  record_.spans.push_back(Span{stage, start_ns, duration_ns});
}

void TraceContext::annotate(std::string_view key, std::string value) {
  record_.annotations.emplace_back(std::string(key), std::move(value));
}

void TraceContext::set_graph(std::string graph_id) { record_.graph_id = std::move(graph_id); }
void TraceContext::set_query(std::string query_text) {
  record_.query_text = std::move(query_text);
}

void TraceContext::finish() {
  if (finished_) return;
  finished_ = true;
  for (const Span& s : record_.spans) {
    stage_histogram(s.stage).observe(static_cast<double>(s.duration_ns) * 1e-9);
  }
  SlowQueryLog::global().maybe_log(record_);
  TraceRing::global().push(std::move(record_));
}

// ----------------------------------------------------------------- TraceRing

struct TraceRing::Impl {
  mutable std::mutex mutex;
  std::size_t capacity;
  std::deque<TraceRecord> traces;
};

TraceRing::TraceRing(std::size_t capacity) : impl_(std::make_shared<Impl>()) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

TraceRing& TraceRing::global() {
  // Leaked for the same reason as Registry::global(): publication during
  // static destruction must never touch a destroyed ring.
  static TraceRing* instance = new TraceRing();
  return *instance;
}

void TraceRing::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  while (impl_->traces.size() > impl_->capacity) impl_->traces.pop_front();
}

void TraceRing::push(TraceRecord record) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->traces.push_back(std::move(record));
  while (impl_->traces.size() > impl_->capacity) impl_->traces.pop_front();
}

void TraceRing::clear() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->traces.clear();
}

std::size_t TraceRing::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->traces.size();
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return std::vector<TraceRecord>(impl_->traces.begin(), impl_->traces.end());
}

// ----------------------------------------------------------- chrome tracing

std::string chrome_trace_json(const std::vector<TraceRecord>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first_event = true;
  for (const TraceRecord& t : traces) {
    for (const Span& s : t.spans) {
      if (!first_event) out += ',';
      first_event = false;
      out += "{\"name\":";
      append_json_string(out, stage_name(s.stage));
      out += ",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(t.request_id);
      // chrome://tracing wants microseconds; keep sub-µs spans visible.
      out += strfmt(",\"ts\":%.3f", static_cast<double>(t.start_epoch_us) +
                                        static_cast<double>(s.start_ns) * 1e-3);
      out += strfmt(",\"dur\":%.3f", static_cast<double>(s.duration_ns) * 1e-3);
      out += ",\"args\":{";
      out += "\"graph\":";
      append_json_string(out, t.graph_id);
      if (s.stage == Stage::Search || s.stage == Stage::Parse) {
        out += ",\"query\":";
        append_json_string(out, t.query_text);
      }
      if (s.stage == Stage::Search) {
        for (const auto& [key, value] : t.annotations) {
          out += ',';
          append_json_string(out, key);
          out += ':';
          append_json_string(out, value);
        }
      }
      out += "}}";
    }
    // Metadata: name each "thread" (= request) so the viewer shows the
    // request line instead of a bare id.
    if (!t.spans.empty()) {
      out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(t.request_id);
      out += ",\"args\":{\"name\":";
      std::string label = "req " + std::to_string(t.request_id);
      if (!t.graph_id.empty()) label += " " + t.graph_id;
      if (t.cache_hit) label += " [cached]";
      if (t.error) label += " [error]";
      append_json_string(out, label);
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

// -------------------------------------------------------------- SlowQueryLog

struct SlowQueryLog::Impl {
  mutable std::mutex mutex;
  // Atomic so maybe_log() can bail out without the mutex when disabled —
  // that check runs once per request on every serving path.
  std::atomic<double> threshold_seconds{0.0};  // <= 0: disabled
  std::FILE* sink = nullptr;                   // nullptr: stderr
  std::FILE* owned_file = nullptr;
  std::atomic<std::uint64_t> logged{0};

  ~Impl() {
    if (owned_file != nullptr) std::fclose(owned_file);
  }
};

SlowQueryLog::SlowQueryLog() : impl_(std::make_shared<Impl>()) {}

SlowQueryLog& SlowQueryLog::global() {
  static SlowQueryLog* instance = new SlowQueryLog();
  return *instance;
}

void SlowQueryLog::configure(double threshold_seconds, std::FILE* sink) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->owned_file != nullptr) {
    std::fclose(impl_->owned_file);
    impl_->owned_file = nullptr;
  }
  impl_->threshold_seconds.store(threshold_seconds, std::memory_order_relaxed);
  impl_->sink = sink;
}

bool SlowQueryLog::configure_file(double threshold_seconds, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->owned_file != nullptr) {
    std::fclose(impl_->owned_file);
    impl_->owned_file = nullptr;
  }
  if (f == nullptr) {
    impl_->threshold_seconds.store(0.0, std::memory_order_relaxed);
    impl_->sink = nullptr;
    return false;
  }
  impl_->threshold_seconds.store(threshold_seconds, std::memory_order_relaxed);
  impl_->owned_file = f;
  impl_->sink = f;
  return true;
}

double SlowQueryLog::threshold_seconds() const noexcept {
  return impl_->threshold_seconds.load(std::memory_order_relaxed);
}

std::uint64_t SlowQueryLog::logged() const noexcept {
  return impl_->logged.load(std::memory_order_relaxed);
}

std::string SlowQueryLog::format_record(const TraceRecord& record) {
  std::string line = "slow_query";
  line += strfmt(" id=%llu", static_cast<unsigned long long>(record.request_id));
  line += strfmt(" total_ms=%.3f", static_cast<double>(record.total_ns()) * 1e-6);
  line += " graph=";
  line += record.graph_id.empty() ? "-" : record.graph_id;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    const std::uint64_t ns = record.stage_ns(stage);
    if (ns == 0) continue;
    line += strfmt(" %s_ms=%.3f", stage_name(stage), static_cast<double>(ns) * 1e-6);
  }
  for (const auto& [key, value] : record.annotations) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  if (record.cache_hit) line += " cache_hit=1";
  if (record.error) line += " error=1";
  if (record.truncated) line += " truncated=1";
  line += " query=\"";
  for (const char c : record.query_text) {
    if (c == '\n' || c == '\r') {
      line += ' ';
    } else if (c == '"') {
      line += '\'';
    } else {
      line += c;
    }
  }
  line += '"';
  return line;
}

void SlowQueryLog::maybe_log(const TraceRecord& record) {
  // Lock-free bail-outs: the log is usually disabled or the request fast.
  const double threshold = impl_->threshold_seconds.load(std::memory_order_relaxed);
  if (threshold <= 0.0) return;
  if (static_cast<double>(record.total_ns()) * 1e-9 < threshold) return;
  const std::string line = format_record(record);
  {
    // The lock covers the write so interleaved slow queries from concurrent
    // connections stay one-per-line, and pins the sink against a
    // concurrent reconfigure closing it mid-write.
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->threshold_seconds.load(std::memory_order_relaxed) <= 0.0) return;
    std::FILE* out = impl_->sink != nullptr ? impl_->sink : stderr;
    std::fputs(line.c_str(), out);
    std::fputc('\n', out);
    std::fflush(out);
  }
  impl_->logged.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace c3::obs
