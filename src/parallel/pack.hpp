// Parallel packing (filter / compaction).
//
// pack_if and pack_index compact the elements (or indices) satisfying a
// predicate into a dense output array, preserving order. This is the standard
// scan-based PRAM compaction: per-block counts, a scan over block counts,
// then a parallel scatter. O(n) work, O(n/p + p) depth. The ordering
// algorithms use these to peel vertex/edge sets in rounds (Lemma 4.2,
// Algorithm 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel.hpp"

namespace c3 {

namespace detail {

template <typename Emit, typename Pred>
void pack_blocked(std::size_t n, Pred&& keep, Emit&& emit_block, std::size_t& out_size,
                  std::vector<std::size_t>& block_offset, std::size_t& blocks,
                  std::size_t& block_size) {
  const int workers = num_workers();
  const std::size_t min_block = 4096;
  blocks = (workers <= 1 || n < 2 * min_block)
               ? 1
               : std::min<std::size_t>(static_cast<std::size_t>(workers) * 4,
                                       (n + min_block - 1) / min_block);
  block_size = (n + blocks - 1) / blocks;
  block_offset.assign(blocks + 1, 0);
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) count += keep(i) ? 1 : 0;
        block_offset[b + 1] = count;
      },
      1);
  for (std::size_t b = 0; b < blocks; ++b) block_offset[b + 1] += block_offset[b];
  out_size = block_offset[blocks];
  emit_block();
}

}  // namespace detail

/// Returns the indices i in [0, n) with keep(i), in ascending order.
template <typename Index = std::uint32_t, typename Pred>
[[nodiscard]] std::vector<Index> pack_index(std::size_t n, Pred&& keep) {
  std::vector<Index> out;
  std::vector<std::size_t> block_offset;
  std::size_t out_size = 0, blocks = 0, block_size = 0;
  detail::pack_blocked(
      n, keep, [&] { out.resize(out_size); }, out_size, block_offset, blocks, block_size);
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        std::size_t pos = block_offset[b];
        for (std::size_t i = lo; i < hi; ++i)
          if (keep(i)) out[pos++] = static_cast<Index>(i);
      },
      1);
  return out;
}

/// Returns the elements of `in` whose index satisfies keep(i), in order.
template <typename T, typename Pred>
[[nodiscard]] std::vector<T> pack_if(std::span<const T> in, Pred&& keep) {
  std::vector<T> out;
  std::vector<std::size_t> block_offset;
  std::size_t out_size = 0, blocks = 0, block_size = 0;
  detail::pack_blocked(
      in.size(), keep, [&] { out.resize(out_size); }, out_size, block_offset, blocks, block_size);
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(in.size(), lo + block_size);
        std::size_t pos = block_offset[b];
        for (std::size_t i = lo; i < hi; ++i)
          if (keep(i)) out[pos++] = in[i];
      },
      1);
  return out;
}

}  // namespace c3
