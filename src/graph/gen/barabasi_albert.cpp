#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/rng.hpp"

namespace c3 {

// Preferential attachment via the repeated-endpoints trick: sampling a
// uniform position of the endpoint log picks vertices proportionally to
// their current degree. Sequential by nature (each vertex depends on the
// graph so far) but linear-time.
Graph barabasi_albert(node_t n, node_t attach, std::uint64_t seed) {
  if (n < 2) return build_graph(EdgeList{}, n);
  if (attach == 0) attach = 1;
  if (attach >= n) attach = n - 1;

  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  std::vector<node_t> endpoint_log;
  endpoint_log.reserve(2 * static_cast<std::size_t>(n) * attach);

  // Seed core: a small clique over the first attach+1 vertices.
  for (node_t u = 0; u <= attach; ++u) {
    for (node_t v = u + 1; v <= attach; ++v) {
      edges.push_back(Edge{u, v});
      endpoint_log.push_back(u);
      endpoint_log.push_back(v);
    }
  }

  for (node_t v = attach + 1; v < n; ++v) {
    for (node_t j = 0; j < attach; ++j) {
      const node_t target =
          endpoint_log[static_cast<std::size_t>(rng.next_below(endpoint_log.size()))];
      // Parallel edges are merged by the builder; that mildly biases toward
      // distinct high-degree targets, which is fine for a topology stand-in.
      edges.push_back(Edge{v, target});
      endpoint_log.push_back(v);
      endpoint_log.push_back(target);
    }
  }
  return build_graph(edges, n);
}

// Internet-topology stand-in (Tech-As-Skitter): preferential-attachment
// backbone (hubs, tree-like periphery) plus a small triadic-closure pass,
// matching the low-triangle profile of AS-level topology (Table 2:
// Skitter, T/E 2.6, s 111).
Graph topology_like(node_t n, node_t attach, double closure_fraction, std::uint64_t seed) {
  const Graph backbone = barabasi_albert(n, attach, seed);
  EdgeList edges(backbone.endpoints().begin(), backbone.endpoints().end());
  Xoshiro256 rng = Xoshiro256(seed).fork(0x70B0);
  const auto closure_edges =
      static_cast<edge_t>(static_cast<double>(backbone.num_edges()) * closure_fraction);
  for (edge_t i = 0; i < closure_edges; ++i) {
    const auto v = static_cast<node_t>(rng.next_below(n));
    const auto nbrs = backbone.neighbors(v);
    if (nbrs.size() < 2) continue;
    const node_t a = nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
    const node_t b = nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
    if (a != b) edges.push_back(Edge{a, b});
  }
  return build_graph(edges, n);
}

}  // namespace c3
