// AnswerCache — a sharded LRU of completed Answers, keyed by what was asked,
// not how it was run.
//
// A serving front end sees the same questions over and over: the catalog is
// small, the popular graphs are few, and most traffic is a handful of counts
// and probes per graph. Every one of those answers is immutable — a prepared
// graph never changes under a serving process — so the second identical
// question should cost a hash lookup, not a search.
//
// The key has two parts:
//
//   * an engine fingerprint — a hash of the graph id, the graph's shape, and
//     every CliqueOptions field that determines the artifacts (the same
//     fields a snapshot refuses to load over when mismatched). Two engines
//     with the same fingerprint answer questions identically, so cached
//     answers survive re-registration of the same snapshot and never leak
//     across differently-prepared graphs;
//
//   * the canonical query text — format_query(canonical_question(q)):
//     execution-only options (workers=, budget=, the cancel token) are
//     normalized out, result-shaping options (limit=, witness=) stay. A
//     "count 5 workers=8" and a "count 5 budget=2" hit the same entry.
//
// Truncated answers are never cached: a budget- or cancel-cut answer is a
// valid partial result for the query that ran it, but it is not *the* answer
// to the canonical question, and serving it from cache would silently
// downgrade later unbudgeted queries. insert() refuses them.
//
// Sharding: the key hash picks one of N independent LRU shards, each behind
// its own mutex, so concurrent connections rarely contend. Counters (hits,
// misses, evictions, insertions) are process-wide atomics, surfaced through
// the server's `stats` admin command.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "clique/query.hpp"

namespace c3 {

class PreparedGraph;

/// Point-in-time counter snapshot (monotonic except `entries`).
struct AnswerCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  /// Subset of `hits` served across keys: a `count k` answered from a
  /// cached spectrum (see the query-aware lookup overload).
  std::uint64_t cross_k_hits = 0;
  std::size_t entries = 0;
};

/// Identity of one serving engine for cache keying: graph id + shape +
/// artifact-determining options, folded into 64 bits (FNV-1a). Cheap enough
/// to compute per registration; stable across processes for snapshot-backed
/// graphs opened with the same id.
[[nodiscard]] std::uint64_t engine_fingerprint(std::string_view graph_id,
                                               const PreparedGraph& engine);

class AnswerCache {
 public:
  /// Full cache key: engine fingerprint + canonical query text.
  struct Key {
    std::uint64_t fingerprint = 0;
    std::string text;
  };

  /// `capacity` bounds the entry count: it is rounded up to a whole number
  /// of entries per shard (ceil(capacity/shards) each), so the exact total
  /// bound is that rounded value times the shard count. capacity 0 means
  /// the cache stores nothing — every lookup is a miss, inserts are
  /// dropped; an off switch that keeps the counters alive.
  explicit AnswerCache(std::size_t capacity, std::size_t shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// The canonical key for `q` against the engine identified by
  /// `fingerprint`: execution-only options normalized out (see
  /// canonical_question), so every phrasing of the same question maps to one
  /// entry.
  [[nodiscard]] static Key make_key(std::uint64_t fingerprint, const Query& q);

  /// The cached answer for `key`, refreshing its LRU position — or nullopt
  /// (counted as hit/miss respectively).
  [[nodiscard]] std::optional<Answer> lookup(const Key& key);

  /// As lookup(), plus cross-k memoization: a missing `count k` is served
  /// from this fingerprint's cached spectrum when that spectrum pins the
  /// value down — k <= its omega (the count is counts[k]) or the spectrum
  /// is complete (ran to the clique number, so any larger k counts 0). A
  /// spectrum clamped by kmax == omega proves nothing beyond omega and is
  /// not extrapolated. Served this way counts as a hit (and cross_k_hits),
  /// never as a miss; the synthesized answer carries count + stats.cliques
  /// only, exactly what a Count from the engine would pin down.
  [[nodiscard]] std::optional<Answer> lookup(const Key& key, const Query& query);

  /// Caches a *complete* answer under `key`, evicting the shard's least
  /// recently used entries over capacity. Returns false without storing when
  /// the answer is truncated (partial results must never be replayed as the
  /// answer) or the cache has no capacity. Re-inserting an existing key
  /// refreshes the stored answer.
  bool insert(const Key& key, const Answer& answer);

  [[nodiscard]] AnswerCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Shard {
    std::mutex mutex;
    /// Most recently used at the front; each node owns (key-string, answer).
    std::list<std::pair<std::string, Answer>> lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, Answer>>::iterator>
        index;  // views into the list nodes' key strings
  };

  /// What a cached spectrum proves about this fingerprint's counts: where
  /// to fetch it, how far it reaches, and whether it ran to the clique
  /// number (complete) or was clamped by kmax at omega (not extrapolable).
  struct SpectrumNote {
    std::string text;  // the spectrum entry's canonical key text
    node_t omega = 0;
    bool complete = false;
  };

  [[nodiscard]] Shard& shard_for(const std::string& flat, std::uint64_t fingerprint);
  [[nodiscard]] static std::string flatten(const Key& key);
  /// LRU-refreshing fetch without touching the hit/miss counters — the
  /// public lookups layer their accounting on top.
  [[nodiscard]] std::optional<Answer> find(const Key& key);
  void note_spectrum(const Key& key, const Answer& answer);

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex spectrum_mutex_;
  std::unordered_map<std::uint64_t, SpectrumNote> spectrum_index_;  // by fingerprint
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> cross_k_hits_{0};
};

}  // namespace c3
