#!/usr/bin/env bash
# Tier-1 verification matrix, runnable locally or from CI:
#   1. Release + OpenMP            (the configuration benchmarks run in)
#   2. Debug + ASan/UBSan          (memory + UB coverage for the parallel paths)
#   3. Release, OpenMP disabled    (the exactly-deterministic serial fallback)
#   4. TSan, OpenMP disabled       (data-race coverage for the concurrent
#      query engine: clique + parallel + snapshot + service + net labels
#      only. OpenMP stays off because libgomp is not TSan-instrumented and
#      would drown the report in false positives; the concurrency under test
#      comes from std::threads.)
#
# Each config runs the full ctest suite (tsan: the clique|parallel labels):
#   cmake -B <dir> -S . && cmake --build <dir> -j && ctest --test-dir <dir>
#
# Usage: ./ci.sh [config ...]   with configs from: release asan serial tsan
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

# Prefer Ninja when available (CI installs it).
if command -v ninja >/dev/null 2>&1; then
  export CMAKE_GENERATOR="${CMAKE_GENERATOR:-Ninja}"
fi
configs=("$@")
[ ${#configs[@]} -eq 0 ] && configs=(release asan serial tsan)

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  local label_args=()
  if [ "${name}" = "tsan" ]; then
    # The race-sensitive surfaces: the concurrent engine/batch/stream suites,
    # the parallel substrate, concurrent queries over snapshot-loaded
    # engines, the multi-graph CliqueService, the TCP front end (answer
    # cache + admission + server threads), the telemetry layer the hot
    # paths write into (sharded counters, trace ring, slow-query log), and
    # the scatter-gather sharded engine's parallel sub-queries.
    label_args=(-L "clique|parallel|snapshot|service|net|obs|shard")
  fi
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" ${label_args[@]+"${label_args[@]}"}
  if [ "${name}" = "release" ]; then
    # The whole suite again with the bit-kernel dispatch pinned to scalar:
    # proves every result is backend-independent end to end, and keeps the
    # portable fallback a first-class, fully-tested configuration. (The
    # vector backends themselves run under ASan/UBSan/TSan via the default
    # dispatch in the other configs plus the per-backend parity tests.)
    echo "==== [${name}] ctest (C3_KERNEL=scalar) ===="
    C3_KERNEL=scalar ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
    # Perf-trajectory smoke: a small prepared k-sweep per algorithm. Emits
    # BENCH_pr2.json (prepare/search seconds + counts) and fails on any
    # cross-algorithm count mismatch. A missing binary is an error, not a
    # skip — otherwise the gate would silently stop existing.
    echo "==== [${name}] bench smoke (prepared sweep) ===="
    if [ ! -x "${dir}/bench/bench_prepared_sweep" ]; then
      echo "bench_prepared_sweep not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_prepared_sweep" --out BENCH_pr2.json
    # Concurrency smoke: the mixed query set through the batch executor vs
    # one-at-a-time, cross-checked result by result. Emits BENCH_pr3.json
    # (sequential vs batch seconds + speedup per stand-in).
    echo "==== [${name}] bench smoke (concurrent queries) ===="
    if [ ! -x "${dir}/bench/bench_concurrent_queries" ]; then
      echo "bench_concurrent_queries not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_concurrent_queries" --out BENCH_pr3.json
    # Snapshot smoke: cold prepare vs mmap open per smoke graph, counts
    # cross-checked cold vs loaded. Emits BENCH_pr4.json (open/prepare
    # speedup — the acceptance bar is >= 10x on the largest graph).
    echo "==== [${name}] bench smoke (snapshot) ===="
    if [ ! -x "${dir}/bench/bench_snapshot" ]; then
      echo "bench_snapshot not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_snapshot" --out BENCH_pr4.json
    # Service smoke: the same query mix through the two-graph catalog
    # (in-memory + snapshot) sequentially vs batch vs streaming, answers
    # cross-checked mode by mode. Emits BENCH_pr5.json.
    echo "==== [${name}] bench smoke (service) ===="
    if [ ! -x "${dir}/bench/bench_service" ]; then
      echo "bench_service not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_service" --out BENCH_pr5.json
    # Server smoke: the request mix over loopback TCP, N concurrent clients,
    # cold cache vs warm cache, every wire answer cross-checked against a
    # direct service run. Emits BENCH_pr6.json.
    echo "==== [${name}] bench smoke (server) ===="
    if [ ! -x "${dir}/bench/bench_server" ]; then
      echo "bench_server not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_server" --out BENCH_pr6.json
    # Kernel smoke: the fused intersect kernels per backend (micro) and the
    # smoke graphs counted scalar vs host-vector per algorithm (end-to-end),
    # counts cross-checked backend vs backend. Emits BENCH_pr7.json.
    echo "==== [${name}] bench smoke (kernels) ===="
    if [ ! -x "${dir}/bench/bench_kernels" ]; then
      echo "bench_kernels not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_kernels" --out BENCH_pr7.json
    # Observability smoke: exposition syntax + counter monotonicity across
    # scrapes + instrumented-vs-dark hot-path overhead (budget 2%, min of
    # reps). Emits BENCH_pr9.json.
    echo "==== [${name}] bench smoke (observability) ===="
    if [ ! -x "${dir}/bench/bench_obs" ]; then
      echo "bench_obs not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_obs" --out BENCH_pr9.json --reps 7
    # Shard smoke: 1/2/4-shard ablation per smoke graph (in-memory and
    # manifest-opened), every counting kind cross-checked against the
    # unsharded engine. Emits BENCH_pr10.json.
    echo "==== [${name}] bench smoke (shard) ===="
    if [ ! -x "${dir}/bench/bench_shard" ]; then
      echo "bench_shard not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_shard" --out BENCH_pr10.json
    # Wire-level metrics smoke: a real c3serve on an ephemeral port, queries
    # driven through the socket, `metrics` scraped twice and checked for
    # valid exposition + monotonically increasing request counters.
    echo "==== [${name}] c3serve metrics smoke ===="
    metrics_smoke "${dir}"
  fi
}

# Starts c3serve --demo on an ephemeral port, drives queries over /dev/tcp,
# scrapes `metrics` twice, and validates the exposition: the serving counters
# must be present, parse as numbers, and increase between the scrapes.
metrics_smoke() {
  local dir="$1"
  if [ ! -x "${dir}/examples/c3serve" ]; then
    echo "c3serve not built" >&2
    exit 1
  fi
  local log port pid
  log="$(mktemp)"
  "${dir}/examples/c3serve" --demo --port 0 >"${log}" 2>&1 &
  pid=$!
  trap 'kill "${pid}" 2>/dev/null || true' RETURN
  # The port line is printed and flushed before the accept loop starts.
  for _ in $(seq 1 50); do
    port="$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "${log}" | head -1)"
    [ -n "${port}" ] && break
    kill -0 "${pid}" 2>/dev/null || { echo "c3serve exited early:" >&2; cat "${log}" >&2; exit 1; }
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "c3serve never reported a port:" >&2; cat "${log}" >&2; exit 1
  fi

  # One connection per step via /dev/tcp (no nc dependency). `metrics` ends
  # with "# EOF"; queries answer one line each.
  wire() {  # wire <request...> — sends each argument as one request line
    local req out
    exec 3<>"/dev/tcp/127.0.0.1/${port}"
    for req in "$@"; do printf '%s\n' "${req}" >&3; done
    printf 'quit\n' >&3
    out="$(cat <&3)"
    exec 3<&- 3>&-
    printf '%s\n' "${out}"
  }
  requests_sample() {  # total c3_requests_total across instances in a scrape
    printf '%s\n' "$1" | awk '/^c3_requests_total/ { sum += $NF } END { printf "%d", sum }'
  }

  local scrape1 scrape2 r1 r2
  wire "social count 4" "er hasclique 3" "social spectrum 5" >/dev/null
  # The connection also carries the closing "bye"; the exposition proper
  # ends at "# EOF".
  scrape1="$(wire "metrics" | sed -n '1,/^# EOF$/p')"
  printf '%s\n' "${scrape1}" | grep -q '^# EOF$' || {
    echo "metrics scrape missing # EOF" >&2; exit 1; }
  printf '%s\n' "${scrape1}" | grep -q '^# TYPE c3_requests_total counter$' || {
    echo "metrics scrape missing c3_requests_total TYPE line" >&2; exit 1; }
  printf '%s\n' "${scrape1}" | grep -q '^c3_stage_seconds{stage="search",quantile="0.5"}' || {
    echo "metrics scrape missing per-stage latency summaries" >&2; exit 1; }
  # Every sample line must end in a number (integer or float, possibly
  # negative or exponent-form).
  if printf '%s\n' "${scrape1}" | grep -v '^#' | grep -qv ' -\?[0-9.][0-9.eE+-]*$'; then
    echo "metrics scrape has an unparseable sample line:" >&2
    printf '%s\n' "${scrape1}" | grep -v '^#' | grep -v ' -\?[0-9.][0-9.eE+-]*$' >&2
    exit 1
  fi
  wire "social count 5" "er count 4" >/dev/null
  scrape2="$(wire "metrics" | sed -n '1,/^# EOF$/p')"
  r1="$(requests_sample "${scrape1}")"
  r2="$(requests_sample "${scrape2}")"
  if [ -z "${r1}" ] || [ -z "${r2}" ] || [ "${r2}" -le "${r1}" ]; then
    echo "c3_requests_total not monotonic across scrapes (${r1} -> ${r2})" >&2
    exit 1
  fi
  kill "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  rm -f "${log}"
  trap - RETURN
  echo "metrics smoke ok: requests ${r1} -> ${r2}"
}

for config in "${configs[@]}"; do
  case "${config}" in
    release) run_config release -DCMAKE_BUILD_TYPE=Release -DC3_WERROR=ON ;;
    asan)    run_config asan -DCMAKE_BUILD_TYPE=Debug -DC3_SANITIZE=ON -DC3_WERROR=ON ;;
    serial)  run_config serial -DCMAKE_BUILD_TYPE=Release -DC3_ENABLE_OPENMP=OFF -DC3_WERROR=ON ;;
    tsan)    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DC3_SANITIZE_THREAD=ON \
                        -DC3_ENABLE_OPENMP=OFF -DC3_WERROR=ON ;;
    *) echo "unknown config '${config}' (expected: release asan serial tsan)" >&2; exit 2 ;;
  esac
done

echo "==== all configs green ===="
