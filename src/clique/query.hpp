// The typed query surface: one Query/Answer pair covering every question the
// engine can answer.
//
// The engine grew three overlapping query surfaces — PreparedGraph's named
// methods, QueryBatch's internal variant, and c3tool's string-parsed query
// files. This header unifies them: a Query is a small value (kind + k/kmax +
// per-query options) that round-trips through text, an Answer is the typed
// result, and PreparedGraph::run(const Query&) is the single execution entry
// every other surface wraps. Serving layers (QueryBatch, QueryStream,
// CliqueService) schedule Queries and return Answers; the named methods and
// the batch's legacy BatchQuery/BatchResult remain as thin wrappers.
//
// Per-query resource control lives in QueryOptions:
//   * max_workers       — caps the query's internal parallelism without
//                         touching the process-global worker cap
//                         (parallel.hpp WorkerCapScope);
//   * budget_seconds /  — best-effort early termination: enumeration kinds
//     cancel               stop at the next poll point, Spectrum between
//                          k values, MaxClique between probes; a cut-short
//                          Answer has `truncated` set;
//   * result_limit      — List stops after this many materialized cliques;
//   * want_witness      — MaxClique/FindClique skip materializing a witness.
//
// Text form (one query per line; '#' starts a comment):
//   count K | list K | hasclique K | findclique K | vertexcounts K |
//   edgecounts K | spectrum [KMAX] | maxclique
// followed by zero or more options: workers=N, limit=N, budget=SECONDS,
// witness=0|1. parse_query rejects malformed input with a QueryParseError
// naming the offending token; format_query/format_answer produce the
// canonical text, so query files and server protocols share one grammar.
#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "clique/common.hpp"
#include "clique/spectrum.hpp"
#include "graph/types.hpp"

namespace c3 {

class PreparedGraph;

/// Every question the engine answers, as one sum type.
enum class QueryKind {
  Count,            ///< number of k-cliques
  List,             ///< the k-cliques themselves (bounded by result_limit)
  HasClique,        ///< does a k-clique exist?
  FindClique,       ///< some k-clique, if any
  PerVertexCounts,  ///< k-clique count per vertex
  PerEdgeCounts,    ///< k-clique count per edge
  Spectrum,         ///< counts for every k up to kmax (0 = clique number)
  MaxClique,        ///< a maximum clique and its size
};

/// Per-query resource control. Default-constructed options run the query
/// exactly like the engine's named methods: full worker pool, no deadline,
/// unbounded results.
struct QueryOptions {
  /// Caps this query's internal parallelism (0 = the full pool). Applied as
  /// a per-thread WorkerCapScope, so concurrent queries with different caps
  /// never race on the global worker count.
  int max_workers = 0;
  /// Best-effort wall-clock budget in seconds (0 = none). An expired query
  /// returns what it found so far with Answer::truncated set. Cost note: an
  /// active budget or cancel token makes Count/Spectrum count through the
  /// listing path (so the control can cut mid-enumeration), bypassing the
  /// algorithms' no-callback counting fast paths — attach one when early
  /// cut-off matters more than peak counting throughput.
  double budget_seconds = 0.0;
  /// List only: stop after this many cliques (0 = all). The answer is
  /// marked truncated only when a clique beyond the limit actually exists —
  /// a graph with exactly this many k-cliques lists completely.
  count_t result_limit = 0;
  /// MaxClique / FindClique: materialize the witness clique. Turned off,
  /// MaxClique reports only omega (what max_clique_size() needs) and
  /// FindClique degenerates to HasClique.
  bool want_witness = true;
  /// External stop token (not representable in text). A query observes a
  /// store of `true` at its next poll point and returns truncated.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// One typed query. `k` parameterizes the per-k kinds; `kmax` bounds a
/// Spectrum (0 = up to the clique number). Unused fields are ignored.
struct Query {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  int kmax = 0;
  QueryOptions opts;
};

/// One query's typed outcome. Which fields are meaningful depends on `kind`:
///   Count           -> count + stats
///   List            -> cliques + count (== cliques.size()) + stats
///   HasClique       -> found
///   FindClique      -> found + witness
///   PerVertexCounts / PerEdgeCounts -> per_counts + stats
///   Spectrum        -> spectrum + omega
///   MaxClique       -> omega + witness + found
/// `truncated` marks an answer cut short by result_limit, budget_seconds, or
/// the cancel token (its payload is a valid partial result). `seconds` is
/// the query's wall time inside run().
struct Answer {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  count_t count = 0;
  bool found = false;
  bool truncated = false;
  std::vector<node_t> witness;
  std::vector<std::vector<node_t>> cliques;
  std::vector<count_t> per_counts;
  CliqueSpectrum spectrum;
  node_t omega = 0;
  CliqueStats stats;
  double seconds = 0.0;
};

/// Parse failure: `token()` is the offending token (possibly empty for a
/// missing argument), `what()` the full message naming it.
class QueryParseError : public std::invalid_argument {
 public:
  QueryParseError(const std::string& message, std::string token)
      : std::invalid_argument(message), token_(std::move(token)) {}
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::string token_;
};

/// Parses one query line (grammar above; '#' comments stripped). Throws
/// QueryParseError on malformed input. The line must contain a query —
/// blank/comment-only lines are an error; use parse_query_file for files.
[[nodiscard]] Query parse_query(std::string_view line);

/// Parses a whole query file: one query per line, blank and comment-only
/// lines skipped. A QueryParseError from a bad line is rethrown with the
/// 1-based line number prepended to the message.
[[nodiscard]] std::vector<Query> parse_query_file(std::istream& in);

/// Canonical text of `q` — the parse_query round-trip partner. Options at
/// their defaults are omitted; the cancel token has no text form.
[[nodiscard]] std::string format_query(const Query& q);

/// One-line human/machine-readable rendering of an answer (the text a
/// line-oriented server or c3tool batch emits per query).
[[nodiscard]] std::string format_answer(const Answer& a);

/// Human-readable query-kind name (tool/bench output; also the grammar's
/// keyword for that kind).
[[nodiscard]] const char* query_kind_name(QueryKind kind) noexcept;

/// Whether answering `q` may touch the prepared artifacts. Trivial sizes
/// (k <= 2 everywhere, spectra clamped to kmax <= 2) are answered from the
/// graph alone, so schedulers must not trigger preparation for them.
[[nodiscard]] bool query_needs_artifacts(const Query& q) noexcept;

/// Work estimate for scheduling, in arbitrary units comparable across the
/// queries of one engine: roughly the number of elementary search steps the
/// query will perform, derived from k and the engine's *already built*
/// artifacts (max out-degree of the oriented DAG, largest community). Never
/// triggers preparation — before the artifacts exist it falls back to
/// graph-shape proxies, so estimates are cheap enough to run per query.
[[nodiscard]] double estimate_query_cost(const PreparedGraph& engine, const Query& q) noexcept;

/// Field-wise equality over the text-representable fields. The cancel token
/// is deliberately *excluded*: it has no text form and identifies an
/// execution, not a question — comparing it by identity made two textually
/// identical queries unequal, breaking cache keying and batch dedup. The
/// round-trip parse_query(format_query(q)) == q holds for every q, cancel
/// token or not.
[[nodiscard]] bool operator==(const QueryOptions& a, const QueryOptions& b) noexcept;
[[nodiscard]] bool operator==(const Query& a, const Query& b) noexcept;

/// `q` with the execution-only controls reset to defaults — the worker cap,
/// the wall-clock budget, the cancel token — leaving only the question being
/// asked (kind, k/kmax, and the result-shaping options limit/witness, which
/// change the answer's content). Two queries with equal canonical questions
/// ask for the same answer; format_query of the canonical question is the
/// text an answer cache keys on.
[[nodiscard]] Query canonical_question(const Query& q);

/// True when `a` and `b` ask for the same answer: canonical_question
/// equality, i.e. execution-only controls ignored, result-shaping options
/// compared.
[[nodiscard]] bool same_question(const Query& a, const Query& b) noexcept;

}  // namespace c3
