// Word-level bit manipulation helpers.
//
// The clique engine represents local subgraph adjacency as rows of 64-bit
// words (the paper's "boolean indicator tables", Section 2.2). These helpers
// implement the primitive operations that dominate the inner loops:
// masked intersections, population counts, range masks ("vertices ordered
// between u and v"), and set-bit iteration.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace c3::bits {

inline constexpr int kWordBits = 64;

/// Number of 64-bit words needed to hold `n` bits.
[[nodiscard]] constexpr std::size_t words_for(std::size_t n) noexcept {
  return (n + kWordBits - 1) / kWordBits;
}

[[nodiscard]] constexpr std::uint64_t bit_mask(std::size_t i) noexcept {
  return std::uint64_t{1} << (i % kWordBits);
}

[[nodiscard]] constexpr std::size_t word_index(std::size_t i) noexcept {
  return i / kWordBits;
}

constexpr void set_bit(std::uint64_t* words, std::size_t i) noexcept {
  words[word_index(i)] |= bit_mask(i);
}

constexpr void clear_bit(std::uint64_t* words, std::size_t i) noexcept {
  words[word_index(i)] &= ~bit_mask(i);
}

[[nodiscard]] constexpr bool test_bit(const std::uint64_t* words, std::size_t i) noexcept {
  return (words[word_index(i)] & bit_mask(i)) != 0;
}

/// Zeroes `nwords` words.
constexpr void clear_words(std::uint64_t* words, std::size_t nwords) noexcept {
  for (std::size_t w = 0; w < nwords; ++w) words[w] = 0;
}

/// dst = a & b over `nwords` words.
constexpr void and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t nwords) noexcept {
  for (std::size_t w = 0; w < nwords; ++w) dst[w] = a[w] & b[w];
}

/// dst &= a over `nwords` words.
constexpr void and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) noexcept {
  for (std::size_t w = 0; w < nwords; ++w) dst[w] &= a[w];
}

/// popcount(a) over `nwords` words.
[[nodiscard]] constexpr std::uint64_t popcount(const std::uint64_t* a, std::size_t nwords) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w]));
  return total;
}

/// popcount(a & b) over `nwords` words, without materializing the AND.
[[nodiscard]] constexpr std::uint64_t popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                                                   std::size_t nwords) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < nwords; ++w)
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  return total;
}

/// popcount(a & b & c) over `nwords` words.
[[nodiscard]] constexpr std::uint64_t popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                                                    const std::uint64_t* c,
                                                    std::size_t nwords) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < nwords; ++w)
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  return total;
}

/// Writes the mask of bits in the *exclusive* range (lo, hi) into `dst`
/// (i.e. bits lo+1 .. hi-1). This is the paper's "vertices ordered between
/// the endpoints of an edge" restricted to a bitset universe. `dst` must
/// hold `nwords` words; bits outside the range are zero.
constexpr void between_mask(std::uint64_t* dst, std::size_t lo, std::size_t hi,
                            std::size_t nwords) noexcept {
  clear_words(dst, nwords);
  if (hi <= lo + 1) return;
  const std::size_t first = lo + 1;   // inclusive
  const std::size_t last = hi - 1;    // inclusive
  const std::size_t wfirst = word_index(first);
  const std::size_t wlast = word_index(last);
  const std::uint64_t head = ~std::uint64_t{0} << (first % kWordBits);
  const std::uint64_t tail =
      (last % kWordBits) == 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << ((last % kWordBits) + 1)) - 1);
  if (wfirst == wlast) {
    dst[wfirst] = head & tail;
    return;
  }
  dst[wfirst] = head;
  for (std::size_t w = wfirst + 1; w < wlast; ++w) dst[w] = ~std::uint64_t{0};
  dst[wlast] = tail;
}

/// Sets the low `n` bits (a full candidate universe of size n).
constexpr void fill_prefix(std::uint64_t* dst, std::size_t n, std::size_t nwords) noexcept {
  const std::size_t full = n / kWordBits;
  for (std::size_t w = 0; w < full; ++w) dst[w] = ~std::uint64_t{0};
  for (std::size_t w = full; w < nwords; ++w) dst[w] = 0;
  if (n % kWordBits != 0) dst[full] = (std::uint64_t{1} << (n % kWordBits)) - 1;
}

/// Calls `f(i)` for every set bit i of `a`, in ascending order.
template <typename F>
constexpr void for_each_bit(const std::uint64_t* a, std::size_t nwords, F&& f) {
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t word = a[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      f(w * kWordBits + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
}

/// Calls `f(i)` for every set bit of `a & b`, ascending, without
/// materializing the intersection.
template <typename F>
constexpr void for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                                F&& f) {
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t word = a[w] & b[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      f(w * kWordBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

/// Fused masked-interval intersect+count: dst = a & b & mask restricted to
/// the *inclusive* bit range [lo, hi], zero outside; returns popcount(dst).
/// This is one recursion step of Algorithm 2 (I' <- I ∩ C(e), where the
/// community of the pair is the common neighborhood restricted to vertices
/// ordered strictly between the endpoints) collapsed into a single pass.
/// When hi < lo the destination is cleared and the count is 0. The scalar
/// reference for the vector backends in util/bitkernels.hpp.
constexpr std::uint64_t intersect_interval(const std::uint64_t* a, const std::uint64_t* b,
                                           const std::uint64_t* mask, std::uint64_t* dst,
                                           std::size_t nwords, std::size_t lo,
                                           std::size_t hi) noexcept {
  clear_words(dst, nwords);
  if (hi < lo) return 0;
  const std::size_t wlo = word_index(lo);
  const std::size_t whi = word_index(hi);
  const std::uint64_t head = ~std::uint64_t{0} << (lo % kWordBits);
  const std::uint64_t tail =
      (hi % kWordBits) == 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << ((hi % kWordBits) + 1)) - 1);
  std::uint64_t count = 0;
  for (std::size_t w = wlo; w <= whi; ++w) {
    std::uint64_t m = a[w] & b[w] & mask[w];
    if (w == wlo) m &= head;
    if (w == whi) m &= tail;
    dst[w] = m;
    count += static_cast<std::uint64_t>(std::popcount(m));
  }
  return count;
}

/// Fused suffix intersect+count: dst = a & mask restricted to bits strictly
/// greater than `x`, zero at and below; returns popcount(dst). One step of
/// the vertex-growth recursions (candidates after x adjacent to x). The
/// scalar reference for the vector backends in util/bitkernels.hpp.
constexpr std::uint64_t intersect_above(const std::uint64_t* a, const std::uint64_t* mask,
                                        std::uint64_t* dst, std::size_t nwords,
                                        std::size_t x) noexcept {
  const std::size_t wx = word_index(x);
  for (std::size_t w = 0; w < wx; ++w) dst[w] = 0;
  const std::uint64_t keep =
      (x % kWordBits) == 63 ? 0 : ~std::uint64_t{0} << ((x % kWordBits) + 1);
  std::uint64_t count = 0;
  dst[wx] = a[wx] & mask[wx] & keep;
  count += static_cast<std::uint64_t>(std::popcount(dst[wx]));
  for (std::size_t w = wx + 1; w < nwords; ++w) {
    dst[w] = a[w] & mask[w];
    count += static_cast<std::uint64_t>(std::popcount(dst[w]));
  }
  return count;
}

}  // namespace c3::bits
