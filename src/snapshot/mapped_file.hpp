// Read-only file mapping for the snapshot loader.
//
// On POSIX this is mmap(PROT_READ, MAP_PRIVATE): opening a multi-GB snapshot
// is O(1) — pages fault in on first touch and are shared, clean, and
// evictable across every process serving the same file. On platforms without
// mmap the file is read into a heap buffer instead (correct, not O(1)); the
// rest of the subsystem never sees the difference.
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>

namespace c3::snapshot {

class MappedFile {
 public:
  MappedFile() = default;

  /// Maps `path` read-only. Throws std::runtime_error on any failure (the
  /// message names the path and the failing operation).
  [[nodiscard]] static MappedFile map_readonly(const std::filesystem::path& path);

  /// Reads `path` into a heap buffer instead of mapping it — the fallback
  /// platforms without mmap always take, callable directly where a private
  /// copy is wanted (or to test the fallback path). is_mapped() is false;
  /// the page-granular warm-up hints (prefault, lock_memory) become
  /// explicit no-ops: madvise/mlock assume a page-aligned mapping, and a
  /// heap buffer is already resident anyway.
  [[nodiscard]] static MappedFile read_heap(const std::filesystem::path& path);

  /// A non-owning view over externally-owned bytes — the shape a sharded
  /// manifest hands each embedded snapshot (a subrange of the manifest's one
  /// mapping). Nothing is unmapped or freed on destruction; the caller must
  /// keep `data` alive for the view's lifetime. is_mapped() is false and the
  /// warm-up hints are no-ops (the owner warms the whole mapping).
  [[nodiscard]] static MappedFile view(const std::byte* data, std::size_t size) noexcept;

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the contents are an actual mmap (false: heap fallback).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

  /// Warm-up hint: asks the kernel to read the whole mapping ahead
  /// (madvise WILLNEED), so first-touch page faults hit the page cache
  /// instead of the disk. Best-effort; a no-op for the heap fallback (its
  /// pages are already resident) and on platforms without madvise.
  void prefault() const noexcept;

  /// Pins the mapping into RAM (mlock), so serving never takes a major
  /// fault — at the price of unevictable memory. Best-effort: returns false
  /// when unsupported or refused (e.g. RLIMIT_MEMLOCK), which callers
  /// should treat as a degraded warm-up, not an error. A no-op returning
  /// false for the heap fallback — mlock wants a page-aligned mapping, and
  /// heap pages need no pinning to avoid major faults.
  [[nodiscard]] bool lock_memory() const noexcept;

 private:
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                    // owns an mmap region
  std::unique_ptr<std::byte[]> heap_;      // owns the fallback buffer
};

}  // namespace c3::snapshot
