// Tests for the edge-community construction (Algorithm 1's preprocessing).
#include "triangle/communities.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/gen/paper_examples.hpp"
#include "triangle/triangle_count.hpp"

namespace c3 {
namespace {

Digraph orient_by_id(const Graph& g) {
  std::vector<node_t> order(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) order[v] = v;
  return Digraph::orient(g, order);
}

TEST(Communities, TotalSizeEqualsTriangleCount) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = social_like(300, 2200, 0.4, seed);
    const Digraph dag = orient_by_id(g);
    const EdgeCommunities comms = EdgeCommunities::build(dag);
    EXPECT_EQ(comms.total_size(), count_triangles(dag)) << "seed " << seed;
    EXPECT_EQ(comms.num_edges(), dag.num_arcs());
  }
}

TEST(Communities, MembersSortedStrictlyBetweenEndpointsAndAdjacent) {
  const Graph g = erdos_renyi(80, 600, 5);
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  for (edge_t e = 0; e < dag.num_arcs(); ++e) {
    const node_t u = dag.arc_source(e);
    const node_t v = dag.arc_target(e);
    const auto members = comms.members(e);
    ASSERT_TRUE(std::is_sorted(members.begin(), members.end()));
    ASSERT_TRUE(std::adjacent_find(members.begin(), members.end()) == members.end());
    for (const node_t w : members) {
      // Community = N+(u) ∩ N-(v): ordered strictly between the endpoints
      // and adjacent to both.
      ASSERT_GT(w, u);
      ASSERT_LT(w, v);
      ASSERT_TRUE(dag.has_arc(u, w));
      ASSERT_TRUE(dag.has_arc(w, v));
    }
  }
}

TEST(Communities, MatchesBruteForceIntersection) {
  const Graph g = erdos_renyi(50, 300, 6);
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  for (edge_t e = 0; e < dag.num_arcs(); ++e) {
    const node_t u = dag.arc_source(e);
    const node_t v = dag.arc_target(e);
    std::vector<node_t> expect;
    for (node_t w = u + 1; w < v; ++w) {
      if (dag.has_arc(u, w) && dag.has_arc(w, v)) expect.push_back(w);
    }
    const auto members = comms.members(e);
    ASSERT_EQ(std::vector<node_t>(members.begin(), members.end()), expect) << "edge " << e;
  }
}

TEST(Communities, Figure1CommunityOfSupportingEdge) {
  // Figure 1: in K6 the edge {v1, v2}... but under the id orientation the
  // supporting edge of the whole clique is (v1, v6), whose community is all
  // four middle vertices.
  const Graph g = figure1_graph();
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  const edge_t e16 = dag.arc_id(0, 5);
  ASSERT_NE(e16, static_cast<edge_t>(-1));
  const auto members = comms.members(e16);
  EXPECT_EQ(std::vector<node_t>(members.begin(), members.end()),
            (std::vector<node_t>{1, 2, 3, 4}));
}

TEST(Communities, Figure3OnlyOneEdgeSupportsSixClique) {
  // Figure 3(a): searching for a 6-clique (k-2 = 4), only edge (v1, v6) has
  // a community of size >= 4.
  const Graph g = figure2_graph();
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  int qualifying = 0;
  for (edge_t e = 0; e < dag.num_arcs(); ++e) {
    if (comms.size(e) >= 4) {
      ++qualifying;
      EXPECT_EQ(dag.arc_source(e), 0u);
      EXPECT_EQ(dag.arc_target(e), 5u);
    }
  }
  EXPECT_EQ(qualifying, 1);
}

TEST(Communities, MaxSizeIsGamma) {
  const Graph g = complete_graph(9);
  const EdgeCommunities comms = EdgeCommunities::build(orient_by_id(g));
  // Largest community in K9 under any total order: the (first,last) edge
  // holds all 7 middle vertices.
  EXPECT_EQ(comms.max_size(), 7u);
}

TEST(Communities, EmptyGraph) {
  const EdgeCommunities comms = EdgeCommunities::build(Digraph{});
  EXPECT_EQ(comms.num_edges(), 0u);
  EXPECT_EQ(comms.total_size(), 0u);
  EXPECT_EQ(comms.max_size(), 0u);
}

}  // namespace
}  // namespace c3
