// Reference k-clique enumerator for testing.
//
// Straightforward sequential backtracking by vertex id with sorted-vector
// intersections; no orientation tricks, no pruning beyond candidate-set
// size. Exponential in general — use only on small graphs. Every other
// algorithm in the library is validated against this one.
#pragma once

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

/// Counts all k-cliques by exhaustive backtracking.
[[nodiscard]] count_t brute_force_count(const Graph& g, int k);

/// Lists all k-cliques (ascending vertex order within each clique).
/// Returns the number reported; stops early when the callback returns false.
count_t brute_force_list(const Graph& g, int k, const CliqueCallback& callback);

}  // namespace c3
