#include "clique/c3list.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "graph/digraph.hpp"
#include "clique/order_util.hpp"
#include "parallel/pack.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"
#include "triangle/communities.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Per-worker state reused across top-level edges.
struct Worker {
  LocalGraph lg;
  SearchContext ctx;
  LocalCounters ctr;
  std::vector<node_t> member_orig;  // local id -> original vertex id (listing)
  count_t count = 0;
};

/// Trivial clique sizes that need no search. k <= 0 -> none; k == 1 ->
/// vertices; k == 2 -> edges.
bool trivial_k(const Graph& g, int k, const CliqueCallback* callback, CliqueResult& out) {
  if (k > 2) return false;
  if (k <= 0) return true;
  if (k == 1) {
    out.count = g.num_nodes();
    if (callback != nullptr) {
      out.count = 0;
      for (node_t v = 0; v < g.num_nodes(); ++v) {
        const node_t clique[] = {v};
        ++out.count;
        if (!(*callback)(clique)) break;
      }
    }
    return true;
  }
  out.count = g.num_edges();
  if (callback != nullptr) {
    out.count = 0;
    for (const Edge& e : g.endpoints()) {
      const node_t clique[] = {e.u, e.v};
      ++out.count;
      if (!(*callback)(clique)) break;
    }
  }
  return true;
}

CliqueResult run(const Graph& g, int k, const CliqueCallback* callback,
                 const CliqueOptions& opts) {
  CliqueResult result;
  if (trivial_k(g, k, callback, result)) return result;

  WallTimer prep_timer;

  // Step 0 (Section 4): the total vertex order — exact degeneracy by
  // default, as in the paper's own evaluation (Appendix B).
  const std::vector<node_t> order =
      make_vertex_order(g, opts.vertex_order, opts.eps, VertexOrderKind::ExactDegeneracy, opts.order_seed);
  const Digraph dag = Digraph::orient(g, order);
  result.stats.order_quality = dag.max_out_degree();

  // Algorithm 1, line 1: build the communities and sort them.
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  result.stats.gamma = comms.max_size();
  result.stats.preprocess_seconds = prep_timer.seconds();

  WallTimer search_timer;
  // Algorithm 1, line 2: all edges with at least k-2 triangles.
  const auto needed = static_cast<node_t>(k - 2);
  const std::vector<edge_t> tasks = pack_index<edge_t>(
      dag.num_arcs(), [&](std::size_t e) { return comms.size(static_cast<edge_t>(e)) >= needed; });
  result.stats.top_level_tasks = tasks.size();

  PerWorker<Worker> workers;
  std::atomic<bool> stop{false};

  parallel_for_dynamic(
      0, tasks.size(),
      [&](std::size_t t) {
        if (stop.load(std::memory_order_relaxed)) return;
        Worker& w = workers.local();
        const edge_t e = tasks[t];
        const auto members = comms.members(e);

        // k = 3 counting needs no adjacency at all: every community member
        // closes a triangle with the supporting edge.
        if (k == 3 && callback == nullptr) {
          w.count += members.size();
          ++w.ctr.recursive_calls;
          w.ctr.leaf_work += members.size();
          return;
        }

        // Rename C(e) to consecutive integers and build the indicator-table
        // adjacency of Dag[C(e)] (Section 2.2 preprocessing).
        build_local_graph(dag, members, w.lg);

        w.ctx.lg = &w.lg;
        w.ctx.prune = opts.distance_pruning;
        w.ctx.ctr = &w.ctr;
        w.ctx.callback = callback;
        if (callback != nullptr) {
          w.member_orig.resize(members.size());
          for (std::size_t i = 0; i < members.size(); ++i)
            w.member_orig[i] = dag.original_id(members[i]);
          w.ctx.member_to_orig = w.member_orig.data();
          w.ctx.clique_stack.clear();
          w.ctx.clique_stack.push_back(dag.original_id(dag.arc_source(e)));
          w.ctx.clique_stack.push_back(dag.original_id(dag.arc_target(e)));
        }

        // Algorithm 1, line 3: recurse on the community with c = k - 2.
        w.count += search_cliques_all(w.ctx, k - 2, opts.triangle_growth);
        if (w.ctx.stopped) stop.store(true, std::memory_order_relaxed);
      },
      1);

  for (std::size_t i = 0; i < workers.size(); ++i) {
    result.count += workers.slot(i).count;
    workers.slot(i).ctr.merge_into(result.stats);
  }
  result.stats.cliques = result.count;
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

}  // namespace

CliqueResult c3list_count(const Graph& g, int k, const CliqueOptions& opts) {
  return run(g, k, nullptr, opts);
}

CliqueResult c3list_list(const Graph& g, int k, const CliqueCallback& callback,
                         const CliqueOptions& opts) {
  return run(g, k, &callback, opts);
}

}  // namespace c3
