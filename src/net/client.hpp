// LineClient — a blocking client for the c3serve line protocol, used by the
// loopback tests, bench_server, and any tool that wants to script a server.
// One request line in, one response line out; no pipelining smarts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace c3::net {

class LineClient {
 public:
  /// Connects (throws std::runtime_error on refusal/timeout).
  /// `max_line_bytes` bounds one received line — raise it when fetching the
  /// big multi-line/one-line admin payloads (`metrics`, `trace`).
  LineClient(const std::string& address, std::uint16_t port, double timeout_seconds = 10.0,
             std::size_t max_line_bytes = 1 << 16)
      : channel_(connect_tcp(address, port, timeout_seconds), max_line_bytes),
        timeout_(timeout_seconds) {}

  /// Sends one request line and blocks for the one response line. Throws
  /// std::runtime_error when the connection drops or the read times out.
  /// (Blank/comment lines get no response — don't send them through here.)
  [[nodiscard]] std::string request(std::string_view line);

  /// Sends `metrics` and reads the multi-line exposition through its `# EOF`
  /// terminator line; returns the full text (terminator included, lines
  /// newline-joined). Throws like request().
  [[nodiscard]] std::string scrape_metrics();

  /// Sends without waiting (for quit, or deliberate pipelining).
  [[nodiscard]] bool send(std::string_view line) { return channel_.write_line(line); }

  /// One response line, or nullopt on EOF. Throws on timeout/error.
  [[nodiscard]] std::optional<std::string> read_line();

  void close() noexcept { channel_.shutdown(); }

 private:
  LineChannel channel_;
  double timeout_;
};

}  // namespace c3::net
