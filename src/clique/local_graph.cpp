#include "clique/local_graph.hpp"

#include <atomic>
#include <cstdlib>

namespace c3 {

void LocalGraph::reset(int n) {
  // Invariant: rows_ is all-zero except the rows in dirty_rows_. Clear just
  // those, under the *old* stride they were written with.
  for (const int a : dirty_rows_) {
    bits::clear_words(row_mut(a), static_cast<std::size_t>(words_));
    row_dirty_[static_cast<std::size_t>(a)] = 0;
  }
  dirty_rows_.clear();

  n_ = n;
  words_ = static_cast<int>(bits::kernel_stride_words(static_cast<std::size_t>(n)));
  const std::size_t needed = static_cast<std::size_t>(n) * static_cast<std::size_t>(words_);
  if (rows_.size() < needed) rows_.resize(needed);  // growth value-initializes to zero
  if (row_dirty_.size() < static_cast<std::size_t>(n)) {
    row_dirty_.resize(static_cast<std::size_t>(n), 0);
  }
  dirty_rows_.reserve(static_cast<std::size_t>(n));  // keeps mark_dirty allocation-free
}

void build_local_graph(const Digraph& dag, std::span<const node_t> members, LocalGraph& lg) {
  const int n = static_cast<int>(members.size());
  lg.reset(n);
  for (int a = 0; a < n; ++a) {
    const auto out = dag.out_neighbors(members[static_cast<std::size_t>(a)]);
    // Two-pointer walk: members are sorted ascending and out-neighbors of
    // members[a] all rank above it, so matches have local id > a.
    std::size_t i = 0;
    std::size_t j = static_cast<std::size_t>(a) + 1;
    while (i < out.size() && j < members.size()) {
      if (out[i] < members[j]) {
        ++i;
      } else if (out[i] > members[j]) {
        ++j;
      } else {
        lg.add_edge(a, static_cast<int>(j));
        ++i;
        ++j;
      }
    }
  }
}

namespace {

int initial_dense_min() noexcept {
  if (const char* env = std::getenv("C3_DENSE_MIN"); env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 32;
}

std::atomic<int>& dense_min() noexcept {
  static std::atomic<int> value{initial_dense_min()};
  return value;
}

}  // namespace

bool use_dense_subproblem(int nvertices, std::int64_t arcs_upper) noexcept {
  if (nvertices < dense_min().load(std::memory_order_relaxed)) return false;
  // Average degree >= n/8: the bitset rebuild costs O(n·stride) words, the
  // recursion then probes word-parallel; sparse subproblems stay CSR.
  return arcs_upper * 16 >= static_cast<std::int64_t>(nvertices) * nvertices;
}

void set_dense_subproblem_min_vertices(int n) noexcept {
  dense_min().store(n, std::memory_order_relaxed);
}

int dense_subproblem_min_vertices() noexcept {
  return dense_min().load(std::memory_order_relaxed);
}

}  // namespace c3
