#include <algorithm>
#include <unordered_set>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/rng.hpp"

namespace c3 {

Graph planted_clique(node_t n, edge_t m, node_t clique_size, std::uint64_t seed,
                     std::vector<node_t>* planted) {
  Xoshiro256 rng(seed);

  // Sample distinct member vertices for the clique.
  std::unordered_set<node_t> member_set;
  while (member_set.size() < std::min<node_t>(clique_size, n)) {
    member_set.insert(static_cast<node_t>(rng.next_below(n)));
  }
  std::vector<node_t> members(member_set.begin(), member_set.end());
  std::sort(members.begin(), members.end());
  if (planted != nullptr) *planted = members;

  EdgeList edges;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      edges.push_back(Edge{members[i], members[j]});
    }
  }
  // Background noise (duplicates with the clique are merged by the builder).
  for (edge_t i = 0; i < m; ++i) {
    node_t u = static_cast<node_t>(rng.next_below(n));
    node_t v = static_cast<node_t>(rng.next_below(n));
    if (u != v) edges.push_back(Edge{u, v});
  }
  return build_graph(edges, n);
}

}  // namespace c3
