// QueryBatch / QueryStream — schedule sets and streams of typed queries
// against one PreparedGraph.
//
// A serving layer rarely gets one query at a time: it gets a mixed bag of
// counts, decision probes, spectra, and max-clique requests against the same
// prepared graph. Both executors here run public Query values (query.hpp)
// and return typed Answers, with two-level parallelism:
//
//   * *across* queries — cheap queries are issued concurrently from a pool
//     of executor threads, each leasing its own QueryScratch from the
//     engine; the worker pool is split between them with per-thread
//     WorkerCapScopes (the process-global worker cap is never written, so
//     batches cannot race external set_num_workers callers — or each other);
//   * *within* queries — expensive queries keep the full worker pool for
//     their internal parallelism and run one at a time.
//
// Cheap vs expensive is decided by estimate_query_cost (query.hpp): a work
// estimate from k and the engine's prepared artifacts, not a hard-coded kind
// split — a k=9 count on a dense graph schedules as heavy, a has_clique
// probe as light. Light queries are handed to the executors in
// longest-estimated-first order so the last thread is not left holding the
// slowest query. Per-query worker caps (Query::opts.max_workers) compose
// with the executor split by minimum.
//
// QueryBatch is the one-shot form: add queries, run(), results in
// submission order. QueryStream is the long-lived form a server loop embeds:
// submit() enqueues a query and returns a ticket, executor threads answer
// them as they arrive, poll() hands back completed answers without blocking,
// drain() waits for everything in flight. The engine's artifacts are forced
// before the first non-trivial query executes, so at most one query ever
// pays preparation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "clique/common.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "clique/spectrum.hpp"
#include "graph/types.hpp"

namespace c3 {

/// Legacy batch query (pre-Query surface): kind + k/kmax without per-query
/// options. Kept as a thin conversion onto Query so existing callers and
/// query files keep working.
struct BatchQuery {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  int kmax = 0;

  [[nodiscard]] Query to_query() const {
    Query q;
    q.kind = kind;
    q.k = k;
    q.kmax = kmax;
    return q;
  }
};

/// Legacy result view of an Answer. Which fields are meaningful depends on
/// `kind`: Count -> count + stats; HasClique -> found; FindClique -> found +
/// witness; PerVertexCounts / PerEdgeCounts -> per_counts; Spectrum ->
/// spectrum; MaxClique -> omega + witness. `seconds` is the query's wall
/// time inside the batch.
struct BatchResult {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  count_t count = 0;
  bool found = false;
  std::vector<node_t> witness;
  std::vector<std::vector<node_t>> cliques;  ///< List -> the materialized cliques
  std::vector<count_t> per_counts;
  CliqueSpectrum spectrum;
  node_t omega = 0;
  CliqueStats stats;
  double seconds = 0.0;
};

/// Flattens a typed Answer into the legacy result struct.
[[nodiscard]] BatchResult to_batch_result(Answer answer);

class QueryBatch {
 public:
  /// Binds the batch to `engine` (not copied — must outlive the batch).
  explicit QueryBatch(const PreparedGraph& engine) : engine_(&engine) {}

  // Each adder returns the query's index into the result vector.
  int add(Query query);
  int add(const BatchQuery& query) { return add(query.to_query()); }
  int add_count(int k) { return add(BatchQuery{QueryKind::Count, k, 0}); }
  int add_has_clique(int k) { return add(BatchQuery{QueryKind::HasClique, k, 0}); }
  int add_find_clique(int k) { return add(BatchQuery{QueryKind::FindClique, k, 0}); }
  int add_per_vertex_counts(int k) { return add(BatchQuery{QueryKind::PerVertexCounts, k, 0}); }
  int add_per_edge_counts(int k) { return add(BatchQuery{QueryKind::PerEdgeCounts, k, 0}); }
  int add_spectrum(int kmax = 0) { return add(BatchQuery{QueryKind::Spectrum, 0, kmax}); }
  int add_max_clique() { return add(BatchQuery{QueryKind::MaxClique, 0, 0}); }

  [[nodiscard]] std::size_t size() const noexcept { return queries_.size(); }
  [[nodiscard]] const std::vector<Query>& queries() const noexcept { return queries_; }

  /// Executes every query and returns typed Answers in submission order.
  /// `concurrency` caps how many light queries run at once (0 = one per
  /// worker; 1 = fully serial). Executor threads cap themselves with
  /// per-thread WorkerCapScopes — the global worker count is never written.
  /// Rethrows the first query exception after all threads join. Idempotent:
  /// may be called again (everything re-executes against the warm engine).
  [[nodiscard]] std::vector<Answer> answers(int concurrency = 0) const;

  /// Legacy form of answers(): the same execution, flattened into
  /// BatchResults.
  [[nodiscard]] std::vector<BatchResult> run(int concurrency = 0) const;

 private:
  const PreparedGraph* engine_;
  std::vector<Query> queries_;
};

/// Convenience one-call form: batch-execute `queries` against `engine`.
[[nodiscard]] std::vector<BatchResult> run_query_batch(const PreparedGraph& engine,
                                                       const std::vector<BatchQuery>& queries,
                                                       int concurrency = 0);

/// Streaming executor for a long-lived serving loop: queries go in one at a
/// time, answers come out as they complete.
///
///   QueryStream stream(engine, /*executors=*/4);
///   const std::uint64_t ticket = stream.submit(query);
///   while (auto done = stream.poll()) deliver(done->first, done->second);
///   for (auto& [t, answer] : stream.drain()) deliver(t, answer);
///
/// `executors` worker threads (0 = one per pool worker, at most 8) pull
/// queries off the submission queue FIFO. Each executor caps its internal
/// parallelism to pool/executors via a WorkerCapScope; a query estimated
/// heavy (estimate_query_cost) additionally serializes on a heavy-query slot
/// and takes the full pool, like QueryBatch's sequential phase. Per-query
/// caps compose by minimum. submit()/poll()/drain() are safe to call from
/// any number of threads. A query that throws surfaces its exception from
/// the poll()/drain() call that would have returned its answer.
class QueryStream {
 public:
  explicit QueryStream(const PreparedGraph& engine, int executors = 0);

  /// Joins the executors; queries still queued are answered first (close()).
  ~QueryStream();

  QueryStream(const QueryStream&) = delete;
  QueryStream& operator=(const QueryStream&) = delete;

  /// Enqueues a query; returns its ticket (tickets count up from 0 in
  /// submission order). Throws std::logic_error after close().
  std::uint64_t submit(Query query);

  /// One completed, not-yet-delivered answer (lowest ticket first), or
  /// nullopt when none is ready. Never blocks. Rethrows the query's
  /// exception if that query failed.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, Answer>> poll();

  /// Blocks until every submitted query has completed, then returns all
  /// undelivered answers in ticket order. Rethrows the first failed query's
  /// exception (after all in-flight queries finished).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Answer>> drain();

  /// Queries submitted but not yet completed.
  [[nodiscard]] std::size_t pending() const;

  /// Stops accepting new queries, finishes the queue, joins the executors.
  /// Idempotent. Answers already completed remain pollable.
  void close();

 private:
  struct Completed {
    std::uint64_t ticket = 0;
    Answer answer;
    std::exception_ptr error;
  };

  void executor_loop(int split_cap);

  const PreparedGraph* engine_;
  double heavy_threshold_ = 0.0;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::pair<std::uint64_t, Query>> queue_;
  std::vector<Completed> completed_;  // kept sorted by ticket on delivery
  std::uint64_t next_ticket_ = 0;
  std::size_t in_flight_ = 0;
  bool closing_ = false;
  std::mutex heavy_slot_;  // at most one heavy query runs at a time
  std::vector<std::thread> executors_;
};

}  // namespace c3
