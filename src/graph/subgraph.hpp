// Induced subgraph extraction.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

/// An induced subgraph G[S] with vertices renamed to 0..|S|-1 (in the order
/// given by `vertices`), plus the mapping back to the parent graph.
struct InducedSubgraph {
  Graph graph;
  std::vector<node_t> to_parent;  // local id -> parent vertex id
};

/// Extracts G[S]. `vertices` must contain distinct ids of g; the local
/// numbering follows the order of `vertices`.
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, std::span<const node_t> vertices);

}  // namespace c3
