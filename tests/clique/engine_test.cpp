// Tests for the plan/execute query engine (PreparedGraph): prepared queries
// must match the one-shot entry points for every algorithm and order, and a
// reused engine must prepare exactly once.
#include "clique/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "clique/local_graph.hpp"
#include "clique/max_clique.hpp"
#include "clique/spectrum.hpp"
#include "clique/vertex_counts.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "test_helpers.hpp"
#include "util/bitkernels.hpp"

namespace c3 {
namespace {

const Algorithm kAllAlgorithms[] = {Algorithm::C3List,  Algorithm::C3ListCD,
                                    Algorithm::Hybrid,  Algorithm::KCList,
                                    Algorithm::ArbCount, Algorithm::BruteForce};

const Algorithm kPreparedAlgorithms[] = {Algorithm::C3List, Algorithm::C3ListCD,
                                         Algorithm::Hybrid, Algorithm::KCList,
                                         Algorithm::ArbCount};

TEST(Engine, PreparedMatchesOneShotAllAlgorithmsAndOrders) {
  const Graph graphs[] = {erdos_renyi(80, 600, 3), barabasi_albert(120, 5, 9)};
  for (const Graph& g : graphs) {
    for (const Algorithm alg : kAllAlgorithms) {
      for (const VertexOrderKind order :
           {VertexOrderKind::ExactDegeneracy, VertexOrderKind::ApproxDegeneracy}) {
        CliqueOptions opts;
        opts.algorithm = alg;
        opts.vertex_order = order;
        const PreparedGraph engine(g, opts);
        for (int k = 3; k <= 6; ++k) {
          EXPECT_EQ(engine.count(k).count, count_cliques(g, k, opts).count)
              << algorithm_name(alg) << " order " << static_cast<int>(order) << " k=" << k;
        }
      }
    }
  }
}

TEST(Engine, PreparedMatchesOneShotBothEdgeOrders) {
  const Graph g = erdos_renyi(60, 450, 5);
  for (const EdgeOrderKind edge_order : {EdgeOrderKind::ExactCommunityDegeneracy,
                                         EdgeOrderKind::ApproxCommunityDegeneracy}) {
    CliqueOptions opts;
    opts.algorithm = Algorithm::C3ListCD;
    opts.edge_order = edge_order;
    const PreparedGraph engine(g, opts);
    for (int k = 3; k <= 6; ++k) {
      EXPECT_EQ(engine.count(k).count, count_cliques(g, k, opts).count)
          << "edge order " << static_cast<int>(edge_order) << " k=" << k;
    }
  }
}

TEST(Engine, PreparesExactlyOnceAcrossKSweep) {
  const Graph g = social_like(200, 1500, 0.4, 21);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    // The first query builds the artifacts and reports their cost...
    const CliqueResult first = engine.count(3);
    EXPECT_GT(first.stats.preprocess_seconds, 0.0) << algorithm_name(alg);
    // ...every later query reuses them: zero preparation, identical counts
    // to four independent one-shot calls.
    for (int k = 3; k <= 6; ++k) {
      const CliqueResult r = engine.count(k);
      EXPECT_EQ(r.stats.preprocess_seconds, 0.0) << algorithm_name(alg) << " k=" << k;
      EXPECT_EQ(r.count, count_cliques(g, k, opts).count) << algorithm_name(alg) << " k=" << k;
    }
  }
}

TEST(Engine, PrepareForcesArtifactsEagerly) {
  const Graph g = erdos_renyi(100, 700, 8);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    engine.prepare();
    EXPECT_GT(engine.prepare_seconds(), 0.0) << algorithm_name(alg);
    const CliqueResult r = engine.count(4);
    EXPECT_EQ(r.stats.preprocess_seconds, 0.0) << algorithm_name(alg);
  }
}

TEST(Engine, RepeatedQueriesAreIdentical) {
  const Graph g = erdos_renyi(70, 520, 13);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(engine.count(k).count, expect) << "k=" << k << " rep=" << rep;
    }
  }
}

TEST(Engine, ListingThroughTheEngineIsValid) {
  const Graph g = erdos_renyi(50, 380, 29);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    for (int k = 3; k <= 5; ++k) {
      const count_t expect = brute_force_count(g, k);
      testing::CliqueCollector collector(g, k);
      const CliqueResult r = engine.list(k, collector.callback());
      EXPECT_EQ(r.count, expect) << algorithm_name(alg) << " k=" << k;
      collector.expect_valid(expect);
    }
  }
}

TEST(Engine, MixedQueryTypesShareOnePreparation) {
  const Graph g = social_like(150, 1100, 0.45, 77);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);
  (void)engine.count(3);  // builds the artifacts

  // Spectrum, local counts, and max-clique queries all reuse them.
  const CliqueSpectrum spec = engine.spectrum();
  EXPECT_EQ(spec.preprocess_seconds, 0.0);
  EXPECT_EQ(spec.omega, max_clique_size(g));
  for (int k = 1; k <= static_cast<int>(spec.omega); ++k) {
    EXPECT_EQ(spec.counts[static_cast<std::size_t>(k)], count_cliques(g, k).count) << "k=" << k;
  }

  const int k = 4;
  const auto per_vertex = engine.per_vertex_counts(k);
  count_t total_times_k = 0;
  for (const count_t c : per_vertex) total_times_k += c;
  EXPECT_EQ(total_times_k, static_cast<count_t>(k) * engine.count(k).count);

  EXPECT_EQ(engine.max_clique_size(), spec.omega);
  EXPECT_TRUE(engine.has_clique(static_cast<int>(spec.omega)));
  EXPECT_FALSE(engine.has_clique(static_cast<int>(spec.omega) + 1));

  const auto witness = engine.max_clique();
  ASSERT_EQ(witness.size(), spec.omega);
  for (std::size_t i = 0; i < witness.size(); ++i) {
    for (std::size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_TRUE(g.has_edge(witness[i], witness[j]));
    }
  }
}

TEST(Engine, SpectrumMatchesOneShotForEveryAlgorithm) {
  const Graph g = erdos_renyi(60, 480, 41);
  const CliqueSpectrum base = clique_spectrum(g);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    const CliqueSpectrum spec = engine.spectrum();
    EXPECT_EQ(spec.counts, base.counts) << algorithm_name(alg);
    EXPECT_EQ(spec.omega, base.omega) << algorithm_name(alg);
  }
}

TEST(Engine, TrivialSizesAndEmptyGraphs) {
  const Graph g = erdos_renyi(40, 120, 17);
  const PreparedGraph engine(g, {});
  EXPECT_EQ(engine.count(0).count, 0u);
  EXPECT_EQ(engine.count(1).count, 40u);
  EXPECT_EQ(engine.count(2).count, 120u);
  // Trivial sizes never build artifacts.
  EXPECT_EQ(engine.prepare_seconds(), 0.0);

  const Graph empty;
  const PreparedGraph none(empty, {});
  EXPECT_EQ(none.count(3).count, 0u);
  EXPECT_EQ(none.max_clique_size(), 0u);
  EXPECT_TRUE(none.max_clique().empty());
  EXPECT_EQ(none.spectrum().omega, 0u);
}

TEST(Engine, ThrowingCallbackLeavesEngineUsable) {
  // A callback that throws mid-enumeration unwinds past the searches'
  // backtracking restores; the leased scratch must come back clean (e.g.
  // kcList's label array re-zeroed) so later queries on the same engine
  // still count correctly. Run at 1 worker: the serial loop is the only
  // configuration where an exception can legally unwind (OpenMP regions
  // would terminate), and it maximizes the dirtied state.
  const Graph g = erdos_renyi(80, 600, 3);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    const count_t expect = engine.count(4).count;
    ASSERT_GT(expect, 0u) << algorithm_name(alg);

    const int old = set_num_workers(1);
    int seen = 0;
    const CliqueCallback bomb = [&](std::span<const node_t>) -> bool {
      if (++seen == 2) throw std::runtime_error("callback failure");
      return true;
    };
    EXPECT_THROW((void)engine.list(4, bomb), std::runtime_error) << algorithm_name(alg);
    set_num_workers(old);

    EXPECT_EQ(engine.count(4).count, expect) << algorithm_name(alg);
    EXPECT_EQ(engine.count(3).count, count_cliques(g, 3, opts).count) << algorithm_name(alg);
  }
}

TEST(Engine, SpectrumHonorsKmaxForTrivialSizes) {
  const Graph g = erdos_renyi(40, 120, 17);
  const PreparedGraph engine(g, {});
  const CliqueSpectrum s1 = engine.spectrum(1);
  EXPECT_EQ(s1.omega, 1u);
  EXPECT_EQ(s1.counts.size(), 2u);  // entries for k = 0, 1 only
  const CliqueSpectrum s2 = engine.spectrum(2);
  EXPECT_EQ(s2.omega, 2u);
  EXPECT_EQ(s2.counts.size(), 3u);
  EXPECT_EQ(s2.counts[2], 120u);
  // Trivial-size spectra need no artifacts.
  EXPECT_EQ(engine.artifacts_built(), 0);
}

TEST(Engine, CountsAreKernelBackendIndependent) {
  // Prepared-query equivalence with the bit-kernel dispatch pinned to
  // scalar vs the host default: the SIMD substrate must be invisible in
  // results for every algorithm, count and listing alike.
  const bits::KernelBackend host = bits::active_kernel_backend();
  const Graph g = social_like(300, 2600, 0.45, 33);
  for (const Algorithm alg : kAllAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    for (int k = 3; k <= 6; ++k) {
      ASSERT_TRUE(bits::set_kernel_backend(host));
      const count_t with_host = engine.count(k).count;
      ASSERT_TRUE(bits::set_kernel_backend(bits::KernelBackend::Scalar));
      const count_t with_scalar = engine.count(k).count;
      EXPECT_EQ(with_host, with_scalar) << algorithm_name(alg) << " k=" << k;
    }
    ASSERT_TRUE(bits::set_kernel_backend(host));
  }
}

TEST(Engine, ListingIsKernelBackendIndependent) {
  const bits::KernelBackend host = bits::active_kernel_backend();
  const Graph g = erdos_renyi(60, 480, 19);
  for (const Algorithm alg : kPreparedAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    const count_t expect = brute_force_count(g, 4);
    for (const bits::KernelBackend backend : {host, bits::KernelBackend::Scalar}) {
      ASSERT_TRUE(bits::set_kernel_backend(backend));
      testing::CliqueCollector collector(g, 4);
      const CliqueResult r = engine.list(4, collector.callback());
      EXPECT_EQ(r.count, expect)
          << algorithm_name(alg) << " backend=" << bits::kernel_backend_name(backend);
      collector.expect_valid(expect);
    }
    ASSERT_TRUE(bits::set_kernel_backend(host));
  }
}

TEST(Engine, KclistDenseAndCsrPathsAgree) {
  // Force the dense-subproblem selection all the way on and all the way off:
  // the bitset vertex-growth path and the CSR label recursion must count the
  // same cliques on the same prepared engine.
  const int saved = dense_subproblem_min_vertices();
  const Graph g = social_like(300, 2600, 0.5, 91);
  CliqueOptions opts;
  opts.algorithm = Algorithm::KCList;
  const PreparedGraph engine(g, opts);
  for (int k = 3; k <= 6; ++k) {
    set_dense_subproblem_min_vertices(1);  // every subproblem dense-eligible
    const count_t dense = engine.count(k).count;
    set_dense_subproblem_min_vertices(1 << 30);  // never dense
    const count_t csr = engine.count(k).count;
    EXPECT_EQ(dense, csr) << "k=" << k;
    EXPECT_EQ(csr, count_cliques(g, k).count) << "k=" << k;
  }
  set_dense_subproblem_min_vertices(saved);
}

TEST(Engine, UpperBoundIsValid) {
  const Graph g = social_like(150, 1100, 0.45, 55);
  const node_t omega = max_clique_size(g);
  for (const Algorithm alg : kAllAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph engine(g, opts);
    EXPECT_GE(engine.clique_number_upper_bound(), omega) << algorithm_name(alg);
  }
}

}  // namespace
}  // namespace c3
