#include "util/bitkernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace c3::bits {
namespace {

// ------------------------------------------------------------ scalar table
// Thin non-inline shims over the bitwords.hpp reference helpers so the table
// entries have external-call-compatible addresses.

void scalar_and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t nwords) {
  and_into(dst, a, b, nwords);
}

void scalar_and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) {
  and_assign(dst, a, nwords);
}

std::uint64_t scalar_popcount(const std::uint64_t* a, std::size_t nwords) {
  return popcount(a, nwords);
}

std::uint64_t scalar_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t nwords) {
  return popcount_and(a, b, nwords);
}

std::uint64_t scalar_popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* c, std::size_t nwords) {
  return popcount_and3(a, b, c, nwords);
}

std::uint64_t scalar_intersect_interval(const std::uint64_t* a, const std::uint64_t* b,
                                        const std::uint64_t* mask, std::uint64_t* dst,
                                        std::size_t nwords, std::size_t lo, std::size_t hi) {
  return intersect_interval(a, b, mask, dst, nwords, lo, hi);
}

std::uint64_t scalar_intersect_above(const std::uint64_t* a, const std::uint64_t* mask,
                                     std::uint64_t* dst, std::size_t nwords, std::size_t x) {
  return intersect_above(a, mask, dst, nwords, x);
}

void scalar_for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                             void* ctx, void (*fn)(void* ctx, std::size_t bit)) {
  for_each_bit_and(a, b, nwords, [&](std::size_t bit) { fn(ctx, bit); });
}

constexpr KernelTable kScalarTable{
    scalar_and_into,          scalar_and_assign,     scalar_popcount,
    scalar_popcount_and,      scalar_popcount_and3,  scalar_intersect_interval,
    scalar_intersect_above,   scalar_for_each_bit_and,
    KernelBackend::Scalar,
};

// --------------------------------------------------------------- detection

bool cpu_supports(KernelBackend b) noexcept {
  switch (b) {
    case KernelBackend::Scalar:
      return true;
    case KernelBackend::AVX2:
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case KernelBackend::AVX512:
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512vpopcntdq");
#else
      return false;
#endif
    case KernelBackend::NEON:
#if defined(__aarch64__)
      return true;  // AdvSIMD is mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

namespace detail {
// Backend TUs define these; each returns nullptr when its ISA was not
// compiled in (flag probe failed or wrong architecture).
const KernelTable* avx2_table() noexcept;
const KernelTable* avx512_table() noexcept;
const KernelTable* neon_table() noexcept;

constinit std::atomic<const KernelTable*> g_active{&kScalarTable};
}  // namespace detail

const KernelTable* kernel_table(KernelBackend b) noexcept {
  if (!cpu_supports(b)) return nullptr;
  switch (b) {
    case KernelBackend::Scalar:
      return &kScalarTable;
    case KernelBackend::AVX2:
      return detail::avx2_table();
    case KernelBackend::AVX512:
      return detail::avx512_table();
    case KernelBackend::NEON:
      return detail::neon_table();
  }
  return nullptr;
}

KernelBackend active_kernel_backend() noexcept {
  return detail::g_active.load(std::memory_order_acquire)->backend;
}

const char* kernel_backend_name(KernelBackend b) noexcept {
  switch (b) {
    case KernelBackend::Scalar:
      return "scalar";
    case KernelBackend::AVX2:
      return "avx2";
    case KernelBackend::AVX512:
      return "avx512";
    case KernelBackend::NEON:
      return "neon";
  }
  return "unknown";
}

std::vector<KernelBackend> available_kernel_backends() {
  std::vector<KernelBackend> out;
  for (const KernelBackend b :
       {KernelBackend::AVX2, KernelBackend::AVX512, KernelBackend::NEON}) {
    if (kernel_table(b) != nullptr) out.push_back(b);
  }
  out.push_back(KernelBackend::Scalar);
  return out;
}

KernelBackend best_kernel_backend() noexcept {
  // AVX2 outranks AVX-512 on purpose. The search loops interleave short
  // kernel calls with scalar bookkeeping, and 512-bit ops trigger license-
  // based frequency throttling on the Xeon generations that dominate server
  // fleets — BENCH_pr7 measured the avx512 tables losing end to end on
  // exactly the workloads whose tight-loop microbench they win. Opt in with
  // C3_KERNEL=avx512 on hardware that doesn't downclock (Ice Lake+).
  for (const KernelBackend b :
       {KernelBackend::AVX2, KernelBackend::AVX512, KernelBackend::NEON}) {
    if (kernel_table(b) != nullptr) return b;
  }
  return KernelBackend::Scalar;
}

bool set_kernel_backend(KernelBackend b) noexcept {
  const KernelTable* table = kernel_table(b);
  if (table == nullptr) return false;
  detail::g_active.store(table, std::memory_order_release);
  return true;
}

bool parse_kernel_backend(const char* name, KernelBackend& out) noexcept {
  if (name == nullptr) return false;
  char lower[16];
  std::size_t len = 0;
  for (; name[len] != '\0'; ++len) {
    if (len + 1 >= sizeof(lower)) return false;
    const char c = name[len];
    lower[len] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  lower[len] = '\0';
  if (std::strcmp(lower, "scalar") == 0) {
    out = KernelBackend::Scalar;
  } else if (std::strcmp(lower, "avx2") == 0) {
    out = KernelBackend::AVX2;
  } else if (std::strcmp(lower, "avx512") == 0) {
    out = KernelBackend::AVX512;
  } else if (std::strcmp(lower, "neon") == 0) {
    out = KernelBackend::NEON;
  } else if (std::strcmp(lower, "auto") == 0) {
    out = best_kernel_backend();
  } else {
    return false;
  }
  return true;
}

namespace {

// Startup selection: C3_KERNEL override when set and runnable, else the best
// backend the CPU supports. Runs once before main via a static initializer;
// any kernel call earlier than that safely hits the constinit scalar table.
struct StartupSelection {
  StartupSelection() noexcept {
    KernelBackend pick = best_kernel_backend();
    if (const char* env = std::getenv("C3_KERNEL"); env != nullptr && env[0] != '\0') {
      KernelBackend requested{};
      if (!parse_kernel_backend(env, requested)) {
        std::fprintf(stderr, "c3: ignoring unknown C3_KERNEL='%s' (want scalar|avx2|avx512|neon|auto)\n",
                     env);
      } else if (kernel_table(requested) == nullptr) {
        std::fprintf(stderr, "c3: C3_KERNEL=%s unavailable on this host, using %s\n",
                     kernel_backend_name(requested), kernel_backend_name(pick));
      } else {
        pick = requested;
      }
    }
    (void)set_kernel_backend(pick);
  }
};

const StartupSelection g_startup_selection{};

}  // namespace
}  // namespace c3::bits
