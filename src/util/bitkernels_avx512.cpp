// AVX-512 bit-kernel backend: 512-bit lanes with the native VPOPCNTDQ
// per-lane popcount. Requires F+BW+VL+VPOPCNTDQ (Ice Lake and later);
// detection in bitkernels.cpp checks all four before handing this table
// out. Compiled with the -mavx512* flags only for this TU.
#include "util/bitkernels.hpp"

#if defined(C3_BITKERNELS_AVX512)

#include <immintrin.h>

#include <cstring>

namespace c3::bits {
namespace {

constexpr std::size_t kLaneWords = 8;  // 512 bits

inline __m512i load(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store(std::uint64_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

/// Horizontal sum of the 8 64-bit lanes. Hand-rolled (store + scalar adds,
/// runs once per call, outside the loops) because GCC 12's
/// _mm512_reduce_add_epi64 trips -Wuninitialized via _mm256_undefined_si256.
inline std::uint64_t hsum(__m512i acc) {
  alignas(64) std::uint64_t lanes[kLaneWords];
  _mm512_store_si512(reinterpret_cast<void*>(lanes), acc);
  std::uint64_t total = 0;
  for (const std::uint64_t lane : lanes) total += lane;
  return total;
}

void k_and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    store(dst + w, _mm512_and_si512(load(a + w), load(b + w)));
  for (; w < nwords; ++w) dst[w] = a[w] & b[w];
}

void k_and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    store(dst + w, _mm512_and_si512(load(dst + w), load(a + w)));
  for (; w < nwords; ++w) dst[w] &= a[w];
}

std::uint64_t k_popcount(const std::uint64_t* a, std::size_t nwords) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load(a + w)));
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w]));
  return total;
}

std::uint64_t k_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(load(a + w), load(b + w))));
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  return total;
}

std::uint64_t k_popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* c, std::size_t nwords) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    // vpternlogq computes a&b&c in one op (truth table 0x80).
    const __m512i v = _mm512_ternarylogic_epi64(load(a + w), load(b + w), load(c + w), 0x80);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w)
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  return total;
}

std::uint64_t k_intersect_interval(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* mask, std::uint64_t* dst,
                                   std::size_t nwords, std::size_t lo, std::size_t hi) {
  std::memset(dst, 0, nwords * sizeof(std::uint64_t));
  if (hi < lo) return 0;
  const std::size_t wlo = word_index(lo);
  const std::size_t whi = word_index(hi);
  const std::uint64_t head = ~std::uint64_t{0} << (lo % kWordBits);
  const std::uint64_t tail = (hi % kWordBits) == 63
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << ((hi % kWordBits) + 1)) - 1);
  if (wlo == whi) {
    const std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head & tail;
    dst[wlo] = m;
    return static_cast<std::uint64_t>(std::popcount(m));
  }
  std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head;
  dst[wlo] = m;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(m));
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = wlo + 1;
  for (; w + kLaneWords <= whi; w += kLaneWords) {
    const __m512i v = _mm512_ternarylogic_epi64(load(a + w), load(b + w), load(mask + w), 0x80);
    store(dst + w, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  total += hsum(acc);
  for (; w < whi; ++w) {
    m = a[w] & b[w] & mask[w];
    dst[w] = m;
    total += static_cast<std::uint64_t>(std::popcount(m));
  }
  m = a[whi] & b[whi] & mask[whi] & tail;
  dst[whi] = m;
  total += static_cast<std::uint64_t>(std::popcount(m));
  return total;
}

std::uint64_t k_intersect_above(const std::uint64_t* a, const std::uint64_t* mask,
                                std::uint64_t* dst, std::size_t nwords, std::size_t x) {
  const std::size_t wx = word_index(x);
  std::memset(dst, 0, wx * sizeof(std::uint64_t));
  const std::uint64_t keep =
      (x % kWordBits) == 63 ? 0 : ~std::uint64_t{0} << ((x % kWordBits) + 1);
  dst[wx] = a[wx] & mask[wx] & keep;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(dst[wx]));
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = wx + 1;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const __m512i v = _mm512_and_si512(load(a + w), load(mask + w));
    store(dst + w, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  total += hsum(acc);
  for (; w < nwords; ++w) {
    dst[w] = a[w] & mask[w];
    total += static_cast<std::uint64_t>(std::popcount(dst[w]));
  }
  return total;
}

void k_for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                        void* ctx, void (*fn)(void* ctx, std::size_t bit)) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const __m512i v = _mm512_and_si512(load(a + w), load(b + w));
    __mmask8 nonzero = _mm512_test_epi64_mask(v, v);
    if (nonzero == 0) continue;  // skip empty 512-bit blocks
    alignas(64) std::uint64_t lanes[kLaneWords];
    _mm512_store_si512(reinterpret_cast<void*>(lanes), v);
    // Visit only the non-empty lanes, in ascending order.
    while (nonzero != 0) {
      const int i = std::countr_zero(static_cast<unsigned>(nonzero));
      std::uint64_t word = lanes[i];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(ctx, (w + static_cast<std::size_t>(i)) * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
      nonzero = static_cast<__mmask8>(nonzero & (nonzero - 1));
    }
  }
  for (; w < nwords; ++w) {
    std::uint64_t word = a[w] & b[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(ctx, w * kWordBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

constexpr KernelTable kTable{
    k_and_into,        k_and_assign,    k_popcount,           k_popcount_and,
    k_popcount_and3,   k_intersect_interval,
    k_intersect_above, k_for_each_bit_and,
    KernelBackend::AVX512,
};

}  // namespace

namespace detail {
const KernelTable* avx512_table() noexcept { return &kTable; }
}  // namespace detail

}  // namespace c3::bits

#else  // !C3_BITKERNELS_AVX512

namespace c3::bits::detail {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace c3::bits::detail

#endif
