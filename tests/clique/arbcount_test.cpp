// Tests for the ArbCount baseline (Shi et al.).
#include "clique/arbcount.hpp"

#include <gtest/gtest.h>

#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

TEST(ArbCount, CompleteGraphClosedForm) {
  const Graph g = complete_graph(11);
  for (int k = 3; k <= 11; ++k) {
    EXPECT_EQ(arbcount_count(g, k).count, binomial(11, k)) << "k=" << k;
  }
}

TEST(ArbCount, MatchesBruteForce) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);
    for (int k = 3; k <= 7; ++k) {
      EXPECT_EQ(arbcount_count(g, k).count, brute_force_count(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(ArbCount, DefaultsToApproxOrderButAgreesWithExact) {
  const Graph g = social_like(250, 1800, 0.4, 41);
  CliqueOptions exact;
  exact.vertex_order = VertexOrderKind::ExactDegeneracy;
  for (int k = 4; k <= 6; ++k) {
    const CliqueResult def = arbcount_count(g, k);
    const CliqueResult ex = arbcount_count(g, k, exact);
    EXPECT_EQ(def.count, ex.count) << "k=" << k;
    // The approximate order may not beat the exact one but must respect the
    // (2+eps) guarantee relative to it.
    EXPECT_LE(def.stats.order_quality,
              static_cast<node_t>(2.5 * static_cast<double>(ex.stats.order_quality)) + 1);
  }
}

TEST(ArbCount, ListingMatchesCountingAndIsValid) {
  const Graph g = erdos_renyi(50, 380, 43);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    testing::CliqueCollector collector(g, k);
    const CliqueResult r = arbcount_list(g, k, collector.callback());
    EXPECT_EQ(r.count, expect) << "k=" << k;
    collector.expect_valid(expect);
  }
}

TEST(ArbCount, LargeLocalUniverseCrossesWordBoundaries) {
  // Force out-neighborhoods above 64/128 vertices to cover multi-word masks.
  const Graph g = complete_graph(140);
  EXPECT_EQ(arbcount_count(g, 4).count, binomial(140, 4));
}

TEST(ArbCount, TrivialSizesAndEmpty) {
  const Graph g = erdos_renyi(40, 100, 47);
  EXPECT_EQ(arbcount_count(g, 1).count, 40u);
  EXPECT_EQ(arbcount_count(g, 2).count, 100u);
  EXPECT_EQ(arbcount_count(Graph{}, 5).count, 0u);
  EXPECT_EQ(arbcount_count(grid_graph(8, 8), 3).count, 0u);
}

}  // namespace
}  // namespace c3
