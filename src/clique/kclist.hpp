// kcList — the baseline of Danisch, Balalau, Sozio (WWW 2018), "Listing
// k-cliques in sparse real-world graphs".
//
// Vertex-centric backtracking over a graph oriented by the *exact*
// degeneracy order: for each vertex u (in parallel), search (k-1)-cliques in
// N+(u) by repeatedly picking a vertex v of the current candidate set and
// descending into N+(v) ∩ S. Membership of the shrinking candidate set is
// tracked with the per-level label array of the original kClist
// implementation (label[w] == l  <=>  w survives at level l). Work
// O(k m (s/2)^(k-2)), depth O(n + log^2 n) from the sequential order
// computation (Table 1).
#pragma once

#include "clique/c3list.hpp"
#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "parallel/padded.hpp"

namespace c3 {

/// Counts all k-cliques with kcList. Honors opts.vertex_order (exact
/// degeneracy by default, matching the original).
[[nodiscard]] CliqueResult kclist_count(const Graph& g, int k, const CliqueOptions& opts = {});

/// Listing variant.
[[nodiscard]] CliqueResult kclist_list(const Graph& g, int k, const CliqueCallback& callback,
                                       const CliqueOptions& opts = {});

/// Search half on a prepared orientation: requires k >= 3. `callback` may be
/// null (counting). `scratch` is this query's leased state (see
/// c3list_search).
[[nodiscard]] CliqueResult kclist_search(const Digraph& dag, int k,
                                         const CliqueCallback* callback, const CliqueOptions& opts,
                                         QueryScratch& scratch);

}  // namespace c3
