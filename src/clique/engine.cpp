#include "clique/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "clique/arbcount.hpp"
#include "clique/bruteforce.hpp"
#include "clique/c3list.hpp"
#include "clique/c3list_cd.hpp"
#include "clique/hybrid.hpp"
#include "clique/kclist.hpp"
#include "clique/order_util.hpp"
#include "order/approx_degeneracy.hpp"
#include "order/degeneracy.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Trivial clique sizes that need no prepared artifacts. k <= 0 -> none;
/// k == 1 -> vertices; k == 2 -> edges.
bool trivial_k(const Graph& g, int k, const CliqueCallback* callback, CliqueResult& out) {
  if (k > 2) return false;
  if (k <= 0) return true;
  if (k == 1) {
    out.count = g.num_nodes();
    if (callback != nullptr) {
      out.count = 0;
      for (node_t v = 0; v < g.num_nodes(); ++v) {
        const node_t clique[] = {v};
        ++out.count;
        if (!(*callback)(clique)) break;
      }
    }
    return true;
  }
  out.count = g.num_edges();
  if (callback != nullptr) {
    out.count = 0;
    for (const Edge& e : g.endpoints()) {
      const node_t clique[] = {e.u, e.v};
      ++out.count;
      if (!(*callback)(clique)) break;
    }
  }
  return true;
}

}  // namespace

PreparedGraph::PreparedGraph(const Graph& g, const CliqueOptions& opts) : g_(&g), opts_(opts) {}

const Digraph& PreparedGraph::dag() const {
  if (!dag_.has_value()) {
    WallTimer timer;
    std::vector<node_t> order;
    switch (opts_.algorithm) {
      case Algorithm::ArbCount:
        // ArbCount's paper-native default is the (2+eps)-approximate order.
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ApproxDegeneracy, opts_.order_seed);
        break;
      case Algorithm::Hybrid:
        // The hybrid's outer order is always the low-depth approximate one;
        // the exact degeneracy order is recomputed per out-neighborhood
        // inside the search (Section 4.2).
        order = approx_degeneracy_order(*g_, opts_.eps).order;
        break;
      default:
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ExactDegeneracy, opts_.order_seed);
        break;
    }
    dag_.emplace(Digraph::orient(*g_, order));
    prepare_seconds_ += timer.seconds();
  }
  return *dag_;
}

const EdgeCommunities& PreparedGraph::communities() const {
  const Digraph& d = dag();  // built (and timed) first
  if (!comms_.has_value()) {
    WallTimer timer;
    comms_.emplace(EdgeCommunities::build(d));
    prepare_seconds_ += timer.seconds();
  }
  return *comms_;
}

const EdgeOrderResult& PreparedGraph::edge_order() const {
  if (!edge_order_.has_value()) {
    WallTimer timer;
    edge_order_.emplace(opts_.edge_order == EdgeOrderKind::ExactCommunityDegeneracy
                            ? community_degeneracy_order(*g_)
                            : approx_community_degeneracy_order(*g_, opts_.eps));
    prepare_seconds_ += timer.seconds();
  }
  return *edge_order_;
}

node_t PreparedGraph::exact_degeneracy() const {
  if (!exact_degeneracy_.has_value()) {
    WallTimer timer;
    exact_degeneracy_ = degeneracy_order(*g_).degeneracy;
    prepare_seconds_ += timer.seconds();
  }
  return *exact_degeneracy_;
}

PerWorker<CliqueScratch>& PreparedGraph::scratch() const {
  // Rebuilt only if the worker pool *grew* past the slot count, so local()
  // never indexes out of bounds; a shrunken pool keeps its warm buffers
  // (surplus slots are reset and merge as zero).
  if (scratch_ == nullptr || scratch_workers_ < num_workers()) {
    scratch_ = std::make_unique<PerWorker<CliqueScratch>>();
    scratch_workers_ = num_workers();
  }
  return *scratch_;
}

void PreparedGraph::prepare() const {
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      (void)communities();
      break;
    case Algorithm::C3ListCD:
      (void)edge_order();
      break;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      (void)dag();
      break;
    case Algorithm::BruteForce:
      break;
  }
}

node_t PreparedGraph::clique_number_upper_bound() const {
  if (g_->num_nodes() == 0) return 0;
  if (g_->num_edges() == 0) return 1;
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      // A k-clique needs a community of k-2 (Observation 1).
      return communities().max_size() + 2;
    case Algorithm::C3ListCD:
      // Its lowest-ordered edge has the remaining k-2 vertices in V'(e).
      return edge_order().sigma + 2;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      // The clique's lowest-ranked vertex sees the rest in N+(v).
      return dag().max_out_degree() + 1;
    case Algorithm::BruteForce:
      break;
  }
  // omega <= s + 1 for an s-degenerate graph.
  return exact_degeneracy() + 1;
}

CliqueResult PreparedGraph::dispatch(int k, const CliqueCallback* callback) const {
  switch (opts_.algorithm) {
    case Algorithm::C3List: {
      const Digraph& d = dag();
      const EdgeCommunities& c = communities();
      return c3list_search(d, c, k, callback, opts_, scratch());
    }
    case Algorithm::C3ListCD:
      return c3list_cd_search(*g_, edge_order(), k, callback, opts_, scratch());
    case Algorithm::Hybrid:
      return hybrid_search(dag(), k, callback, opts_, scratch());
    case Algorithm::KCList:
      return kclist_search(dag(), k, callback, opts_, scratch());
    case Algorithm::ArbCount:
      return arbcount_search(dag(), k, callback, opts_, scratch());
    case Algorithm::BruteForce: {
      CliqueResult r;
      WallTimer timer;
      r.count = callback != nullptr ? brute_force_list(*g_, k, *callback)
                                    : brute_force_count(*g_, k);
      r.stats.cliques = r.count;
      r.stats.search_seconds = timer.seconds();
      return r;
    }
  }
  throw std::invalid_argument("PreparedGraph: unknown algorithm");
}

CliqueResult PreparedGraph::run(int k, const CliqueCallback* callback) const {
  const double before = prepare_seconds_;
  CliqueResult result;
  if (!trivial_k(*g_, k, callback, result)) result = dispatch(k, callback);
  // Only preparation performed during *this* query; 0 on reuse.
  result.stats.preprocess_seconds = prepare_seconds_ - before;
  return result;
}

CliqueResult PreparedGraph::count(int k) const { return run(k, nullptr); }

CliqueResult PreparedGraph::list(int k, const CliqueCallback& callback) const {
  return run(k, &callback);
}

CliqueSpectrum PreparedGraph::spectrum(int kmax) const {
  CliqueSpectrum out;
  out.counts.assign(2, 0);
  if (g_->num_nodes() == 0) return out;
  out.counts[1] = g_->num_nodes();
  out.omega = 1;
  if (g_->num_edges() == 0) return out;
  out.counts.push_back(g_->num_edges());
  out.omega = 2;

  const double before = prepare_seconds_;
  const auto ub = static_cast<int>(clique_number_upper_bound());
  const int limit = kmax > 0 ? std::min(kmax, ub) : ub;
  for (int k = 3; k <= limit; ++k) {
    const CliqueResult r = dispatch(k, nullptr);
    out.search_seconds += r.stats.search_seconds;
    if (r.count == 0) break;
    out.counts.push_back(r.count);
    out.omega = static_cast<node_t>(k);
  }
  out.preprocess_seconds = prepare_seconds_ - before;
  return out;
}

std::vector<count_t> PreparedGraph::per_vertex_counts(int k) const {
  std::vector<std::atomic<count_t>> acc(g_->num_nodes());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (const node_t v : clique) acc[v].fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  (void)list(k, tally);
  std::vector<count_t> out(g_->num_nodes());
  for (node_t v = 0; v < g_->num_nodes(); ++v) out[v] = acc[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<count_t> PreparedGraph::per_edge_counts(int k) const {
  std::vector<std::atomic<count_t>> acc(g_->num_edges());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const edge_t e = g_->edge_id(clique[i], clique[j]);
        acc[e].fetch_add(1, std::memory_order_relaxed);
      }
    }
    return true;
  };
  (void)list(k, tally);
  std::vector<count_t> out(g_->num_edges());
  for (edge_t e = 0; e < g_->num_edges(); ++e) out[e] = acc[e].load(std::memory_order_relaxed);
  return out;
}

bool PreparedGraph::has_clique(int k) const { return find_clique(k).has_value(); }

std::optional<std::vector<node_t>> PreparedGraph::find_clique(int k) const {
  if (k <= 0) return std::nullopt;
  std::optional<std::vector<node_t>> witness;
  std::mutex guard;
  const CliqueCallback stop_at_first = [&](std::span<const node_t> clique) {
    const std::lock_guard<std::mutex> lock(guard);
    if (!witness.has_value()) witness.emplace(clique.begin(), clique.end());
    return false;  // stop the enumeration
  };
  (void)list(k, stop_at_first);
  return witness;
}

node_t PreparedGraph::max_clique_size() const {
  if (g_->num_nodes() == 0) return 0;
  if (g_->num_edges() == 0) return 1;
  node_t lo = 2;  // always feasible: the graph has an edge
  node_t hi = clique_number_upper_bound();
  while (lo < hi) {
    const node_t mid = lo + (hi - lo + 1) / 2;
    if (has_clique(static_cast<int>(mid))) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<node_t> PreparedGraph::max_clique() const {
  const node_t omega = max_clique_size();
  if (omega == 0) return {};
  if (omega == 1) return {0};
  return find_clique(static_cast<int>(omega)).value();
}

}  // namespace c3
