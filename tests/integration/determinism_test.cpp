// Worker-count determinism: every counting algorithm must return the exact
// same count on the same seeded graph whether the loop substrate runs with a
// single worker (fully serial, deterministic reference) or the full pool.
// This is the correctness-by-agreement harness the ROADMAP's scale/speed PRs
// are validated against: a racy counter merge or a schedule-dependent branch
// shows up here as a 1-vs-N mismatch.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "clique/api.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

constexpr Algorithm kAllAlgorithms[] = {Algorithm::C3List,   Algorithm::C3ListCD,
                                        Algorithm::Hybrid,   Algorithm::KCList,
                                        Algorithm::ArbCount, Algorithm::BruteForce};

struct SeededGraphCase {
  const char* name;
  Graph graph;
};

SeededGraphCase make_case(int which) {
  switch (which) {
    case 0:
      return {"erdos_renyi_sparse", erdos_renyi(64, 320, 2021)};
    case 1:
      return {"erdos_renyi_dense", erdos_renyi(40, 390, 2022)};
    default:
      return {"barabasi_albert", barabasi_albert(80, 6, 2023)};
  }
}

class WorkerDeterminism : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override { original_workers_ = num_workers(); }
  void TearDown() override { set_num_workers(original_workers_); }
  int original_workers_ = 1;
};

TEST_P(WorkerDeterminism, SerialAndParallelCountsAgree) {
  const auto [which, k] = GetParam();
  const SeededGraphCase c = make_case(which);
  // At least 4 workers so the parallel run exercises real concurrency even
  // on single-core CI machines (OpenMP honors num_threads above the core
  // count; in serial builds this stays at 1 and the test degenerates to a
  // pure determinism check).
  const int parallel_workers = std::max(4, original_workers_);

  for (const Algorithm alg : kAllAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;

    set_num_workers(1);
    const count_t serial = count_cliques(c.graph, k, opts).count;
    const count_t serial_again = count_cliques(c.graph, k, opts).count;
    EXPECT_EQ(serial, serial_again)
        << c.name << " k=" << k << " alg=" << algorithm_name(alg) << ": serial run not stable";

    set_num_workers(parallel_workers);
    const count_t parallel = count_cliques(c.graph, k, opts).count;
    EXPECT_EQ(serial, parallel) << c.name << " k=" << k << " alg=" << algorithm_name(alg) << ": "
                                << parallel_workers << "-worker count diverged from 1-worker count";
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGraphs, WorkerDeterminism,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3, 4, 5, 6)),
                         [](const auto& info) {
                           return make_case(std::get<0>(info.param)).name + std::string("_k") +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace c3
