// Closed forms from the paper's combinatorial analysis (Section 3) and
// clique-count identities used by tests and the Table 1 bench.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace c3 {

/// Binomial coefficient C(n, k) in 64 bits (no overflow checks; callers use
/// small arguments).
[[nodiscard]] constexpr count_t binomial(count_t n, count_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  count_t result = 1;
  for (count_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

/// Observation 3: |P+_c(V)| = |P-_c(V)| = |V| - (c + 1) relevant out/in
/// vertices (0 when |V| <= c + 1).
[[nodiscard]] constexpr count_t relevant_vertex_count(count_t universe, count_t c) noexcept {
  return universe > c + 1 ? universe - (c + 1) : 0;
}

/// Observation 4: |R^P_c(V)| = C(|V| - c, 2) relevant pairs.
[[nodiscard]] constexpr count_t relevant_pair_count(count_t universe, count_t c) noexcept {
  return universe >= c ? binomial(universe - c, 2) : 0;
}

/// The paper's leaf-work growth base ((gamma + 4 - k) / 2)^(k-2) from
/// Theorem 2.1 / Lemma 2.3, as a double for bound-vs-measured comparisons.
[[nodiscard]] inline double theorem21_growth(double gamma, int k) {
  if (k < 2) return 1.0;
  const double base = (gamma + 4.0 - static_cast<double>(k)) / 2.0;
  if (base <= 0.0) return 0.0;
  double result = 1.0;
  for (int i = 0; i < k - 2; ++i) result *= base;
  return result;
}

/// Number of k-cliques in the complete graph K_n.
[[nodiscard]] constexpr count_t cliques_in_complete(count_t n, count_t k) noexcept {
  return binomial(n, k);
}

/// Number of k-cliques in the Turán graph T(n, r) (complete r-partite with
/// balanced parts): choose k distinct parts and one vertex from each. With
/// a = n mod r parts of size q+1 and r-a parts of size q (q = n / r):
/// count = sum_j C(a, j) * C(r-a, k-j) * (q+1)^j * q^(k-j).
[[nodiscard]] constexpr count_t cliques_in_turan(node_t n, node_t r, node_t k) noexcept {
  if (r == 0 || k > r) return 0;
  const count_t q = n / r;
  const count_t a = n % r;
  count_t total = 0;
  for (count_t j = 0; j <= k; ++j) {
    if (j > a || k - j > r - a) continue;
    count_t term = binomial(a, j) * binomial(r - a, k - j);
    for (count_t i = 0; i < j; ++i) term *= q + 1;
    for (count_t i = 0; i < k - j; ++i) term *= q;
    total += term;
  }
  return total;
}

}  // namespace c3
