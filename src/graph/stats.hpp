// Structural graph statistics — the columns of the paper's Table 2.
#pragma once

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

/// Summary statistics of a graph, as reported in Table 2 of the paper.
struct GraphStats {
  node_t nodes = 0;
  edge_t edges = 0;
  count_t triangles = 0;     // |T|
  node_t degeneracy = 0;     // s (exact)
  node_t max_degree = 0;
  double edges_per_node = 0.0;      // |E| / |V|
  double triangles_per_node = 0.0;  // |T| / |V|
  double triangles_per_edge = 0.0;  // |T| / |E|
};

/// Computes all Table 2 columns. Cost: O(m) for the degeneracy plus
/// O(m * s) for the triangle count.
[[nodiscard]] GraphStats compute_stats(const Graph& g);

}  // namespace c3
