#include "clique/max_clique.hpp"

#include <mutex>

#include "clique/api.hpp"
#include "order/degeneracy.hpp"

namespace c3 {

bool has_clique(const Graph& g, int k, const CliqueOptions& opts) {
  return find_clique(g, k, opts).has_value();
}

std::optional<std::vector<node_t>> find_clique(const Graph& g, int k, const CliqueOptions& opts) {
  if (k <= 0) return std::nullopt;
  std::optional<std::vector<node_t>> witness;
  std::mutex guard;
  const CliqueCallback stop_at_first = [&](std::span<const node_t> clique) {
    const std::lock_guard<std::mutex> lock(guard);
    if (!witness.has_value()) witness.emplace(clique.begin(), clique.end());
    return false;  // stop the enumeration
  };
  (void)list_cliques(g, k, stop_at_first, opts);
  return witness;
}

node_t max_clique_size(const Graph& g, const CliqueOptions& opts) {
  if (g.num_nodes() == 0) return 0;
  if (g.num_edges() == 0) return 1;
  // omega <= s + 1 for an s-degenerate graph; omega >= 2 since m > 0.
  const node_t s = degeneracy_order(g).degeneracy;
  node_t lo = 2, hi = s + 1;  // lo is always feasible
  while (lo < hi) {
    const node_t mid = lo + (hi - lo + 1) / 2;
    if (has_clique(g, static_cast<int>(mid), opts)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<node_t> find_max_clique(const Graph& g, const CliqueOptions& opts) {
  const node_t omega = max_clique_size(g, opts);
  if (omega == 0) return {};
  if (omega == 1) return {0};
  auto witness = find_clique(g, static_cast<int>(omega), opts);
  return witness.value();
}

}  // namespace c3
