// Tests for maximal clique enumeration (Bron-Kerbosch with degeneracy
// ordering).
#include "clique/bron_kerbosch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>

#include "clique/bruteforce.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

/// Brute-force maximal clique count: enumerate all cliques of every size,
/// keep those that cannot be extended.
count_t brute_maximal(const Graph& g) {
  count_t total = 0;
  for (int k = 1; k <= static_cast<int>(g.num_nodes()); ++k) {
    (void)brute_force_list(g, k, [&](std::span<const node_t> clique) {
      for (node_t w = 0; w < g.num_nodes(); ++w) {
        bool adjacent_to_all = true;
        for (const node_t v : clique) {
          if (w == v || !g.has_edge(v, w)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (adjacent_to_all) return true;  // extensible -> not maximal
      }
      ++total;
      return true;
    });
  }
  return total;
}

TEST(BronKerbosch, KnownFamilies) {
  EXPECT_EQ(count_maximal_cliques(complete_graph(7)), 1u);
  EXPECT_EQ(count_maximal_cliques(cycle_graph(5)), 5u);   // each edge
  EXPECT_EQ(count_maximal_cliques(star_graph(6)), 5u);    // each spoke
  EXPECT_EQ(count_maximal_cliques(path_graph(6)), 5u);    // each edge
  EXPECT_EQ(count_maximal_cliques(turan_graph(9, 3)), 27u);  // one per transversal
}

TEST(BronKerbosch, MatchesBruteForceOnRandomGraphs) {
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    const Graph g = erdos_renyi(25, 90, seed);
    EXPECT_EQ(count_maximal_cliques(g), brute_maximal(g)) << "seed " << seed;
  }
}

TEST(BronKerbosch, ListedCliquesAreMaximalAndDistinct) {
  const Graph g = erdos_renyi(30, 130, 9);
  std::mutex mutex;
  std::set<std::vector<node_t>> seen;
  int non_maximal = 0;
  (void)list_maximal_cliques(g, [&](std::span<const node_t> clique) {
    std::vector<node_t> sorted(clique.begin(), clique.end());
    std::sort(sorted.begin(), sorted.end());
    // Check maximality.
    for (node_t w = 0; w < g.num_nodes(); ++w) {
      bool all = true;
      for (const node_t v : sorted) {
        if (w == v || !g.has_edge(v, w)) {
          all = false;
          break;
        }
      }
      if (all) {
        const std::lock_guard<std::mutex> lock(mutex);
        ++non_maximal;
      }
    }
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(sorted);
    return true;
  });
  EXPECT_EQ(non_maximal, 0);
  EXPECT_EQ(seen.size(), count_maximal_cliques(g));
}

TEST(BronKerbosch, MaxCliqueSizeByproduct) {
  const Graph g = planted_clique(150, 300, 9, 3, nullptr);
  EXPECT_EQ(max_clique_size_bk(g), 9u);
  EXPECT_EQ(max_clique_size_bk(hypercube(4)), 2u);
}

TEST(BronKerbosch, EmptyAndSingleton) {
  EXPECT_EQ(count_maximal_cliques(Graph{}), 0u);
  EXPECT_EQ(count_maximal_cliques(build_graph(EdgeList{}, 3)), 3u);  // isolated vertices
}

}  // namespace
}  // namespace c3
