// Regression tests for the PerWorker sizing hazard: a PerWorker constructed
// while the worker cap was low used to size its slot array to that snapshot,
// so a later set_num_workers increase made worker_id() index out of range.
// PerWorker now sizes to max_workers() (the cap's high-water mark) and
// bounds-clamps in local(), so accumulation stays in bounds across any
// save/lower/restore of the cap.
#include "parallel/padded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>

#include "parallel/parallel.hpp"

namespace c3 {
namespace {

TEST(PerWorker, SizedToHighWaterMarkNotCurrentCap) {
  const int old = set_num_workers(1);
  const PerWorker<int> pw;  // constructed while the cap is 1...
  // ...but sized to the high-water mark, which is at least the default pool.
  EXPECT_GE(pw.size(), static_cast<std::size_t>(1));
  EXPECT_EQ(pw.size(), static_cast<std::size_t>(max_workers()));
  set_num_workers(old);
}

TEST(PerWorker, SurvivesWorkerIncreaseAfterConstruction) {
  const int old = set_num_workers(1);
  // The hazard: constructed under a 1-worker cap, used under a wider one.
  PerWorker<std::atomic<long>> pw;
  set_num_workers(8);

  constexpr std::size_t kIters = 100'000;
  parallel_for(
      0, kIters, [&](std::size_t) { pw.local().fetch_add(1, std::memory_order_relaxed); }, 1);

  long total = 0;
  for (std::size_t i = 0; i < pw.size(); ++i) total += pw.slot(i).load(std::memory_order_relaxed);
  // Every increment landed in a valid slot (pre-fix this indexed out of
  // bounds — caught by ASan — and lost or corrupted counts).
  EXPECT_EQ(total, static_cast<long>(kIters));
  set_num_workers(old);
}

TEST(PerWorker, LocalClampsOutOfRangeIds) {
  // Raise the cap beyond any previously seen value *after* construction:
  // the clamp must keep local() inside the slot array.
  const int old = set_num_workers(1);
  PerWorker<std::atomic<long>> pw;
  set_num_workers(max_workers() * 2);

  constexpr std::size_t kIters = 50'000;
  parallel_for(
      0, kIters, [&](std::size_t) { pw.local().fetch_add(1, std::memory_order_relaxed); }, 1);

  long total = 0;
  for (std::size_t i = 0; i < pw.size(); ++i) total += pw.slot(i).load(std::memory_order_relaxed);
  EXPECT_EQ(total, static_cast<long>(kIters));
  set_num_workers(old);
}

TEST(PerWorker, ReduceStillFoldsEverySlot) {
  const int old = set_num_workers(2);
  PerWorker<long> pw;
  for (std::size_t i = 0; i < pw.size(); ++i) pw.slot(i) = static_cast<long>(i + 1);
  const long sum = pw.reduce(0L, [](long acc, long v) { return acc + v; });
  const auto n = static_cast<long>(pw.size());
  EXPECT_EQ(sum, n * (n + 1) / 2);
  set_num_workers(old);
}

}  // namespace
}  // namespace c3
