// Minimal TCP plumbing for the line-protocol server: an owning fd, listen/
// connect helpers, and a buffered line channel with poll-based timeouts.
//
// POSIX sockets only — on platforms without them every entry point throws.
// Nothing here knows about queries: bytes in, '\n'-terminated lines out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace c3::net {

/// Owning file descriptor (closed on destruction; move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { close(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on `address:port` (port 0 = kernel-assigned ephemeral).
/// Returns the listening socket; `*bound_port` receives the actual port.
/// Throws std::runtime_error naming the failing call.
[[nodiscard]] UniqueFd listen_tcp(const std::string& address, std::uint16_t port,
                                  int* bound_port, int backlog = 64);

/// Outcome of one accept attempt. The accept loop — not this helper — owns
/// retry policy, because recovering from fd exhaustion may require freeing
/// descriptors (reaping finished connections) that only the loop knows about.
enum class AcceptStatus {
  Accepted,         ///< `fd` holds the new connection
  Retry,            ///< one inbound connection died mid-handshake (ECONNABORTED/
                    ///< EPROTO) — the listener is fine, accept again
  RetryAfterDelay,  ///< fd/buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) —
                    ///< back off briefly, free resources if possible, retry
  Stopped,          ///< the listener was closed or shut down: the stop signal
};

struct AcceptResult {
  AcceptStatus status = AcceptStatus::Stopped;
  UniqueFd fd;  ///< valid only when status == Accepted
};

/// Accepts one connection (blocking, EINTR-transparent). Never returns
/// Retry/RetryAfterDelay for listener-fatal errors, and never Stopped for a
/// transient one — the distinction is what keeps a long-lived server's
/// accept loop from dying on a single aborted client or fd-limit blip.
[[nodiscard]] AcceptResult accept_connection(int listen_fd);

/// Wakes any thread blocked in accept_connection(listen_fd) — on Linux,
/// close() alone does NOT unblock a sleeping accept(); it sleeps on forever
/// against a dead fd. shutdown() forces it awake with an error, which
/// accept_connection turns into AcceptStatus::Stopped. Call this, then
/// close the fd.
void shutdown_listener(int listen_fd) noexcept;

/// Connects to `address:port`, waiting up to `timeout_seconds`. Throws
/// std::runtime_error on failure or timeout.
[[nodiscard]] UniqueFd connect_tcp(const std::string& address, std::uint16_t port,
                                   double timeout_seconds = 10.0);

/// Buffered, line-oriented view of one connected socket. Reads accumulate in
/// an internal buffer until a '\n' arrives (so short TCP segments cost no
/// extra syscalls once buffered); writes assemble the full line + '\n' and
/// send it in one loop. Not internally synchronized — one connection, one
/// thread — except shutdown(), which any thread may call to unblock a
/// blocked read.
class LineChannel {
 public:
  explicit LineChannel(UniqueFd fd, std::size_t max_line_bytes = 1 << 16)
      : fd_(std::move(fd)), max_line_(max_line_bytes) {}

  enum class ReadStatus {
    Line,     ///< `line` holds one complete line ('\n' and any '\r' stripped)
    Timeout,  ///< no complete line within the timeout
    Closed,   ///< peer closed (or shutdown() was called); no complete line left
    TooLong,  ///< a line exceeded max_line_bytes — protocol violation
    Failed,   ///< read error
  };

  /// Blocks up to `timeout_seconds` (<= 0: no timeout) for one line.
  [[nodiscard]] ReadStatus read_line(std::string& line, double timeout_seconds);

  /// Writes `line` plus '\n' fully; false on any send failure (SIGPIPE is
  /// suppressed — a vanished client is a return value, not a signal).
  [[nodiscard]] bool write_line(std::string_view line);

  /// Half-closes the read side from any thread: a blocked read_line returns
  /// Closed once the buffer holds no complete line, while responses already
  /// being written still flush — the graceful-shutdown knife.
  void shutdown_read() noexcept;

  /// Full shutdown (both directions).
  void shutdown() noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  UniqueFd fd_;
  std::string buffer_;
  std::size_t max_line_ = 1 << 16;
};

}  // namespace c3::net
