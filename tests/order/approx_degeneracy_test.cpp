// Tests for the (2+eps)-approximate degeneracy order (Lemma 4.2).
#include "order/approx_degeneracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/digraph.hpp"
#include "graph/gen/generators.hpp"
#include "order/degeneracy.hpp"

namespace c3 {
namespace {

TEST(ApproxDegeneracy, QualityGuaranteeOnRandomGraphs) {
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    const Graph g = chung_lu(1000, 8000, 0.6, seed);
    const node_t s = degeneracy_order(g).degeneracy;
    for (const double eps : {0.25, 0.5, 1.0}) {
      const ApproxDegeneracyResult r = approx_degeneracy_order(g, eps);
      EXPECT_LE(r.max_out_degree, static_cast<node_t>((2.0 + eps) * s) + 1)
          << "seed " << seed << " eps " << eps;
    }
  }
}

TEST(ApproxDegeneracy, ReportedQualityMatchesActualOrientation) {
  const Graph g = social_like(600, 4000, 0.3, 7);
  const ApproxDegeneracyResult r = approx_degeneracy_order(g, 0.5);
  const Digraph dag = Digraph::orient(g, r.order);
  EXPECT_EQ(dag.max_out_degree(), r.max_out_degree);
}

TEST(ApproxDegeneracy, OrderIsPermutation) {
  const Graph g = erdos_renyi(700, 3000, 9);
  const ApproxDegeneracyResult r = approx_degeneracy_order(g, 0.5);
  std::vector<bool> seen(g.num_nodes(), false);
  for (const node_t v : r.order) {
    ASSERT_LT(v, g.num_nodes());
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_EQ(r.order.size(), g.num_nodes());
}

TEST(ApproxDegeneracy, LogarithmicRounds) {
  const Graph g = chung_lu(20'000, 100'000, 0.6, 3);
  const ApproxDegeneracyResult r = approx_degeneracy_order(g, 0.5);
  // O(log_{1+eps/2} n) rounds; allow a generous constant.
  const double bound = 4.0 * std::log(static_cast<double>(g.num_nodes())) / std::log(1.25) + 10;
  EXPECT_LT(r.rounds, static_cast<node_t>(bound));
  EXPECT_GT(r.rounds, 1u);
}

TEST(ApproxDegeneracy, DeterministicAcrossRuns) {
  const Graph g = erdos_renyi(400, 1500, 17);
  const auto a = approx_degeneracy_order(g, 0.5);
  const auto b = approx_degeneracy_order(g, 0.5);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(ApproxDegeneracy, RejectsNonPositiveEps) {
  const Graph g = complete_graph(4);
  EXPECT_THROW((void)approx_degeneracy_order(g, 0.0), std::invalid_argument);
  EXPECT_THROW((void)approx_degeneracy_order(g, -1.0), std::invalid_argument);
}

TEST(ApproxDegeneracy, EmptyGraph) {
  const ApproxDegeneracyResult r = approx_degeneracy_order(Graph{}, 0.5);
  EXPECT_TRUE(r.order.empty());
  EXPECT_EQ(r.rounds, 0u);
}

TEST(ApproxDegeneracy, StarPeelsLeavesFirst) {
  const Graph g = star_graph(50);
  const ApproxDegeneracyResult r = approx_degeneracy_order(g, 0.5);
  // The center (degree 49 vs average < 2) must be peeled last.
  EXPECT_EQ(r.order.back(), 0u);
  EXPECT_EQ(r.max_out_degree, 1u);
}

}  // namespace
}  // namespace c3
