// Parallel comparison sort.
//
// A blocked merge sort: the input is cut into ~4p blocks, each sorted with
// std::sort, then merged pairwise in parallel rounds. Each pairwise merge is
// itself split across workers by binary-search partitioning (the classic
// parallel merge), giving O(n log n) work and O((n/p) log n + log^2 n) depth
// — the same primitive Cole's parallel merge sort provides in the paper's
// preprocessing analysis ("Sorting the communities", Section 2.2).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <vector>

#include "parallel/parallel.hpp"

namespace c3 {

namespace detail {

/// Merges [a_lo, a_hi) and [b_lo, b_hi) from `src` into `dst` starting at
/// `out`, splitting the merge into `pieces` independent chunks.
template <typename T, typename Cmp>
void parallel_merge(const T* src, std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
                    std::size_t b_hi, T* dst, std::size_t out, Cmp cmp, std::size_t pieces) {
  const std::size_t total = (a_hi - a_lo) + (b_hi - b_lo);
  if (pieces <= 1 || total < 8192) {
    std::merge(src + a_lo, src + a_hi, src + b_lo, src + b_hi, dst + out, cmp);
    return;
  }
  // Find, for each piece boundary, the (a, b) split positions such that the
  // prefix of the merged output of length `target` is exactly the union of
  // the two prefixes. Standard dual binary search on the rank.
  std::vector<std::size_t> asplit(pieces + 1), bsplit(pieces + 1);
  asplit[0] = a_lo;
  bsplit[0] = b_lo;
  asplit[pieces] = a_hi;
  bsplit[pieces] = b_hi;
  for (std::size_t p = 1; p < pieces; ++p) {
    std::size_t target = total * p / pieces;
    // Binary search the number of elements taken from A.
    std::size_t lo = target > (b_hi - b_lo) ? target - (b_hi - b_lo) : 0;
    std::size_t hi = std::min(target, a_hi - a_lo);
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      // Take mid from A and target-mid from B; valid if the boundary elements
      // interleave correctly.
      const std::size_t btake = target - mid;
      if (mid < a_hi - a_lo && btake > 0 && cmp(src[a_lo + mid], src[b_lo + btake - 1])) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    asplit[p] = a_lo + lo;
    bsplit[p] = b_lo + (target - lo);
  }
  parallel_for(
      0, pieces,
      [&](std::size_t p) {
        const std::size_t off = out + (asplit[p] - a_lo) + (bsplit[p] - b_lo);
        std::merge(src + asplit[p], src + asplit[p + 1], src + bsplit[p], src + bsplit[p + 1],
                   dst + off, cmp);
      },
      1);
}

}  // namespace detail

/// Sorts [first, last) in parallel. Not stable.
template <typename It, typename Cmp = std::less<>>
void parallel_sort(It first, It last, Cmp cmp = {}) {
  using T = typename std::iterator_traits<It>::value_type;
  const std::size_t n = static_cast<std::size_t>(std::distance(first, last));
  const int workers = num_workers();
  if (workers <= 1 || n < 1 << 14) {
    std::sort(first, last, cmp);
    return;
  }

  // Round block count up to a power of two so merge rounds pair up evenly.
  std::size_t blocks = 1;
  while (blocks < static_cast<std::size_t>(workers) * 4) blocks <<= 1;
  const std::size_t block_size = (n + blocks - 1) / blocks;

  T* data = &*first;
  std::vector<T> buffer(n);
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = std::min(n, b * block_size);
        const std::size_t hi = std::min(n, lo + block_size);
        std::sort(data + lo, data + hi, cmp);
      },
      1);

  // log2(blocks) merge rounds, ping-ponging between data and buffer.
  T* src = data;
  T* dst = buffer.data();
  for (std::size_t width = block_size; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    const std::size_t pieces = std::max<std::size_t>(1, static_cast<std::size_t>(workers) / pairs);
    parallel_for(
        0, pairs,
        [&](std::size_t pr) {
          const std::size_t lo = pr * 2 * width;
          const std::size_t mid = std::min(n, lo + width);
          const std::size_t hi = std::min(n, lo + 2 * width);
          detail::parallel_merge(src, lo, mid, mid, hi, dst, lo, cmp, pieces);
        },
        1);
    std::swap(src, dst);
  }
  if (src != data) {
    parallel_for(0, n, [&](std::size_t i) { data[i] = src[i]; });
  }
}

}  // namespace c3
