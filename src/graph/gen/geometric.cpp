// Spatial / numerical dataset stand-ins: the k-nearest-neighbor mesh
// (Gearbox) and the banded + dense-window matrix graph (Chebyshev4).
#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {

// k-nearest-neighbor graph of uniform points in the unit cube. To keep the
// neighbor search near-linear, points are bucketed into a uniform grid and
// candidates are drawn from the surrounding 3x3x3 cells — amply accurate for
// a structural stand-in. Produces the quasi-regular, low-T/E profile of FEM
// meshes (paper Table 2: Gearbox, T/E ~ 1).
Graph mesh_like(node_t n, node_t neighbors, std::uint64_t seed) {
  if (n < 2) return build_graph(EdgeList{}, n);
  struct Point {
    float x, y, z;
  };
  std::vector<Point> pts(n);
  Xoshiro256 rng(seed);
  for (node_t v = 0; v < n; ++v) {
    pts[v] = {static_cast<float>(rng.next_double()), static_cast<float>(rng.next_double()),
              static_cast<float>(rng.next_double())};
  }

  // Grid with ~1 expected point per cell.
  const auto cells_per_side =
      std::max<node_t>(1, static_cast<node_t>(std::cbrt(static_cast<double>(n))));
  const auto cell_of = [&](const Point& p) {
    const auto cx = std::min<node_t>(cells_per_side - 1,
                                     static_cast<node_t>(p.x * static_cast<float>(cells_per_side)));
    const auto cy = std::min<node_t>(cells_per_side - 1,
                                     static_cast<node_t>(p.y * static_cast<float>(cells_per_side)));
    const auto cz = std::min<node_t>(cells_per_side - 1,
                                     static_cast<node_t>(p.z * static_cast<float>(cells_per_side)));
    return (cx * cells_per_side + cy) * cells_per_side + cz;
  };

  const node_t num_cells = cells_per_side * cells_per_side * cells_per_side;
  std::vector<std::vector<node_t>> bucket(num_cells);
  for (node_t v = 0; v < n; ++v) bucket[cell_of(pts[v])].push_back(v);

  std::vector<std::vector<Edge>> per_vertex(n);
  parallel_for(
      0, n,
      [&](std::size_t v) {
        const Point& p = pts[v];
        const auto cx = std::min<node_t>(
            cells_per_side - 1, static_cast<node_t>(p.x * static_cast<float>(cells_per_side)));
        const auto cy = std::min<node_t>(
            cells_per_side - 1, static_cast<node_t>(p.y * static_cast<float>(cells_per_side)));
        const auto cz = std::min<node_t>(
            cells_per_side - 1, static_cast<node_t>(p.z * static_cast<float>(cells_per_side)));
        std::vector<std::pair<float, node_t>> cand;
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              const long long bx = static_cast<long long>(cx) + dx;
              const long long by = static_cast<long long>(cy) + dy;
              const long long bz = static_cast<long long>(cz) + dz;
              if (bx < 0 || by < 0 || bz < 0 || bx >= cells_per_side || by >= cells_per_side ||
                  bz >= cells_per_side)
                continue;
              const node_t cell = static_cast<node_t>((bx * cells_per_side + by) * cells_per_side + bz);
              for (const node_t w : bucket[cell]) {
                if (w == v) continue;
                const float ddx = p.x - pts[w].x;
                const float ddy = p.y - pts[w].y;
                const float ddz = p.z - pts[w].z;
                cand.emplace_back(ddx * ddx + ddy * ddy + ddz * ddz, w);
              }
            }
          }
        }
        const std::size_t keep = std::min<std::size_t>(neighbors, cand.size());
        std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(keep),
                          cand.end());
        for (std::size_t i = 0; i < keep; ++i)
          per_vertex[v].push_back(Edge{static_cast<node_t>(v), cand[i].second});
      },
      64);

  EdgeList edges;
  for (auto& pv : per_vertex) edges.insert(edges.end(), pv.begin(), pv.end());
  return build_graph(edges, n);
}

// Banded graph (bandwidth `band`) with dense windows of size `window` every
// `stride` positions along the diagonal, mimicking the local coupling blocks
// of spectral discretizations (paper Table 2: Chebyshev4, very high T/V).
Graph spectral_like(node_t n, node_t band, node_t window, node_t stride, std::uint64_t seed) {
  EdgeList edges;
  Xoshiro256 rng(seed);
  for (node_t u = 0; u < n; ++u) {
    const node_t hi = std::min<node_t>(n, u + band + 1);
    for (node_t v = u + 1; v < hi; ++v) edges.push_back(Edge{u, v});
  }
  if (window >= 2 && stride > 0) {
    for (node_t start = 0; start + window <= n; start += stride) {
      // Each window is a near-clique: drop ~10% of pairs at random so
      // windows are dense but not identical cliques.
      for (node_t i = 0; i < window; ++i) {
        for (node_t j = i + 1; j < window; ++j) {
          if (rng.next_double() < 0.9) {
            edges.push_back(Edge{static_cast<node_t>(start + i), static_cast<node_t>(start + j)});
          }
        }
      }
    }
  }
  return build_graph(edges, n);
}

}  // namespace c3
