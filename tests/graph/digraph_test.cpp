// Tests for graph orientation (Digraph).
#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

std::vector<node_t> identity_order(node_t n) {
  std::vector<node_t> order(n);
  std::iota(order.begin(), order.end(), node_t{0});
  return order;
}

TEST(Digraph, OrientByIdentityGoesUpward) {
  const Graph g = build_graph(EdgeList{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const Digraph dag = Digraph::orient(g, identity_order(4));
  EXPECT_EQ(dag.num_arcs(), g.num_edges());
  for (node_t u = 0; u < dag.num_nodes(); ++u) {
    for (const node_t v : dag.out_neighbors(u)) ASSERT_GT(v, u);
    for (const node_t v : dag.in_neighbors(u)) ASSERT_LT(v, u);
  }
  EXPECT_TRUE(dag.has_arc(0, 1));
  EXPECT_FALSE(dag.has_arc(1, 0));
}

TEST(Digraph, OrientByReverseOrderFlipsArcs) {
  const Graph g = build_graph(EdgeList{{0, 1}, {1, 2}});
  std::vector<node_t> reverse = {2, 1, 0};
  const Digraph dag = Digraph::orient(g, reverse);
  // Rank space: rank0 = vertex 2, rank1 = vertex 1, rank2 = vertex 0.
  EXPECT_EQ(dag.original_id(0), 2u);
  EXPECT_EQ(dag.original_id(2), 0u);
  EXPECT_TRUE(dag.has_arc(0, 1));  // edge {2,1} goes rank0 -> rank1
  EXPECT_TRUE(dag.has_arc(1, 2));  // edge {1,0} goes rank1 -> rank2
}

TEST(Digraph, DegreeSumsAndArcEndpoints) {
  const Graph g = erdos_renyi(200, 800, 5);
  const Digraph dag = Digraph::orient(g, identity_order(200));
  edge_t out_sum = 0, in_sum = 0;
  for (node_t v = 0; v < 200; ++v) {
    out_sum += dag.out_degree(v);
    in_sum += dag.in_degree(v);
    EXPECT_EQ(dag.out_degree(v) + dag.in_degree(v), g.degree(v));
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());

  for (edge_t e = 0; e < dag.num_arcs(); ++e) {
    const node_t u = dag.arc_source(e);
    const node_t v = dag.arc_target(e);
    ASSERT_LT(u, v);
    ASSERT_EQ(dag.arc_id(u, v), e);
  }
}

TEST(Digraph, InOutAdjacencySorted) {
  const Graph g = erdos_renyi(100, 400, 6);
  const Digraph dag = Digraph::orient(g, identity_order(100));
  for (node_t v = 0; v < 100; ++v) {
    const auto out = dag.out_neighbors(v);
    const auto in = dag.in_neighbors(v);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  }
}

TEST(Digraph, MaxOutDegree) {
  const Graph g = star_graph(10);  // center 0
  const Digraph dag = Digraph::orient(g, identity_order(10));
  EXPECT_EQ(dag.max_out_degree(), 9u);  // center first -> all arcs out
  // Center last: every leaf has out-degree 1.
  std::vector<node_t> center_last = {1, 2, 3, 4, 5, 6, 7, 8, 9, 0};
  const Digraph dag2 = Digraph::orient(g, center_last);
  EXPECT_EQ(dag2.max_out_degree(), 1u);
}

TEST(Digraph, RejectsNonPermutations) {
  const Graph g = build_graph(EdgeList{{0, 1}}, 3);
  EXPECT_THROW((void)Digraph::orient(g, std::vector<node_t>{0, 1}), std::invalid_argument);
  EXPECT_THROW((void)Digraph::orient(g, std::vector<node_t>{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)Digraph::orient(g, std::vector<node_t>{0, 1, 5}), std::invalid_argument);
}

}  // namespace
}  // namespace c3
