#include "graph/subgraph.hpp"

#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"

namespace c3 {

InducedSubgraph induced_subgraph(const Graph& g, std::span<const node_t> vertices) {
  std::unordered_map<node_t, node_t> local;
  local.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i] >= g.num_nodes())
      throw std::invalid_argument("induced_subgraph: vertex out of range");
    if (!local.emplace(vertices[i], static_cast<node_t>(i)).second)
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
  }

  EdgeList edges;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const node_t w : g.neighbors(vertices[i])) {
      const auto it = local.find(w);
      // Emit each edge once, from the lexicographically smaller local id.
      if (it != local.end() && static_cast<node_t>(i) < it->second)
        edges.push_back(Edge{static_cast<node_t>(i), it->second});
    }
  }

  InducedSubgraph out;
  out.graph = build_graph(edges, static_cast<node_t>(vertices.size()));
  out.to_parent.assign(vertices.begin(), vertices.end());
  return out;
}

}  // namespace c3
