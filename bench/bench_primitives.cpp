// google-benchmark microbenchmarks for the substrates: parallel primitives,
// graph construction, orders, triangle/community preprocessing.
#include <benchmark/benchmark.h>

#include <numeric>

#include "c3list.hpp"
#include "parallel/pack.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "util/bitkernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace c3;

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> in(n, 3), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exclusive_scan<std::uint64_t>(in, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 14)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base(n);
  Xoshiro256 rng(1);
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::uint64_t> data = base;
    state.ResumeTiming();
    parallel_sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 14)->Arg(1 << 19);

void BM_PackIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_index(n, [](std::size_t i) { return i % 3 == 0; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PackIndex)->Arg(1 << 20);

void BM_BuildGraph(benchmark::State& state) {
  const node_t n = 50'000;
  EdgeList edges;
  Xoshiro256 rng(7);
  for (int i = 0; i < 400'000; ++i) {
    edges.push_back(Edge{static_cast<node_t>(rng.next_below(n)),
                         static_cast<node_t>(rng.next_below(n))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_graph(edges, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) * state.iterations());
}
BENCHMARK(BM_BuildGraph);

void BM_DegeneracyOrder(benchmark::State& state) {
  const Graph g = chung_lu(100'000, 800'000, 0.6, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degeneracy_order(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_DegeneracyOrder);

void BM_ApproxDegeneracyOrder(benchmark::State& state) {
  const Graph g = chung_lu(100'000, 800'000, 0.6, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_degeneracy_order(g, 0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_ApproxDegeneracyOrder);

void BM_TriangleCount(benchmark::State& state) {
  const Graph g = social_like(50'000, 400'000, 0.4, 9);
  const Digraph dag = Digraph::orient(g, degeneracy_order(g).order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_TriangleCount);

void BM_BuildCommunities(benchmark::State& state) {
  const Graph g = social_like(50'000, 400'000, 0.4, 9);
  const Digraph dag = Digraph::orient(g, degeneracy_order(g).order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeCommunities::build(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_BuildCommunities);

void BM_CommunityDegeneracyOrder(benchmark::State& state) {
  const Graph g = social_like(20'000, 150'000, 0.4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(community_degeneracy_order(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_CommunityDegeneracyOrder);

/// Shared word buffers for the bit-kernel microbenches.
struct KernelBuffers {
  bits::KernelWords a, b, mask, dst;

  explicit KernelBuffers(std::size_t nwords) : a(nwords), b(nwords), mask(nwords), dst(nwords) {
    Xoshiro256 rng(42);
    for (std::size_t w = 0; w < nwords; ++w) {
      a[w] = rng();
      b[w] = rng();
      mask[w] = rng() | rng();
    }
  }
};

/// Args: {backend enum value, words per row}. Only backends the host can run
/// are registered, so every reported row is a real measurement.
void KernelArgs(benchmark::internal::Benchmark* b) {
  for (const bits::KernelBackend backend : bits::available_kernel_backends()) {
    for (const int words : {16, 128}) b->Args({static_cast<int>(backend), words});
  }
}

void BM_KernelPopcountAnd(benchmark::State& state) {
  const bits::KernelTable* table =
      bits::kernel_table(static_cast<bits::KernelBackend>(state.range(0)));
  const auto nwords = static_cast<std::size_t>(state.range(1));
  const KernelBuffers buf(nwords);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->popcount_and(buf.a.data(), buf.b.data(), nwords));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(2 * nwords * sizeof(std::uint64_t)) *
                          state.iterations());
  state.SetLabel(bits::kernel_backend_name(static_cast<bits::KernelBackend>(state.range(0))));
}
BENCHMARK(BM_KernelPopcountAnd)->Apply(KernelArgs);

void BM_KernelIntersectInterval(benchmark::State& state) {
  const bits::KernelTable* table =
      bits::kernel_table(static_cast<bits::KernelBackend>(state.range(0)));
  const auto nwords = static_cast<std::size_t>(state.range(1));
  KernelBuffers buf(nwords);
  const std::size_t lo = 3, hi = nwords * bits::kWordBits - 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->intersect_interval(buf.a.data(), buf.b.data(), buf.mask.data(),
                                                       buf.dst.data(), nwords, lo, hi));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(4 * nwords * sizeof(std::uint64_t)) *
                          state.iterations());
  state.SetLabel(bits::kernel_backend_name(static_cast<bits::KernelBackend>(state.range(0))));
}
BENCHMARK(BM_KernelIntersectInterval)->Apply(KernelArgs);

void BM_KernelIntersectAbove(benchmark::State& state) {
  const bits::KernelTable* table =
      bits::kernel_table(static_cast<bits::KernelBackend>(state.range(0)));
  const auto nwords = static_cast<std::size_t>(state.range(1));
  KernelBuffers buf(nwords);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->intersect_above(buf.a.data(), buf.mask.data(), buf.dst.data(), nwords, 5));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(3 * nwords * sizeof(std::uint64_t)) *
                          state.iterations());
  state.SetLabel(bits::kernel_backend_name(static_cast<bits::KernelBackend>(state.range(0))));
}
BENCHMARK(BM_KernelIntersectAbove)->Apply(KernelArgs);

void BM_ApproxCommunityDegeneracyOrder(benchmark::State& state) {
  const Graph g = social_like(20'000, 150'000, 0.4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_community_degeneracy_order(g, 0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_ApproxCommunityDegeneracyOrder);

}  // namespace
