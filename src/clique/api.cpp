#include "clique/api.hpp"

#include "clique/engine.hpp"

namespace c3 {

CliqueResult count_cliques(const Graph& g, int k, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).count(k);
}

CliqueResult list_cliques(const Graph& g, int k, const CliqueCallback& callback,
                          const CliqueOptions& opts) {
  return PreparedGraph(g, opts).list(k, callback);
}

const char* algorithm_name(Algorithm alg) noexcept {
  switch (alg) {
    case Algorithm::C3List:
      return "c3List";
    case Algorithm::C3ListCD:
      return "c3List-CD";
    case Algorithm::Hybrid:
      return "Hybrid";
    case Algorithm::KCList:
      return "kcList";
    case Algorithm::ArbCount:
      return "ArbCount";
    case Algorithm::BruteForce:
      return "BruteForce";
  }
  return "?";
}

}  // namespace c3
