// Tests for the brute-force reference enumerator itself (validated against
// hand-computed counts so it can anchor everything else).
#include "clique/bruteforce.hpp"

#include <gtest/gtest.h>

#include "clique/combinatorics.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(BruteForce, HandComputedSmallCases) {
  // Triangle with a tail: 0-1-2 triangle, 2-3.
  const Graph g = build_graph(EdgeList{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(brute_force_count(g, 1), 4u);
  EXPECT_EQ(brute_force_count(g, 2), 4u);
  EXPECT_EQ(brute_force_count(g, 3), 1u);
  EXPECT_EQ(brute_force_count(g, 4), 0u);

  // Two triangles sharing an edge.
  const Graph h = build_graph(EdgeList{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(brute_force_count(h, 3), 2u);
}

TEST(BruteForce, CompleteGraphBinomials) {
  const Graph g = complete_graph(9);
  for (int k = 0; k <= 10; ++k) {
    EXPECT_EQ(brute_force_count(g, k), k == 0 ? 0u : binomial(9, static_cast<count_t>(k)))
        << "k=" << k;
  }
}

TEST(BruteForce, TuranClosedForm) {
  for (const node_t r : {2, 3, 4}) {
    const Graph g = turan_graph(12, r);
    for (node_t k = 2; k <= r + 1; ++k) {
      EXPECT_EQ(brute_force_count(g, static_cast<int>(k)), cliques_in_turan(12, r, k))
          << "r=" << r << " k=" << k;
    }
  }
}

TEST(BruteForce, ListingEmitsSortedDistinctCliques) {
  const Graph g = complete_graph(5);
  std::vector<std::vector<node_t>> got;
  (void)brute_force_list(g, 3, [&](std::span<const node_t> c) {
    got.emplace_back(c.begin(), c.end());
    return true;
  });
  EXPECT_EQ(got.size(), binomial(5, 3));
  for (const auto& c : got) {
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  }
}

TEST(BruteForce, EarlyExitStopsEnumeration) {
  const Graph g = complete_graph(10);
  int calls = 0;
  (void)brute_force_list(g, 3, [&](std::span<const node_t>) { return ++calls < 2; });
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace c3
