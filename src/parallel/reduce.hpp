// Parallel reductions (map-reduce over an index range).
#pragma once

#include <cstddef>
#include <utility>

#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"

namespace c3 {

/// Computes combine(identity, map(begin), map(begin+1), ..., map(end-1)) in
/// parallel. `combine` must be associative and commutative; `identity` must
/// be its neutral element. O(n) work, O(log n + n/p) depth.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                                Combine&& combine, std::size_t grain = 4096) {
  PerWorker<T> partial(identity);
  parallel_for(
      begin, end,
      [&](std::size_t i) {
        T& acc = partial.local();
        acc = combine(std::move(acc), map(i));
      },
      grain);
  return partial.reduce(std::move(identity), combine);
}

/// Sum of map(i) over [begin, end).
template <typename T, typename Map>
[[nodiscard]] T parallel_sum(std::size_t begin, std::size_t end, Map&& map,
                             std::size_t grain = 4096) {
  return parallel_reduce(
      begin, end, T{}, std::forward<Map>(map), [](T a, T b) { return a + b; }, grain);
}

/// Maximum of map(i) over [begin, end); returns `lowest` for empty ranges.
template <typename T, typename Map>
[[nodiscard]] T parallel_max(std::size_t begin, std::size_t end, T lowest, Map&& map,
                             std::size_t grain = 4096) {
  return parallel_reduce(
      begin, end, lowest, std::forward<Map>(map), [](T a, T b) { return a < b ? b : a; }, grain);
}

}  // namespace c3
