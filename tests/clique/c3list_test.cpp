// Tests for the core community-centric algorithm (Algorithms 1 + 2).
#include "clique/c3list.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

TEST(C3List, CompleteGraphClosedForm) {
  const Graph g = complete_graph(12);
  for (int k = 3; k <= 12; ++k) {
    EXPECT_EQ(c3list_count(g, k).count, binomial(12, k)) << "k=" << k;
  }
  EXPECT_EQ(c3list_count(g, 13).count, 0u);
}

TEST(C3List, TrivialSizes) {
  const Graph g = erdos_renyi(100, 300, 1);
  EXPECT_EQ(c3list_count(g, 0).count, 0u);
  EXPECT_EQ(c3list_count(g, -3).count, 0u);
  EXPECT_EQ(c3list_count(g, 1).count, 100u);
  EXPECT_EQ(c3list_count(g, 2).count, 300u);
}

TEST(C3List, TriangleCountMatchesK3) {
  const Graph g = social_like(400, 3000, 0.4, 2);
  EXPECT_EQ(c3list_count(g, 3).count, brute_force_count(g, 3));
}

TEST(C3List, MatchesBruteForceAcrossSeedsAndK) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);  // dense enough for 6-cliques
    for (int k = 3; k <= 7; ++k) {
      EXPECT_EQ(c3list_count(g, k).count, brute_force_count(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(C3List, AllVertexOrdersAgree) {
  const Graph g = erdos_renyi(60, 500, 4);
  for (int k = 4; k <= 6; ++k) {
    CliqueOptions exact, approx, byid;
    exact.vertex_order = VertexOrderKind::ExactDegeneracy;
    approx.vertex_order = VertexOrderKind::ApproxDegeneracy;
    byid.vertex_order = VertexOrderKind::ById;
    const count_t a = c3list_count(g, k, exact).count;
    EXPECT_EQ(a, c3list_count(g, k, approx).count) << "k=" << k;
    EXPECT_EQ(a, c3list_count(g, k, byid).count) << "k=" << k;
  }
}

TEST(C3List, PruningAblationPreservesCounts) {
  const Graph g = social_like(200, 1500, 0.4, 6);
  for (int k = 4; k <= 6; ++k) {
    CliqueOptions with, without;
    with.distance_pruning = true;
    without.distance_pruning = false;
    CliqueResult rw = c3list_count(g, k, with);
    CliqueResult ro = c3list_count(g, k, without);
    EXPECT_EQ(rw.count, ro.count) << "k=" << k;
    // The pruned run must probe at most as many pairs.
    EXPECT_LE(rw.stats.pairs_probed, ro.stats.pairs_probed) << "k=" << k;
  }
}

TEST(C3List, PruningActuallyPrunesOnLargeK) {
  // For k close to gamma the distance criterion rejects most pairs.
  const Graph g = complete_graph(16);
  CliqueOptions with, without;
  with.distance_pruning = true;
  without.distance_pruning = false;
  const CliqueResult rw = c3list_count(g, 14, with);
  const CliqueResult ro = c3list_count(g, 14, without);
  EXPECT_EQ(rw.count, ro.count);
  EXPECT_LT(rw.stats.pairs_probed, ro.stats.pairs_probed / 2);
}

TEST(C3List, ListingMatchesCountingAndIsValid) {
  const Graph g = erdos_renyi(50, 380, 8);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = c3list_count(g, k).count;
    testing::CliqueCollector collector(g, k);
    const CliqueResult r = c3list_list(g, k, collector.callback());
    EXPECT_EQ(r.count, expect);
    collector.expect_valid(expect);
  }
}

TEST(C3List, ListingEarlyExitStops) {
  const Graph g = complete_graph(14);  // plenty of 5-cliques
  std::atomic<int> calls{0};
  const CliqueCallback stop_after_three = [&](std::span<const node_t>) {
    return calls.fetch_add(1) + 1 < 3;
  };
  (void)c3list_list(g, 5, stop_after_three);
  // At least 3 (the stop request), far fewer than the full count.
  EXPECT_GE(calls.load(), 3);
  EXPECT_LT(static_cast<count_t>(calls.load()), binomial(14, 5) / 2);
}

TEST(C3List, StatsAreCoherent) {
  const Graph g = social_like(300, 2200, 0.4, 3);
  const CliqueResult r = c3list_count(g, 5);
  EXPECT_EQ(r.stats.cliques, r.count);
  EXPECT_GE(r.stats.pairs_probed, r.stats.edges_matched);
  EXPECT_GT(r.stats.recursive_calls, 0u);
  EXPECT_GT(r.stats.gamma, 0u);
  // gamma <= max out-degree - 1 <= s - 1 under the exact degeneracy order.
  EXPECT_LT(r.stats.gamma, r.stats.order_quality + 1);
}

TEST(C3List, KAboveOmegaGivesZero) {
  const Graph g = turan_graph(20, 4);  // omega = 4
  EXPECT_GT(c3list_count(g, 4).count, 0u);
  EXPECT_EQ(c3list_count(g, 5).count, 0u);
  EXPECT_EQ(c3list_count(g, 10).count, 0u);
}

TEST(C3List, HandlesTriangleFreeGraphs) {
  EXPECT_EQ(c3list_count(hypercube(6), 3).count, 0u);
  EXPECT_EQ(c3list_count(hypercube(6), 4).count, 0u);
  EXPECT_EQ(c3list_count(grid_graph(10, 10), 3).count, 0u);
}

TEST(C3List, EmptyAndTinyGraphs) {
  EXPECT_EQ(c3list_count(Graph{}, 4).count, 0u);
  EXPECT_EQ(c3list_count(complete_graph(3), 4).count, 0u);
  EXPECT_EQ(c3list_count(complete_graph(4), 4).count, 1u);
  EXPECT_EQ(c3list_count(complete_graph(5), 4).count, 5u);
}

}  // namespace
}  // namespace c3
