#include "clique/vertex_counts.hpp"

#include "clique/engine.hpp"

namespace c3 {

std::vector<count_t> per_vertex_clique_counts(const Graph& g, int k, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).per_vertex_counts(k);
}

std::vector<count_t> per_edge_clique_counts(const Graph& g, int k, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).per_edge_counts(k);
}

}  // namespace c3
