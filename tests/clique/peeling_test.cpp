// Tests for the k-clique densest subgraph peeling extension.
#include "clique/peeling.hpp"

#include <gtest/gtest.h>

#include "clique/combinatorics.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Peeling, CompleteGraphIsItsOwnDensest) {
  const Graph g = complete_graph(10);
  const DensestResult r = kclique_densest_peeling(g, 3);
  EXPECT_EQ(r.vertices.size(), 10u);
  EXPECT_EQ(r.cliques, binomial(10, 3));
  EXPECT_DOUBLE_EQ(r.density, static_cast<double>(binomial(10, 3)) / 10.0);
}

TEST(Peeling, RecoversPlantedDenseCore) {
  // A 12-clique planted in sparse noise: the densest 4-clique subgraph is
  // (approximately) the planted core. The peeling guarantees a
  // 1/(k(1+eps)) approximation; the planted core's density is so far above
  // the background that the reported subgraph must reach it.
  std::vector<node_t> planted;
  const Graph g = planted_clique(400, 600, 12, 5, &planted);
  const DensestResult r = kclique_densest_peeling(g, 4, 0.5);
  const double planted_density = static_cast<double>(binomial(12, 4)) / 12.0;
  EXPECT_GE(r.density, planted_density / (4.0 * 1.5));
  EXPECT_GT(r.cliques, 0u);
  EXPECT_FALSE(r.vertices.empty());
}

TEST(Peeling, TriangleFreeGraphHasNoDenseSubgraph) {
  const DensestResult r = kclique_densest_peeling(hypercube(5), 3);
  EXPECT_EQ(r.cliques, 0u);
  EXPECT_EQ(r.density, 0.0);
}

TEST(Peeling, ReportedDensityConsistent) {
  const Graph g = bio_like(200, 800, 8, 15, 0.6, 9);
  const DensestResult r = kclique_densest_peeling(g, 3);
  if (!r.vertices.empty()) {
    EXPECT_NEAR(r.density,
                static_cast<double>(r.cliques) / static_cast<double>(r.vertices.size()), 1e-9);
  }
}

TEST(Peeling, RejectsBadArguments) {
  const Graph g = complete_graph(4);
  EXPECT_THROW((void)kclique_densest_peeling(g, 1), std::invalid_argument);
  EXPECT_THROW((void)kclique_densest_peeling(g, 3, 0.0), std::invalid_argument);
}

TEST(Peeling, TerminatesOnEmptyGraph) {
  const DensestResult r = kclique_densest_peeling(build_graph(EdgeList{}, 10), 3);
  EXPECT_EQ(r.cliques, 0u);
}

}  // namespace
}  // namespace c3
