// Directed acyclic graph obtained by orienting an undirected graph with a
// total vertex order (Section 1.1: "To orient a graph by a total order,
// direct its edges from the endpoint lower in the total order to the
// endpoint higher"). Acyclic by construction.
//
// Vertices are *renamed into rank space*: vertex r of the Digraph is the
// (r+1)-th vertex of the total order. This makes the order the natural `<`
// on ids, so "vertices ordered between u and v" (the paper's pruning
// criterion) is computable from ids/array indices alone, and both adjacency
// directions can be kept sorted ascending for merge intersections.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/array_store.hpp"

namespace c3 {

class Digraph {
 public:
  Digraph() = default;

  [[nodiscard]] node_t num_nodes() const noexcept {
    return out_offsets_.empty() ? 0 : static_cast<node_t>(out_offsets_.size() - 1);
  }

  /// Number of arcs = number of undirected edges m.
  [[nodiscard]] edge_t num_arcs() const noexcept { return out_adj_.size(); }

  /// Out-neighbors of u (all have rank > u), sorted ascending. The arc ids
  /// are the positions in this global array: arc e spans
  /// [out_offsets_[u], out_offsets_[u+1]) for its source u.
  [[nodiscard]] std::span<const node_t> out_neighbors(node_t u) const noexcept {
    return {out_adj_.data() + out_offsets_[u], out_adj_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of v (all have rank < v), sorted ascending.
  [[nodiscard]] std::span<const node_t> in_neighbors(node_t v) const noexcept {
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  [[nodiscard]] node_t out_degree(node_t u) const noexcept {
    return static_cast<node_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  [[nodiscard]] node_t in_degree(node_t v) const noexcept {
    return static_cast<node_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Largest out-degree (the paper's s-tilde); bounds every community size
  /// by s-tilde - 1.
  [[nodiscard]] node_t max_out_degree() const noexcept;

  /// O(log d) arc membership test, u -> v.
  [[nodiscard]] bool has_arc(node_t u, node_t v) const noexcept;

  /// Global arc id of u -> v (index into the out-adjacency array), or
  /// static_cast<edge_t>(-1) if absent.
  [[nodiscard]] edge_t arc_id(node_t u, node_t v) const noexcept;

  /// Source vertex of arc `e` — O(1) via the arc source table.
  [[nodiscard]] node_t arc_source(edge_t e) const noexcept { return arc_src_[e]; }

  /// Target vertex of arc `e`.
  [[nodiscard]] node_t arc_target(edge_t e) const noexcept { return out_adj_[e]; }

  /// Original (pre-renaming) vertex id of rank r.
  [[nodiscard]] node_t original_id(node_t r) const noexcept { return rank_to_orig_[r]; }

  [[nodiscard]] std::span<const node_t> rank_to_original() const noexcept { return rank_to_orig_; }

  [[nodiscard]] std::span<const edge_t> raw_out_offsets() const noexcept { return out_offsets_; }
  [[nodiscard]] std::span<const node_t> raw_out_adjacency() const noexcept { return out_adj_; }
  [[nodiscard]] std::span<const edge_t> raw_in_offsets() const noexcept { return in_offsets_; }
  [[nodiscard]] std::span<const node_t> raw_in_adjacency() const noexcept { return in_adj_; }
  [[nodiscard]] std::span<const node_t> raw_arc_sources() const noexcept { return arc_src_; }

  /// Orients `g` by a total order. `order[i]` is the vertex placed at rank i;
  /// it must be a permutation of all vertices.
  [[nodiscard]] static Digraph orient(const Graph& g, std::span<const node_t> order);

  /// Assembles a Digraph from complete prebuilt arrays without recomputation
  /// (the snapshot loader's path; arrays may be ArrayStore views over mapped
  /// memory). Invariants are the caller's responsibility.
  [[nodiscard]] static Digraph from_parts(ArrayStore<edge_t> out_offsets,
                                          ArrayStore<node_t> out_adj,
                                          ArrayStore<edge_t> in_offsets, ArrayStore<node_t> in_adj,
                                          ArrayStore<node_t> arc_src,
                                          ArrayStore<node_t> rank_to_orig);

 private:
  // ArrayStore so a snapshot-loaded Digraph can borrow mmap-backed sections.
  ArrayStore<edge_t> out_offsets_;  // n+1
  ArrayStore<node_t> out_adj_;      // m, per-vertex sorted, targets > source
  ArrayStore<edge_t> in_offsets_;   // n+1
  ArrayStore<node_t> in_adj_;       // m, per-vertex sorted, sources < target
  ArrayStore<node_t> arc_src_;      // m, source of each arc id
  ArrayStore<node_t> rank_to_orig_; // n, rank -> original vertex id
};

}  // namespace c3
