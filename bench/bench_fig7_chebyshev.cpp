// Regenerates Figure 7 of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Chebyshev4 (spectral scheme) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::chebyshev_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 7";
  cfg.paper_ref = "72T: c3List fastest for k>=7 (e.g. k=10: 14.29s vs 19.86/28.1); advantage grows with k";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
