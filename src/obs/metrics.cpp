#include "obs/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/run_stats.hpp"
#include "util/table.hpp"

namespace c3::obs {
namespace {

bool initial_enabled() noexcept {
  if (const char* env = std::getenv("C3_OBS"); env != nullptr) {
    const std::string_view v(env);
    if (v == "off" || v == "0" || v == "false") return false;
  }
  return true;
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { enabled_flag().store(on, std::memory_order_relaxed); }

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

// ----------------------------------------------------------------- histogram

void Histogram::observe(double seconds) noexcept {
  std::size_t index = 0;
  if (seconds > kMinSeconds) {
    const double octaves = std::log2(seconds / kMinSeconds);
    const auto raw = static_cast<long>(std::ceil(octaves * kBucketsPerOctave));
    index = raw < 0 ? 0 : std::min<std::size_t>(static_cast<std::size_t>(raw), kBuckets - 1);
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const auto whole_ns = ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0;
  sum_ns_.fetch_add(whole_ns, std::memory_order_relaxed);
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  return kMinSeconds * std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum_seconds() const noexcept {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::snapshot() const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const noexcept {
  const std::array<std::uint64_t, kBuckets> counts = snapshot();
  return quantile_from_log_buckets(counts.data(), kBuckets, q,
                                   [](std::size_t i) noexcept { return bucket_upper_bound(i); });
}

// ------------------------------------------------------------------ registry

namespace {

enum class MetricType { Counter, Gauge, Histogram };

const char* type_name(MetricType t) noexcept {
  switch (t) {
    case MetricType::Counter:
      return "counter";
    case MetricType::Gauge:
      return "gauge";
    case MetricType::Histogram:
      return "summary";
  }
  return "untyped";
}

struct AnyMetric {
  MetricType type;
  std::string labels;  // rendered body without braces; "" for none
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// One metric name with all its labeled series, in registration order.
struct Family {
  MetricType type = MetricType::Counter;
  std::vector<AnyMetric> series;
};

void append_sample(std::string& out, std::string_view name, std::string_view labels,
                   std::string_view extra_label, const std::string& value) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

std::string format_double(double v) {
  std::string s = strfmt("%.9g", v);
  return s;
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: deterministic (sorted) exposition order, stable node addresses.
  std::map<std::string, Family, std::less<>> families;

  AnyMetric& series(std::string_view name, std::string_view labels, MetricType type) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = families.find(name);
    Family& family = it != families.end()
                         ? it->second
                         : families.emplace(std::string(name), Family{type, {}}).first->second;
    if (family.type != type) {
      throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                             "' re-registered as a different type (" + type_name(family.type) +
                             " vs " + type_name(type) + ")");
    }
    for (AnyMetric& m : family.series) {
      if (m.labels == labels) return m;
    }
    AnyMetric metric;
    metric.type = type;
    metric.labels = std::string(labels);
    switch (type) {
      case MetricType::Counter:
        metric.counter = std::make_unique<Counter>();
        break;
      case MetricType::Gauge:
        metric.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::Histogram:
        metric.histogram = std::make_unique<Histogram>();
        break;
    }
    family.series.push_back(std::move(metric));
    return family.series.back();
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: record sites in static-destruction order (worker
  // threads, pool teardown) must never touch a destroyed registry.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  return *impl_->series(name, labels, MetricType::Counter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  return *impl_->series(name, labels, MetricType::Gauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels) {
  return *impl_->series(name, labels, MetricType::Histogram).histogram;
}

std::string Registry::render() const {
  std::string out;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, family] : impl_->families) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type_name(family.type);
    out += '\n';
    for (const AnyMetric& m : family.series) {
      switch (m.type) {
        case MetricType::Counter:
          append_sample(out, name, m.labels, {}, std::to_string(m.counter->value()));
          break;
        case MetricType::Gauge:
          append_sample(out, name, m.labels, {}, std::to_string(m.gauge->value()));
          break;
        case MetricType::Histogram: {
          const Histogram& h = *m.histogram;
          // Consistent snapshot is not required (scrapes race writes by
          // design), but quantiles come from one snapshot each.
          append_sample(out, name, m.labels, "quantile=\"0.5\"", format_double(h.quantile(0.5)));
          append_sample(out, name, m.labels, "quantile=\"0.95\"", format_double(h.quantile(0.95)));
          append_sample(out, name, m.labels, "quantile=\"0.99\"", format_double(h.quantile(0.99)));
          append_sample(out, std::string(name) + "_sum", m.labels, {},
                        format_double(h.sum_seconds()));
          append_sample(out, std::string(name) + "_count", m.labels, {},
                        std::to_string(h.count()));
          break;
        }
      }
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace c3::obs
