// Regenerates Table 2 of the paper: the dataset overview (|V|, |E|, |T|,
// degeneracy s, E/V, T/V, T/E) — over the synthetic stand-ins, printed next
// to the paper's original values for comparison.
#include <cstdio>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);

  std::printf("# Table 2 — overview of the selected graphs (synthetic stand-ins)\n");
  std::printf("# Each row prints our generated graph; the paper's original values follow in\n");
  std::printf("# parentheses in the notes column. Matching axes: E/V, T/V, T/E, s (shape, not\n");
  std::printf("# absolute size — stand-ins are ~50-500x smaller; see DESIGN.md Section 5).\n\n");

  const std::vector<c3::bench::Dataset> datasets = c3::bench::all_datasets(scale);
  c3::Table table({"Graph", "|V|", "|E|", "|T|", "s", "sigma", "E/V", "T/V", "T/E"});
  for (const c3::bench::Dataset& ds : datasets) {
    const c3::GraphStats s = c3::compute_stats(ds.graph);
    const c3::node_t sigma = c3::community_degeneracy(ds.graph);
    table.add_row({ds.name, c3::with_commas(s.nodes), c3::with_commas(s.edges),
                   c3::with_commas(s.triangles), std::to_string(s.degeneracy),
                   std::to_string(sigma), c3::strfmt("%.1f", s.edges_per_node),
                   c3::strfmt("%.1f", s.triangles_per_node),
                   c3::strfmt("%.1f", s.triangles_per_edge)});
  }
  table.print();

  std::printf("\n# paper's Table 2 for reference:\n");
  for (const c3::bench::Dataset& ds : datasets) {
    std::printf("#   %-16s %s\n", ds.name.c_str(), ds.paper_note.c_str());
  }
  return 0;
}
