// Tests for the ordering heuristics (Degree / Random / ById) beyond the
// degeneracy orders — correctness is order-independent, quality is not.
#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

const VertexOrderKind kAllOrders[] = {VertexOrderKind::ExactDegeneracy,
                                      VertexOrderKind::ApproxDegeneracy, VertexOrderKind::Degree,
                                      VertexOrderKind::Random, VertexOrderKind::ById};

TEST(OrderingHeuristics, AllOrdersGiveIdenticalCounts) {
  const Graph g = social_like(150, 1100, 0.45, 77);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    for (const VertexOrderKind order : kAllOrders) {
      for (const Algorithm alg : {Algorithm::C3List, Algorithm::KCList, Algorithm::ArbCount}) {
        CliqueOptions opts;
        opts.algorithm = alg;
        opts.vertex_order = order;
        EXPECT_EQ(count_cliques(g, k, opts).count, expect)
            << algorithm_name(alg) << " order " << static_cast<int>(order) << " k=" << k;
      }
    }
  }
}

TEST(OrderingHeuristics, DegeneracyOrderMinimizesOutDegreeOnSkewedGraphs) {
  // The degeneracy order's max out-degree (= s) lower-bounds every total
  // order's quality; the degree heuristic lands close on skewed graphs and
  // random/id orders degrade badly on hubs.
  const Graph g = chung_lu(2000, 14'000, 0.75, 5);
  auto quality = [&](VertexOrderKind order) {
    CliqueOptions opts;
    opts.vertex_order = order;
    return count_cliques(g, 4, opts).stats.order_quality;
  };
  const node_t exact = quality(VertexOrderKind::ExactDegeneracy);
  EXPECT_LE(exact, quality(VertexOrderKind::Degree));
  EXPECT_LE(exact, quality(VertexOrderKind::ApproxDegeneracy));
  EXPECT_LE(exact, quality(VertexOrderKind::Random));
  EXPECT_LT(exact, quality(VertexOrderKind::ById));  // hubs hurt id order
}

TEST(OrderingHeuristics, RandomOrderSeedIsDeterministic) {
  const Graph g = erdos_renyi(100, 600, 13);
  CliqueOptions a, b, c;
  a.vertex_order = b.vertex_order = c.vertex_order = VertexOrderKind::Random;
  a.order_seed = b.order_seed = 42;
  c.order_seed = 43;
  const CliqueResult ra = count_cliques(g, 5, a);
  const CliqueResult rb = count_cliques(g, 5, b);
  const CliqueResult rc = count_cliques(g, 5, c);
  EXPECT_EQ(ra.count, rb.count);
  EXPECT_EQ(ra.count, rc.count);
  // Same seed -> identical instrumented traversal; different seed -> almost
  // surely a different probe count on a graph this size.
  EXPECT_EQ(ra.stats.pairs_probed, rb.stats.pairs_probed);
  EXPECT_NE(ra.stats.pairs_probed, rc.stats.pairs_probed);
}

TEST(OrderingHeuristics, DegreeOrderOnStar) {
  // Degree order must peel leaves before the hub, giving out-degree 1 —
  // identical to the degeneracy order on a star.
  const Graph g = star_graph(64);
  CliqueOptions opts;
  opts.vertex_order = VertexOrderKind::Degree;
  EXPECT_EQ(count_cliques(g, 2, opts).count, 63u);
  EXPECT_EQ(count_cliques(g, 3, opts).count, 0u);
}

}  // namespace
}  // namespace c3
