// k-clique densest subgraph via parallel peeling.
//
// The k-clique densest subgraph problem (Tsourakakis; Mitzenmacher et al.;
// Shi et al.'s "peeling") asks for the vertex set S maximizing
// rho_k(S) = (#k-cliques in G[S]) / |S|. Peeling rounds — repeatedly remove
// all vertices whose k-clique count is at most (1+eps) * k * rho_k of the
// remaining graph, remembering the densest prefix — give a
// 1/(k (1+eps))-approximation in O(log n) rounds.
#pragma once

#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

struct DensestResult {
  /// Vertices of the best subgraph found (original ids).
  std::vector<node_t> vertices;
  /// Its k-clique density rho_k = cliques / |vertices|.
  double density = 0.0;
  /// k-cliques inside the reported subgraph.
  count_t cliques = 0;
  /// Number of peeling rounds executed.
  node_t rounds = 0;
};

/// Approximates the k-clique densest subgraph by peeling. `eps` > 0 trades
/// approximation for rounds.
[[nodiscard]] DensestResult kclique_densest_peeling(const Graph& g, int k, double eps = 1.0,
                                                    const CliqueOptions& opts = {});

}  // namespace c3
