// Unified one-shot entry points: dispatch a CliqueOptions::algorithm to the
// matching implementation. Both are thin wrappers over the plan/execute
// engine (engine.hpp) — they prepare, query once, and throw the preparation
// away. Callers issuing several queries against the same graph should hold a
// PreparedGraph instead. Most one-shot callers only need these two functions
// (and the umbrella header c3list.hpp re-exports everything else).
#pragma once

#include "clique/c3list.hpp"
#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

/// Counts all k-cliques of g with the selected algorithm.
[[nodiscard]] CliqueResult count_cliques(const Graph& g, int k, const CliqueOptions& opts = {});

/// Lists all k-cliques of g through `callback` with the selected algorithm.
[[nodiscard]] CliqueResult list_cliques(const Graph& g, int k, const CliqueCallback& callback,
                                        const CliqueOptions& opts = {});

/// Human-readable algorithm name (bench/table output).
[[nodiscard]] const char* algorithm_name(Algorithm alg) noexcept;

}  // namespace c3
