// Tests for the Section 4.2 hybrid scheme.
#include "clique/hybrid.hpp"

#include <gtest/gtest.h>

#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

TEST(Hybrid, CompleteGraphClosedForm) {
  const Graph g = complete_graph(11);
  for (int k = 3; k <= 11; ++k) {
    EXPECT_EQ(hybrid_count(g, k).count, binomial(11, k)) << "k=" << k;
  }
  EXPECT_EQ(hybrid_count(g, 12).count, 0u);
}

TEST(Hybrid, MatchesBruteForce) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);
    for (int k = 3; k <= 7; ++k) {
      EXPECT_EQ(hybrid_count(g, k).count, brute_force_count(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(Hybrid, OddAndEvenKBothWork) {
  // The hybrid searches (k-1)-cliques per vertex, exercising both parities
  // of the recursion (pair-growth plus the c=1/c=2 leaves).
  const Graph g = social_like(150, 1100, 0.45, 7);
  for (int k = 3; k <= 8; ++k) {
    EXPECT_EQ(hybrid_count(g, k).count, brute_force_count(g, k)) << "k=" << k;
  }
}

TEST(Hybrid, ListingMatchesCountingAndIsValid) {
  const Graph g = erdos_renyi(50, 380, 19);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    testing::CliqueCollector collector(g, k);
    const CliqueResult r = hybrid_list(g, k, collector.callback());
    EXPECT_EQ(r.count, expect) << "k=" << k;
    collector.expect_valid(expect);
  }
}

TEST(Hybrid, TrivialSizes) {
  const Graph g = erdos_renyi(60, 180, 23);
  EXPECT_EQ(hybrid_count(g, 1).count, 60u);
  EXPECT_EQ(hybrid_count(g, 2).count, 180u);
  EXPECT_EQ(hybrid_count(Graph{}, 5).count, 0u);
}

TEST(Hybrid, StatsReportApproxOrderQuality) {
  const Graph g = social_like(400, 3000, 0.4, 29);
  const CliqueResult r = hybrid_count(g, 5);
  EXPECT_GT(r.stats.order_quality, 0u);
  EXPECT_EQ(r.stats.top_level_tasks, g.num_nodes());
}

}  // namespace
}  // namespace c3
