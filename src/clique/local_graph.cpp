#include "clique/local_graph.hpp"

#include <algorithm>

namespace c3 {

void LocalGraph::reset(int n) {
  n_ = n;
  words_ = static_cast<int>(bits::words_for(static_cast<std::size_t>(n)));
  const std::size_t needed = static_cast<std::size_t>(n) * static_cast<std::size_t>(words_);
  if (rows_.size() < needed) rows_.resize(needed);
  std::fill(rows_.begin(), rows_.begin() + static_cast<std::ptrdiff_t>(needed), 0);
}

void build_local_graph(const Digraph& dag, std::span<const node_t> members, LocalGraph& lg) {
  const int n = static_cast<int>(members.size());
  lg.reset(n);
  for (int a = 0; a < n; ++a) {
    const auto out = dag.out_neighbors(members[static_cast<std::size_t>(a)]);
    // Two-pointer walk: members are sorted ascending and out-neighbors of
    // members[a] all rank above it, so matches have local id > a.
    std::size_t i = 0;
    std::size_t j = static_cast<std::size_t>(a) + 1;
    while (i < out.size() && j < members.size()) {
      if (out[i] < members[j]) {
        ++i;
      } else if (out[i] > members[j]) {
        ++j;
      } else {
        lg.add_edge(a, static_cast<int>(j));
        ++i;
        ++j;
      }
    }
  }
}

}  // namespace c3
