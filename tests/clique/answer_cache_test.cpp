// AnswerCache: key normalization (execution-only options collapse to one
// entry, result-shaping options and engine fingerprints keep entries apart),
// the truncated-answers-are-never-cached rule, LRU eviction order, counter
// accounting, and hammering one cache from many threads (the tsan surface).
#include "clique/answer_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

Query count_query(int k) {
  Query q;
  q.kind = QueryKind::Count;
  q.k = k;
  return q;
}

Answer count_answer(int k, count_t count, bool truncated = false) {
  Answer a;
  a.kind = QueryKind::Count;
  a.k = k;
  a.count = count;
  a.truncated = truncated;
  return a;
}

TEST(AnswerCacheKey, ExecutionOnlyOptionsCollapse) {
  // workers=, budget=, and the cancel token are how a query runs, not what
  // it asks — every spelling must map to the same key.
  Query plain = count_query(5);
  Query tuned = count_query(5);
  tuned.opts.max_workers = 8;
  tuned.opts.budget_seconds = 2.0;
  tuned.opts.cancel = std::make_shared<std::atomic<bool>>(false);

  const auto a = AnswerCache::make_key(7, plain);
  const auto b = AnswerCache::make_key(7, tuned);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  // limit= and witness= shape the answer; they must stay in the key.
  Query limited = count_query(5);
  limited.opts.result_limit = 10;
  EXPECT_NE(AnswerCache::make_key(7, limited).text, a.text);
  Query no_witness = count_query(5);
  no_witness.opts.want_witness = false;
  EXPECT_NE(AnswerCache::make_key(7, no_witness).text, a.text);
}

TEST(AnswerCacheKey, FingerprintSeparatesEngines) {
  // Same graph shape, different artifact-determining options (or ids) must
  // fingerprint differently; the same engine must fingerprint stably.
  const Graph g = erdos_renyi(80, 500, 9);
  CliqueOptions c3;
  c3.algorithm = Algorithm::C3List;
  CliqueOptions kclist;
  kclist.algorithm = Algorithm::KCList;
  const PreparedGraph a(g, c3);
  const PreparedGraph b(g, kclist);

  EXPECT_EQ(engine_fingerprint("g", a), engine_fingerprint("g", a));
  EXPECT_NE(engine_fingerprint("g", a), engine_fingerprint("g", b));
  EXPECT_NE(engine_fingerprint("g", a), engine_fingerprint("h", a));

  // Two entries under the same text but different fingerprints never mix.
  AnswerCache cache(64);
  const Query q = count_query(4);
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(1, q), count_answer(4, 100)));
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(2, q), count_answer(4, 200)));
  const auto one = cache.lookup(AnswerCache::make_key(1, q));
  const auto two = cache.lookup(AnswerCache::make_key(2, q));
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(one->count, 100u);
  EXPECT_EQ(two->count, 200u);
}

TEST(AnswerCache, HitMissInsertCountersAccount) {
  AnswerCache cache(16);
  const auto key = AnswerCache::make_key(3, count_query(4));

  EXPECT_FALSE(cache.lookup(key).has_value());
  ASSERT_TRUE(cache.insert(key, count_answer(4, 42)));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 42u);

  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Re-inserting the same key refreshes the value, not the entry count.
  ASSERT_TRUE(cache.insert(key, count_answer(4, 43)));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key)->count, 43u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(AnswerCache, NeverStoresTruncatedAnswers) {
  AnswerCache cache(16);
  const auto key = AnswerCache::make_key(1, count_query(5));
  EXPECT_FALSE(cache.insert(key, count_answer(5, 7, /*truncated=*/true)));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(AnswerCache, ZeroCapacityIsAnOffSwitch) {
  AnswerCache cache(0);
  const auto key = AnswerCache::make_key(1, count_query(3));
  EXPECT_FALSE(cache.insert(key, count_answer(3, 9)));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.size(), 0u);
  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);  // counters stay alive for the stats line
}

TEST(AnswerCache, EvictsLeastRecentlyUsedWithinAShard) {
  // One shard makes the LRU order observable: fill to capacity, refresh the
  // oldest entry with a lookup, insert one more — the refreshed entry must
  // survive and the second-oldest must be evicted.
  AnswerCache cache(3, /*shards=*/1);
  const auto k3 = AnswerCache::make_key(1, count_query(3));
  const auto k4 = AnswerCache::make_key(1, count_query(4));
  const auto k5 = AnswerCache::make_key(1, count_query(5));
  const auto k6 = AnswerCache::make_key(1, count_query(6));
  ASSERT_TRUE(cache.insert(k3, count_answer(3, 30)));
  ASSERT_TRUE(cache.insert(k4, count_answer(4, 40)));
  ASSERT_TRUE(cache.insert(k5, count_answer(5, 50)));
  EXPECT_EQ(cache.size(), 3u);

  ASSERT_TRUE(cache.lookup(k3).has_value());  // k3 is now most recent
  ASSERT_TRUE(cache.insert(k6, count_answer(6, 60)));

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(k3).has_value()) << "refreshed entry was evicted";
  EXPECT_FALSE(cache.lookup(k4).has_value()) << "LRU entry survived";
  EXPECT_TRUE(cache.lookup(k5).has_value());
  EXPECT_TRUE(cache.lookup(k6).has_value());
}

Query spectrum_query(int kmax = 0) {
  Query q;
  q.kind = QueryKind::Spectrum;
  q.kmax = kmax;
  return q;
}

/// A spectrum answer with counts[k] = per-k count (counts[0] = 0), as the
/// engine produces: omega = the largest k with a nonzero count.
Answer spectrum_answer(std::vector<count_t> counts) {
  Answer a;
  a.kind = QueryKind::Spectrum;
  a.spectrum.counts = std::move(counts);
  a.spectrum.omega = static_cast<node_t>(a.spectrum.counts.size() - 1);
  a.omega = a.spectrum.omega;
  a.count = a.spectrum.counts.back();
  return a;
}

TEST(AnswerCacheCrossK, CountServedFromCachedSpectrum) {
  AnswerCache cache(16);
  const std::uint64_t fp = 5;
  // An unclamped spectrum (kmax=0) proves every k it does not list is zero.
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query()),
                           spectrum_answer({0, 10, 25, 7})));  // omega = 3

  // In-range k: served straight from the spectrum row, counted as a hit AND
  // a cross-k hit, never as a miss.
  const Query q2 = count_query(2);
  const auto hit = cache.lookup(AnswerCache::make_key(fp, q2), q2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, QueryKind::Count);
  EXPECT_EQ(hit->k, 2);
  EXPECT_EQ(hit->count, 25u);
  EXPECT_EQ(hit->stats.cliques, 25u);
  EXPECT_FALSE(hit->truncated);

  // Beyond omega: the complete spectrum proves the count is zero.
  const Query q7 = count_query(7);
  const auto zero = cache.lookup(AnswerCache::make_key(fp, q7), q7);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->count, 0u);

  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.cross_k_hits, 2u);
  EXPECT_EQ(s.misses, 0u);

  // A foreign fingerprint must not borrow the spectrum.
  EXPECT_FALSE(cache.lookup(AnswerCache::make_key(fp + 1, q2), q2).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnswerCacheCrossK, ExactEntryWinsOverSpectrum) {
  AnswerCache cache(16);
  const std::uint64_t fp = 9;
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query()),
                           spectrum_answer({0, 4, 6})));
  const Query q = count_query(2);
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, q), count_answer(2, 6)));

  const auto hit = cache.lookup(AnswerCache::make_key(fp, q), q);
  ASSERT_TRUE(hit.has_value());
  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.cross_k_hits, 0u) << "exact hit must not count as cross-k";
}

TEST(AnswerCacheCrossK, ClampedSpectrumNeverExtrapolates) {
  AnswerCache cache(16);
  const std::uint64_t fp = 13;
  // kmax == omega: the spectrum hit its clamp, so k > kmax was never probed
  // — serving 0 for it would be a wrong answer, not a cache win.
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query(3)),
                           spectrum_answer({0, 8, 12, 5})));  // omega = 3 = kmax

  const Query in_range = count_query(2);
  const auto hit = cache.lookup(AnswerCache::make_key(fp, in_range), in_range);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 12u);

  const Query beyond = count_query(5);
  EXPECT_FALSE(cache.lookup(AnswerCache::make_key(fp, beyond), beyond).has_value());

  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.cross_k_hits, 1u);
  EXPECT_EQ(s.misses, 1u);

  // A clamped spectrum that stopped *short* of its clamp is complete: omega
  // < kmax proves there is nothing above omega.
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query(9)),
                           spectrum_answer({0, 8, 12, 5})));  // omega 3 < kmax 9
  const auto zero = cache.lookup(AnswerCache::make_key(fp, beyond), beyond);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->count, 0u);
}

TEST(AnswerCacheCrossK, EvictedSpectrumDegradesToAMiss) {
  AnswerCache cache(1, /*shards=*/1);  // one slot: the next insert evicts
  const std::uint64_t fp = 21;
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query()),
                           spectrum_answer({0, 3, 5})));
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, count_query(9)), count_answer(9, 0)));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The note outlived its spectrum entry; the lookup must miss (not serve
  // stale data) and the orphaned note is dropped for the next caller.
  const Query q = count_query(2);
  EXPECT_FALSE(cache.lookup(AnswerCache::make_key(fp, q), q).has_value());
  EXPECT_FALSE(cache.lookup(AnswerCache::make_key(fp, q), q).has_value());
  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.cross_k_hits, 0u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(AnswerCacheCrossK, OnlyCountQueriesBorrowSpectra) {
  AnswerCache cache(16);
  const std::uint64_t fp = 31;
  ASSERT_TRUE(cache.insert(AnswerCache::make_key(fp, spectrum_query()),
                           spectrum_answer({0, 3, 5})));
  Query list;
  list.kind = QueryKind::List;
  list.k = 2;
  EXPECT_FALSE(cache.lookup(AnswerCache::make_key(fp, list), list).has_value());
  EXPECT_EQ(cache.stats().cross_k_hits, 0u);
}

TEST(AnswerCache, ConcurrentLookupsAndInsertsStayConsistent) {
  // Many threads mixing hits, misses, inserts, and evictions on one cache;
  // every lookup that returns must return the value stored for that key.
  AnswerCache cache(32, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kReps = 400;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        const int k = 3 + (t * 31 + rep) % kKeys;
        const auto key = AnswerCache::make_key(11, count_query(k));
        if (const auto found = cache.lookup(key)) {
          if (found->count != static_cast<count_t>(k) * 10) {
            failures[t] = "lookup returned a foreign answer";
          }
        } else {
          (void)cache.insert(key, count_answer(k, static_cast<count_t>(k) * 10));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  const AnswerCacheStats s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.evictions, 0u) << "capacity 32 under 64 keys must evict";
  EXPECT_LE(s.entries, 32u);
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kReps);
}

}  // namespace
}  // namespace c3
