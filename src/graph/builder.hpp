// Parallel construction of CSR graphs from edge lists.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

/// Builds a simple undirected Graph from an arbitrary edge list.
///
/// The input may contain self-loops, duplicate edges, and both orientations
/// of the same edge; all are normalized away (self-loops dropped, duplicates
/// merged). Vertex ids must be < `num_nodes`; if `num_nodes` is 0 it is
/// inferred as max id + 1.
///
/// Parallel pipeline: per-vertex degree counting (atomic histogram), offset
/// scan, scatter, per-vertex sort + dedup, compaction — O(m log d) work,
/// polylog depth given the scan/pack substrate.
[[nodiscard]] Graph build_graph(std::span<const Edge> edges, node_t num_nodes = 0);

/// Convenience overload.
[[nodiscard]] inline Graph build_graph(const EdgeList& edges, node_t num_nodes = 0) {
  return build_graph(std::span<const Edge>(edges.data(), edges.size()), num_nodes);
}

}  // namespace c3
