// Benchmark dataset stand-ins (DESIGN.md Section 5).
//
// One factory per graph of the paper's Table 2, built from the library's
// generators and calibrated on the structural axes the paper reports
// (|E|/|V|, |T|/|V|, |T|/|E|, degeneracy s). Scaled ~50-500x below the real
// datasets so the full k = 6..10 x 3-algorithm sweep finishes on one core;
// `--scale` multiplies the vertex/edge budgets for larger machines.
//
// Real social/collaboration/topology graphs owe their large cliques to
// dense overlapping communities (author teams, forums, exchange points); the
// pure degree-matched skeletons lack those, so the stand-ins overlay
// power-law-sized community cliques — that is what makes k = 10 counting
// non-trivial, exactly as in the originals.
#pragma once

#include <string>
#include <vector>

#include "c3list.hpp"
#include "util/rng.hpp"

namespace c3::bench {

/// Overlays `count` random community cliques (sizes in [min_size, max_size],
/// power-law biased toward small) onto a base graph.
[[nodiscard]] inline Graph overlay_communities(const Graph& base, count_t count, node_t min_size,
                                               node_t max_size, std::uint64_t seed) {
  EdgeList edges(base.endpoints().begin(), base.endpoints().end());
  Xoshiro256 rng(seed);
  const node_t n = base.num_nodes();
  for (count_t c = 0; c < count; ++c) {
    const double x = rng.next_double();
    const auto size = static_cast<node_t>(
        static_cast<double>(min_size) +
        (static_cast<double>(max_size) - static_cast<double>(min_size)) * x * x * x);
    std::vector<node_t> members(size);
    for (auto& v : members) v = static_cast<node_t>(rng.next_below(n));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) edges.push_back(Edge{members[i], members[j]});
      }
    }
  }
  return build_graph(edges, n);
}

/// The small CI smoke graphs shared by the perf-trajectory benches
/// (bench_prepared_sweep -> BENCH_pr2.json, bench_concurrent_queries ->
/// BENCH_pr3.json): one list so the two baselines can never drift onto
/// different inputs.
struct SmokeGraph {
  std::string name;
  Graph graph;
};

[[nodiscard]] inline std::vector<SmokeGraph> smoke_graphs() {
  return {
      {"social_like", social_like(3000, 24'000, 0.4, 7)},
      {"erdos_renyi", erdos_renyi(2000, 20'000, 11)},
      {"barabasi_albert", barabasi_albert(3000, 6, 13)},
  };
}

struct Dataset {
  std::string name;        ///< paper dataset this stands in for
  std::string generator;   ///< how the substitute is built
  std::string paper_note;  ///< the paper's Table 2 row (for EXPERIMENTS.md)
  Graph graph;
};

/// Orkut (social network; paper: 3.1M / 117.2M / 627.6M triangles / s=253).
[[nodiscard]] inline Dataset orkut_like(double scale = 1.0) {
  const auto n = static_cast<node_t>(14'000 * scale);
  const auto m = static_cast<edge_t>(220'000 * scale);
  Graph g = social_like(n, m, 0.5, 0x02C0DE01);
  g = overlay_communities(g, static_cast<count_t>(1'800 * scale), 5, 21, 0x02C0DE02);
  return {"Orkut", "social_like + community overlay",
          "paper: |V|=3.1M |E|=117.2M |T|=627.6M s=253 E/V=38.1 T/V=204.6 T/E=5.4",
          std::move(g)};
}

/// Ca-DBLP-2012 (collaboration; paper: 317K / 1M / 2.2M / s=113).
[[nodiscard]] inline Dataset dblp_like(double scale = 1.0) {
  const auto authors = static_cast<node_t>(26'000 * scale);
  const auto papers = static_cast<count_t>(14'000 * scale);
  Graph g = collaboration_like(authors, papers, 20, 0xDB1F01);
  return {"Ca-DBLP-2012", "collaboration_like (union of author-team cliques)",
          "paper: |V|=317K |E|=1M |T|=2.2M s=113 E/V=3.3 T/V=7 T/E=2.1", std::move(g)};
}

/// Tech-As-Skitter (internet topology; paper: 1.7M / 11.1M / 28.8M / s=111).
[[nodiscard]] inline Dataset skitter_like(double scale = 1.0) {
  const auto n = static_cast<node_t>(26'000 * scale);
  Graph g = topology_like(n, 4, 0.9, 0x5C177E01);
  g = overlay_communities(g, static_cast<count_t>(900 * scale), 6, 21, 0x5C177E02);
  return {"Tech-As-Skitter", "topology_like (pref. attachment + closure) + IXP-like cliques",
          "paper: |V|=1.7M |E|=11.1M |T|=28.8M s=111 E/V=6.5 T/V=17 T/E=2.6", std::move(g)};
}

/// Gearbox (FEM mesh; paper: 153.7K / 4.5M / 4.6M / s=44).
[[nodiscard]] inline Dataset gearbox_like(double scale = 1.0) {
  const auto n = static_cast<node_t>(9'000 * scale);
  Graph g = mesh_like(n, 36, 0x6EA2B0);
  return {"Gearbox", "mesh_like (kNN graph of 3D points)",
          "paper: |V|=153.7K |E|=4.5M |T|=4.6M s=44 E/V=29 T/V=30 T/E=1", std::move(g)};
}

/// Chebyshev4 (spectral scheme; paper: 68K / 1.9M / 28.9M / s=68).
[[nodiscard]] inline Dataset chebyshev_like(double scale = 1.0) {
  const auto n = static_cast<node_t>(7'000 * scale);
  Graph g = spectral_like(n, 7, 22, 9, 0xC4EB01);
  return {"Chebyshev4", "spectral_like (banded + overlapping dense windows)",
          "paper: |V|=68K |E|=1.9M |T|=28.9M s=68 E/V=28.9 T/V=424.2 T/E=14.7", std::move(g)};
}

/// Jester2 (joke-rating projection; paper: 50.1K / 1.7M / 35.6M / s=128).
[[nodiscard]] inline Dataset jester_like(double scale = 1.0) {
  const auto users = static_cast<node_t>(2'500 * scale);
  Graph g = rating_projection(users, 150, 6, 0x1E57E2, /*projection_window=*/16);
  return {"Jester2", "rating_projection (bipartite user-item co-rating projection)",
          "paper: |V|=50.1K |E|=1.7M |T|=35.6M s=128 E/V=34.1 T/V=703.3 T/E=20.6",
          std::move(g)};
}

/// Bio-SC-HT (gene associations; paper: 2084 / 63K / 1.4M / s=100).
[[nodiscard]] inline Dataset bio_sc_ht_like(double scale = 1.0) {
  const auto n = static_cast<node_t>(1'700 * scale);
  Graph g = bio_like(n, static_cast<edge_t>(16'000 * scale), static_cast<node_t>(120 * scale), 26,
                     0.92, 0xB105C0);
  return {"Bio-SC-HT", "bio_like (Chung-Lu background + dense functional modules)",
          "paper: |V|=2084 |E|=63K |T|=1.4M s=100 E/V=30.2 T/V=670.7 T/E=22.2", std::move(g)};
}

/// All seven, in the paper's Table 2 order.
[[nodiscard]] inline std::vector<Dataset> all_datasets(double scale = 1.0) {
  std::vector<Dataset> out;
  out.push_back(orkut_like(scale));
  out.push_back(dblp_like(scale));
  out.push_back(skitter_like(scale));
  out.push_back(gearbox_like(scale));
  out.push_back(chebyshev_like(scale));
  out.push_back(jester_like(scale));
  out.push_back(bio_sc_ht_like(scale));
  return out;
}

}  // namespace c3::bench
