#include "clique/bruteforce.hpp"

#include <algorithm>
#include <vector>

namespace c3 {
namespace {

struct BruteState {
  const Graph* g;
  const CliqueCallback* callback;
  std::vector<node_t> stack;
  count_t found = 0;
  bool stopped = false;
};

/// Extends the current partial clique (st.stack) with `need` more vertices
/// drawn from `cands` (sorted, all adjacent to everything on the stack and
/// id-above the stack top).
void extend(BruteState& st, const std::vector<node_t>& cands, int need) {
  if (need == 0) {
    ++st.found;
    if (st.callback != nullptr && !(*st.callback)(std::span<const node_t>(st.stack)))
      st.stopped = true;
    return;
  }
  if (static_cast<int>(cands.size()) < need) return;
  std::vector<node_t> next;
  for (std::size_t i = 0; i < cands.size() && !st.stopped; ++i) {
    const node_t v = cands[i];
    // next = {w in cands, w > v, w adjacent to v}
    next.clear();
    const auto nbrs = st.g->neighbors(v);
    std::set_intersection(cands.begin() + static_cast<std::ptrdiff_t>(i) + 1, cands.end(),
                          nbrs.begin(), nbrs.end(), std::back_inserter(next));
    st.stack.push_back(v);
    extend(st, next, need - 1);
    st.stack.pop_back();
  }
}

count_t run(const Graph& g, int k, const CliqueCallback* callback) {
  if (k <= 0) return 0;
  BruteState st;
  st.g = &g;
  st.callback = callback;
  std::vector<node_t> all(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) all[v] = v;
  extend(st, all, k);
  return st.found;
}

}  // namespace

count_t brute_force_count(const Graph& g, int k) { return run(g, k, nullptr); }

count_t brute_force_list(const Graph& g, int k, const CliqueCallback& callback) {
  return run(g, k, &callback);
}

}  // namespace c3
