// Internal helper shared by the clique algorithms: resolve a
// VertexOrderKind (including Default) into a concrete total order.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"
#include "order/approx_degeneracy.hpp"
#include "order/degeneracy.hpp"
#include "util/rng.hpp"

namespace c3 {

/// Returns the total vertex order for `opts.vertex_order`, substituting
/// `fallback` (the algorithm's paper-native order) for Default.
[[nodiscard]] inline std::vector<node_t> make_vertex_order(const Graph& g, VertexOrderKind kind,
                                                           double eps, VertexOrderKind fallback,
                                                           std::uint64_t seed = 1) {
  if (kind == VertexOrderKind::Default) kind = fallback;
  switch (kind) {
    case VertexOrderKind::ApproxDegeneracy:
      return approx_degeneracy_order(g, eps).order;
    case VertexOrderKind::Degree: {
      // Non-decreasing degree, ties by id — the cheap heuristic studied by
      // Li et al.; like the degeneracy order it keeps out-degrees low on
      // skewed graphs, but with no worst-case guarantee.
      std::vector<node_t> order(g.num_nodes());
      std::iota(order.begin(), order.end(), node_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](node_t a, node_t b) { return g.degree(a) < g.degree(b); });
      return order;
    }
    case VertexOrderKind::Random: {
      // Uniform random permutation keyed by hashed (id, seed): deterministic
      // and thread-count independent.
      std::vector<node_t> order(g.num_nodes());
      std::iota(order.begin(), order.end(), node_t{0});
      std::sort(order.begin(), order.end(), [&](node_t a, node_t b) {
        const std::uint64_t ha = hash64(a ^ (seed << 32));
        const std::uint64_t hb = hash64(b ^ (seed << 32));
        return ha != hb ? ha < hb : a < b;
      });
      return order;
    }
    case VertexOrderKind::ById: {
      std::vector<node_t> order(g.num_nodes());
      std::iota(order.begin(), order.end(), node_t{0});
      return order;
    }
    case VertexOrderKind::Default:
    case VertexOrderKind::ExactDegeneracy:
    default:
      return degeneracy_order(g).order;
  }
}

}  // namespace c3
