// Parallel triangle counting (Section 2.2 preprocessing: "We can compute the
// triangles of a graph in O(m s~) work and O(log^2 n) depth").
#pragma once

#include "graph/digraph.hpp"
#include "graph/types.hpp"

namespace c3 {

/// Counts the triangles of the underlying undirected graph. Each triangle
/// {a, b, c} with ranks a < b < c is counted once at its lowest arc (a, b)
/// by intersecting the out-neighborhoods of a and b. O(m * max-out-degree)
/// work, polylog depth over the arc-parallel loop.
[[nodiscard]] count_t count_triangles(const Digraph& dag);

/// Invokes f(a, b, c) for every triangle, with a < b < c in rank space.
/// f may be called concurrently from multiple workers.
template <typename F>
void for_each_triangle(const Digraph& dag, F&& f);

}  // namespace c3

#include "triangle/triangle_count_impl.hpp"
