# CLI-level test of c3tool's snapshot round trip driven by ctest:
#   gen -> prepare -> inspect (human-readable header/fingerprint/sections)
#   -> batch --snapshot with the typed query grammar and warm-up hints.
# Failures print the command output; any unexpected exit code or missing
# marker string fails the test. Driven with -DC3TOOL=<binary> -DWORK_DIR=<dir>.
if(NOT DEFINED C3TOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DC3TOOL=<c3tool> -DWORK_DIR=<dir> -P c3tool_cli_test.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_c3tool expect_rc out_var)
  execute_process(
    COMMAND ${C3TOOL} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "c3tool ${ARGN}: exit ${rc}, expected ${expect_rc}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}\n${err}" PARENT_SCOPE)
endfunction()

function(expect_match text pattern)
  if(NOT "${text}" MATCHES "${pattern}")
    message(FATAL_ERROR "expected output to match '${pattern}', got:\n${text}")
  endif()
endfunction()

# gen + prepare: a small social graph, prepared for the default c3list.
run_c3tool(0 out gen --kind social --n 400 --m 3200 --seed 5 --out g.txt)
run_c3tool(0 out prepare --in g.txt --out g.c3snap)
expect_match("${out}" "prepared g.txt with c3List")

# inspect: header, fingerprint, artifact names, and section table.
run_c3tool(0 out inspect --in g.c3snap)
expect_match("${out}" "c3 snapshot v1")
expect_match("${out}" "400 vertices")
expect_match("${out}" "fingerprint: alg c3List")
expect_match("${out}" "artifacts \\(mask 0x[0-9a-f]+\\): dag communities")
expect_match("${out}" "graph.offsets")

# inspect must refuse a non-snapshot file with a precise message.
run_c3tool(1 out inspect --in g.txt)
expect_match("${out}" "bad magic")

# batch over the snapshot with the typed grammar: per-query worker caps,
# list limits, and the warm-up hints on open.
file(WRITE ${WORK_DIR}/q.txt
  "# typed query file\n"
  "count 3\n"
  "count 4 workers=2\n"
  "list 3 limit=5\n"
  "hasclique 3\n"
  "spectrum 5\n"
  "maxclique witness=0\n")
run_c3tool(0 out batch --snapshot g.c3snap --queries q.txt --prefault --mlock)
expect_match("${out}" "count 4 workers=2")
expect_match("${out}" "list 3: 5 cliques \\[truncated\\]")
expect_match("${out}" "6 queries")
expect_match("${out}" "snapshot")

# a malformed query line is a hard error naming the offending token.
file(WRITE ${WORK_DIR}/bad.txt "count 4\ncuont 5\n")
run_c3tool(2 out batch --snapshot g.c3snap --queries bad.txt)
expect_match("${out}" "line 2")
expect_match("${out}" "cuont")

message(STATUS "c3tool CLI test passed")
