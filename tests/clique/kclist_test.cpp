// Tests for the kcList baseline (Danisch et al.).
#include "clique/kclist.hpp"

#include <gtest/gtest.h>

#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

TEST(KCList, CompleteGraphClosedForm) {
  const Graph g = complete_graph(11);
  for (int k = 3; k <= 11; ++k) {
    EXPECT_EQ(kclist_count(g, k).count, binomial(11, k)) << "k=" << k;
  }
}

TEST(KCList, MatchesBruteForce) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);
    for (int k = 3; k <= 7; ++k) {
      EXPECT_EQ(kclist_count(g, k).count, brute_force_count(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KCList, WorksWithApproximateOrderToo) {
  const Graph g = erdos_renyi(60, 500, 4);
  CliqueOptions approx;
  approx.vertex_order = VertexOrderKind::ApproxDegeneracy;
  for (int k = 4; k <= 6; ++k) {
    EXPECT_EQ(kclist_count(g, k, approx).count, kclist_count(g, k).count) << "k=" << k;
  }
}

TEST(KCList, ListingMatchesCountingAndIsValid) {
  const Graph g = erdos_renyi(50, 380, 31);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    testing::CliqueCollector collector(g, k);
    const CliqueResult r = kclist_list(g, k, collector.callback());
    EXPECT_EQ(r.count, expect) << "k=" << k;
    collector.expect_valid(expect);
  }
}

TEST(KCList, TrivialSizesAndEmpty) {
  const Graph g = erdos_renyi(40, 100, 37);
  EXPECT_EQ(kclist_count(g, 1).count, 40u);
  EXPECT_EQ(kclist_count(g, 2).count, 100u);
  EXPECT_EQ(kclist_count(Graph{}, 5).count, 0u);
  EXPECT_EQ(kclist_count(hypercube(5), 3).count, 0u);
}

TEST(KCList, RejectsAbsurdK) { EXPECT_THROW((void)kclist_count(complete_graph(4), 300), std::invalid_argument); }

}  // namespace
}  // namespace c3
