// Tests for RunStats, the shared histogram-quantile interpolation, Table
// formatting, and the CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/cli.hpp"
#include "util/run_stats.hpp"
#include "util/table.hpp"

namespace c3 {
namespace {

TEST(RunStats, KnownMeanAndStddev) {
  RunStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.rel_stddev(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
}

TEST(RunStats, EmptyAndSingle) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

// quantile_from_log_buckets: the interpolation obs::Histogram::quantile is
// built on. Buckets here use upper bound 2^i (lower(0) = 0), so expected
// values are easy to compute by hand.
namespace {
double pow2_bound(std::size_t i) { return std::exp2(static_cast<double>(i)); }
}  // namespace

TEST(QuantileFromLogBuckets, EmptyReturnsZero) {
  const std::uint64_t counts[4] = {0, 0, 0, 0};
  EXPECT_EQ(quantile_from_log_buckets(counts, 4, 0.5, pow2_bound), 0.0);
}

TEST(QuantileFromLogBuckets, SingleBucketInterpolatesLinearly) {
  // 4 observations, all in bucket 2 (range (2, 4]): ranks 1..4 spread
  // linearly across the bucket.
  const std::uint64_t counts[4] = {0, 0, 4, 0};
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 0.25, pow2_bound), 2.5, 1e-12);
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 0.5, pow2_bound), 3.0, 1e-12);
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 1.0, pow2_bound), 4.0, 1e-12);
}

TEST(QuantileFromLogBuckets, WalksCumulativeCounts) {
  // 10 in (0,1], 10 in (2,4]: p50 is the last of the first bucket, p75 the
  // middle of the second, p100 its top.
  const std::uint64_t counts[4] = {10, 0, 10, 0};
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 0.5, pow2_bound), 1.0, 1e-12);
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 0.75, pow2_bound), 3.0, 1e-12);
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 1.0, pow2_bound), 4.0, 1e-12);
}

TEST(QuantileFromLogBuckets, ClampsQAndHandlesExtremes) {
  const std::uint64_t counts[4] = {10, 0, 10, 0};
  // q <= 0 clamps to the first observation's bucket; q > 1 to the last.
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, -0.5, pow2_bound), 0.1, 1e-12);
  EXPECT_NEAR(quantile_from_log_buckets(counts, 4, 2.0, pow2_bound), 4.0, 1e-12);
}

TEST(QuantileFromLogBuckets, QuantileOrderingIsMonotone) {
  const std::uint64_t counts[6] = {3, 1, 4, 1, 5, 9};
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double v = quantile_from_log_buckets(counts, 6, q, pow2_bound);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Table, AlignsAndRules) {
  Table t({"k", "time"});
  t.add_row({"6", "0.81"});
  t.add_row({"10", "28.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find(" k"), std::string::npos);
  EXPECT_NE(out.find("28.1"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, StrfmtAndCommas) {
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(117185083), "117,185,083");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--n", "100", "--eps=0.5", "--verbose", "--name", "orkut"};
  CommandLine cli(7, argv);
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(cli.has_flag("verbose"));
  EXPECT_FALSE(cli.has_flag("quiet"));
  EXPECT_EQ(cli.get_string("name", ""), "orkut");
  EXPECT_EQ(cli.get_int("missing", -7), -7);
}

TEST(Cli, EmptyArgvUsesFallbacks) {
  const char* argv[] = {"prog"};
  CommandLine cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_FALSE(cli.has_flag("x"));
}

}  // namespace
}  // namespace c3
