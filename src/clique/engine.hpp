// Plan/execute query engine: prepare the graph once, answer many queries.
//
// Every clique algorithm factors into a *query-independent* prepare half —
// the total vertex order and the oriented DAG (Section 4), the sorted edge
// communities (Algorithm 1, line 1), or the community-degeneracy edge order
// (Algorithm 3) — and a k-dependent search half. The one-shot entry points
// recompute the prepare half on every call; a PreparedGraph computes each
// artifact at most once (lazily, on first use) and serves any number of
// queries from it: counts and listings for any k, the full clique spectrum,
// per-vertex/per-edge local counts, and maximum-clique searches. It also
// owns the per-worker scratch pool (local bitset subgraphs, recursion
// stacks, label arrays), so repeated queries reuse warm buffers instead of
// reallocating.
//
// Contract (see DESIGN.md Section 2):
//  * The Graph must outlive the PreparedGraph; the engine keeps a reference.
//  * opts.algorithm is fixed at construction and selects which artifacts are
//    built; all queries of one engine run that algorithm.
//  * Each query's CliqueStats.preprocess_seconds reports only the
//    preparation performed *during that query* — 0 once the artifacts exist
//    (the reuse guarantee; prepare() forces them eagerly).
//  * Queries parallelize internally but the engine is not reentrant: issue
//    one query at a time per PreparedGraph.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "clique/spectrum.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "order/community_degeneracy.hpp"
#include "parallel/padded.hpp"
#include "triangle/communities.hpp"

namespace c3 {

class PreparedGraph {
 public:
  /// Binds the engine to `g` (not copied — must outlive the engine) and
  /// fixes the algorithm and its options. No artifact is built yet.
  explicit PreparedGraph(const Graph& g, const CliqueOptions& opts = {});

  PreparedGraph(PreparedGraph&&) noexcept = default;
  PreparedGraph& operator=(PreparedGraph&&) noexcept = default;

  // ------------------------------------------------------------- queries

  /// Counts all k-cliques.
  [[nodiscard]] CliqueResult count(int k) const;

  /// Lists all k-cliques through `callback` (see CliqueCallback).
  [[nodiscard]] CliqueResult list(int k, const CliqueCallback& callback) const;

  /// Counts k-cliques for every k = 1..min(kmax, omega) with one shared
  /// preparation; kmax = 0 means "up to the clique number".
  [[nodiscard]] CliqueSpectrum spectrum(int kmax = 0) const;

  /// counts[v] = number of k-cliques containing v.
  [[nodiscard]] std::vector<count_t> per_vertex_counts(int k) const;

  /// counts[e] = number of k-cliques containing edge e (graph edge ids).
  [[nodiscard]] std::vector<count_t> per_edge_counts(int k) const;

  /// True iff the graph contains a k-clique (early-exit listing).
  [[nodiscard]] bool has_clique(int k) const;

  /// Some k-clique, or nullopt if none exists.
  [[nodiscard]] std::optional<std::vector<node_t>> find_clique(int k) const;

  /// The clique number omega, by binary search over has_clique in
  /// [2, clique_number_upper_bound()].
  [[nodiscard]] node_t max_clique_size() const;

  /// A maximum clique (empty for the empty graph).
  [[nodiscard]] std::vector<node_t> max_clique() const;

  // ---------------------------------------------- plan control / inspection

  /// Forces the algorithm's artifacts to exist now, so later queries report
  /// preprocess_seconds == 0. Idempotent.
  void prepare() const;

  /// Cumulative seconds spent building artifacts so far.
  [[nodiscard]] double prepare_seconds() const noexcept { return prepare_seconds_; }

  /// An upper bound on the clique number derived from the prepared
  /// artifacts: gamma + 2 (c3List), sigma + 2 (c3List-CD), max out-degree
  /// + 1 (orientation-based), degeneracy + 1 otherwise.
  [[nodiscard]] node_t clique_number_upper_bound() const;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const CliqueOptions& options() const noexcept { return opts_; }

 private:
  [[nodiscard]] CliqueResult run(int k, const CliqueCallback* callback) const;
  [[nodiscard]] CliqueResult dispatch(int k, const CliqueCallback* callback) const;
  [[nodiscard]] const Digraph& dag() const;
  [[nodiscard]] const EdgeCommunities& communities() const;
  [[nodiscard]] const EdgeOrderResult& edge_order() const;
  [[nodiscard]] node_t exact_degeneracy() const;
  [[nodiscard]] PerWorker<CliqueScratch>& scratch() const;

  const Graph* g_;
  CliqueOptions opts_;

  // Artifacts are memoized on first use; `mutable` because queries are
  // logically const. prepare_seconds_ accumulates the build times, letting
  // run() report per-query preparation as a delta.
  mutable std::optional<Digraph> dag_;
  mutable std::optional<EdgeCommunities> comms_;
  mutable std::optional<EdgeOrderResult> edge_order_;
  mutable std::optional<node_t> exact_degeneracy_;
  mutable double prepare_seconds_ = 0.0;
  mutable std::unique_ptr<PerWorker<CliqueScratch>> scratch_;
  mutable int scratch_workers_ = 0;
};

}  // namespace c3
