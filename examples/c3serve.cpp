// c3serve — serve a catalog of prepared graphs over TCP.
//
// The serving shape the ROADMAP aims at: register graphs (in-memory files
// or offline-prepared .c3snap snapshots), bind a port, and answer the
// Query/Answer line grammar one request per line:
//
//   $ c3serve --snapshot web=web.c3snap --graph social=social.edges --port 7433
//   c3serve: listening on 127.0.0.1:7433 (2 graphs, cache 4096 entries)
//
//   $ printf 'web count 5\nstats\nquit\n' | nc 127.0.0.1 7433
//   count 5: 291402 cliques
//   stats: requests=1 answered=1 ... cache_hits=0 cache_misses=1 ...
//   bye
//
// A request is `<graph-id> <query>` with the exact query grammar c3tool
// batch files use (count/list/hasclique/findclique/vertexcounts/edgecounts/
// spectrum/maxclique + workers=/limit=/budget=/witness=). Admin commands:
// stats, catalog, ping, quit. Every failure is a one-line `error: ...`.
//
// `--demo` serves two generated graphs (social, er) without any files —
// the quickest way to poke at the protocol.
//
// Flags:
//   --snapshot ID=PATH   register a .c3snap or sharded .c3shard manifest
//                        (repeatable; lazily opened — the magic decides)
//   --graph ID=PATH      register an edge-list/METIS/MatrixMarket graph
//                        file (repeatable; prepared in-process)
//   --demo               register two generated demo graphs
//   --shards N           partition every --graph/--demo registration into N
//                        vertex-ownership shards served scatter-gather
//                        (0 = unsharded, default; snapshots carry their own
//                        shard count)
//   --shard-policy P     vertex | edge range balancing (default edge)
//   --bind ADDR          bind address            (default 127.0.0.1)
//   --port N             TCP port, 0 = ephemeral (default 7433)
//   --inflight N         concurrent queries per graph (default 4)
//   --inflight-total N   concurrent queries across the catalog, granted
//                        round-robin over graphs (0 = no cap, default)
//   --cache N            answer-cache entries, 0 = off (default 4096)
//   --idle-timeout SEC   close silent connections (default 300)
//   --prepare            build/open every graph before accepting traffic
//   --slow-query-ms MS   log requests slower than MS (structured one-line
//                        records; 0 = off, default)
//   --slow-query-log F   append slow-query records to file F (default stderr)
//
// Monitoring: the `metrics` admin word returns a Prometheus text exposition
// (request counters, per-stage latency summaries, cache and admission
// state), `trace` the recent-request ring as chrome://tracing JSON. Set
// C3_OBS=off to disable all telemetry recording.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "c3list.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// Splits "id=path"; empty id or path is an error.
bool split_spec(const std::string& spec, std::string& id, std::string& path) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) return false;
  id = spec.substr(0, eq);
  path = spec.substr(eq + 1);
  return true;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--snapshot ID=PATH]... [--graph ID=PATH]... [--demo]\n"
      "          [--shards N] [--shard-policy vertex|edge]\n"
      "          [--bind ADDR] [--port N] [--inflight N] [--inflight-total N]\n"
      "          [--cache N] [--idle-timeout SEC] [--prepare]\n"
      "          [--slow-query-ms MS] [--slow-query-log FILE]\n"
      "Serves the catalog over TCP: one '<graph-id> <query>' request per\n"
      "line, one answer per line; admin commands stats/metrics/trace/\n"
      "catalog/ping/quit.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace c3;
  const CommandLine cli(argc, argv);
  if (cli.has_flag("help")) {
    usage(argv[0]);
    return 0;
  }

  CliqueService service;
  std::vector<std::string> ids;
  shard::ShardingOptions sharding;
  sharding.shards = static_cast<int>(cli.get_int("shards", 0));
  {
    const std::string policy = cli.get_string("shard-policy", "edge");
    if (policy == "vertex") {
      sharding.policy = shard::PartitionPolicy::VertexRange;
    } else if (policy == "edge") {
      sharding.policy = shard::PartitionPolicy::EdgeBlock;
    } else {
      std::fprintf(stderr, "c3serve: bad --shard-policy '%s' (want vertex|edge)\n",
                   policy.c_str());
      return 2;
    }
  }
  // In-memory registrations honor --shards; snapshots carry their own
  // partition (or none) in the file.
  const auto add_in_memory = [&](const std::string& id, Graph g) {
    if (sharding.shards > 1) {
      service.add_sharded_graph(id, g, sharding);
    } else {
      service.add_graph(id, std::move(g));
    }
    ids.push_back(id);
  };
  try {
    for (const std::string& spec : cli.get_all("snapshot")) {
      std::string id, path;
      if (!split_spec(spec, id, path)) {
        std::fprintf(stderr, "c3serve: bad --snapshot '%s' (want ID=PATH)\n", spec.c_str());
        return 2;
      }
      service.add_snapshot(id, path);
      ids.push_back(id);
    }
    for (const std::string& spec : cli.get_all("graph")) {
      std::string id, path;
      if (!split_spec(spec, id, path)) {
        std::fprintf(stderr, "c3serve: bad --graph '%s' (want ID=PATH)\n", spec.c_str());
        return 2;
      }
      add_in_memory(id, read_graph_any(path));
    }
    if (cli.has_flag("demo")) {
      add_in_memory("social", social_like(3000, 24'000, 0.4, 7));
      add_in_memory("er", erdos_renyi(2000, 20'000, 11));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "c3serve: %s\n", e.what());
    return 1;
  }
  if (ids.empty()) {
    std::fprintf(stderr, "c3serve: no graphs registered (use --snapshot/--graph/--demo)\n");
    usage(argv[0]);
    return 2;
  }

  net::ServerOptions opts;
  opts.bind_address = cli.get_string("bind", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(cli.get_int("port", 7433));
  opts.max_inflight_per_graph = static_cast<int>(cli.get_int("inflight", 4));
  opts.max_inflight_total = static_cast<int>(cli.get_int("inflight-total", 0));
  opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 4096));
  opts.idle_timeout_seconds = cli.get_double("idle-timeout", 300.0);

  const double slow_ms = cli.get_double("slow-query-ms", 0.0);
  if (slow_ms > 0.0) {
    const std::string slow_log = cli.get_string("slow-query-log", "");
    if (slow_log.empty()) {
      obs::SlowQueryLog::global().configure(slow_ms * 1e-3);
    } else if (!obs::SlowQueryLog::global().configure_file(slow_ms * 1e-3, slow_log)) {
      std::fprintf(stderr, "c3serve: cannot open --slow-query-log '%s'\n", slow_log.c_str());
      return 2;
    }
    std::printf("c3serve: slow-query log at %.1f ms -> %s\n", slow_ms,
                slow_log.empty() ? "stderr" : slow_log.c_str());
  }

  if (cli.has_flag("prepare")) {
    for (const std::string& id : ids) {
      try {
        service.prepare(id);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "c3serve: prepare '%s': %s\n", id.c_str(), e.what());
        return 1;
      }
    }
  }

  net::CliqueServer server(service, opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "c3serve: %s\n", e.what());
    return 1;
  }
  // The port line goes out immediately and flushed — scripts (and the CLI
  // test) parse it to find an ephemeral port.
  std::printf("c3serve: listening on %s:%d (%zu graphs, cache %zu entries)\n",
              opts.bind_address.c_str(), server.port(), service.size(), opts.cache_capacity);
  std::printf("c3serve: bit kernels: %s (best on this host: %s; override with C3_KERNEL)\n",
              bits::kernel_backend_name(bits::active_kernel_backend()),
              bits::kernel_backend_name(bits::best_kernel_backend()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("c3serve: shutting down\n");
  server.stop();
  const net::ServerStats stats = server.stats();
  std::printf("c3serve: served %llu requests over %llu connections (%llu cache hits)\n",
              static_cast<unsigned long long>(stats.frontend.requests),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frontend.cache_hits));
  return 0;
}
