// Tests for the deterministic RNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace c3 {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Xoshiro256 base(7);
  Xoshiro256 f1 = base.fork(1);
  Xoshiro256 f1_again = Xoshiro256(7).fork(1);
  Xoshiro256 f2 = base.fork(2);
  int equal12 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto x1 = f1();
    ASSERT_EQ(x1, f1_again());
    equal12 += x1 == f2() ? 1 : 0;
  }
  EXPECT_LT(equal12, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversTheRange) {
  Xoshiro256 rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitIntervalWithPlausibleMean) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, Hash64IsStable) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(42), hash64(43));
}

}  // namespace
}  // namespace c3
