// Regenerates Figure 9b of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Bio-SC-HT (gene associations) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::bio_sc_ht_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 9b";
  cfg.paper_ref = "72T: c3List fastest for k>=8 (k=10: 932.59s vs 965.34/1415.24)";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
