#!/usr/bin/env bash
# Tier-1 verification matrix, runnable locally or from CI:
#   1. Release + OpenMP            (the configuration benchmarks run in)
#   2. Debug + ASan/UBSan          (memory + UB coverage for the parallel paths)
#   3. Release, OpenMP disabled    (the exactly-deterministic serial fallback)
#   4. TSan, OpenMP disabled       (data-race coverage for the concurrent
#      query engine: clique + parallel + snapshot + service + net labels
#      only. OpenMP stays off because libgomp is not TSan-instrumented and
#      would drown the report in false positives; the concurrency under test
#      comes from std::threads.)
#
# Each config runs the full ctest suite (tsan: the clique|parallel labels):
#   cmake -B <dir> -S . && cmake --build <dir> -j && ctest --test-dir <dir>
#
# Usage: ./ci.sh [config ...]   with configs from: release asan serial tsan
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

# Prefer Ninja when available (CI installs it).
if command -v ninja >/dev/null 2>&1; then
  export CMAKE_GENERATOR="${CMAKE_GENERATOR:-Ninja}"
fi
configs=("$@")
[ ${#configs[@]} -eq 0 ] && configs=(release asan serial tsan)

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  local label_args=()
  if [ "${name}" = "tsan" ]; then
    # The race-sensitive surfaces: the concurrent engine/batch/stream suites,
    # the parallel substrate, concurrent queries over snapshot-loaded
    # engines, the multi-graph CliqueService, and the TCP front end
    # (answer cache + admission + server threads).
    label_args=(-L "clique|parallel|snapshot|service|net")
  fi
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" ${label_args[@]+"${label_args[@]}"}
  if [ "${name}" = "release" ]; then
    # The whole suite again with the bit-kernel dispatch pinned to scalar:
    # proves every result is backend-independent end to end, and keeps the
    # portable fallback a first-class, fully-tested configuration. (The
    # vector backends themselves run under ASan/UBSan/TSan via the default
    # dispatch in the other configs plus the per-backend parity tests.)
    echo "==== [${name}] ctest (C3_KERNEL=scalar) ===="
    C3_KERNEL=scalar ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
    # Perf-trajectory smoke: a small prepared k-sweep per algorithm. Emits
    # BENCH_pr2.json (prepare/search seconds + counts) and fails on any
    # cross-algorithm count mismatch. A missing binary is an error, not a
    # skip — otherwise the gate would silently stop existing.
    echo "==== [${name}] bench smoke (prepared sweep) ===="
    if [ ! -x "${dir}/bench/bench_prepared_sweep" ]; then
      echo "bench_prepared_sweep not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_prepared_sweep" --out BENCH_pr2.json
    # Concurrency smoke: the mixed query set through the batch executor vs
    # one-at-a-time, cross-checked result by result. Emits BENCH_pr3.json
    # (sequential vs batch seconds + speedup per stand-in).
    echo "==== [${name}] bench smoke (concurrent queries) ===="
    if [ ! -x "${dir}/bench/bench_concurrent_queries" ]; then
      echo "bench_concurrent_queries not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_concurrent_queries" --out BENCH_pr3.json
    # Snapshot smoke: cold prepare vs mmap open per smoke graph, counts
    # cross-checked cold vs loaded. Emits BENCH_pr4.json (open/prepare
    # speedup — the acceptance bar is >= 10x on the largest graph).
    echo "==== [${name}] bench smoke (snapshot) ===="
    if [ ! -x "${dir}/bench/bench_snapshot" ]; then
      echo "bench_snapshot not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_snapshot" --out BENCH_pr4.json
    # Service smoke: the same query mix through the two-graph catalog
    # (in-memory + snapshot) sequentially vs batch vs streaming, answers
    # cross-checked mode by mode. Emits BENCH_pr5.json.
    echo "==== [${name}] bench smoke (service) ===="
    if [ ! -x "${dir}/bench/bench_service" ]; then
      echo "bench_service not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_service" --out BENCH_pr5.json
    # Server smoke: the request mix over loopback TCP, N concurrent clients,
    # cold cache vs warm cache, every wire answer cross-checked against a
    # direct service run. Emits BENCH_pr6.json.
    echo "==== [${name}] bench smoke (server) ===="
    if [ ! -x "${dir}/bench/bench_server" ]; then
      echo "bench_server not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_server" --out BENCH_pr6.json
    # Kernel smoke: the fused intersect kernels per backend (micro) and the
    # smoke graphs counted scalar vs host-vector per algorithm (end-to-end),
    # counts cross-checked backend vs backend. Emits BENCH_pr7.json.
    echo "==== [${name}] bench smoke (kernels) ===="
    if [ ! -x "${dir}/bench/bench_kernels" ]; then
      echo "bench_kernels not built (is C3_BUILD_BENCH off?)" >&2
      exit 1
    fi
    "${dir}/bench/bench_kernels" --out BENCH_pr7.json
  fi
}

for config in "${configs[@]}"; do
  case "${config}" in
    release) run_config release -DCMAKE_BUILD_TYPE=Release -DC3_WERROR=ON ;;
    asan)    run_config asan -DCMAKE_BUILD_TYPE=Debug -DC3_SANITIZE=ON -DC3_WERROR=ON ;;
    serial)  run_config serial -DCMAKE_BUILD_TYPE=Release -DC3_ENABLE_OPENMP=OFF -DC3_WERROR=ON ;;
    tsan)    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DC3_SANITIZE_THREAD=ON \
                        -DC3_ENABLE_OPENMP=OFF -DC3_WERROR=ON ;;
    *) echo "unknown config '${config}' (expected: release asan serial tsan)" >&2; exit 2 ;;
  esac
done

echo "==== all configs green ===="
