// Social-network clique mining — the workload class the paper's introduction
// motivates (community and cohesive-group detection in social graphs).
//
// Generates an Orkut-like graph, profiles its clique spectrum (counts for
// k = 3..omega), compares the three algorithms of the paper's evaluation on
// one size, and extracts the most clique-dense community with k-clique
// peeling.
//
//   ./social_cliques [--n 15000] [--m 120000] [--seed 1]
#include <cstdio>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const auto n = static_cast<c3::node_t>(cli.get_int("n", 15'000));
  const auto m = static_cast<c3::edge_t>(cli.get_int("m", 120'000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf("== social_cliques: mining cohesive groups ==\n");
  const c3::Graph g = c3::social_like(n, m, 0.45, seed);
  const c3::GraphStats stats = c3::compute_stats(g);
  std::printf("graph: %u vertices, %llu edges, %llu triangles, degeneracy %u\n\n", stats.nodes,
              static_cast<unsigned long long>(stats.edges),
              static_cast<unsigned long long>(stats.triangles), stats.degeneracy);

  // Clique spectrum up to the clique number — one shared preprocessing pass.
  const c3::CliqueSpectrum spec = c3::clique_spectrum(g);
  const c3::node_t omega = spec.omega;
  std::printf("clique number omega = %u (spectrum: prep %.3f s + search %.3f s)\n", omega,
              spec.preprocess_seconds, spec.search_seconds);
  c3::Table spectrum({"k", "#k-cliques"});
  for (std::size_t k = 3; k < spec.counts.size(); ++k) {
    spectrum.add_row({std::to_string(k), c3::with_commas(spec.counts[k])});
  }
  spectrum.print();

  // Head-to-head on one representative size (the paper's Figure 8 setup).
  const int k = std::min<int>(7, static_cast<int>(omega));
  std::printf("\nhead-to-head at k = %d:\n", k);
  c3::Table race({"algorithm", "count", "time[s]"});
  for (const c3::Algorithm alg :
       {c3::Algorithm::C3List, c3::Algorithm::ArbCount, c3::Algorithm::KCList}) {
    c3::CliqueOptions opts;
    opts.algorithm = alg;
    c3::WallTimer t;
    const auto r = c3::count_cliques(g, k, opts);
    race.add_row({c3::algorithm_name(alg), c3::with_commas(r.count),
                  c3::strfmt("%.3f", t.seconds())});
  }
  race.print();

  // Densest community by k-clique density.
  std::printf("\nk-clique-densest community (k = 4):\n");
  const c3::DensestResult dense = c3::kclique_densest_peeling(g, 4);
  std::printf("  %zu vertices, %llu 4-cliques, density %.2f (%u peeling rounds)\n",
              dense.vertices.size(), static_cast<unsigned long long>(dense.cliques),
              dense.density, dense.rounds);
  return 0;
}
