// c3List-CD — Algorithm 3: clique listing parameterized by the community
// degeneracy (Section 4.3).
//
// In addition to a (here: identity) total order on the vertices, a total
// order on the *edges* is computed — greedily removing the edge supporting
// the fewest remaining triangles, or its (3+eps)-approximation (Algorithm 4).
// For each edge e, the search recurses only on V'(e): the community of e in
// the subgraph of edges ordered after e, which has size at most sigma
// (resp. (3+eps) sigma). Every k-clique is found exactly once, at its
// lowest-ordered edge; within a candidate set, the vertex order's supporting
// edge makes the recursion unique (Theorem 4.3).
#pragma once

#include "clique/c3list.hpp"
#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "graph/graph.hpp"
#include "order/community_degeneracy.hpp"
#include "parallel/padded.hpp"

namespace c3 {

/// Counts all k-cliques with Algorithm 3. `opts.edge_order` selects the
/// exact greedy or the Algorithm 4 approximate edge order.
[[nodiscard]] CliqueResult c3list_cd_count(const Graph& g, int k, const CliqueOptions& opts = {});

/// Listing variant (see CliqueCallback).
[[nodiscard]] CliqueResult c3list_cd_list(const Graph& g, int k, const CliqueCallback& callback,
                                          const CliqueOptions& opts = {});

/// Runs Algorithm 3 on a precomputed edge order (exposed for benches that
/// want to time the search separately from the preprocessing).
[[nodiscard]] CliqueResult c3list_cd_count_with_order(const Graph& g, int k,
                                                      const EdgeOrderResult& order,
                                                      const CliqueOptions& opts = {});

/// Search half of Algorithm 3 on a prepared edge order: requires k >= 3.
/// `callback` may be null (counting). `scratch` is this query's leased
/// state (see c3list_search).
[[nodiscard]] CliqueResult c3list_cd_search(const Graph& g, const EdgeOrderResult& order, int k,
                                            const CliqueCallback* callback,
                                            const CliqueOptions& opts, QueryScratch& scratch);

}  // namespace c3
