// Regenerates Figure 8d of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Orkut (social network) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::orkut_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 8d";
  cfg.paper_ref =
      "72T: the one instance where c3List trails ArbCount at k=9 (707.26s vs 672.87s); at k=10 "
      "it roughly ties (2693.82 vs 2734.58; kcList 4327.28). Many triangles/vertex blunt the "
      "pruning";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
