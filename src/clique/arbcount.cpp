#include "clique/arbcount.hpp"

#include <atomic>
#include <vector>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "parallel/parallel.hpp"
#include "util/bitwords.hpp"
#include "util/timer.hpp"

namespace c3 {

// Early-stop state rides in w.ctx (SearchContext::poll_stop / request_stop),
// the same shared-flag mechanism the community-centric searches use. The
// vertex-at-a-time recursion itself lives in recursive.cpp
// (search_cliques_vertex) where kcList's dense-subproblem path shares it.

CliqueResult arbcount_search(const Digraph& dag, int k, const CliqueCallback* callback,
                             const CliqueOptions& opts, QueryScratch& scratch) {
  (void)opts;
  CliqueResult result;
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = result.stats.order_quality;

  WallTimer search_timer;
  const node_t n = dag.num_nodes();
  result.stats.top_level_tasks = n;
  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;

  parallel_for_dynamic(
      0, n,
      [&](std::size_t u) {
        if (stop.load(std::memory_order_relaxed)) return;
        const auto members = dag.out_neighbors(static_cast<node_t>(u));
        if (static_cast<int>(members.size()) < k - 1) return;
        CliqueScratch& w = scratch.local();

        // Induce and rename G[N+(u)] (the per-vertex re-representation).
        build_local_graph(dag, members, w.lg);

        w.ctx.lg = &w.lg;
        w.ctx.ctr = &w.ctr;
        ++w.ctr.dense_subproblems;
        w.ctx.callback = callback;
        w.ctx.stop = callback != nullptr ? &stop : nullptr;
        if (callback != nullptr) {
          w.member_orig.resize(members.size());
          for (std::size_t i = 0; i < members.size(); ++i)
            w.member_orig[i] = dag.original_id(members[i]);
          w.ctx.member_to_orig = w.member_orig.data();
          w.ctx.clique_stack.clear();
          w.ctx.clique_stack.push_back(dag.original_id(static_cast<node_t>(u)));
        }

        // Search (k-1)-cliques vertex-at-a-time; each completes with u.
        w.count += search_cliques_vertex_all(w.ctx, k - 1);
      },
      1);

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult arbcount_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::ArbCount;
  return PreparedGraph(g, o).count(k);
}

CliqueResult arbcount_list(const Graph& g, int k, const CliqueCallback& callback,
                           const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::ArbCount;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
