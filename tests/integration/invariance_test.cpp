// Invariance properties: counts must not depend on vertex labels, worker
// count, or counting-vs-listing mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "clique/api.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {
namespace {

Graph relabel(const Graph& g, std::uint64_t seed) {
  std::vector<node_t> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), node_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  EdgeList edges;
  for (const Edge& e : g.endpoints()) edges.push_back(Edge{perm[e.u], perm[e.v]});
  return build_graph(edges, g.num_nodes());
}

TEST(Invariance, RelabelingPreservesCounts) {
  const Graph g = social_like(150, 1100, 0.4, 55);
  const Graph h = relabel(g, 99);
  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                              Algorithm::KCList, Algorithm::ArbCount}) {
    CliqueOptions opts;
    opts.algorithm = alg;
    for (int k = 3; k <= 6; ++k) {
      EXPECT_EQ(count_cliques(g, k, opts).count, count_cliques(h, k, opts).count)
          << algorithm_name(alg) << " k=" << k;
    }
  }
}

TEST(Invariance, WorkerCountDoesNotChangeCounts) {
  const Graph g = social_like(200, 1500, 0.4, 66);
  const int original = num_workers();
  std::vector<count_t> results;
  for (const int workers : {1, 2, 4, 8}) {
    set_num_workers(workers);
    results.push_back(count_cliques(g, 5).count);
  }
  set_num_workers(original);
  for (const count_t c : results) EXPECT_EQ(c, results.front());
}

TEST(Invariance, ListingCountEqualsCountingEverywhere) {
  const Graph g = erdos_renyi(60, 480, 77);
  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                              Algorithm::KCList, Algorithm::ArbCount}) {
    CliqueOptions opts;
    opts.algorithm = alg;
    for (int k = 3; k <= 6; ++k) {
      std::atomic<count_t> listed{0};
      const CliqueResult r = list_cliques(
          g, k, [&](std::span<const node_t>) { listed.fetch_add(1); return true; }, opts);
      EXPECT_EQ(r.count, count_cliques(g, k, opts).count) << algorithm_name(alg) << " k=" << k;
      EXPECT_EQ(listed.load(), r.count) << algorithm_name(alg) << " k=" << k;
    }
  }
}

TEST(Invariance, WorkerCountInvarianceForEveryAlgorithm) {
  // The peeling orders (approximate degeneracy, Algorithm 4) involve atomic
  // updates; counts must still be identical at any worker count.
  const Graph g = bio_like(150, 700, 8, 14, 0.6, 44);
  const int original = num_workers();
  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                              Algorithm::KCList, Algorithm::ArbCount}) {
    CliqueOptions opts;
    opts.algorithm = alg;
    opts.edge_order = EdgeOrderKind::ApproxCommunityDegeneracy;
    opts.vertex_order =
        alg == Algorithm::C3List ? VertexOrderKind::ApproxDegeneracy : VertexOrderKind::Default;
    set_num_workers(1);
    const count_t serial = count_cliques(g, 5, opts).count;
    set_num_workers(4);
    const count_t parallel = count_cliques(g, 5, opts).count;
    set_num_workers(original);
    EXPECT_EQ(serial, parallel) << algorithm_name(alg);
  }
}

TEST(Invariance, RepeatRunsAreDeterministic) {
  const Graph g = rating_projection(120, 20, 6, 88);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(count_cliques(g, 5).count, count_cliques(g, 5).count);
  }
}

}  // namespace
}  // namespace c3
