// Collaboration-network stand-in (Ca-DBLP-2012).
//
// A collaboration graph is by construction a union of cliques — one per
// paper, over its authors. We sample papers with power-law team sizes and
// authors drawn with preferential repetition (prolific authors appear in
// many papers), which yields the small T/V, moderate degeneracy profile of
// DBLP (Table 2: E/V 3.3, T/V 7, s 113).
#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/rng.hpp"

namespace c3 {

Graph collaboration_like(node_t authors, count_t papers, node_t max_team, std::uint64_t seed) {
  if (authors < 2) return build_graph(EdgeList{}, authors);
  Xoshiro256 rng(seed);
  EdgeList edges;
  std::vector<node_t> author_log;  // preferential repetition pool
  author_log.reserve(papers * 4);

  for (count_t p = 0; p < papers; ++p) {
    // Power-law team size in [2, max_team]: P(t) ~ t^-2.5.
    const double x = rng.next_double();
    auto team = static_cast<node_t>(2.0 + (static_cast<double>(max_team) - 2.0) *
                                              std::pow(x, 4.0));
    team = std::min(team, max_team);

    std::vector<node_t> team_members;
    for (node_t i = 0; i < team; ++i) {
      node_t a;
      if (!author_log.empty() && rng.next_double() < 0.35) {
        a = author_log[static_cast<std::size_t>(rng.next_below(author_log.size()))];
      } else {
        a = static_cast<node_t>(rng.next_below(authors));
      }
      team_members.push_back(a);
      author_log.push_back(a);
    }
    for (std::size_t i = 0; i < team_members.size(); ++i) {
      for (std::size_t j = i + 1; j < team_members.size(); ++j) {
        if (team_members[i] != team_members[j])
          edges.push_back(Edge{team_members[i], team_members[j]});
      }
    }
  }
  return build_graph(edges, authors);
}

}  // namespace c3
