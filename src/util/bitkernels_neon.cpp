// NEON (AArch64 AdvSIMD) bit-kernel backend: 128-bit lanes, popcount via
// vcntq_u8 + pairwise widening adds. AdvSIMD is architecturally mandatory
// on AArch64, so detection reduces to "compiled for aarch64". The lane is
// only two words wide, so blocks of two lanes (4 words) are processed per
// iteration to amortize loop overhead.
#include "util/bitkernels.hpp"

#if defined(C3_BITKERNELS_NEON)

#include <arm_neon.h>

#include <cstring>

namespace c3::bits {
namespace {

constexpr std::size_t kLaneWords = 2;   // 128 bits
constexpr std::size_t kBlockWords = 4;  // two lanes per unrolled iteration

inline uint64x2_t load(const std::uint64_t* p) { return vld1q_u64(p); }
inline void store(std::uint64_t* p, uint64x2_t v) { vst1q_u64(p, v); }

/// Per-64-bit-lane popcount.
inline uint64x2_t popcnt64(uint64x2_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

void k_and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kBlockWords <= nwords; w += kBlockWords) {
    store(dst + w, vandq_u64(load(a + w), load(b + w)));
    store(dst + w + kLaneWords, vandq_u64(load(a + w + kLaneWords), load(b + w + kLaneWords)));
  }
  for (; w < nwords; ++w) dst[w] = a[w] & b[w];
}

void k_and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kBlockWords <= nwords; w += kBlockWords) {
    store(dst + w, vandq_u64(load(dst + w), load(a + w)));
    store(dst + w + kLaneWords, vandq_u64(load(dst + w + kLaneWords), load(a + w + kLaneWords)));
  }
  for (; w < nwords; ++w) dst[w] &= a[w];
}

std::uint64_t k_popcount(const std::uint64_t* a, std::size_t nwords) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = vaddq_u64(acc, popcnt64(load(a + w)));
  std::uint64_t total = vaddvq_u64(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w]));
  return total;
}

std::uint64_t k_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = vaddq_u64(acc, popcnt64(vandq_u64(load(a + w), load(b + w))));
  std::uint64_t total = vaddvq_u64(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  return total;
}

std::uint64_t k_popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* c, std::size_t nwords) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const uint64x2_t v = vandq_u64(vandq_u64(load(a + w), load(b + w)), load(c + w));
    acc = vaddq_u64(acc, popcnt64(v));
  }
  std::uint64_t total = vaddvq_u64(acc);
  for (; w < nwords; ++w)
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  return total;
}

std::uint64_t k_intersect_interval(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* mask, std::uint64_t* dst,
                                   std::size_t nwords, std::size_t lo, std::size_t hi) {
  std::memset(dst, 0, nwords * sizeof(std::uint64_t));
  if (hi < lo) return 0;
  const std::size_t wlo = word_index(lo);
  const std::size_t whi = word_index(hi);
  const std::uint64_t head = ~std::uint64_t{0} << (lo % kWordBits);
  const std::uint64_t tail = (hi % kWordBits) == 63
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << ((hi % kWordBits) + 1)) - 1);
  if (wlo == whi) {
    const std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head & tail;
    dst[wlo] = m;
    return static_cast<std::uint64_t>(std::popcount(m));
  }
  std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head;
  dst[wlo] = m;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(m));
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = wlo + 1;
  for (; w + kLaneWords <= whi; w += kLaneWords) {
    const uint64x2_t v = vandq_u64(vandq_u64(load(a + w), load(b + w)), load(mask + w));
    store(dst + w, v);
    acc = vaddq_u64(acc, popcnt64(v));
  }
  total += vaddvq_u64(acc);
  for (; w < whi; ++w) {
    m = a[w] & b[w] & mask[w];
    dst[w] = m;
    total += static_cast<std::uint64_t>(std::popcount(m));
  }
  m = a[whi] & b[whi] & mask[whi] & tail;
  dst[whi] = m;
  total += static_cast<std::uint64_t>(std::popcount(m));
  return total;
}

std::uint64_t k_intersect_above(const std::uint64_t* a, const std::uint64_t* mask,
                                std::uint64_t* dst, std::size_t nwords, std::size_t x) {
  const std::size_t wx = word_index(x);
  std::memset(dst, 0, wx * sizeof(std::uint64_t));
  const std::uint64_t keep =
      (x % kWordBits) == 63 ? 0 : ~std::uint64_t{0} << ((x % kWordBits) + 1);
  dst[wx] = a[wx] & mask[wx] & keep;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(dst[wx]));
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = wx + 1;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const uint64x2_t v = vandq_u64(load(a + w), load(mask + w));
    store(dst + w, v);
    acc = vaddq_u64(acc, popcnt64(v));
  }
  total += vaddvq_u64(acc);
  for (; w < nwords; ++w) {
    dst[w] = a[w] & mask[w];
    total += static_cast<std::uint64_t>(std::popcount(dst[w]));
  }
  return total;
}

void k_for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                        void* ctx, void (*fn)(void* ctx, std::size_t bit)) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const uint64x2_t v = vandq_u64(load(a + w), load(b + w));
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) == 0) continue;  // skip empty lanes
    std::uint64_t lanes[kLaneWords];
    store(lanes, v);
    for (std::size_t i = 0; i < kLaneWords; ++i) {
      std::uint64_t word = lanes[i];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(ctx, (w + i) * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }
  for (; w < nwords; ++w) {
    std::uint64_t word = a[w] & b[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(ctx, w * kWordBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

constexpr KernelTable kTable{
    k_and_into,        k_and_assign,    k_popcount,           k_popcount_and,
    k_popcount_and3,   k_intersect_interval,
    k_intersect_above, k_for_each_bit_and,
    KernelBackend::NEON,
};

}  // namespace

namespace detail {
const KernelTable* neon_table() noexcept { return &kTable; }
}  // namespace detail

}  // namespace c3::bits

#else  // !C3_BITKERNELS_NEON

namespace c3::bits::detail {
const KernelTable* neon_table() noexcept { return nullptr; }
}  // namespace c3::bits::detail

#endif
