// QueryStream: the long-lived submit()/poll()/drain() executor — ticket
// ordering, completion guarantees, close semantics, error propagation, and
// the no-global-cap-writes contract.
#include "clique/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

Query make(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

TEST(QueryStream, AnswersEverySubmissionInTicketOrderOnDrain) {
  const Graph g = social_like(200, 1600, 0.4, 17);
  const PreparedGraph engine(g, {});
  const count_t c3 = engine.count(3).count;
  const count_t c4 = engine.count(4).count;
  const node_t omega = engine.max_clique_size();

  QueryStream stream(engine, /*executors=*/3);
  std::vector<std::uint64_t> tickets;
  for (int rep = 0; rep < 4; ++rep) {
    tickets.push_back(stream.submit(make(QueryKind::Count, 3)));
    tickets.push_back(stream.submit(make(QueryKind::Count, 4)));
  }
  // A heavy query in the middle of the light flow.
  Query mc = make(QueryKind::MaxClique);
  mc.opts.want_witness = false;
  tickets.push_back(stream.submit(mc));

  const auto results = stream.drain();
  ASSERT_EQ(results.size(), tickets.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Drain returns ticket order == submission order.
    EXPECT_EQ(results[i].first, tickets[i]);
    const Answer& a = results[i].second;
    if (a.kind == QueryKind::Count) {
      EXPECT_EQ(a.count, a.k == 3 ? c3 : c4);
    } else {
      EXPECT_EQ(a.omega, omega);
    }
  }
  // Everything delivered: a second drain is empty and instant.
  EXPECT_TRUE(stream.drain().empty());
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(QueryStream, PollDeliversEachAnswerExactlyOnce) {
  const Graph g = erdos_renyi(150, 1000, 9);
  const PreparedGraph engine(g, {});
  const count_t c3 = engine.count(3).count;

  QueryStream stream(engine, 2);
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < 10; ++i) submitted.insert(stream.submit(make(QueryKind::Count, 3)));

  std::set<std::uint64_t> delivered;
  // Poll until everything arrived (drain as the barrier for the remainder).
  while (delivered.size() < submitted.size()) {
    if (auto done = stream.poll()) {
      EXPECT_EQ(done->second.count, c3);
      EXPECT_TRUE(delivered.insert(done->first).second) << "duplicate delivery";
    } else if (stream.pending() == 0) {
      for (auto& [ticket, answer] : stream.drain()) {
        EXPECT_EQ(answer.count, c3);
        EXPECT_TRUE(delivered.insert(ticket).second) << "duplicate delivery";
      }
    }
  }
  EXPECT_EQ(delivered, submitted);
  EXPECT_FALSE(stream.poll().has_value());
}

TEST(QueryStream, CloseFinishesQueuedWorkAndRejectsNewSubmissions) {
  const Graph g = erdos_renyi(120, 800, 11);
  const PreparedGraph engine(g, {});
  const count_t c3 = engine.count(3).count;

  QueryStream stream(engine, 1);
  for (int i = 0; i < 6; ++i) (void)stream.submit(make(QueryKind::Count, 3));
  stream.close();
  EXPECT_THROW((void)stream.submit(make(QueryKind::Count, 3)), std::logic_error);
  // Queued work was finished before close returned; answers remain pollable.
  const auto results = stream.drain();
  ASSERT_EQ(results.size(), 6u);
  for (const auto& [ticket, answer] : results) {
    (void)ticket;
    EXPECT_EQ(answer.count, c3);
  }
}

TEST(QueryStream, AnswersStayPollableAfterClose) {
  // close() ends submissions, not consumption: every completed answer must
  // remain deliverable through poll() alone after the stream is closed.
  const Graph g = erdos_renyi(120, 800, 11);
  const PreparedGraph engine(g, {});
  const count_t c3 = engine.count(3).count;

  QueryStream stream(engine, 2);
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < 8; ++i) submitted.insert(stream.submit(make(QueryKind::Count, 3)));
  stream.close();
  EXPECT_THROW((void)stream.submit(make(QueryKind::Count, 3)), std::logic_error);

  std::set<std::uint64_t> delivered;
  while (auto done = stream.poll()) {
    EXPECT_EQ(done->second.count, c3);
    EXPECT_TRUE(delivered.insert(done->first).second) << "duplicate delivery";
  }
  EXPECT_EQ(delivered, submitted);
  EXPECT_TRUE(stream.drain().empty());
}

TEST(QueryStream, TwoConsumersInterleavingPollAndDrainDeliverExactlyOnce) {
  // One consumer thread polls, the other drains, both racing the executors
  // and each other (the tsan surface): across both, every ticket arrives
  // exactly once with the right answer.
  const Graph g = social_like(200, 1600, 0.4, 17);
  const PreparedGraph engine(g, {});
  const count_t c3 = engine.count(3).count;
  const count_t c4 = engine.count(4).count;

  QueryStream stream(engine, 3);
  constexpr int kQueries = 24;
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < kQueries; ++i) {
    submitted.insert(stream.submit(make(QueryKind::Count, 3 + i % 2)));
  }

  std::mutex guard;
  std::set<std::uint64_t> delivered;
  std::string failure;
  const auto deliver = [&](std::uint64_t ticket, const Answer& a) {
    const std::lock_guard<std::mutex> lock(guard);
    if (a.count != (a.k == 3 ? c3 : c4)) failure = "wrong answer";
    if (!delivered.insert(ticket).second) failure = "duplicate delivery";
  };
  const auto all_in = [&] {
    const std::lock_guard<std::mutex> lock(guard);
    return delivered.size() == static_cast<std::size_t>(kQueries);
  };

  std::thread poller([&] {
    while (!all_in()) {
      if (auto done = stream.poll()) deliver(done->first, done->second);
      else std::this_thread::yield();
    }
  });
  std::thread drainer([&] {
    while (!all_in()) {
      for (auto& [ticket, answer] : stream.drain()) deliver(ticket, answer);
      std::this_thread::yield();
    }
  });
  poller.join();
  drainer.join();
  EXPECT_EQ(failure, "");
  EXPECT_EQ(delivered, submitted);
  EXPECT_FALSE(stream.poll().has_value());
}

TEST(QueryStream, PerQueryCapsNeverWriteTheGlobalCount) {
  const Graph g = social_like(250, 2000, 0.4, 19);
  const PreparedGraph engine(g, {});
  engine.prepare();
  const count_t c4 = engine.count(4).count;
  const int before = num_workers();

  // An external observer samples the global worker count the whole time the
  // stream is busy — the pre-fix batch executor would have shown the split
  // value here.
  std::atomic<bool> watching{true};
  std::atomic<bool> saw_change{false};
  std::thread observer([&] {
    while (watching.load(std::memory_order_relaxed)) {
      if (num_workers() != before) saw_change.store(true, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  {
    QueryStream stream(engine, 4);
    for (int i = 0; i < 12; ++i) {
      Query q = make(QueryKind::Count, 4);
      q.opts.max_workers = 1 + (i % 4);
      (void)stream.submit(q);
    }
    for (auto& [ticket, answer] : stream.drain()) {
      (void)ticket;
      EXPECT_EQ(answer.count, c4);
    }
  }

  watching.store(false, std::memory_order_relaxed);
  observer.join();
  EXPECT_FALSE(saw_change.load()) << "per-query caps leaked into the global worker count";
  EXPECT_EQ(num_workers(), before);
}

TEST(QueryStream, DestructorDrainsOutstandingWork) {
  const Graph g = erdos_renyi(100, 600, 13);
  const PreparedGraph engine(g, {});
  {
    QueryStream stream(engine, 2);
    for (int i = 0; i < 4; ++i) (void)stream.submit(make(QueryKind::Count, 3));
    // No drain: the destructor must join cleanly with work still queued.
  }
  SUCCEED();
}

}  // namespace
}  // namespace c3
