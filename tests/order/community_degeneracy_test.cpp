// Tests for the community degeneracy orders (Section 4.3, Algorithm 4).
#include "order/community_degeneracy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "graph/gen/generators.hpp"
#include "order/degeneracy.hpp"
#include "triangle/triangle_count.hpp"

namespace c3 {
namespace {

count_t triangles_of(const Graph& g) {
  std::vector<node_t> order(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) order[v] = v;
  return count_triangles(Digraph::orient(g, order));
}

TEST(CommunityDegeneracy, KnownValues) {
  // Hypercube: degeneracy d but sigma = 0 (no triangles) — the paper's
  // flagship separation example (Section 1.1).
  EXPECT_EQ(community_degeneracy(hypercube(5)), 0u);
  // K_n: every edge sits in n-2 triangles in every K-subgraph.
  EXPECT_EQ(community_degeneracy(complete_graph(6)), 4u);
  EXPECT_EQ(community_degeneracy(complete_graph(3)), 1u);
  // Triangle-free families.
  EXPECT_EQ(community_degeneracy(grid_graph(6, 6)), 0u);
  EXPECT_EQ(community_degeneracy(star_graph(40)), 0u);
  EXPECT_EQ(community_degeneracy(cycle_graph(10)), 0u);
}

TEST(CommunityDegeneracy, BipartitePlusLineHasTinySigma) {
  // Section 1.1: degeneracy Theta(n) but community degeneracy <= 2 (cross
  // edges always have at most two path-neighbors in their community).
  const Graph g = bipartite_plus_line(16);
  const node_t s = degeneracy_order(g).degeneracy;
  const node_t sigma = community_degeneracy(g);
  EXPECT_GE(s, 15u);
  EXPECT_LE(sigma, 2u);
}

TEST(CommunityDegeneracy, SigmaStrictlyBelowDegeneracy) {
  // The paper: sigma < s whenever the graph has an edge (k <= sigma+2 <= s+1).
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = social_like(500, 3500, 0.4, seed);
    if (g.num_edges() == 0) continue;
    EXPECT_LT(community_degeneracy(g), degeneracy_order(g).degeneracy) << "seed " << seed;
  }
}

TEST(CommunityDegeneracy, Observation5TriangleBound) {
  // A graph with community degeneracy sigma has at most sigma * m triangles.
  for (const std::uint64_t seed : {5, 6}) {
    const Graph g = bio_like(400, 1500, 12, 18, 0.5, seed);
    const count_t t = triangles_of(g);
    const node_t sigma = community_degeneracy(g);
    EXPECT_LE(t, static_cast<count_t>(sigma) * g.num_edges()) << "seed " << seed;
  }
}

void check_order_and_candidates(const Graph& g, const EdgeOrderResult& r, node_t candidate_bound) {
  const edge_t m = g.num_edges();
  ASSERT_EQ(r.order.size(), m);
  ASSERT_EQ(r.pos.size(), m);
  // pos is the inverse permutation of order.
  std::vector<bool> seen(m, false);
  for (edge_t i = 0; i < m; ++i) {
    const edge_t e = r.order[i];
    ASSERT_LT(e, m);
    ASSERT_FALSE(seen[e]);
    seen[e] = true;
    ASSERT_EQ(r.pos[e], i);
  }

  // Candidate sets: (a) every member forms a triangle whose two other edges
  // are ordered after e; (b) sizes respect the bound; (c) the total equals
  // the triangle count (each triangle charged exactly once).
  const auto endpoints = g.endpoints();
  count_t total = 0;
  for (edge_t e = 0; e < m; ++e) {
    const auto cand = r.candidates(e);
    ASSERT_LE(cand.size(), candidate_bound) << "edge " << e;
    ASSERT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    total += cand.size();
    for (const node_t w : cand) {
      const edge_t f = g.edge_id(endpoints[e].u, w);
      const edge_t h = g.edge_id(endpoints[e].v, w);
      ASSERT_NE(f, static_cast<edge_t>(-1));
      ASSERT_NE(h, static_cast<edge_t>(-1));
      ASSERT_GT(r.pos[f], r.pos[e]);
      ASSERT_GT(r.pos[h], r.pos[e]);
    }
  }
  EXPECT_EQ(total, triangles_of(g));
}

TEST(CommunityDegeneracy, ExactOrderInvariants) {
  const Graph g = bio_like(300, 1200, 10, 15, 0.5, 11);
  const EdgeOrderResult r = community_degeneracy_order(g);
  check_order_and_candidates(g, r, r.sigma);
}

TEST(CommunityDegeneracy, ApproxOrderInvariantsAndLemma44) {
  const Graph g = bio_like(300, 1200, 10, 15, 0.5, 12);
  const node_t sigma = community_degeneracy(g);
  const double eps = 0.5;
  const EdgeOrderResult r = approx_community_degeneracy_order(g, eps);
  // Lemma 4.4: every candidate set has size at most (3 + eps) * sigma.
  const auto bound = static_cast<node_t>((3.0 + eps) * static_cast<double>(sigma)) + 1;
  check_order_and_candidates(g, r, bound);
  EXPECT_LE(r.sigma, bound);
  EXPECT_GT(r.rounds, 0u);
}

TEST(CommunityDegeneracy, ApproxRoundsLogarithmic) {
  const Graph g = social_like(2000, 16'000, 0.4, 13);
  const EdgeOrderResult r = approx_community_degeneracy_order(g, 0.5);
  EXPECT_LT(r.rounds, 200u);  // O(log_{1+eps/3} m), generous allowance
}

TEST(CommunityDegeneracy, ExactSigmaIsMaxMinOverPeel) {
  // Cross-check sigma against a brute-force max-min computation on a small
  // graph: repeatedly remove the min-support edge, tracking the max.
  const Graph g = erdos_renyi(40, 200, 21);
  const node_t sigma = community_degeneracy(g);

  // Brute force: simulate greedy peeling with recomputation.
  std::vector<bool> removed(g.num_edges(), false);
  const auto endpoints = g.endpoints();
  auto support = [&](edge_t e) {
    node_t cnt = 0;
    for (const node_t w : g.neighbors(endpoints[e].u)) {
      if (!g.has_edge(endpoints[e].v, w)) continue;
      const edge_t f = g.edge_id(endpoints[e].u, w);
      const edge_t h = g.edge_id(endpoints[e].v, w);
      if (!removed[f] && !removed[h]) ++cnt;
    }
    return cnt;
  };
  node_t brute = 0;
  for (edge_t step = 0; step < g.num_edges(); ++step) {
    edge_t best = static_cast<edge_t>(-1);
    node_t best_support = 0;
    for (edge_t e = 0; e < g.num_edges(); ++e) {
      if (removed[e]) continue;
      const node_t sup = support(e);
      if (best == static_cast<edge_t>(-1) || sup < best_support) {
        best = e;
        best_support = sup;
      }
    }
    brute = std::max(brute, best_support);
    removed[best] = true;
  }
  EXPECT_EQ(sigma, brute);
}

TEST(CommunityDegeneracy, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(community_degeneracy(Graph{}), 0u);
  const EdgeOrderResult r = community_degeneracy_order(build_graph(EdgeList{}, 5));
  EXPECT_TRUE(r.order.empty());
  EXPECT_EQ(r.sigma, 0u);
}

TEST(CommunityDegeneracy, ApproxRejectsBadEps) {
  EXPECT_THROW((void)approx_community_degeneracy_order(complete_graph(4), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace c3
