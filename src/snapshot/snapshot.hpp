// Snapshot subsystem: serialize a PreparedGraph's artifacts once (offline),
// mmap them back at serve time (DESIGN.md Section 3).
//
// The paper's algorithms split into an expensive query-independent
// preparation (vertex order + oriented DAG, edge communities,
// community-degeneracy edge order — Section 4 / Algorithms 1 & 3) and cheap
// per-k searches. PreparedGraph exploits that in-process; a snapshot makes
// the split durable:
//
//   // offline, once
//   PreparedGraph engine(g, opts);
//   snapshot::write("g.c3snap", engine);   // forces prepare(), serializes
//
//   // online, per serving process
//   auto snap = snapshot::Snapshot::open("g.c3snap");
//   snap.engine().count(7);                // preprocess_seconds == 0
//
// open() maps the file read-only and constructs a PreparedGraph whose graph
// and artifacts are *views over the mapping* — no arrays are copied, no
// artifact is rebuilt, startup is O(1) page-table work instead of O(file).
// Pages fault in on first touch and are shared clean across every process
// serving the same snapshot.
//
// Integrity: a snapshot refuses to load — std::runtime_error naming the
// offending section/offset — on bad magic, a foreign format or artifact-
// schema version, an ABI mismatch (node_t/edge_t width), a truncated file,
// a section out of bounds, a checksum mismatch, or (via the expected-options
// overload) an algorithm/options fingerprint mismatch.
//
// Lifetime contract: the mapping lives inside the Snapshot object, and the
// Graph and PreparedGraph handed out by graph()/engine() borrow it. Neither
// may outlive the Snapshot; copy the Graph (a deep copy) if it must.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clique/common.hpp"
#include "clique/engine.hpp"
#include "graph/graph.hpp"
#include "snapshot/format.hpp"

namespace c3::snapshot {

class MappedFile;

struct SnapshotOpenOptions {
  /// Verify every section's FNV checksum at open. One linear scan of the
  /// file — far cheaper than rebuilding artifacts, but not O(1); serving
  /// fleets that trust their artifact store can turn it off.
  bool verify_checksums = true;
  /// Warm-up hint: madvise(WILLNEED) the mapping at open, so the kernel
  /// reads the file ahead instead of demand-faulting one page at a time on
  /// the first queries. Best-effort, no-op where unsupported.
  bool prefault = false;
  /// Pin the mapping into RAM (mlock) after validation, so serving never
  /// takes a major fault. Best-effort — a refusal (e.g. RLIMIT_MEMLOCK) is
  /// reported through Snapshot::memory_locked(), not an error.
  bool lock_memory = false;
  /// Read the file into a heap buffer instead of mmap-ing it — the path
  /// platforms without mmap always take. On the heap the page-granular
  /// warm-up hints degrade explicitly: prefault is a no-op (the buffer is
  /// already resident) and lock_memory reports false through
  /// memory_locked() (mlock wants a page-aligned mapping). Mostly a testing
  /// knob; also useful when a private copy should survive file replacement.
  bool force_heap_fallback = false;
};

/// One section as recorded in the file (for inspect/tooling output).
struct SectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
};

/// Parsed header of a snapshot file.
struct SnapshotInfo {
  std::uint32_t format_version = 0;
  std::uint32_t artifact_schema = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  CliqueOptions options;          // the writing engine's fingerprint
  std::uint32_t artifact_mask = 0;
  std::vector<SectionInfo> sections;

  [[nodiscard]] bool has(ArtifactBit bit) const noexcept { return (artifact_mask & bit) != 0; }
};

/// Serializes `engine`'s graph plus every built artifact into one snapshot
/// file. Forces preparation first (prepare() and the clique-number upper
/// bound artifact), so an engine loaded from the snapshot answers *every*
/// query — counts, listings, spectrum, max-clique — with
/// preprocess_seconds == 0. Throws std::runtime_error on I/O failure.
void write(const std::filesystem::path& path, const PreparedGraph& engine);

/// As write(), but serializes into any output stream — the path the sharded
/// manifest writer takes to embed per-shard snapshot images in one file.
/// `context` names the destination in error messages.
void write_stream(std::ostream& out, const PreparedGraph& engine,
                  const std::filesystem::path& context = "<stream>");

/// Header + section-table summary without loading any artifact (reads and
/// validates the header only; section payloads are not checksummed).
[[nodiscard]] SnapshotInfo inspect(const std::filesystem::path& path);

/// Decodes the artifact-determining options out of a validated header —
/// exported for the sharded-manifest inspector, which reads an embedded
/// image's header without opening the image. Throws (naming `context`) on a
/// fingerprint holding out-of-range enum values.
[[nodiscard]] CliqueOptions header_options(const SnapshotHeader& h,
                                           const std::filesystem::path& context);

/// An open snapshot: the read-only mapping plus the Graph and PreparedGraph
/// constructed over it. Move-only; destroying it unmaps the file.
class Snapshot {
 public:
  /// Maps `path` and constructs the engine with the options recorded in the
  /// snapshot. Throws std::runtime_error on any validation failure.
  [[nodiscard]] static Snapshot open(const std::filesystem::path& path,
                                     const SnapshotOpenOptions& opts = {});

  /// As above, but refuses (std::runtime_error naming the field) when the
  /// snapshot's artifact fingerprint — algorithm, vertex/edge order kinds,
  /// eps, order seed — differs from `expected`. The runtime-only fields of
  /// `expected` (distance_pruning, triangle_growth) override the stored
  /// ones, so a serving process can flip them without re-preparing.
  [[nodiscard]] static Snapshot open(const std::filesystem::path& path,
                                     const CliqueOptions& expected,
                                     const SnapshotOpenOptions& opts = {});

  /// Opens a snapshot image held in externally-owned memory — a section of a
  /// sharded manifest's mapping. `buffer` must stay alive for the Snapshot's
  /// lifetime and be kSectionAlign-aligned (internal section offsets are
  /// relative to its start). `label` names the source in error messages.
  /// The file-oriented open options (prefault, lock_memory,
  /// force_heap_fallback) do not apply — the buffer's owner warms its own
  /// mapping; verify_checksums is honored. `expected` as in open().
  [[nodiscard]] static Snapshot open_buffer(std::span<const std::byte> buffer,
                                            const std::filesystem::path& label,
                                            const SnapshotOpenOptions& opts = {},
                                            const CliqueOptions* expected = nullptr);

  Snapshot(Snapshot&&) noexcept;
  Snapshot& operator=(Snapshot&&) noexcept;
  ~Snapshot();

  /// The snapshot's graph, backed by the mapping (valid while this Snapshot
  /// lives). Copying it detaches: `Graph owned = snap.graph();`.
  [[nodiscard]] const Graph& graph() const noexcept;

  /// The loaded engine: every artifact installed, nothing ever rebuilt.
  [[nodiscard]] const PreparedGraph& engine() const noexcept;
  [[nodiscard]] PreparedGraph& engine() noexcept;

  [[nodiscard]] const SnapshotInfo& info() const noexcept;

  /// True when SnapshotOpenOptions::lock_memory was requested *and* the
  /// mlock succeeded (it is best-effort: RLIMIT_MEMLOCK or an unsupported
  /// platform degrade to an unpinned mapping).
  [[nodiscard]] bool memory_locked() const noexcept;

 private:
  Snapshot();
  [[nodiscard]] static Snapshot open_with(const std::filesystem::path& path,
                                          const CliqueOptions* expected,
                                          const SnapshotOpenOptions& opts);
  [[nodiscard]] static Snapshot open_mapped(MappedFile map, const std::filesystem::path& path,
                                            const CliqueOptions* expected,
                                            const SnapshotOpenOptions& opts, bool from_buffer);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace c3::snapshot
