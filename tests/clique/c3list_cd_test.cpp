// Tests for Algorithm 3 (community-degeneracy parameterized listing).
#include "clique/c3list_cd.hpp"

#include <gtest/gtest.h>

#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

CliqueOptions exact_opts() {
  CliqueOptions o;
  o.edge_order = EdgeOrderKind::ExactCommunityDegeneracy;
  return o;
}

CliqueOptions approx_opts() {
  CliqueOptions o;
  o.edge_order = EdgeOrderKind::ApproxCommunityDegeneracy;
  return o;
}

TEST(C3ListCD, CompleteGraphClosedForm) {
  const Graph g = complete_graph(11);
  for (int k = 3; k <= 11; ++k) {
    EXPECT_EQ(c3list_cd_count(g, k, exact_opts()).count, binomial(11, k)) << "k=" << k;
    EXPECT_EQ(c3list_cd_count(g, k, approx_opts()).count, binomial(11, k)) << "k=" << k;
  }
}

TEST(C3ListCD, MatchesBruteForceBothOrders) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);
    for (int k = 3; k <= 7; ++k) {
      const count_t expect = brute_force_count(g, k);
      EXPECT_EQ(c3list_cd_count(g, k, exact_opts()).count, expect)
          << "exact seed " << seed << " k " << k;
      EXPECT_EQ(c3list_cd_count(g, k, approx_opts()).count, expect)
          << "approx seed " << seed << " k " << k;
    }
  }
}

TEST(C3ListCD, CandidateSetsBoundedBySigma) {
  const Graph g = bio_like(300, 1200, 10, 14, 0.5, 4);
  const CliqueResult r = c3list_cd_count(g, 5, exact_opts());
  // Theorem 4.3: gamma here is bounded by the exact sigma.
  EXPECT_LE(r.stats.gamma, r.stats.order_quality);
}

TEST(C3ListCD, TrivialAndEdgeCases) {
  const Graph g = erdos_renyi(50, 150, 9);
  EXPECT_EQ(c3list_cd_count(g, 1, exact_opts()).count, 50u);
  EXPECT_EQ(c3list_cd_count(g, 2, exact_opts()).count, 150u);
  EXPECT_EQ(c3list_cd_count(Graph{}, 4, exact_opts()).count, 0u);
  EXPECT_EQ(c3list_cd_count(hypercube(5), 3, exact_opts()).count, 0u);
}

TEST(C3ListCD, K3EqualsTriangles) {
  const Graph g = social_like(300, 2000, 0.4, 5);
  EXPECT_EQ(c3list_cd_count(g, 3, exact_opts()).count, brute_force_count(g, 3));
  EXPECT_EQ(c3list_cd_count(g, 3, approx_opts()).count, brute_force_count(g, 3));
}

TEST(C3ListCD, ListingMatchesCountingAndIsValid) {
  const Graph g = erdos_renyi(50, 380, 11);
  for (int k = 3; k <= 6; ++k) {
    const count_t expect = brute_force_count(g, k);
    for (const auto& opts : {exact_opts(), approx_opts()}) {
      testing::CliqueCollector collector(g, k);
      const CliqueResult r = c3list_cd_list(g, k, collector.callback(), opts);
      EXPECT_EQ(r.count, expect) << "k=" << k;
      collector.expect_valid(expect);
    }
  }
}

TEST(C3ListCD, SharedCliquesAcrossManyEdgesCountedOnce) {
  // Overlapping cliques stress the "lowest edge owns the clique" rule.
  const Graph g = collaboration_like(120, 80, 10, 13);
  for (int k = 4; k <= 6; ++k) {
    EXPECT_EQ(c3list_cd_count(g, k, exact_opts()).count, brute_force_count(g, k)) << "k=" << k;
  }
}

TEST(C3ListCD, PrecomputedOrderReuse) {
  const Graph g = erdos_renyi(40, 250, 17);
  const EdgeOrderResult order = community_degeneracy_order(g);
  for (int k = 3; k <= 6; ++k) {
    EXPECT_EQ(c3list_cd_count_with_order(g, k, order).count, brute_force_count(g, k));
  }
}

}  // namespace
}  // namespace c3
