// Sharded snapshot manifest: one file bundling a whole partitioned graph
// (DESIGN.md Section 9).
//
// A sharded graph is served by one ShardedEngine over N per-shard
// PreparedGraphs — but it should remain *one* artifact in a catalog: one
// path, one integrity check, one open call. The manifest format does that:
//
//   [ ShardManifestHeader | ShardRecord x shard_count | aligned sections ]
//
// Each ShardRecord points at up to five sections, every one
// kSectionAlign-aligned:
//   * the shard's main snapshot image — a complete, self-contained .c3snap
//     byte-for-byte identical to what snapshot::write would produce for the
//     shard's subgraph (opened in place via Snapshot::open_buffer; internal
//     offsets are image-relative, so images relocate freely);
//   * the halo snapshot image (absent when the halo is empty);
//   * the halo's global vertex ids (node_t, ascending);
//   * the main and halo local->global edge maps (edge_t) the per-edge
//     merge needs.
// Images carry a whole-image fingerprint in the record; the id/map arrays
// carry their own checksums. The header is checksummed together with the
// record table, mirrors the .c3snap ABI guards (node/edge width, total file
// size), and records the partition policy and global graph shape.
//
// Integrity mirrors snapshot::open: std::runtime_error naming the offending
// field/offset on bad magic, a foreign format version (the message names
// both versions), ABI mismatch, truncation, out-of-bounds or misaligned
// sections, checksum mismatches, or shard ranges that fail to tile [0, n) —
// ownership being a true partition is what makes every merged answer exact,
// so the reader proves it before serving.
//
// Lifetime: ShardedSnapshot owns the one mapping; the per-shard Snapshots,
// their engines, and the ShardedEngine handed out by engine() all borrow it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "clique/common.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_engine.hpp"
#include "snapshot/format.hpp"
#include "snapshot/snapshot.hpp"

namespace c3::snapshot {

inline constexpr char kShardMagic[12] = {'c', '3', 's', 'h', 'a', 'r', 'd', '0', '1',
                                         '\0', '\0', '\0'};
inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Fixed-size manifest header, written verbatim. `header_checksum` is
/// checksum64 over the header (this field zeroed) followed by the record
/// table.
struct ShardManifestHeader {
  char magic[12] = {};
  std::uint32_t format_version = 0;
  std::uint32_t header_bytes = 0;       // sizeof(ShardManifestHeader)
  std::uint32_t shard_count = 0;
  std::uint32_t partition_policy = 0;   // shard::PartitionPolicy
  std::uint32_t node_bytes = 0;         // sizeof(node_t) of the writing build
  std::uint32_t edge_bytes = 0;         // sizeof(edge_t) of the writing build
  std::uint32_t reserved = 0;
  std::uint64_t num_nodes = 0;          // the whole graph, not any shard
  std::uint64_t num_edges = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(ShardManifestHeader) == 72);

/// One shard's directory entry. Offsets are from the start of the file and
/// kSectionAlign-aligned; an offset of 0 means the section is absent (only
/// ever the halo image, and only when halo_count == 0).
struct ShardRecord {
  std::uint64_t first_owned = 0;
  std::uint64_t owned_count = 0;
  std::uint64_t snap_offset = 0;
  std::uint64_t snap_bytes = 0;
  std::uint64_t snap_fingerprint = 0;       // checksum64 over the image bytes
  std::uint64_t halo_snap_offset = 0;
  std::uint64_t halo_snap_bytes = 0;
  std::uint64_t halo_snap_fingerprint = 0;
  std::uint64_t halo_ids_offset = 0;
  std::uint64_t halo_count = 0;             // elements, not bytes
  std::uint64_t halo_ids_checksum = 0;
  std::uint64_t edge_map_offset = 0;
  std::uint64_t edge_map_count = 0;
  std::uint64_t edge_map_checksum = 0;
  std::uint64_t halo_edge_map_offset = 0;
  std::uint64_t halo_edge_map_count = 0;
  std::uint64_t halo_edge_map_checksum = 0;
};
static_assert(sizeof(ShardRecord) == 136);

/// True when `path` starts with the shard-manifest magic. Never throws:
/// unreadable or short files are simply "not a manifest", so callers can
/// sniff and fall back to Snapshot::open (whose errors name the real
/// problem).
[[nodiscard]] bool is_shard_manifest(const std::filesystem::path& path) noexcept;

/// Serializes `engine` (forcing full preparation of every shard first) into
/// one manifest at `path`. Throws std::runtime_error on I/O failure.
void write_sharded(const std::filesystem::path& path, const shard::ShardedEngine& engine);

/// One shard as summarized by inspect_sharded — directory fields plus the
/// embedded image's own validated header summary.
struct ShardSectionInfo {
  std::uint64_t first_owned = 0;
  std::uint64_t owned_count = 0;
  std::uint64_t halo_count = 0;
  std::uint64_t snap_offset = 0;
  std::uint64_t snap_bytes = 0;
  std::uint64_t halo_snap_offset = 0;   // 0: no halo image
  std::uint64_t halo_snap_bytes = 0;
  std::uint64_t snap_fingerprint = 0;
  std::uint64_t num_nodes = 0;          // of the shard subgraph (owned + halo)
  std::uint64_t num_edges = 0;
};

/// Parsed manifest summary (header + record table + each embedded image's
/// header; no artifact payload is touched).
struct ShardManifestInfo {
  std::uint32_t format_version = 0;
  shard::PartitionPolicy policy = shard::PartitionPolicy::VertexRange;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t file_bytes = 0;
  CliqueOptions options;                // recorded by the embedded images
  std::vector<ShardSectionInfo> shards;
};

/// Header + record-table summary, validating everything but section
/// payloads (their checksums are open()'s job).
[[nodiscard]] ShardManifestInfo inspect_sharded(const std::filesystem::path& path);

/// An open sharded manifest: the one mapping, the per-shard Snapshots over
/// it, and the ShardedEngine composed from them. Move-only; destroying it
/// unmaps the file and invalidates the engine.
class ShardedSnapshot {
 public:
  /// Maps `path`, validates (see header comment), opens every embedded
  /// image in place, and builds the engine. `opts` as Snapshot::open —
  /// verify_checksums also covers the manifest's own fingerprints;
  /// prefault/lock_memory apply to the whole mapping.
  [[nodiscard]] static ShardedSnapshot open(const std::filesystem::path& path,
                                            const SnapshotOpenOptions& opts = {});

  /// As above, refusing (via the embedded images' fingerprint checks) when
  /// the recorded artifact options differ from `expected`.
  [[nodiscard]] static ShardedSnapshot open(const std::filesystem::path& path,
                                            const CliqueOptions& expected,
                                            const SnapshotOpenOptions& opts = {});

  ShardedSnapshot(ShardedSnapshot&&) noexcept;
  ShardedSnapshot& operator=(ShardedSnapshot&&) noexcept;
  ~ShardedSnapshot();

  /// The composed engine (valid while this object lives). Every artifact of
  /// every shard is mapped, nothing is ever rebuilt.
  [[nodiscard]] const shard::ShardedEngine& engine() const noexcept;

  [[nodiscard]] const ShardManifestInfo& info() const noexcept;

 private:
  ShardedSnapshot();
  [[nodiscard]] static ShardedSnapshot open_with(const std::filesystem::path& path,
                                                 const CliqueOptions* expected,
                                                 const SnapshotOpenOptions& opts);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace c3::snapshot
