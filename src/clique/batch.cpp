#include "clique/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Scheduler depth gauges (process-global, aggregated over all instances —
/// the serving layer runs one scheduler per engine, and a monitor wants the
/// machine-wide picture anyway). The gauges move unconditionally so they
/// stay balanced across obs::enabled() flips; each move is one relaxed
/// fetch_add on a path that already holds the scheduler mutex.
obs::Gauge& stream_queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("c3_stream_queue_depth");
  return g;
}
obs::Gauge& stream_inflight_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("c3_stream_inflight");
  return g;
}
obs::Gauge& batch_inflight_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("c3_batch_inflight");
  return g;
}

/// Concurrent-phase admission bar: queries whose estimated work is at most
/// this many elementary steps run on the executor threads; anything above
/// keeps the full pool in the sequential phase. Scaled to the graph so "one
/// parallel sweep's worth of work" is light on any input: ~16 steps per
/// graph element.
double heavy_threshold(const Graph& g) {
  return 16.0 * (static_cast<double>(g.num_nodes()) + static_cast<double>(g.num_edges()) + 1.0);
}

/// Whether the scheduler must force the clique-number upper-bound artifact
/// up front for `q` (spectrum and max-clique consult it; for some
/// configurations it is an artifact prepare() alone does not build).
bool needs_upper_bound(const Query& q) noexcept {
  return (q.kind == QueryKind::Spectrum && query_needs_artifacts(q)) ||
         q.kind == QueryKind::MaxClique;
}

/// The executor fan-out of QueryBatch::answers' concurrent phase: `threads`
/// std::threads pull light-query indices off a shared cursor. Each executor
/// caps its own parallel loops to pool/threads with a thread-local
/// WorkerCapScope — the process-global worker cap is never written, so
/// racing batches (or external set_num_workers callers) observe nothing.
void run_light_concurrent(const PreparedGraph& engine, const std::vector<Query>& queries,
                          const std::vector<std::size_t>& light, std::size_t threads, int pool,
                          std::vector<Answer>& results) {
  // Admission throttle: concurrent phases of different batches serialize —
  // each sizes its executor fan-out as if it owned the whole pool, so two
  // phases at once would oversubscribe the machine N-fold. (The *cap* no
  // longer needs this lock — per-thread WorkerCapScopes cannot race — this
  // is purely the throughput discipline the old global-split code provided
  // as a side effect.)
  static std::mutex phase_mutex;
  const std::lock_guard<std::mutex> phase_lock(phase_mutex);
  const int split = std::max(1, pool / static_cast<int>(threads));
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_guard;
  std::vector<std::thread> executors;
  executors.reserve(threads);
  try {
    for (std::size_t t = 0; t < threads; ++t) {
      executors.emplace_back([&] {
        const WorkerCapScope cap(split);
        for (;;) {
          const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
          if (slot >= light.size()) return;
          const std::size_t i = light[slot];
          batch_inflight_gauge().add();
          try {
            results[i] = engine.run(queries[i]);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_guard);
            if (first_error == nullptr) first_error = std::current_exception();
          }
          batch_inflight_gauge().sub();
        }
      });
    }
  } catch (...) {
    // Thread spawn failed (e.g. EAGAIN): stop handing out work and join the
    // executors that did start — the failure surfaces as a catchable
    // exception instead of std::terminate.
    cursor.store(light.size(), std::memory_order_relaxed);
    for (std::thread& th : executors) th.join();
    throw;
  }
  for (std::thread& th : executors) th.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace

BatchResult to_batch_result(Answer answer) {
  BatchResult r;
  r.kind = answer.kind;
  r.k = answer.k;
  r.count = answer.count;
  r.found = answer.found;
  r.witness = std::move(answer.witness);
  r.cliques = std::move(answer.cliques);
  r.per_counts = std::move(answer.per_counts);
  r.spectrum = std::move(answer.spectrum);
  r.omega = answer.omega;
  r.stats = answer.stats;
  r.seconds = answer.seconds;
  return r;
}

int QueryBatch::add(Query query) {
  queries_.push_back(std::move(query));
  return static_cast<int>(queries_.size()) - 1;
}

std::vector<Answer> QueryBatch::answers(int concurrency) const {
  const PreparedGraph& engine = *engine_;
  std::vector<Answer> results(queries_.size());
  if (queries_.empty()) return results;

  // Force the artifacts before any executor thread starts — but only if
  // some query can use them — so per-query seconds measure search only and
  // no thread stalls on the prepare latch. The clique-number upper bound is
  // an extra artifact for some configurations; force it too whenever a query
  // consults it.
  bool any_artifacts = false;
  bool any_upper_bound = false;
  for (const Query& q : queries_) {
    any_artifacts = any_artifacts || query_needs_artifacts(q);
    any_upper_bound = any_upper_bound || needs_upper_bound(q);
  }
  if (any_artifacts) engine.prepare();
  if (any_upper_bound) (void)engine.clique_number_upper_bound();

  // Estimated after preparation, so the cost model sees the real artifacts
  // (community sizes, DAG out-degrees) instead of graph-shape proxies.
  const double bar = heavy_threshold(engine.graph());
  std::vector<double> cost(queries_.size());
  std::vector<std::size_t> light, heavy;
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    cost[i] = estimate_query_cost(engine, queries_[i]);
    (cost[i] <= bar ? light : heavy).push_back(i);
  }

  bool light_done = false;
  if (concurrency != 1 && light.size() > 1) {
    const int pool = num_workers();
    const int want = concurrency > 0 ? concurrency : pool;
    const auto threads =
        static_cast<std::size_t>(std::clamp(want, 1, static_cast<int>(light.size())));
    if (threads > 1) {
      // Longest-estimated-first, so the final executor is not left holding
      // the slowest light query while the others idle (ties keep submission
      // order; results land at their submission index regardless).
      std::stable_sort(light.begin(), light.end(),
                       [&](std::size_t a, std::size_t b) { return cost[a] > cost[b]; });
      run_light_concurrent(engine, queries_, light, threads, pool, results);
      light_done = true;
    }
  }
  if (!light_done) {
    for (const std::size_t i : light) {
      batch_inflight_gauge().add();
      results[i] = engine.run(queries_[i]);
      batch_inflight_gauge().sub();
    }
  }

  // Sequential phase: heavy queries keep the full pool for their internal
  // parallelism (a per-query max_workers still caps inside run()).
  for (const std::size_t i : heavy) {
    batch_inflight_gauge().add();
    results[i] = engine.run(queries_[i]);
    batch_inflight_gauge().sub();
  }
  return results;
}

std::vector<BatchResult> QueryBatch::run(int concurrency) const {
  std::vector<Answer> typed = answers(concurrency);
  std::vector<BatchResult> results;
  results.reserve(typed.size());
  for (Answer& a : typed) results.push_back(to_batch_result(std::move(a)));
  return results;
}

std::vector<BatchResult> run_query_batch(const PreparedGraph& engine,
                                         const std::vector<BatchQuery>& queries,
                                         int concurrency) {
  QueryBatch batch(engine);
  for (const BatchQuery& q : queries) (void)batch.add(q);
  return batch.run(concurrency);
}

// ---------------------------------------------------------------- streaming

QueryStream::QueryStream(const PreparedGraph& engine, int executors) : engine_(&engine) {
  heavy_threshold_ = heavy_threshold(engine.graph());
  const int pool = num_workers();
  const int count = executors > 0 ? executors : std::clamp(pool, 1, 8);
  const int split = std::max(1, pool / count);
  executors_.reserve(static_cast<std::size_t>(count));
  try {
    for (int t = 0; t < count; ++t) {
      executors_.emplace_back([this, split] { executor_loop(split); });
    }
  } catch (...) {
    close();  // join whatever started, then surface the spawn failure
    throw;
  }
}

QueryStream::~QueryStream() { close(); }

std::uint64_t QueryStream::submit(Query query) {
  std::uint64_t ticket = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) throw std::logic_error("QueryStream: submit after close()");
    ticket = next_ticket_++;
    queue_.emplace_back(ticket, std::move(query));
    stream_queue_depth_gauge().add();
  }
  work_ready_.notify_one();
  return ticket;
}

std::optional<std::pair<std::uint64_t, Answer>> QueryStream::poll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (completed_.empty()) return std::nullopt;
  const auto it =
      std::min_element(completed_.begin(), completed_.end(),
                       [](const Completed& a, const Completed& b) { return a.ticket < b.ticket; });
  Completed done = std::move(*it);
  completed_.erase(it);
  if (done.error != nullptr) std::rethrow_exception(done.error);
  return std::make_pair(done.ticket, std::move(done.answer));
}

std::vector<std::pair<std::uint64_t, Answer>> QueryStream::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  std::sort(completed_.begin(), completed_.end(),
            [](const Completed& a, const Completed& b) { return a.ticket < b.ticket; });
  for (std::size_t i = 0; i < completed_.size(); ++i) {
    if (completed_[i].error != nullptr) {
      // Rethrow the first failure (by ticket); every other completed answer
      // stays pollable after the caller catches.
      const std::exception_ptr error = completed_[i].error;
      completed_.erase(completed_.begin() + static_cast<std::ptrdiff_t>(i));
      std::rethrow_exception(error);
    }
  }
  std::vector<std::pair<std::uint64_t, Answer>> out;
  out.reserve(completed_.size());
  for (Completed& done : completed_) out.emplace_back(done.ticket, std::move(done.answer));
  completed_.clear();
  return out;
}

std::size_t QueryStream::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

void QueryStream::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& th : executors_) th.join();
  executors_.clear();
}

void QueryStream::executor_loop(int split_cap) {
  for (;;) {
    std::pair<std::uint64_t, Query> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closing and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      stream_queue_depth_gauge().sub();
      stream_inflight_gauge().add();
    }

    Completed done;
    done.ticket = job.first;
    try {
      // Force shared artifacts with the *full* pool before capping this
      // thread — the engine's latch makes this build-exactly-once, so at
      // most one streamed query ever pays preparation (and none report it:
      // prepare() absorbs the cost).
      if (query_needs_artifacts(job.second)) engine_->prepare();
      if (needs_upper_bound(job.second)) (void)engine_->clique_number_upper_bound();

      if (estimate_query_cost(*engine_, job.second) > heavy_threshold_) {
        // Heavy queries serialize on one slot and keep the full pool, like
        // QueryBatch's sequential phase; light queries keep flowing on the
        // other executors meanwhile.
        const std::lock_guard<std::mutex> heavy_lock(heavy_slot_);
        done.answer = engine_->run(job.second);
      } else {
        const WorkerCapScope cap(split_cap);
        done.answer = engine_->run(job.second);
      }
    } catch (...) {
      done.error = std::current_exception();
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      completed_.push_back(std::move(done));
      --in_flight_;
      stream_inflight_gauge().sub();
    }
    all_done_.notify_all();
  }
}

}  // namespace c3
