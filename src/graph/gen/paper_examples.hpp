// The worked 6-vertex example graphs of the paper's Figures 1-6, used as
// golden tests. Vertex i corresponds to the paper's v_{i+1}; the drawn total
// order is the id order.
#pragma once

#include "graph/graph.hpp"

namespace c3 {

/// Figure 1: K6 — the edge {v1, v2} supports a 6-clique.
[[nodiscard]] Graph figure1_graph();

/// Figures 2-3: K6 minus {v3, v4} — exactly two 5-cliques, no 6-clique;
/// only (v1, v6) can support a 6-clique under the distance pruning rule.
[[nodiscard]] Graph figure2_graph();

/// Figures 4-6: K6 minus {v3, v4} and {v2, v6} — the relevant edges w.r.t. 3
/// are R^E_3 = {(v1,v5), (v1,v6)} while R^P_3 additionally contains (v2,v6).
[[nodiscard]] Graph figure4_graph();

}  // namespace c3
