#include "clique/max_clique.hpp"

#include "clique/engine.hpp"

namespace c3 {

// One-shot wrappers: each constructs a PreparedGraph so the expensive
// preparation happens once even across a binary search's many decision
// queries (previously every has_clique probe re-prepared from scratch).

bool has_clique(const Graph& g, int k, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).has_clique(k);
}

std::optional<std::vector<node_t>> find_clique(const Graph& g, int k, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).find_clique(k);
}

node_t max_clique_size(const Graph& g, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).max_clique_size();
}

std::vector<node_t> find_max_clique(const Graph& g, const CliqueOptions& opts) {
  return PreparedGraph(g, opts).max_clique();
}

}  // namespace c3
