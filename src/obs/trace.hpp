// Query-lifecycle tracing: per-request stage spans, a ring buffer of recent
// traces, and the slow-query log.
//
// Every request through the serving stack carries one TraceContext. The
// layers it crosses each record a *stage span* — parse, admission wait,
// cache lookup, prepare, search, format, socket write — plus search-side
// annotations (algorithm, kernel backend, dense-vs-CSR routing, the
// CliqueStats work counters), so one record answers "where did this
// request's time go" the way the paper's per-phase tables answer it for a
// whole run. A context is owned by exactly one connection thread; recording
// into it takes no locks.
//
// When a context finishes (explicitly or on destruction) it
//   1. feeds each span's duration into the per-stage latency histograms
//      (obs/metrics.hpp: c3_stage_seconds{stage=...}) — that is where the
//      `metrics` admin word's p50/p95/p99 come from,
//   2. publishes the trace into the global TraceRing (a bounded buffer of
//      recent traces, exportable as chrome://tracing JSON via the `trace`
//      admin word and `c3tool trace`),
//   3. hands it to the SlowQueryLog, which emits one structured line when
//      the request exceeded the configured threshold.
//
// Everything is disabled together with obs::enabled(): callers pass a null
// TraceContext* and every hook here tolerates null, so the instrumented
// code has no conditional paths of its own.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace c3::obs {

/// The stages of one request's lifecycle, in wire order.
enum class Stage : std::uint8_t {
  Parse,          ///< request line split + query grammar parse
  AdmissionWait,  ///< blocked on the per-graph admission gate
  CacheLookup,    ///< answer-cache probe
  Prepare,        ///< artifact preparation paid by this request
  Search,         ///< the engine's search (PreparedGraph::run)
  Format,         ///< answer -> wire text
  SocketWrite,    ///< response write on the connection
  ShardSearch,    ///< one shard's sub-query inside a ShardedEngine scatter
};
inline constexpr std::size_t kStageCount = 8;

[[nodiscard]] const char* stage_name(Stage s) noexcept;

/// One recorded stage interval, in nanoseconds relative to the trace start.
struct Span {
  Stage stage = Stage::Parse;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// A finished trace as stored in the ring: identification, outcome flags,
/// spans, and free-form annotations (small key/value list).
struct TraceRecord {
  std::uint64_t request_id = 0;
  std::uint64_t start_epoch_us = 0;  ///< process-relative monotonic start
  std::string graph_id;
  std::string query_text;
  bool error = false;
  bool cache_hit = false;
  bool truncated = false;
  std::vector<Span> spans;
  std::vector<std::pair<std::string, std::string>> annotations;

  [[nodiscard]] std::uint64_t total_ns() const noexcept;
  /// Duration of the first span of `s` (0 when absent).
  [[nodiscard]] std::uint64_t stage_ns(Stage s) const noexcept;
};

/// The per-request recording surface. Created when the request line arrives;
/// finish() (or the destructor) publishes. Single-threaded by construction —
/// the connection thread owns it for the request's whole lifetime.
class TraceContext {
 public:
  TraceContext(std::string graph_id, std::string query_text);
  ~TraceContext();  // finishes if finish() was not called
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Nanoseconds since this trace started (monotonic clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// RAII span: records `stage` from construction to destruction. A null
  /// context records nothing, so call sites need no branching.
  class Scope {
   public:
    Scope(TraceContext* trace, Stage stage) noexcept
        : trace_(trace), stage_(stage), start_ns_(trace != nullptr ? trace->now_ns() : 0) {}
    ~Scope() { close(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Ends the span now (idempotent; the destructor becomes a no-op).
    void close() noexcept {
      if (trace_ != nullptr) {
        trace_->add_span(stage_, start_ns_, trace_->now_ns() - start_ns_);
        trace_ = nullptr;
      }
    }

   private:
    TraceContext* trace_;
    Stage stage_;
    std::uint64_t start_ns_;
  };

  void add_span(Stage stage, std::uint64_t start_ns, std::uint64_t duration_ns);
  void annotate(std::string_view key, std::string value);

  void set_graph(std::string graph_id);
  void set_query(std::string query_text);
  void mark_error() noexcept { record_.error = true; }
  void mark_cache_hit() noexcept { record_.cache_hit = true; }
  void mark_truncated(bool t) noexcept { record_.truncated = t; }

  [[nodiscard]] const TraceRecord& record() const noexcept { return record_; }

  /// Publishes: per-stage histograms, the ring, the slow-query log.
  /// Idempotent; called by the destructor when skipped.
  void finish();

 private:
  TraceRecord record_;
  std::uint64_t start_steady_ns_ = 0;
  bool finished_ = false;
};

/// Bounded buffer of the most recent finished traces. push() is mutex-
/// serialized — publication happens once per request, far off the hot path.
class TraceRing {
 public:
  static TraceRing& global();

  explicit TraceRing(std::size_t capacity = 256);
  void set_capacity(std::size_t capacity);
  void push(TraceRecord record);
  void clear();
  [[nodiscard]] std::size_t size() const;
  /// Oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Renders traces as a chrome://tracing / Perfetto-loadable JSON object
/// ({"traceEvents":[...]}): one complete ("ph":"X") event per span, tid =
/// request id, timestamps in microseconds, annotations in the search span's
/// args. Single line (no newlines) so it can travel over the line protocol.
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceRecord>& traces);

/// Threshold-gated structured log of slow requests: one key=value line per
/// offending request, written to stderr or a file. configure() is expected
/// at startup (c3serve --slow-query-ms); maybe_log() is called for every
/// finished trace and returns immediately when disabled.
class SlowQueryLog {
 public:
  static SlowQueryLog& global();

  /// threshold_seconds <= 0 disables. `sink` nullptr means stderr; the
  /// caller keeps ownership of a non-null sink (must outlive logging).
  void configure(double threshold_seconds, std::FILE* sink = nullptr);
  /// Same, appending to `path` (opened here, closed on reconfigure).
  /// Returns false (and disables) when the file cannot be opened.
  bool configure_file(double threshold_seconds, const std::string& path);

  [[nodiscard]] double threshold_seconds() const noexcept;
  [[nodiscard]] std::uint64_t logged() const noexcept;

  void maybe_log(const TraceRecord& record);

  /// The one-line record format, exposed for tests and tools.
  [[nodiscard]] static std::string format_record(const TraceRecord& record);

 private:
  SlowQueryLog();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace c3::obs
