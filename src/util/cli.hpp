// Minimal command-line argument parsing for examples and bench binaries.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms plus
// environment-variable fallbacks, which the bench harness uses so that
// `for b in build/bench/*; do $b; done` runs with sensible defaults while
// still allowing scale overrides (e.g. C3_BENCH_REPS=10).
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace c3 {

/// Parsed argv with typed accessors. Unknown keys are simply ignored by the
/// accessors, so binaries stay forward/backward compatible.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True if `--name` appears (with or without a value).
  [[nodiscard]] bool has_flag(std::string_view name) const {
    const std::string key = "--" + std::string(name);
    for (const auto& a : args_)
      if (a == key || a.rfind(key + "=", 0) == 0) return true;
    return false;
  }

  /// String value of `--name value` or `--name=value`, if present.
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const {
    const std::string key = "--" + std::string(name);
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == key && i + 1 < args_.size()) return args_[i + 1];
      if (args_[i].rfind(key + "=", 0) == 0) return args_[i].substr(key.size() + 1);
    }
    return std::nullopt;
  }

  /// Every value of a repeatable `--name value` / `--name=value` flag, in
  /// argv order (e.g. c3serve's --snapshot id=path, given once per graph).
  [[nodiscard]] std::vector<std::string> get_all(std::string_view name) const {
    const std::string key = "--" + std::string(name);
    std::vector<std::string> values;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == key && i + 1 < args_.size()) values.push_back(args_[i + 1]);
      if (args_[i].rfind(key + "=", 0) == 0) values.push_back(args_[i].substr(key.size() + 1));
    }
    return values;
  }

  [[nodiscard]] long long get_int(std::string_view name, long long fallback) const {
    if (auto v = get(name)) return std::atoll(v->c_str());
    return fallback;
  }

  [[nodiscard]] double get_double(std::string_view name, double fallback) const {
    if (auto v = get(name)) return std::atof(v->c_str());
    return fallback;
  }

  [[nodiscard]] std::string get_string(std::string_view name, std::string fallback) const {
    if (auto v = get(name)) return *v;
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

/// Integer environment variable with fallback (e.g. C3_BENCH_REPS).
[[nodiscard]] inline long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

}  // namespace c3
