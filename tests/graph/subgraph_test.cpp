// Tests for induced subgraph extraction.
#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Subgraph, InducesEdgesAmongSelected) {
  // Square with one diagonal: 0-1-2-3-0 plus 0-2.
  const Graph g = build_graph(EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<node_t> pick = {0, 2, 3};
  const InducedSubgraph sub = induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // triangle 0-2-3
  EXPECT_EQ(sub.to_parent, pick);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));  // 0-2 in parent
  EXPECT_TRUE(sub.graph.has_edge(1, 2));  // 2-3
  EXPECT_TRUE(sub.graph.has_edge(0, 2));  // 0-3
}

TEST(Subgraph, EmptySelection) {
  const Graph g = complete_graph(5);
  const InducedSubgraph sub = induced_subgraph(g, std::vector<node_t>{});
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
}

TEST(Subgraph, FullSelectionIsIsomorphic) {
  const Graph g = erdos_renyi(50, 200, 9);
  std::vector<node_t> all(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) all[v] = v;
  const InducedSubgraph sub = induced_subgraph(g, all);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(Subgraph, RejectsDuplicatesAndOutOfRange) {
  const Graph g = complete_graph(4);
  EXPECT_THROW((void)induced_subgraph(g, std::vector<node_t>{0, 0}), std::invalid_argument);
  EXPECT_THROW((void)induced_subgraph(g, std::vector<node_t>{0, 9}), std::invalid_argument);
}

TEST(Subgraph, RespectsSelectionOrderForLocalIds) {
  const Graph g = build_graph(EdgeList{{0, 1}, {1, 2}});
  const std::vector<node_t> pick = {2, 1};  // local 0 = parent 2, local 1 = parent 1
  const InducedSubgraph sub = induced_subgraph(g, pick);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_EQ(sub.to_parent[0], 2u);
  EXPECT_EQ(sub.to_parent[1], 1u);
}

}  // namespace
}  // namespace c3
