// Ablation of the orientation/preprocessing choices of Section 4 — the rows
// of Table 1 head-to-head: exact degeneracy vs (2+eps)-approximate vs hybrid
// vs the two community-degeneracy edge orders.
#include <cstdio>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

void row(const char* name, const c3::Graph& g, int k, const c3::CliqueOptions& opts,
         c3::Table& table) {
  c3::WallTimer timer;
  const c3::CliqueResult r = c3::count_cliques(g, k, opts);
  const double total = timer.seconds();
  table.add_row({name, std::to_string(k), std::to_string(r.stats.order_quality),
                 std::to_string(r.stats.gamma), c3::strfmt("%.3f", r.stats.preprocess_seconds),
                 c3::strfmt("%.3f", total), c3::with_commas(r.count)});
}

}  // namespace

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);

  std::printf("# Ablation — graph orientation / preprocessing variants (Section 4)\n");
  std::printf("# quality = max out-degree (or max |V'| for edge orders); gamma = largest\n");
  std::printf("# candidate universe the recursion sees; prep = order+communities time.\n\n");

  const c3::bench::Dataset ds = c3::bench::dblp_like(scale);
  std::printf("## %s stand-in\n", ds.name.c_str());

  c3::Table table({"variant", "k", "quality", "gamma", "prep[s]", "total[s]", "#cliques"});
  for (const int k : {6, 8, 10}) {
    c3::CliqueOptions exact;
    exact.vertex_order = c3::VertexOrderKind::ExactDegeneracy;
    row("c3 exact-degeneracy (best work)", ds.graph, k, exact, table);

    c3::CliqueOptions approx;
    approx.vertex_order = c3::VertexOrderKind::ApproxDegeneracy;
    row("c3 approx-degeneracy (best depth)", ds.graph, k, approx, table);

    c3::CliqueOptions byid;
    byid.vertex_order = c3::VertexOrderKind::ById;
    row("c3 id-order (no preprocessing)", ds.graph, k, byid, table);

    c3::CliqueOptions hybrid;
    hybrid.algorithm = c3::Algorithm::Hybrid;
    row("hybrid (Sec 4.2)", ds.graph, k, hybrid, table);

    c3::CliqueOptions cd_exact;
    cd_exact.algorithm = c3::Algorithm::C3ListCD;
    cd_exact.edge_order = c3::EdgeOrderKind::ExactCommunityDegeneracy;
    row("cd exact sigma-order (best work)", ds.graph, k, cd_exact, table);

    c3::CliqueOptions cd_approx;
    cd_approx.algorithm = c3::Algorithm::C3ListCD;
    cd_approx.edge_order = c3::EdgeOrderKind::ApproxCommunityDegeneracy;
    row("cd Algorithm-4 order (best depth)", ds.graph, k, cd_approx, table);

    c3::CliqueOptions tri;
    tri.triangle_growth = true;
    row("c3 triangle-growth (future work)", ds.graph, k, tri, table);
  }
  table.print();
  return 0;
}
