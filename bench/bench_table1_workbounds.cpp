// Empirical validation of Table 1: the measured work of each algorithm
// variant, swept over k, against the analytic growth terms of Theorem 2.1
// and Theorem 4.3.
//
// Work is measured with the instrumented counters (candidate pairs probed +
// intersection words + leaf work — the three cost components of the
// analysis, Lemmas 2.3 / A.1 / A.2). For each variant the table prints
// measured work W(k) and the ratio W(k) / bound(k) with
// bound(k) = m * ((gamma + 4 - k)/2)^(k-2): if the theorem holds, the ratio
// stays bounded as k grows (the bound may be loose, so ratios well below 1
// are expected — what must NOT happen is unbounded growth).
#include <cstdio>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace c3;

count_t measured_work(const CliqueStats& s) {
  return s.pairs_probed + s.intersection_words + s.leaf_work;
}

void sweep(const char* variant, const Graph& g, const CliqueOptions& opts, int kmin, int kmax,
           Table& table, bool cd_bound) {
  for (int k = kmin; k <= kmax; ++k) {
    const CliqueResult r = count_cliques(g, k, opts);
    const double gamma = static_cast<double>(r.stats.gamma);
    const double bound = static_cast<double>(g.num_edges()) * static_cast<double>(k) *
                         theorem21_growth(gamma, k);
    const count_t work = measured_work(r.stats);
    table.add_row({variant, std::to_string(k), std::to_string(r.stats.gamma),
                   with_commas(work), strfmt("%.3g", bound),
                   bound > 0 ? strfmt("%.2e", static_cast<double>(work) / bound) : "-",
                   with_commas(r.count)});
    (void)cd_bound;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int kmin = static_cast<int>(cli.get_int("kmin", 6));
  const int kmax = static_cast<int>(cli.get_int("kmax", 10));

  std::printf("# Table 1 — empirical work-bound validation\n");
  std::printf("# measured = pairs probed + intersection words + leaf work (the cost terms of\n");
  std::printf("# the analysis); bound = k*m*((gamma+4-k)/2)^(k-2) per Theorem 2.1/4.3.\n");
  std::printf("# Theorem holds  <=>  ratio = measured/bound stays bounded as k grows.\n\n");

  const c3::bench::Dataset ds = c3::bench::bio_sc_ht_like(scale);
  std::printf("## dataset: %s stand-in\n\n", ds.name.c_str());

  c3::Table table({"variant", "k", "gamma", "measured work", "bound", "ratio", "#cliques"});

  CliqueOptions best_work;  // Table 1 "Best Work": exact degeneracy order
  best_work.vertex_order = VertexOrderKind::ExactDegeneracy;
  sweep("c3 best-work (exact s-order)", ds.graph, best_work, kmin, kmax, table, false);

  CliqueOptions best_depth;  // Table 1 "Best Depth": (2+eps)-approx order
  best_depth.vertex_order = VertexOrderKind::ApproxDegeneracy;
  sweep("c3 best-depth ((2+eps)-order)", ds.graph, best_depth, kmin, kmax, table, false);

  CliqueOptions hybrid;  // Table 1 "Hybrid"
  hybrid.algorithm = Algorithm::Hybrid;
  sweep("c3 hybrid (Sec 4.2)", ds.graph, hybrid, kmin, kmax, table, false);

  CliqueOptions cd_exact;  // Table 1 community-degeneracy "Best Work"
  cd_exact.algorithm = Algorithm::C3ListCD;
  cd_exact.edge_order = EdgeOrderKind::ExactCommunityDegeneracy;
  sweep("cd best-work (exact sigma-order)", ds.graph, cd_exact, kmin, kmax, table, true);

  CliqueOptions cd_approx;  // Table 1 community-degeneracy "Best Depth"
  cd_approx.algorithm = Algorithm::C3ListCD;
  cd_approx.edge_order = EdgeOrderKind::ApproxCommunityDegeneracy;
  sweep("cd best-depth (Algorithm 4)", ds.graph, cd_approx, kmin, kmax, table, true);

  table.print();

  std::printf("\n# Depth side of Table 1 (preprocessing rounds, the depth-determining terms):\n");
  const auto exact_deg = c3::degeneracy_order(ds.graph);
  const auto approx_deg = c3::approx_degeneracy_order(ds.graph, 0.5);
  const auto cd_approx_order = c3::approx_community_degeneracy_order(ds.graph, 0.5);
  std::printf("#   exact degeneracy order:    n = %u sequential steps (O(n) depth)\n",
              ds.graph.num_nodes());
  std::printf("#   approx degeneracy order:   %u peeling rounds (O(log^2 n) depth), quality %u vs s=%u\n",
              approx_deg.rounds, approx_deg.max_out_degree, exact_deg.degeneracy);
  std::printf("#   approx community order:    %u peeling rounds (Algorithm 4), max|V'|=%u vs sigma\n",
              cd_approx_order.rounds, cd_approx_order.sigma);
  return 0;
}
