// Admission fairness under skewed load: six clients hammering one hot graph
// must not starve two clients of a light graph out of the shared total
// budget. The grants-based round-robin hand-off (LineFrontEnd::grant_locked)
// is what makes this hold by construction; this suite stresses it with real
// threads and checks liveness, cap enforcement, and counter reconciliation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "clique/query.hpp"
#include "clique/service.hpp"
#include "graph/gen/generators.hpp"
#include "net/frontend.hpp"

namespace c3::net {
namespace {

TEST(Fairness, SkewedClientsAllMakeProgressUnderTotalCap) {
  CliqueService service;
  // The hot graph carries real work per query; the light graph answers fast.
  service.add_graph("hot", social_like(400, 3600, 0.45, 7));
  service.add_graph("light", erdos_renyi(60, 240, 5));
  service.prepare("hot");
  service.prepare("light");

  // Tight caps force every thread through the waiter queue: 2 slots per
  // graph, 3 in the whole process — contention is the common case, not the
  // corner.
  FrontEndOptions opts;
  opts.max_inflight_per_graph = 2;
  opts.max_inflight_total = 3;
  LineFrontEnd fe(service, nullptr, opts);

  constexpr int kHotClients = 6;
  constexpr int kLightClients = 2;
  constexpr int kRequestsPerClient = 12;
  std::atomic<int> hot_done{0};
  std::atomic<int> light_done{0};
  std::atomic<int> errors{0};

  std::vector<std::thread> clients;
  clients.reserve(kHotClients + kLightClients);
  for (int t = 0; t < kHotClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        // Vary k so the answer cache (absent here anyway) could never mask
        // admission; mix in real work.
        const std::string line = "hot count " + std::to_string(3 + (t + i) % 3);
        if (fe.process(line).line.rfind("error:", 0) == 0) errors.fetch_add(1);
        hot_done.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kLightClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string line = "light count " + std::to_string(3 + (t + i) % 2);
        if (fe.process(line).line.rfind("error:", 0) == 0) errors.fetch_add(1);
        light_done.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Liveness: every client finished every request, none errored.
  EXPECT_EQ(hot_done.load(), kHotClients * kRequestsPerClient);
  EXPECT_EQ(light_done.load(), kLightClients * kRequestsPerClient);
  EXPECT_EQ(errors.load(), 0);

  // The per-graph cap was never exceeded (peak_inflight is the max observed
  // concurrent execution on any one graph).
  const FrontEndStats s = fe.stats();
  EXPECT_LE(s.peak_inflight, opts.max_inflight_per_graph);

  // Counters reconcile: every request either answered or errored.
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>((kHotClients + kLightClients) *
                                                   kRequestsPerClient));
  EXPECT_EQ(s.answered + s.errors, s.requests);
}

TEST(Fairness, LightGraphIsNotStarvedWhileHotFloodRuns) {
  CliqueService service;
  service.add_graph("hot", social_like(500, 4500, 0.45, 13));
  service.add_graph("light", erdos_renyi(50, 200, 3));
  service.prepare("hot");
  service.prepare("light");

  FrontEndOptions opts;
  opts.max_inflight_per_graph = 2;
  opts.max_inflight_total = 2;  // hot flood alone can exhaust the process
  LineFrontEnd fe(service, nullptr, opts);

  std::atomic<bool> stop{false};
  std::atomic<int> light_done{0};

  // A persistent flood: six threads that keep the hot graph's queue full
  // until told to stop.
  std::vector<std::thread> flood;
  for (int t = 0; t < 6; ++t) {
    flood.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)fe.process("hot count 4");
      }
    });
  }
  // Give the flood a head start so the light client arrives at a saturated
  // total cap — the exact situation round-robin granting exists for.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread light([&] {
    for (int i = 0; i < 8; ++i) {
      const LineFrontEnd::Reply r = fe.process("light count 3");
      EXPECT_NE(r.line.rfind("error:", 0), 0u) << r.line;
      light_done.fetch_add(1);
    }
  });

  // The light client must finish while the flood is still running. The
  // generous deadline only bounds a genuine starvation hang.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (light_done.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(light_done.load(), 8) << "light-graph client starved behind the hot flood";

  stop.store(true, std::memory_order_release);
  light.join();
  for (std::thread& t : flood) t.join();

  const FrontEndStats s = fe.stats();
  EXPECT_LE(s.peak_inflight, opts.max_inflight_per_graph);
  EXPECT_EQ(s.answered + s.errors, s.requests);
  EXPECT_EQ(s.errors, 0u);
}

}  // namespace
}  // namespace c3::net
