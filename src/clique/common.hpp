// Shared types of the clique-listing algorithms: options, result statistics,
// and the listing callback.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "graph/types.hpp"

namespace c3 {

/// Which k-clique algorithm to run (see DESIGN.md Section 1, the system
/// inventory).
enum class Algorithm {
  C3List,      ///< the paper's community-centric algorithm (Algorithms 1+2)
  C3ListCD,    ///< Algorithm 3, parameterized by community degeneracy
  Hybrid,      ///< Section 4.2: approximate outer order, exact inner orders
  KCList,      ///< baseline: Danisch et al. (WWW'18)
  ArbCount,    ///< baseline: Shi et al. (parallel clique counting)
  BruteForce,  ///< reference enumerator for testing
};

/// Vertex total order used to orient the graph (Section 4; the ordering
/// heuristics beyond the degeneracy orders follow Li et al. [36], cited in
/// the paper's related work).
enum class VertexOrderKind {
  Default,           ///< what the algorithm's paper uses: exact degeneracy for
                     ///< c3List/kcList, (2+eps)-approximate for ArbCount
  ExactDegeneracy,   ///< Lemma 4.1 — best work, O(n) depth
  ApproxDegeneracy,  ///< Lemma 4.2 — (2+eps)-approximate, polylog depth
  Degree,            ///< non-decreasing degree (a popular cheap heuristic)
  Random,            ///< uniform random (hash of id + order_seed)
  ById,              ///< identity order (for testing / Algorithm 3's inner order)
};

/// Edge total order for the community-degeneracy variant (Section 4.3).
enum class EdgeOrderKind {
  ExactCommunityDegeneracy,   ///< greedy — best work, linear depth
  ApproxCommunityDegeneracy,  ///< Algorithm 4 — (3+eps)-approximate, polylog depth
};

struct CliqueOptions {
  Algorithm algorithm = Algorithm::C3List;
  VertexOrderKind vertex_order = VertexOrderKind::Default;
  EdgeOrderKind edge_order = EdgeOrderKind::ExactCommunityDegeneracy;
  /// Approximation slack for the approximate orders.
  double eps = 0.5;
  /// Seed for VertexOrderKind::Random.
  std::uint64_t order_seed = 1;
  /// The paper's relevant-pair criterion (delta_I(u,v) >= c-2). Disabling it
  /// reverts to probing all candidate pairs — the ablation of Figure 2's
  /// pruning rule.
  bool distance_pruning = true;
  /// Grow the clique by triangles (3 vertices per level) instead of edges —
  /// the generalization the paper's conclusion raises as future work.
  /// Supported by C3List, C3ListCD, and Hybrid.
  bool triangle_growth = false;
};

/// Instrumentation counters, aggregated over all workers. These are the
/// empirical counterparts of the quantities in the paper's work analysis:
/// pairs_probed ~ |R^P|, edges_matched ~ |R^E|, intersection_words ~ the
/// intersection work, leaf_work ~ the listing cost L(c, I).
struct CliqueStats {
  count_t cliques = 0;
  count_t top_level_tasks = 0;     ///< edges (or vertices) spawning a search
  count_t recursive_calls = 0;
  count_t pairs_probed = 0;        ///< candidate pairs examined
  count_t edges_matched = 0;       ///< probed pairs that were edges (recursed)
  count_t intersection_words = 0;  ///< 64-bit words touched by intersections
  count_t leaf_work = 0;           ///< work at recursion leaves (c <= 2)
  count_t dense_subproblems = 0;   ///< subproblems routed to the dense
                                   ///< (bitset local-graph) path vs CSR
  node_t gamma = 0;                ///< largest community / candidate set
  node_t order_quality = 0;        ///< max out-degree (or max |V'|) induced by the order
  double preprocess_seconds = 0.0;
  double search_seconds = 0.0;
};

/// Result of one clique query: the global count plus instrumentation.
struct CliqueResult {
  count_t count = 0;
  CliqueStats stats;
};

/// Per-worker counter block merged into CliqueStats at the end of a run.
struct LocalCounters {
  count_t cliques = 0;
  count_t recursive_calls = 0;
  count_t pairs_probed = 0;
  count_t edges_matched = 0;
  count_t intersection_words = 0;
  count_t leaf_work = 0;
  count_t dense_subproblems = 0;

  void merge_into(CliqueStats& s) const noexcept {
    s.cliques += cliques;
    s.recursive_calls += recursive_calls;
    s.pairs_probed += pairs_probed;
    s.edges_matched += edges_matched;
    s.intersection_words += intersection_words;
    s.leaf_work += leaf_work;
    s.dense_subproblems += dense_subproblems;
  }
};

/// Folds one worker's per-query accumulators — its clique count and counter
/// block — into a result. The single merge point for every search half (the
/// lease's merge_into drains all worker slots through it), so the stats
/// contract lives in exactly one place.
inline void merge_stats(CliqueResult& result, count_t count, const LocalCounters& ctr) noexcept {
  result.count += count;
  ctr.merge_into(result.stats);
  result.stats.cliques = result.count;
}

/// Folds one sub-engine's stats into a cross-engine aggregate — the merge
/// point for answer composition (a ShardedEngine folds each shard's main and
/// halo sub-answers through here). Work counters and wall times sum; the
/// structural quality figures (gamma, order_quality) take the max, since the
/// aggregate is only as well-ordered as its worst part. `cliques` sums too,
/// but a composing caller whose merge is not a plain sum (inclusion-
/// exclusion) must overwrite it with the merged count afterwards.
inline void accumulate_stats(CliqueStats& into, const CliqueStats& from) noexcept {
  into.cliques += from.cliques;
  into.top_level_tasks += from.top_level_tasks;
  into.recursive_calls += from.recursive_calls;
  into.pairs_probed += from.pairs_probed;
  into.edges_matched += from.edges_matched;
  into.intersection_words += from.intersection_words;
  into.leaf_work += from.leaf_work;
  into.dense_subproblems += from.dense_subproblems;
  into.gamma = std::max(into.gamma, from.gamma);
  into.order_quality = std::max(into.order_quality, from.order_quality);
  into.preprocess_seconds += from.preprocess_seconds;
  into.search_seconds += from.search_seconds;
}

/// Listing callback: receives the k vertices of each clique (original vertex
/// ids, unspecified order). Return true to continue the enumeration, false
/// to stop early (used by the decision/witness queries). May be invoked
/// concurrently from multiple workers.
using CliqueCallback = std::function<bool(std::span<const node_t>)>;

}  // namespace c3
