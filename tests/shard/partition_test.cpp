// Partitioner tests: ranges tile [0, n) under both policies (including the
// degenerate shard counts), EdgeBlock tracks degree mass, and build_shard
// honors its contracts — exact halo membership, ascending owned-first
// relabeling (to_parent strictly increasing), induced subgraph fidelity,
// and local->parent edge maps that land on the right endpoints.
#include "shard/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/graph.hpp"

namespace c3 {
namespace {

using shard::PartitionPolicy;
using shard::ShardingOptions;
using shard::ShardPart;
using shard::ShardRange;

const PartitionPolicy kPolicies[] = {PartitionPolicy::VertexRange, PartitionPolicy::EdgeBlock};

void expect_tiles(const std::vector<ShardRange>& ranges, node_t n) {
  ASSERT_FALSE(ranges.empty());
  node_t expect = 0;
  for (const ShardRange& r : ranges) {
    EXPECT_EQ(r.lo, expect);
    EXPECT_LE(r.lo, r.hi);
    expect = r.hi;
  }
  EXPECT_EQ(expect, n);
}

TEST(PartitionTest, RangesTileForAnyShardCount) {
  const Graph g = social_like(200, 1500, 0.4, 3);
  for (const PartitionPolicy policy : kPolicies) {
    for (const int shards : {1, 2, 3, 7, 50, 199, 200, 500}) {
      SCOPED_TRACE(std::string(partition_policy_name(policy)) + " shards=" +
                   std::to_string(shards));
      ShardingOptions opts;
      opts.shards = shards;
      opts.policy = policy;
      const auto ranges = partition_ranges(g, opts);
      EXPECT_EQ(ranges.size(), static_cast<std::size_t>(std::max(1, shards)));
      expect_tiles(ranges, g.num_nodes());
    }
  }
}

TEST(PartitionTest, DegenerateGraphsStillTile) {
  const Graph empty = build_graph(EdgeList{}, 0);
  const Graph isolated = build_graph(EdgeList{}, 5);  // vertices, no edges
  for (const Graph* g : {&empty, &isolated}) {
    for (const PartitionPolicy policy : kPolicies) {
      for (const int shards : {1, 3}) {
        ShardingOptions opts;
        opts.shards = shards;
        opts.policy = policy;
        expect_tiles(partition_ranges(*g, opts), g->num_nodes());
      }
    }
  }
  // A non-positive shard count clamps to one range covering everything.
  ShardingOptions zero;
  zero.shards = 0;
  const auto ranges = partition_ranges(isolated, zero);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, 5u);
}

TEST(PartitionTest, EdgeBlockBalancesDegreeMass) {
  // A hub-heavy graph: BA attachment concentrates degree in the early ids,
  // which is exactly the shape VertexRange splits badly and EdgeBlock fixes.
  const Graph g = barabasi_albert(400, 6, 11);
  ShardingOptions opts;
  opts.shards = 4;
  opts.policy = PartitionPolicy::EdgeBlock;
  const auto ranges = partition_ranges(g, opts);
  expect_tiles(ranges, g.num_nodes());

  const std::uint64_t total = 2 * static_cast<std::uint64_t>(g.num_edges());
  const std::uint64_t fair = total / 4;
  for (const ShardRange& r : ranges) {
    std::uint64_t mass = 0;
    for (node_t v = r.lo; v < r.hi; ++v) mass += g.degree(v);
    // Each block may overshoot its target by at most one vertex's degree;
    // allow that plus the rounding slack of the closing boundary.
    EXPECT_LE(mass, fair + g.max_degree() + 4) << "range [" << r.lo << ", " << r.hi << ")";
  }
}

TEST(PartitionTest, BuildShardHaloAndRelabeling) {
  const Graph g = social_like(120, 900, 0.45, 9);
  ShardingOptions opts;
  opts.shards = 3;
  for (const PartitionPolicy policy : kPolicies) {
    opts.policy = policy;
    for (const ShardRange range : partition_ranges(g, opts)) {
      SCOPED_TRACE(std::string(partition_policy_name(policy)) + " range [" +
                   std::to_string(range.lo) + ", " + std::to_string(range.hi) + ")");
      const ShardPart part = shard::build_shard(g, range);
      EXPECT_EQ(part.owned_count(), range.size());

      // Halo: exactly the neighbors of owned vertices with id >= hi.
      std::set<node_t> expected_halo;
      for (node_t u = range.lo; u < range.hi; ++u) {
        for (const node_t w : g.neighbors(u)) {
          if (w >= range.hi) expected_halo.insert(w);
        }
      }
      EXPECT_EQ(std::vector<node_t>(expected_halo.begin(), expected_halo.end()), part.halo);

      // Relabeling: owned first, then halo, both ascending — to_parent is
      // strictly increasing, so local order mirrors global order.
      const std::vector<node_t>& to_parent = part.main.to_parent;
      ASSERT_EQ(to_parent.size(), part.owned_count() + part.halo.size());
      for (node_t u = range.lo; u < range.hi; ++u) EXPECT_EQ(to_parent[u - range.lo], u);
      EXPECT_TRUE(std::is_sorted(to_parent.begin(), to_parent.end()) &&
                  std::adjacent_find(to_parent.begin(), to_parent.end()) == to_parent.end());

      // Induced fidelity: every local edge exists in the parent, and every
      // parent edge between shard vertices exists locally.
      const Graph& sub = part.main.graph;
      std::set<std::pair<node_t, node_t>> local_edges;
      for (const Edge& e : sub.endpoints()) {
        const node_t pu = to_parent[e.u];
        const node_t pv = to_parent[e.v];
        EXPECT_TRUE(g.has_edge(pu, pv)) << pu << "-" << pv;
        local_edges.emplace(std::min(pu, pv), std::max(pu, pv));
      }
      std::set<node_t> members(to_parent.begin(), to_parent.end());
      for (const node_t u : members) {
        for (const node_t w : g.neighbors(u)) {
          if (u < w && members.count(w)) {
            EXPECT_TRUE(local_edges.count({u, w})) << u << "-" << w;
          }
        }
      }

      // Edge maps: local edge e maps to the parent edge joining the mapped
      // endpoints.
      ASSERT_EQ(part.edge_map.size(), sub.endpoints().size());
      for (std::size_t e = 0; e < part.edge_map.size(); ++e) {
        const Edge local = sub.endpoints()[e];
        EXPECT_EQ(part.edge_map[e], g.edge_id(to_parent[local.u], to_parent[local.v]));
      }
      ASSERT_EQ(part.halo_edge_map.size(), part.halo_sub.graph.endpoints().size());
      for (std::size_t e = 0; e < part.halo_edge_map.size(); ++e) {
        const Edge local = part.halo_sub.graph.endpoints()[e];
        EXPECT_EQ(part.halo_edge_map[e],
                  g.edge_id(part.halo_sub.to_parent[local.u], part.halo_sub.to_parent[local.v]));
      }
    }
  }
}

TEST(PartitionTest, LastShardHasNoHalo) {
  const Graph g = erdos_renyi(100, 600, 5);
  ShardingOptions opts;
  opts.shards = 4;
  const auto ranges = partition_ranges(g, opts);
  const ShardPart last = shard::build_shard(g, ranges.back());
  EXPECT_TRUE(last.halo.empty());
  EXPECT_EQ(last.halo_sub.graph.num_nodes(), 0u);
}

TEST(PartitionTest, PolicyNamesAreStable) {
  EXPECT_STREQ(partition_policy_name(PartitionPolicy::VertexRange), "vertex_range");
  EXPECT_STREQ(partition_policy_name(PartitionPolicy::EdgeBlock), "edge_block");
}

}  // namespace
}  // namespace c3
