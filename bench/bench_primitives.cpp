// google-benchmark microbenchmarks for the substrates: parallel primitives,
// graph construction, orders, triangle/community preprocessing.
#include <benchmark/benchmark.h>

#include <numeric>

#include "c3list.hpp"
#include "parallel/pack.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace c3;

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> in(n, 3), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exclusive_scan<std::uint64_t>(in, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 14)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base(n);
  Xoshiro256 rng(1);
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::uint64_t> data = base;
    state.ResumeTiming();
    parallel_sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 14)->Arg(1 << 19);

void BM_PackIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_index(n, [](std::size_t i) { return i % 3 == 0; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PackIndex)->Arg(1 << 20);

void BM_BuildGraph(benchmark::State& state) {
  const node_t n = 50'000;
  EdgeList edges;
  Xoshiro256 rng(7);
  for (int i = 0; i < 400'000; ++i) {
    edges.push_back(Edge{static_cast<node_t>(rng.next_below(n)),
                         static_cast<node_t>(rng.next_below(n))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_graph(edges, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) * state.iterations());
}
BENCHMARK(BM_BuildGraph);

void BM_DegeneracyOrder(benchmark::State& state) {
  const Graph g = chung_lu(100'000, 800'000, 0.6, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degeneracy_order(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_DegeneracyOrder);

void BM_ApproxDegeneracyOrder(benchmark::State& state) {
  const Graph g = chung_lu(100'000, 800'000, 0.6, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_degeneracy_order(g, 0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_ApproxDegeneracyOrder);

void BM_TriangleCount(benchmark::State& state) {
  const Graph g = social_like(50'000, 400'000, 0.4, 9);
  const Digraph dag = Digraph::orient(g, degeneracy_order(g).order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_TriangleCount);

void BM_BuildCommunities(benchmark::State& state) {
  const Graph g = social_like(50'000, 400'000, 0.4, 9);
  const Digraph dag = Digraph::orient(g, degeneracy_order(g).order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeCommunities::build(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_BuildCommunities);

void BM_CommunityDegeneracyOrder(benchmark::State& state) {
  const Graph g = social_like(20'000, 150'000, 0.4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(community_degeneracy_order(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_CommunityDegeneracyOrder);

void BM_ApproxCommunityDegeneracyOrder(benchmark::State& state) {
  const Graph g = social_like(20'000, 150'000, 0.4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_community_degeneracy_order(g, 0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_ApproxCommunityDegeneracyOrder);

}  // namespace
