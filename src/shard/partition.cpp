#include "shard/partition.hpp"

#include <algorithm>

namespace c3::shard {

const char* partition_policy_name(PartitionPolicy p) noexcept {
  switch (p) {
    case PartitionPolicy::VertexRange:
      return "vertex_range";
    case PartitionPolicy::EdgeBlock:
      return "edge_block";
  }
  return "unknown";
}

std::vector<ShardRange> partition_ranges(const Graph& g, const ShardingOptions& opts) {
  const auto shards = static_cast<std::size_t>(std::max(1, opts.shards));
  const node_t n = g.num_nodes();
  std::vector<ShardRange> ranges(shards);

  if (opts.policy == PartitionPolicy::VertexRange || g.num_edges() == 0) {
    // Equal vertex counts; the i-th boundary at floor(n*i/s) keeps every
    // range within one vertex of n/s. An edgeless graph has uniform degree
    // mass, so EdgeBlock degrades to the same split.
    for (std::size_t i = 0; i < shards; ++i) {
      ranges[i].lo = static_cast<node_t>(static_cast<std::uint64_t>(n) * i / shards);
      ranges[i].hi = static_cast<node_t>(static_cast<std::uint64_t>(n) * (i + 1) / shards);
    }
    return ranges;
  }

  // EdgeBlock: walk the degree prefix sum, closing shard i at the first
  // vertex where the accumulated mass reaches i/s of the total — contiguous
  // ranges of ~2m/s degree mass each, so a hub-heavy prefix doesn't load one
  // shard with most of the edges.
  const std::uint64_t total = 2 * static_cast<std::uint64_t>(g.num_edges());
  std::uint64_t cum = 0;
  node_t v = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    ranges[i].lo = v;
    const std::uint64_t target = total * (i + 1) / shards;
    while (v < n && cum < target) {
      cum += g.degree(v);
      ++v;
    }
    ranges[i].hi = i + 1 == shards ? n : v;
  }
  ranges.back().hi = n;
  return ranges;
}

namespace {

/// Local-edge -> parent-edge map for an induced subgraph. Every local edge
/// is an edge of the parent (induced subgraphs add none), so edge_id never
/// misses.
std::vector<edge_t> map_edges(const Graph& g, const InducedSubgraph& sub) {
  const std::span<const Edge> local = sub.graph.endpoints();
  std::vector<edge_t> map(local.size());
  for (std::size_t e = 0; e < local.size(); ++e) {
    map[e] = g.edge_id(sub.to_parent[local[e].u], sub.to_parent[local[e].v]);
  }
  return map;
}

}  // namespace

ShardPart build_shard(const Graph& g, ShardRange range) {
  ShardPart part;
  part.range = range;

  // Halo: neighbors of owned vertices with id >= hi, deduplicated ascending.
  for (node_t u = range.lo; u < range.hi; ++u) {
    for (const node_t w : g.neighbors(u)) {
      if (w >= range.hi) part.halo.push_back(w);
    }
  }
  std::sort(part.halo.begin(), part.halo.end());
  part.halo.erase(std::unique(part.halo.begin(), part.halo.end()), part.halo.end());

  // owned ++ halo, both ascending: to_parent is strictly increasing, so
  // local id order mirrors global id order (the root test depends on it).
  std::vector<node_t> vertices;
  vertices.reserve(static_cast<std::size_t>(range.size()) + part.halo.size());
  for (node_t u = range.lo; u < range.hi; ++u) vertices.push_back(u);
  vertices.insert(vertices.end(), part.halo.begin(), part.halo.end());

  part.main = induced_subgraph(g, vertices);
  part.edge_map = map_edges(g, part.main);
  part.halo_sub = induced_subgraph(g, part.halo);
  part.halo_edge_map = map_edges(g, part.halo_sub);
  return part;
}

}  // namespace c3::shard
