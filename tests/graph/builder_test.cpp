// Tests for the parallel graph builder's input normalization.
#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {
namespace {

TEST(Builder, DropsSelfLoops) {
  const Graph g = build_graph(EdgeList{{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Builder, MergesDuplicatesAndReversedDuplicates) {
  const Graph g = build_graph(EdgeList{{0, 1}, {0, 1}, {1, 0}, {2, 1}, {1, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Builder, InfersNodeCountFromMaxId) {
  const Graph g = build_graph(EdgeList{{3, 9}});
  EXPECT_EQ(g.num_nodes(), 10u);
}

TEST(Builder, ExplicitNodeCountKeepsIsolated) {
  const Graph g = build_graph(EdgeList{{0, 1}}, 7);
  EXPECT_EQ(g.num_nodes(), 7u);
}

TEST(Builder, ThrowsOnOutOfRangeVertex) {
  EXPECT_THROW((void)build_graph(EdgeList{{0, 5}}, 3), std::invalid_argument);
}

TEST(Builder, EmptyEdgeList) {
  const Graph g = build_graph(EdgeList{}, 4);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  const Graph g0 = build_graph(EdgeList{});
  EXPECT_EQ(g0.num_nodes(), 0u);
}

TEST(Builder, LargeRandomInputInvariants) {
  // Throw a messy random multigraph at the builder and verify CSR sanity.
  const node_t n = 5000;
  EdgeList edges;
  Xoshiro256 rng(99);
  for (int i = 0; i < 60'000; ++i) {
    edges.push_back(Edge{static_cast<node_t>(rng.next_below(n)),
                         static_cast<node_t>(rng.next_below(n))});
  }
  const Graph g = build_graph(edges, n);
  edge_t degree_sum = 0;
  for (node_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    ASSERT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end()) << "duplicate";
    for (const node_t w : nbrs) {
      ASSERT_NE(w, v) << "self loop";
      ASSERT_TRUE(g.has_edge(w, v)) << "asymmetric";
    }
    degree_sum += nbrs.size();
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST(Builder, DeterministicAcrossWorkerCounts) {
  EdgeList edges;
  Xoshiro256 rng(123);
  for (int i = 0; i < 10'000; ++i) {
    edges.push_back(Edge{static_cast<node_t>(rng.next_below(500)),
                         static_cast<node_t>(rng.next_below(500))});
  }
  const int original = num_workers();
  set_num_workers(1);
  const Graph g1 = build_graph(edges, 500);
  set_num_workers(4);
  const Graph g4 = build_graph(edges, 500);
  set_num_workers(original);

  ASSERT_EQ(g1.num_edges(), g4.num_edges());
  for (node_t v = 0; v < 500; ++v) {
    const auto a = g1.neighbors(v);
    const auto b = g4.neighbors(v);
    ASSERT_EQ(std::vector<node_t>(a.begin(), a.end()), std::vector<node_t>(b.begin(), b.end()));
  }
}

}  // namespace
}  // namespace c3
