// Tests for the word-level bitset helpers that carry the clique engine, and
// backend-parity property tests for the SIMD kernel substrate built on them.
#include "util/bitwords.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/bitkernels.hpp"

namespace c3 {
namespace {

TEST(Bitwords, SetTestClearAcrossWordBoundaries) {
  std::vector<std::uint64_t> w(3, 0);
  for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 191u}) {
    EXPECT_FALSE(bits::test_bit(w.data(), i));
    bits::set_bit(w.data(), i);
    EXPECT_TRUE(bits::test_bit(w.data(), i));
  }
  bits::clear_bit(w.data(), 64);
  EXPECT_FALSE(bits::test_bit(w.data(), 64));
  EXPECT_TRUE(bits::test_bit(w.data(), 63));
  EXPECT_TRUE(bits::test_bit(w.data(), 65));
}

TEST(Bitwords, WordsForRounding) {
  EXPECT_EQ(bits::words_for(0), 0u);
  EXPECT_EQ(bits::words_for(1), 1u);
  EXPECT_EQ(bits::words_for(64), 1u);
  EXPECT_EQ(bits::words_for(65), 2u);
  EXPECT_EQ(bits::words_for(128), 2u);
  EXPECT_EQ(bits::words_for(129), 3u);
}

TEST(Bitwords, PopcountAndVariants) {
  std::vector<std::uint64_t> a(2, 0), b(2, 0), c(2, 0);
  for (std::size_t i = 0; i < 128; i += 2) bits::set_bit(a.data(), i);   // evens
  for (std::size_t i = 0; i < 128; i += 3) bits::set_bit(b.data(), i);   // multiples of 3
  for (std::size_t i = 0; i < 128; i += 4) bits::set_bit(c.data(), i);   // multiples of 4
  EXPECT_EQ(bits::popcount(a.data(), 2), 64u);
  EXPECT_EQ(bits::popcount_and(a.data(), b.data(), 2), 22u);   // multiples of 6 in [0,128)
  EXPECT_EQ(bits::popcount_and3(a.data(), b.data(), c.data(), 2), 11u);  // multiples of 12
}

/// Reference implementation of between_mask.
std::vector<std::uint64_t> between_reference(std::size_t lo, std::size_t hi, std::size_t nwords) {
  std::vector<std::uint64_t> w(nwords, 0);
  for (std::size_t i = lo + 1; i < hi; ++i) bits::set_bit(w.data(), i);
  return w;
}

TEST(Bitwords, BetweenMaskMatchesReferenceExhaustively) {
  const std::size_t nbits = 130;
  const std::size_t nwords = bits::words_for(nbits);
  std::vector<std::uint64_t> got(nwords);
  for (std::size_t lo = 0; lo < nbits; lo += 7) {
    for (std::size_t hi = lo; hi < nbits; hi += 5) {
      bits::between_mask(got.data(), lo, hi, nwords);
      ASSERT_EQ(got, between_reference(lo, hi, nwords)) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(Bitwords, BetweenMaskBoundaryBits) {
  std::vector<std::uint64_t> got(2);
  bits::between_mask(got.data(), 62, 66, 2);  // spans the word boundary
  EXPECT_EQ(got, between_reference(62, 66, 2));
  bits::between_mask(got.data(), 63, 64, 2);  // empty interval
  EXPECT_EQ(got, between_reference(63, 64, 2));
  bits::between_mask(got.data(), 0, 127, 2);
  EXPECT_EQ(got, between_reference(0, 127, 2));
}

TEST(Bitwords, FillPrefix) {
  std::vector<std::uint64_t> w(3, ~std::uint64_t{0});
  bits::fill_prefix(w.data(), 70, 3);
  for (std::size_t i = 0; i < 70; ++i) ASSERT_TRUE(bits::test_bit(w.data(), i));
  for (std::size_t i = 70; i < 192; ++i) ASSERT_FALSE(bits::test_bit(w.data(), i));
  bits::fill_prefix(w.data(), 128, 3);
  EXPECT_EQ(bits::popcount(w.data(), 3), 128u);
}

TEST(Bitwords, ForEachBitAscendingOrder) {
  std::vector<std::uint64_t> w(2, 0);
  const std::vector<std::size_t> expect = {0, 5, 63, 64, 100, 127};
  for (const auto i : expect) bits::set_bit(w.data(), i);
  std::vector<std::size_t> got;
  bits::for_each_bit(w.data(), 2, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, expect);
}

TEST(Bitwords, ForEachBitAndIntersects) {
  std::vector<std::uint64_t> a(2, 0), b(2, 0);
  bits::set_bit(a.data(), 3);
  bits::set_bit(a.data(), 70);
  bits::set_bit(a.data(), 90);
  bits::set_bit(b.data(), 70);
  bits::set_bit(b.data(), 90);
  bits::set_bit(b.data(), 120);
  std::vector<std::size_t> got;
  bits::for_each_bit_and(a.data(), b.data(), 2, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{70, 90}));
}

TEST(Bitwords, AndIntoAndAssign) {
  std::vector<std::uint64_t> a = {0xF0F0, 0xFF}, b = {0xFF00, 0x0F}, dst(2);
  bits::and_into(dst.data(), a.data(), b.data(), 2);
  EXPECT_EQ(dst, (std::vector<std::uint64_t>{0xF000, 0x0F}));
  bits::and_assign(a.data(), b.data(), 2);
  EXPECT_EQ(a, dst);
}

TEST(Bitwords, IntersectIntervalScalarReference) {
  // dst = a & b & mask over the inclusive [lo, hi]; verified bit by bit.
  const std::size_t nwords = 3;
  std::vector<std::uint64_t> a(nwords, 0), b(nwords, 0), mask(nwords, 0), dst(nwords, ~0ull);
  for (std::size_t i = 0; i < 192; i += 2) bits::set_bit(a.data(), i);
  for (std::size_t i = 0; i < 192; i += 3) bits::set_bit(b.data(), i);
  bits::fill_prefix(mask.data(), 190, nwords);
  for (const std::size_t lo : {0u, 1u, 63u, 64u, 65u, 127u, 128u}) {
    for (const std::size_t hi : {0u, 62u, 63u, 64u, 126u, 127u, 128u, 191u}) {
      const std::uint64_t got =
          bits::intersect_interval(a.data(), b.data(), mask.data(), dst.data(), nwords, lo, hi);
      std::uint64_t want = 0;
      for (std::size_t i = 0; i < 192; ++i) {
        const bool in = i >= lo && i <= hi && bits::test_bit(a.data(), i) &&
                        bits::test_bit(b.data(), i) && bits::test_bit(mask.data(), i);
        ASSERT_EQ(bits::test_bit(dst.data(), i), in) << "lo=" << lo << " hi=" << hi << " i=" << i;
        if (in) ++want;
      }
      ASSERT_EQ(got, want) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(Bitwords, IntersectAboveScalarReference) {
  const std::size_t nwords = 2;
  std::vector<std::uint64_t> a(nwords, 0), mask(nwords, 0), dst(nwords, ~0ull);
  for (std::size_t i = 0; i < 128; i += 2) bits::set_bit(a.data(), i);
  bits::fill_prefix(mask.data(), 120, nwords);
  for (const std::size_t x : {0u, 1u, 62u, 63u, 64u, 65u, 126u, 127u}) {
    const std::uint64_t got = bits::intersect_above(a.data(), mask.data(), dst.data(), nwords, x);
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < 128; ++i) {
      const bool in = i > x && bits::test_bit(a.data(), i) && bits::test_bit(mask.data(), i);
      ASSERT_EQ(bits::test_bit(dst.data(), i), in) << "x=" << x << " i=" << i;
      if (in) ++want;
    }
    ASSERT_EQ(got, want) << "x=" << x;
  }
}

// ------------------------------------------------------------------------
// Kernel substrate: dispatch plumbing and backend-vs-scalar parity.

TEST(Bitkernels, KernelStrideWords) {
  EXPECT_EQ(bits::kernel_stride_words(0), 0u);
  EXPECT_EQ(bits::kernel_stride_words(1), 1u);
  EXPECT_EQ(bits::kernel_stride_words(64), 1u);
  EXPECT_EQ(bits::kernel_stride_words(256), 4u);    // narrow rows stay exact
  EXPECT_EQ(bits::kernel_stride_words(257), 8u);    // wide rows pad to 512 bits
  EXPECT_EQ(bits::kernel_stride_words(512), 8u);
  EXPECT_EQ(bits::kernel_stride_words(513), 16u);
  EXPECT_EQ(bits::kernel_stride_words(1024), 16u);
}

TEST(Bitkernels, BackendNamesRoundTrip) {
  for (const bits::KernelBackend b : bits::available_kernel_backends()) {
    bits::KernelBackend parsed{};
    ASSERT_TRUE(bits::parse_kernel_backend(bits::kernel_backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
  }
  bits::KernelBackend out{};
  EXPECT_TRUE(bits::parse_kernel_backend("AUTO", out));
  EXPECT_EQ(out, bits::best_kernel_backend());
  EXPECT_FALSE(bits::parse_kernel_backend("sse9", out));
  EXPECT_FALSE(bits::parse_kernel_backend(nullptr, out));
}

TEST(Bitkernels, ScalarTableAlwaysAvailable) {
  ASSERT_NE(bits::kernel_table(bits::KernelBackend::Scalar), nullptr);
  const auto avail = bits::available_kernel_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.back(), bits::KernelBackend::Scalar);
}

TEST(Bitkernels, SetKernelBackendRoundTrip) {
  const bits::KernelBackend before = bits::active_kernel_backend();
  ASSERT_TRUE(bits::set_kernel_backend(bits::KernelBackend::Scalar));
  EXPECT_EQ(bits::active_kernel_backend(), bits::KernelBackend::Scalar);
  ASSERT_TRUE(bits::set_kernel_backend(before));
  EXPECT_EQ(bits::active_kernel_backend(), before);
}

TEST(Bitkernels, KernelAllocatorAlignment) {
  bits::KernelWords v(100, 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % bits::kKernelAlignBytes, 0u);
}

/// Property suite: every backend the host can run must agree bit-for-bit
/// with the scalar reference on randomized inputs, across word-boundary
/// universes, empty masks, and interval edge cases.
class BackendParity : public ::testing::TestWithParam<bits::KernelBackend> {
 protected:
  const bits::KernelTable& table() const { return *bits::kernel_table(GetParam()); }
};

TEST_P(BackendParity, MatchesScalarOnRandomInputs) {
  std::mt19937_64 rng(12345);
  const bits::KernelTable& t = table();
  // Word-boundary universes in bits, including the padded-row widths the
  // search uses and sizes that exercise every vector tail length.
  for (const std::size_t nbits : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 255u, 256u, 257u, 511u,
                                  512u, 640u, 1024u, 1031u}) {
    const std::size_t nwords = bits::words_for(nbits);
    bits::KernelWords a(nwords), b(nwords), c(nwords), want_dst(nwords), got_dst(nwords);
    for (int round = 0; round < 8; ++round) {
      for (std::size_t w = 0; w < nwords; ++w) {
        // Mix densities: full random, sparse, empty.
        const std::uint64_t r = rng();
        a[w] = round == 7 ? 0 : r;
        b[w] = rng() & (round >= 4 ? rng() : ~0ull);
        c[w] = rng();
      }
      // Trim to the universe so padding stays zero like real rows.
      if (nbits % 64 != 0) {
        const std::uint64_t last = (std::uint64_t{1} << (nbits % 64)) - 1;
        a[nwords - 1] &= last;
        b[nwords - 1] &= last;
        c[nwords - 1] &= last;
      }

      ASSERT_EQ(t.popcount(a.data(), nwords), bits::popcount(a.data(), nwords));
      ASSERT_EQ(t.popcount_and(a.data(), b.data(), nwords),
                bits::popcount_and(a.data(), b.data(), nwords));
      ASSERT_EQ(t.popcount_and3(a.data(), b.data(), c.data(), nwords),
                bits::popcount_and3(a.data(), b.data(), c.data(), nwords));

      bits::and_into(want_dst.data(), a.data(), b.data(), nwords);
      t.and_into(got_dst.data(), a.data(), b.data(), nwords);
      ASSERT_EQ(got_dst, want_dst) << "and_into nbits=" << nbits;

      want_dst = a;
      got_dst = a;
      bits::and_assign(want_dst.data(), c.data(), nwords);
      t.and_assign(got_dst.data(), c.data(), nwords);
      ASSERT_EQ(got_dst, want_dst) << "and_assign nbits=" << nbits;

      // Interval kernel across boundary-straddling and empty intervals.
      for (const std::size_t lo : {std::size_t{0}, std::size_t{1}, nbits / 2, nbits - 1}) {
        for (const std::size_t hi : {std::size_t{0}, nbits / 2, nbits - 1}) {
          const std::uint64_t want = bits::intersect_interval(a.data(), b.data(), c.data(),
                                                              want_dst.data(), nwords, lo, hi);
          const std::uint64_t got =
              t.intersect_interval(a.data(), b.data(), c.data(), got_dst.data(), nwords, lo, hi);
          ASSERT_EQ(got, want) << "nbits=" << nbits << " lo=" << lo << " hi=" << hi;
          ASSERT_EQ(got_dst, want_dst) << "nbits=" << nbits << " lo=" << lo << " hi=" << hi;
        }
      }

      for (const std::size_t x : {std::size_t{0}, std::size_t{1}, nbits / 2, nbits - 1}) {
        const std::uint64_t want =
            bits::intersect_above(a.data(), c.data(), want_dst.data(), nwords, x);
        const std::uint64_t got = t.intersect_above(a.data(), c.data(), got_dst.data(), nwords, x);
        ASSERT_EQ(got, want) << "nbits=" << nbits << " x=" << x;
        ASSERT_EQ(got_dst, want_dst) << "nbits=" << nbits << " x=" << x;
      }

      // Set-bit iteration: same bits, same (ascending) order.
      std::vector<std::size_t> want_bits, got_bits;
      bits::for_each_bit_and(a.data(), b.data(), nwords,
                             [&](std::size_t i) { want_bits.push_back(i); });
      t.for_each_bit_and(
          a.data(), b.data(), nwords, &got_bits,
          [](void* ctx, std::size_t i) { static_cast<std::vector<std::size_t>*>(ctx)->push_back(i); });
      ASSERT_EQ(got_bits, want_bits) << "for_each_bit_and nbits=" << nbits;
    }
  }
}

TEST_P(BackendParity, EmptyMasksAndAllOnes) {
  const bits::KernelTable& t = table();
  for (const std::size_t nwords : {1u, 2u, 8u, 16u, 17u}) {
    const bits::KernelWords zero(nwords, 0), ones(nwords, ~0ull);
    bits::KernelWords dst(nwords, 0xDEAD);
    EXPECT_EQ(t.popcount(zero.data(), nwords), 0u);
    EXPECT_EQ(t.popcount(ones.data(), nwords), nwords * 64);
    EXPECT_EQ(t.popcount_and(ones.data(), zero.data(), nwords), 0u);
    EXPECT_EQ(t.intersect_interval(ones.data(), ones.data(), zero.data(), dst.data(), nwords, 0,
                                   nwords * 64 - 1),
              0u);
    EXPECT_EQ(dst, zero);
    // hi < lo clears and returns 0.
    dst.assign(nwords, 0xBEEF);
    EXPECT_EQ(t.intersect_interval(ones.data(), ones.data(), ones.data(), dst.data(), nwords, 5, 4),
              0u);
    EXPECT_EQ(dst, zero);
    // x at the last bit leaves nothing above.
    EXPECT_EQ(t.intersect_above(ones.data(), ones.data(), dst.data(), nwords, nwords * 64 - 1),
              0u);
    EXPECT_EQ(dst, zero);
  }
}

std::string backend_param_name(const ::testing::TestParamInfo<bits::KernelBackend>& info) {
  return bits::kernel_backend_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllAvailable, BackendParity,
                         ::testing::ValuesIn(bits::available_kernel_backends()),
                         backend_param_name);

}  // namespace
}  // namespace c3
