// Tests for every graph generator: size contracts, structural signatures,
// and seed determinism.
#include "graph/gen/generators.hpp"

#include <gtest/gtest.h>

#include "graph/gen/paper_examples.hpp"

namespace c3 {
namespace {

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) return false;
  for (node_t v = 0; v < a.num_nodes(); ++v) {
    const auto x = a.neighbors(v);
    const auto y = b.neighbors(v);
    if (!std::equal(x.begin(), x.end(), y.begin(), y.end())) return false;
  }
  return true;
}

TEST(Generators, ErdosRenyiSizeAndDeterminism) {
  const Graph g = erdos_renyi(1000, 5000, 42);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_EQ(g.num_edges(), 5000u);  // exactly m distinct edges
  EXPECT_TRUE(same_graph(g, erdos_renyi(1000, 5000, 42)));
  EXPECT_FALSE(same_graph(g, erdos_renyi(1000, 5000, 43)));
}

TEST(Generators, ErdosRenyiClampsToCompleteGraph) {
  const Graph g = erdos_renyi(10, 1000, 1);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(Generators, RmatShapeAndSkew) {
  const Graph g = rmat(1 << 12, 40'000, 0.57, 0.19, 0.19, 7);
  EXPECT_EQ(g.num_nodes(), 1u << 12);
  EXPECT_GT(g.num_edges(), 30'000u);  // some dedup expected
  // R-MAT with skewed quadrants produces hubs well above average degree.
  EXPECT_GT(g.max_degree(), 8 * (2 * g.num_edges() / g.num_nodes()));
  EXPECT_TRUE(same_graph(g, rmat(1 << 12, 40'000, 0.57, 0.19, 0.19, 7)));
}

TEST(Generators, ChungLuSkewAndDeterminism) {
  const Graph g = chung_lu(2000, 10'000, 0.7, 9);
  EXPECT_EQ(g.num_nodes(), 2000u);
  EXPECT_GT(g.num_edges(), 7000u);
  EXPECT_GT(g.max_degree(), 4 * (2 * g.num_edges() / g.num_nodes()));
  EXPECT_TRUE(same_graph(g, chung_lu(2000, 10'000, 0.7, 9)));
}

TEST(Generators, BarabasiAlbertDegrees) {
  const Graph g = barabasi_albert(2000, 3, 5);
  EXPECT_EQ(g.num_nodes(), 2000u);
  // Every late vertex attaches to >= 1 (dedup may merge) and <= 3 targets.
  EXPECT_LE(g.num_edges(), 3u * 2000u);
  EXPECT_GT(g.max_degree(), 30u);  // preferential attachment grows hubs
  for (node_t v = 4; v < g.num_nodes(); ++v) ASSERT_GE(g.degree(v), 1u);
}

TEST(Generators, HypercubeStructure) {
  const Graph g = hypercube(6);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_edges(), 64u * 6 / 2);
  for (node_t v = 0; v < g.num_nodes(); ++v) ASSERT_EQ(g.degree(v), 6u);
}

TEST(Generators, CompleteAndTuran) {
  EXPECT_EQ(complete_graph(7).num_edges(), 21u);
  const Graph t = turan_graph(9, 3);  // 3 parts of 3: 27 edges
  EXPECT_EQ(t.num_edges(), 27u);
  for (node_t v = 0; v < 9; ++v) ASSERT_EQ(t.degree(v), 6u);
}

TEST(Generators, GridStarPathCycle) {
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 3u * 3 + 4u * 2);
  EXPECT_EQ(star_graph(8).num_edges(), 7u);
  EXPECT_EQ(star_graph(8).max_degree(), 7u);
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(cycle_graph(2).num_edges(), 1u);  // degenerate: no back edge
}

TEST(Generators, PlantedCliqueIsPresent) {
  std::vector<node_t> members;
  const Graph g = planted_clique(500, 1000, 12, 3, &members);
  ASSERT_EQ(members.size(), 12u);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      ASSERT_TRUE(g.has_edge(members[i], members[j]));
    }
  }
}

TEST(Generators, BipartitePlusLine) {
  const Graph g = bipartite_plus_line(10);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 100u + 9u);
  // Cross edges plus the path on side A.
  EXPECT_TRUE(g.has_edge(0, 1));    // path
  EXPECT_TRUE(g.has_edge(0, 10));   // cross
  EXPECT_FALSE(g.has_edge(10, 11)); // side B stays independent
}

TEST(Generators, PaperExampleGraphs) {
  const Graph f1 = figure1_graph();
  EXPECT_EQ(f1.num_edges(), 15u);  // K6
  const Graph f2 = figure2_graph();
  EXPECT_EQ(f2.num_edges(), 14u);
  EXPECT_FALSE(f2.has_edge(2, 3));  // v3-v4 missing
  const Graph f4 = figure4_graph();
  EXPECT_EQ(f4.num_edges(), 13u);
  EXPECT_FALSE(f4.has_edge(2, 3));
  EXPECT_FALSE(f4.has_edge(1, 5));  // v2-v6 missing
}

TEST(Generators, DatasetStandInsProduceExpectedScale) {
  const Graph social = social_like(2000, 12'000, 0.3, 1);
  EXPECT_EQ(social.num_nodes(), 2000u);
  EXPECT_GT(social.num_edges(), 6000u);

  const Graph collab = collaboration_like(3000, 2000, 12, 2);
  EXPECT_EQ(collab.num_nodes(), 3000u);
  EXPECT_GT(collab.num_edges(), 1000u);

  const Graph topo = topology_like(3000, 2, 0.2, 3);
  EXPECT_EQ(topo.num_nodes(), 3000u);

  const Graph mesh = mesh_like(2000, 8, 4);
  EXPECT_EQ(mesh.num_nodes(), 2000u);
  EXPECT_GE(mesh.max_degree(), 8u);

  const Graph spec = spectral_like(1000, 4, 24, 40, 5);
  EXPECT_EQ(spec.num_nodes(), 1000u);

  const Graph rating = rating_projection(800, 60, 8, 6);
  EXPECT_EQ(rating.num_nodes(), 800u);
  EXPECT_GT(rating.num_edges(), 800u);

  const Graph bio = bio_like(1500, 4000, 30, 25, 0.5, 7);
  EXPECT_EQ(bio.num_nodes(), 1500u);
}

TEST(Generators, DatasetStandInsAreSeedDeterministic) {
  EXPECT_TRUE(same_graph(social_like(500, 3000, 0.3, 11), social_like(500, 3000, 0.3, 11)));
  EXPECT_TRUE(
      same_graph(collaboration_like(500, 400, 10, 12), collaboration_like(500, 400, 10, 12)));
  EXPECT_TRUE(same_graph(mesh_like(500, 6, 13), mesh_like(500, 6, 13)));
  EXPECT_TRUE(same_graph(rating_projection(300, 40, 6, 14), rating_projection(300, 40, 6, 14)));
  EXPECT_FALSE(same_graph(mesh_like(500, 6, 13), mesh_like(500, 6, 14)));
}

}  // namespace
}  // namespace c3
