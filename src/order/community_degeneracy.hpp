// Community degeneracy orderings (Section 4.3).
//
// A graph is sigma-community-degenerate if every (non-edgeless) subgraph has
// an edge whose community (the common neighborhood of its endpoints, i.e.
// the triangles through it) has size at most sigma. The community degeneracy
// sigma is strictly below the degeneracy s and can be asymptotically smaller
// (Buchanan et al.); parameterizing the clique search by sigma instead of s
// is the paper's Algorithm 3.
//
// Two implementations of the edge total order:
//  * community_degeneracy_order — exact greedy: repeatedly remove an edge
//    supporting the fewest remaining triangles (bucket queue; the edge
//    analogue of Matula-Beck). O(sum of d(u)+d(v) + T log) work, linear
//    depth. Candidate sets have size at most sigma.
//  * approx_community_degeneracy_order (Algorithm 4) — peels all edges with
//    at most (3+eps) * T/m remaining triangles per round; O(log_{1+eps} m)
//    rounds (Observation 6), low depth, candidate sets at most (3+eps) sigma
//    (Lemma 4.4).
//
// Both also emit, for every edge e = {u,v}, the candidate set
// V'(e) = C_{(V, E[e <=])}(e): the vertices w completing a triangle with e
// whose connecting edges (u,w), (v,w) are both ordered *after* e. These are
// exactly the sets Algorithm 3 recurses on, and each triangle of the graph
// appears in exactly one candidate set (its lowest-ordered edge's).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/array_store.hpp"

namespace c3 {

// Array members are ArrayStore (vector-compatible when built in memory) so a
// snapshot-loaded order can borrow mmap-backed sections.
struct EdgeOrderResult {
  /// order[i] = edge id removed i-th.
  ArrayStore<edge_t> order;
  /// pos[e] = position of edge e in the order (inverse of `order`).
  ArrayStore<edge_t> pos;
  /// Exact sigma for the greedy order; the (3+eps)-approximate bound
  /// max |V'(e)| for Algorithm 4.
  node_t sigma = 0;
  /// Number of peeling rounds (1 per edge for the greedy variant).
  node_t rounds = 0;
  /// CSR of candidate sets: candidate_members[candidate_offsets[e] ..
  /// candidate_offsets[e+1]) are the vertices of V'(e), sorted ascending.
  /// Total size equals the number of triangles in the graph.
  ArrayStore<edge_t> candidate_offsets;
  ArrayStore<node_t> candidate_members;

  [[nodiscard]] std::span<const node_t> candidates(edge_t e) const noexcept {
    return {candidate_members.data() + candidate_offsets[e],
            candidate_members.data() + candidate_offsets[e + 1]};
  }

  [[nodiscard]] node_t candidate_count(edge_t e) const noexcept {
    return static_cast<node_t>(candidate_offsets[e + 1] - candidate_offsets[e]);
  }
};

/// Exact greedy community-degeneracy order; result.sigma is the exact
/// community degeneracy of g.
[[nodiscard]] EdgeOrderResult community_degeneracy_order(const Graph& g);

/// Algorithm 4: (3+eps)-approximate community-degeneracy order with
/// polylogarithmic round count. `eps` must be > 0.
[[nodiscard]] EdgeOrderResult approx_community_degeneracy_order(const Graph& g, double eps = 0.5);

/// The exact community degeneracy (convenience wrapper).
[[nodiscard]] node_t community_degeneracy(const Graph& g);

}  // namespace c3
