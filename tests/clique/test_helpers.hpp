// Shared helpers for the clique algorithm tests.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3::testing {

/// Collects listed cliques thread-safely and validates each: correct size,
/// distinct vertices, all pairs adjacent, no duplicates across calls.
class CliqueCollector {
 public:
  CliqueCollector(const Graph& g, int k) : g_(&g), k_(k) {}

  CliqueCallback callback() {
    return [this](std::span<const node_t> clique) {
      std::vector<node_t> sorted(clique.begin(), clique.end());
      std::sort(sorted.begin(), sorted.end());
      const std::lock_guard<std::mutex> lock(mutex_);
      if (static_cast<int>(sorted.size()) != k_) ++bad_size_;
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) ++bad_distinct_;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        for (std::size_t j = i + 1; j < sorted.size(); ++j) {
          if (!g_->has_edge(sorted[i], sorted[j])) ++bad_edges_;
        }
      }
      if (!seen_.insert(sorted).second) ++duplicates_;
      return true;
    };
  }

  void expect_valid(count_t expected_count) const {
    EXPECT_EQ(bad_size_, 0) << "cliques with wrong size";
    EXPECT_EQ(bad_distinct_, 0) << "cliques with repeated vertices";
    EXPECT_EQ(bad_edges_, 0) << "non-adjacent pairs inside reported cliques";
    EXPECT_EQ(duplicates_, 0) << "cliques reported more than once";
    EXPECT_EQ(seen_.size(), expected_count);
  }

  [[nodiscard]] const std::set<std::vector<node_t>>& cliques() const { return seen_; }

 private:
  const Graph* g_;
  int k_;
  std::mutex mutex_;
  std::set<std::vector<node_t>> seen_;
  int bad_size_ = 0, bad_distinct_ = 0, bad_edges_ = 0, duplicates_ = 0;
};

}  // namespace c3::testing
