// Regenerates Figure 8a of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Gearbox (FEM mesh) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::gearbox_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 8a";
  cfg.paper_ref = "72T: c3List fastest for k>=8 (k=10: 9.18s vs 13.85/21.45); few triangles per vertex favor the pruning";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
