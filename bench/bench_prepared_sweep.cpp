// Prepared k-sweep smoke bench — the perf-trajectory baseline for the query
// engine. Runs a small prepared sweep (one PreparedGraph per algorithm,
// k = kmin..kmax) on generated graphs, cross-checks the counts between all
// algorithms (non-zero exit on mismatch, so CI catches drift), and emits a
// machine-readable JSON report:
//
//   ./bench_prepared_sweep [--out BENCH_pr2.json] [--kmin 3] [--kmax 6]
//
// Schema: {"bench", "kmin", "kmax", "graphs": [{"name", n, m, "algorithms":
// [{"name", "prepare_seconds", "queries": [{"k", "count",
// "search_seconds"}]}]}]}
#include <cstdio>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

const Algorithm kAlgorithms[] = {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                                 Algorithm::KCList, Algorithm::ArbCount};

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int kmin = static_cast<int>(cli.get_int("kmin", 3));
  const int kmax = static_cast<int>(cli.get_int("kmax", 6));
  const std::string out_path = cli.get_string("out", "BENCH_pr2.json");

  const std::vector<bench::SmokeGraph> graphs = bench::smoke_graphs();

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_prepared_sweep: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"prepared_sweep\", \"kmin\": %d, \"kmax\": %d, \"graphs\": [",
               kmin, kmax);

  bool mismatch = false;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const bench::SmokeGraph& ng = graphs[gi];
    std::printf("# %s: |V|=%u |E|=%llu, prepared sweep k=%d..%d\n", ng.name.c_str(),
                ng.graph.num_nodes(), static_cast<unsigned long long>(ng.graph.num_edges()), kmin,
                kmax);
    std::fprintf(json, "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu, \"algorithms\": [",
                 gi > 0 ? ", " : "", ng.name.c_str(), ng.graph.num_nodes(),
                 static_cast<unsigned long long>(ng.graph.num_edges()));

    std::vector<count_t> reference;  // counts of the first algorithm, per k
    Table table({"algorithm", "prepare[s]", "search k=all[s]", "#cliques(kmin)"});

    for (std::size_t a = 0; a < std::size(kAlgorithms); ++a) {
      CliqueOptions opts;
      opts.algorithm = kAlgorithms[a];
      const PreparedGraph engine(ng.graph, opts);
      WallTimer prep_timer;
      engine.prepare();
      const double prep = prep_timer.seconds();

      std::fprintf(json, "%s{\"name\": \"%s\", \"prepare_seconds\": %.6f, \"queries\": [",
                   a > 0 ? ", " : "", algorithm_name(kAlgorithms[a]), prep);
      double search_total = 0.0;
      count_t count_kmin = 0;
      for (int k = kmin; k <= kmax; ++k) {
        const CliqueResult r = engine.count(k);
        search_total += r.stats.search_seconds;
        if (k == kmin) count_kmin = r.count;
        const auto ki = static_cast<std::size_t>(k - kmin);
        if (a == 0) {
          reference.push_back(r.count);
        } else if (r.count != reference[ki]) {
          std::printf("!! %s k=%d: %s counted %llu, %s counted %llu\n", ng.name.c_str(), k,
                      algorithm_name(kAlgorithms[a]), static_cast<unsigned long long>(r.count),
                      algorithm_name(kAlgorithms[0]),
                      static_cast<unsigned long long>(reference[ki]));
          mismatch = true;
        }
        std::fprintf(json, "%s{\"k\": %d, \"count\": %llu, \"search_seconds\": %.6f}",
                     k > kmin ? ", " : "", k, static_cast<unsigned long long>(r.count),
                     r.stats.search_seconds);
      }
      std::fprintf(json, "]}");
      table.add_row({algorithm_name(kAlgorithms[a]), strfmt("%.3f", prep),
                     strfmt("%.3f", search_total), with_commas(count_kmin)});
    }
    std::fprintf(json, "]}");
    table.print();
    std::printf("\n");
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  if (mismatch) {
    std::fprintf(stderr, "bench_prepared_sweep: count mismatch between algorithms\n");
    return 1;
  }
  return 0;
}
