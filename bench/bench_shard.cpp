// Shard bench — the perf baseline for the PR 10 sharded engine.
//
// For each smoke graph it runs a 1/2/4-shard ablation (EdgeBlock policy)
// against the unsharded engine: sharded prepare seconds (partition + every
// shard's artifacts), per-query latency for a count and a spectrum, plus a
// sharded-manifest write/open round trip so the serve-time path is the one
// measured. Counts for k = 3..6, the per-vertex/per-edge profiles at k = 4,
// and the full spectrum are cross-checked against the unsharded engine for
// every shard count and for the manifest-opened engine — any mismatch is a
// non-zero exit, so the bench doubles as the acceptance gate's
// "bit-identical answers" check on realistic graphs.
//
//   ./bench_shard [--out BENCH_pr10.json] [--reps 3] [--scale 1.0]
//
// Schema: {"bench", "workers", "graphs": [{"name", n, m, "flat_prepare_seconds",
// "flat_count_seconds", "ablation": [{"shards", "prepare_seconds",
// "count_seconds", "spectrum_seconds", "manifest_bytes", "open_seconds",
// "counts_match"}]}]}
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

struct Ablation {
  int shards = 0;
  double prepare_seconds = 0.0;
  double count_seconds = 0.0;
  double spectrum_seconds = 0.0;
  std::uint64_t manifest_bytes = 0;
  double open_seconds = 0.0;
  bool counts_match = true;
};

Query make_query(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

/// Every counting kind, sharded vs flat; prints and flags any mismatch.
bool cross_check(const char* label, const char* graph, const PreparedGraph& flat,
                 const shard::ShardedEngine& sharded) {
  bool ok = true;
  for (int k = 3; k <= 6; ++k) {
    const Query q = make_query(QueryKind::Count, k);
    const count_t a = flat.run(q).count;
    const count_t b = sharded.run(q).count;
    if (a != b) {
      std::printf("!! %s %s k=%d: flat %llu vs sharded %llu\n", graph, label, k,
                  static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
      ok = false;
    }
  }
  const Query pv = make_query(QueryKind::PerVertexCounts, 4);
  if (flat.run(pv).per_counts != sharded.run(pv).per_counts) {
    std::printf("!! %s %s: per-vertex profiles disagree\n", graph, label);
    ok = false;
  }
  const Query pe = make_query(QueryKind::PerEdgeCounts, 4);
  if (flat.run(pe).per_counts != sharded.run(pe).per_counts) {
    std::printf("!! %s %s: per-edge profiles disagree\n", graph, label);
    ok = false;
  }
  const Query sp = make_query(QueryKind::Spectrum);
  const Answer sa = flat.run(sp);
  const Answer sb = sharded.run(sp);
  if (sa.spectrum.counts != sb.spectrum.counts || sa.omega != sb.omega) {
    std::printf("!! %s %s: spectra disagree\n", graph, label);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double scale = cli.get_double("scale", 1.0);
  const std::string out_path = cli.get_string("out", "BENCH_pr10.json");
  const std::filesystem::path manifest_path =
      std::filesystem::temp_directory_path() / "c3_bench_shard.c3shard";

  std::vector<bench::SmokeGraph> graphs = bench::smoke_graphs();
  graphs.push_back({"social_like_xl",
                    social_like(static_cast<node_t>(12'000 * scale),
                                static_cast<edge_t>(96'000 * scale), 0.4, 7)});

  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const int kShardCounts[] = {1, 2, 4};

  bool failed = false;
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_shard: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"shard\", \"workers\": %d, \"graphs\": [", num_workers());

  Table table({"graph", "shards", "prepare[s]", "count4[s]", "spectrum[s]", "open[s]", "MB"});
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const bench::SmokeGraph& sg = graphs[gi];

    const PreparedGraph flat(sg.graph, opts);
    double flat_prepare = 0.0;
    {
      WallTimer timer;
      flat.prepare();
      (void)flat.clique_number_upper_bound();
      flat_prepare = timer.seconds();
    }
    double flat_count = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      (void)flat.run(make_query(QueryKind::Count, 4));
      const double s = timer.seconds();
      flat_count = rep == 0 ? s : std::min(flat_count, s);
    }
    table.add_row({sg.name, "flat", strfmt("%.4f", flat_prepare), strfmt("%.4f", flat_count),
                   "-", "-", "-"});

    std::vector<Ablation> ablation;
    for (const int shards : kShardCounts) {
      Ablation row;
      row.shards = shards;
      shard::ShardingOptions sharding;
      sharding.shards = shards;

      std::optional<shard::ShardedEngine> sharded;
      {
        WallTimer timer;
        sharded.emplace(sg.graph, sharding, opts);
        sharded->prepare();
        row.prepare_seconds = timer.seconds();
      }
      for (int rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        (void)sharded->run(make_query(QueryKind::Count, 4));
        const double s = timer.seconds();
        row.count_seconds = rep == 0 ? s : std::min(row.count_seconds, s);
      }
      {
        WallTimer timer;
        (void)sharded->run(make_query(QueryKind::Spectrum));
        row.spectrum_seconds = timer.seconds();
      }
      row.counts_match = cross_check("in-memory", sg.name.c_str(), flat, *sharded);

      // Manifest round trip: write, reopen, re-verify — the serve path.
      snapshot::write_sharded(manifest_path, *sharded);
      row.manifest_bytes = std::filesystem::file_size(manifest_path);
      std::optional<snapshot::ShardedSnapshot> snap;
      for (int rep = 0; rep < reps; ++rep) {
        snap.reset();
        WallTimer timer;
        snap.emplace(snapshot::ShardedSnapshot::open(manifest_path));
        const double s = timer.seconds();
        row.open_seconds = rep == 0 ? s : std::min(row.open_seconds, s);
      }
      row.counts_match =
          cross_check("manifest", sg.name.c_str(), flat, snap->engine()) && row.counts_match;
      failed = failed || !row.counts_match;

      table.add_row({sg.name, std::to_string(shards), strfmt("%.4f", row.prepare_seconds),
                     strfmt("%.4f", row.count_seconds), strfmt("%.4f", row.spectrum_seconds),
                     strfmt("%.4f", row.open_seconds),
                     strfmt("%.1f", static_cast<double>(row.manifest_bytes) / (1024.0 * 1024.0))});
      ablation.push_back(row);
    }

    std::fprintf(json,
                 "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu, "
                 "\"flat_prepare_seconds\": %.6f, \"flat_count_seconds\": %.6f, \"ablation\": [",
                 gi > 0 ? ", " : "", sg.name.c_str(), sg.graph.num_nodes(),
                 static_cast<unsigned long long>(sg.graph.num_edges()), flat_prepare, flat_count);
    for (std::size_t i = 0; i < ablation.size(); ++i) {
      const Ablation& a = ablation[i];
      std::fprintf(json,
                   "%s{\"shards\": %d, \"prepare_seconds\": %.6f, \"count_seconds\": %.6f, "
                   "\"spectrum_seconds\": %.6f, \"manifest_bytes\": %llu, "
                   "\"open_seconds\": %.6f, \"counts_match\": %s}",
                   i > 0 ? ", " : "", a.shards, a.prepare_seconds, a.count_seconds,
                   a.spectrum_seconds, static_cast<unsigned long long>(a.manifest_bytes),
                   a.open_seconds, a.counts_match ? "true" : "false");
    }
    std::fprintf(json, "]}");
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);
  std::filesystem::remove(manifest_path);

  table.print();
  std::printf("wrote %s\n", out_path.c_str());
  if (failed) {
    std::fprintf(stderr, "bench_shard: sharded/unsharded disagreement\n");
    return 1;
  }
  return 0;
}
