// Tests for the closed-form helpers of Section 3 / Theorem 2.1.
#include "clique/combinatorics.hpp"

#include <gtest/gtest.h>

#include "clique/bruteforce.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Combinatorics, BinomialBasics) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(6, 2), 15u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2'598'960u);
}

TEST(Combinatorics, BinomialPascalRule) {
  for (count_t n = 1; n <= 20; ++n) {
    for (count_t k = 1; k <= n; ++k) {
      ASSERT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << n << " choose " << k;
    }
  }
}

TEST(Combinatorics, TuranCliquesMatchBruteForce) {
  for (const node_t n : {7, 10, 12}) {
    for (const node_t r : {2, 3, 4, 5}) {
      const Graph g = turan_graph(n, r);
      for (node_t k = 1; k <= r; ++k) {
        ASSERT_EQ(cliques_in_turan(n, r, k), brute_force_count(g, static_cast<int>(k)))
            << "n=" << n << " r=" << r << " k=" << k;
      }
      ASSERT_EQ(cliques_in_turan(n, r, r + 1), 0u);
    }
  }
}

TEST(Combinatorics, Theorem21GrowthBehaviour) {
  // The paper's improvement: the base (gamma+4-k)/2 *shrinks* with k, so the
  // bound beats the fixed-base (s/2)^(k-2) of Danisch et al. by a factor
  // that grows exponentially in k (Section 1.3).
  const double gamma = 20;
  auto fixed_base = [&](int k) {
    double r = 1.0;
    for (int i = 0; i < k - 2; ++i) r *= gamma / 2.0;
    return r;
  };
  double prev_ratio = 1.0;
  for (int k = 4; k <= 20; ++k) {
    const double ratio = theorem21_growth(gamma, k) / fixed_base(k);
    ASSERT_LE(ratio, prev_ratio) << "k=" << k;  // advantage grows with k
    prev_ratio = ratio;
  }
  EXPECT_LT(prev_ratio, 1e-6);  // exponential separation by k = 20
  EXPECT_EQ(theorem21_growth(gamma, static_cast<int>(gamma) + 4), 0.0);
  EXPECT_DOUBLE_EQ(theorem21_growth(gamma, 2), 1.0);
  // For fixed k it grows with gamma.
  EXPECT_LT(theorem21_growth(10, 6), theorem21_growth(30, 6));
}

TEST(Combinatorics, RelevantCountsEdgeCases) {
  EXPECT_EQ(relevant_vertex_count(5, 10), 0u);
  EXPECT_EQ(relevant_vertex_count(5, 4), 0u);
  EXPECT_EQ(relevant_vertex_count(5, 3), 1u);
  EXPECT_EQ(relevant_pair_count(2, 0), 1u);   // one pair, distance 0
  EXPECT_EQ(relevant_pair_count(1, 0), 0u);
  EXPECT_EQ(relevant_pair_count(6, 3), 3u);   // Figure 5
}

TEST(Combinatorics, CompleteCliquesConsistency) {
  for (count_t n = 1; n <= 12; ++n) {
    count_t total = 0;
    for (count_t k = 1; k <= n; ++k) total += cliques_in_complete(n, k);
    // Sum over all clique sizes = 2^n - 1 subsets.
    ASSERT_EQ(total, (count_t{1} << n) - 1) << "n=" << n;
  }
}

}  // namespace
}  // namespace c3
