// Unit tests for the parallel loop substrate.
#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/padded.hpp"
#include "parallel/reduce.hpp"

namespace c3 {
namespace {

TEST(Parallel, WorkerControlClampsAndRestores) {
  const int original = num_workers();
  EXPECT_GE(original, 1);
  const int old = set_num_workers(3);
  EXPECT_EQ(old, original);
  EXPECT_EQ(num_workers(), 3);
  set_num_workers(0);  // clamped
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(original);
  EXPECT_EQ(num_workers(), original);
}

TEST(Parallel, ForTouchesEveryIndexExactlyOnce) {
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ForDynamicTouchesEveryIndexExactlyOnce) {
  const std::size_t n = 50'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_dynamic(0, n,
                       [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Parallel, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Parallel, NonZeroBeginOffset) {
  std::atomic<long long> sum{0};
  parallel_for(10, 1000, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); }, 8);
  long long expect = 0;
  for (std::size_t i = 10; i < 1000; ++i) expect += static_cast<long long>(i);
  EXPECT_EQ(sum.load(), expect);
}

TEST(Parallel, NestedLoopsRunSerially) {
  // A loop launched from within a parallel region must not deadlock or
  // double-run; it degrades to a serial loop.
  std::vector<std::atomic<int>> hits(256 * 64);
  parallel_for(
      0, 256,
      [&](std::size_t outer) {
        parallel_for(0, 64, [&](std::size_t inner) {
          hits[outer * 64 + inner].fetch_add(1, std::memory_order_relaxed);
        });
      },
      1);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Parallel, ReduceMatchesSerialSum) {
  const std::size_t n = 123'457;
  const auto total = parallel_sum<std::uint64_t>(0, n, [](std::size_t i) { return i; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(Parallel, ReduceMax) {
  std::vector<int> data(10'000);
  std::iota(data.begin(), data.end(), -5000);
  data[7777] = 123456;
  const int got = parallel_max(0, data.size(), -1 << 30, [&](std::size_t i) { return data[i]; });
  EXPECT_EQ(got, 123456);
}

TEST(Parallel, ReduceEmptyRangeReturnsIdentity) {
  EXPECT_EQ(parallel_sum<int>(3, 3, [](std::size_t) { return 1; }), 0);
}

TEST(Parallel, PerWorkerReduceCombinesAllSlots) {
  PerWorker<std::uint64_t> acc;
  parallel_for(0, 10'000, [&](std::size_t) { ++acc.local(); }, 16);
  const auto total = acc.reduce(std::uint64_t{0}, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, 10'000u);
}

TEST(Parallel, PaddedOccupiesFullCacheLine) {
  static_assert(sizeof(Padded<char>) >= kCacheLineSize);
  static_assert(alignof(Padded<char>) == kCacheLineSize);
  SUCCEED();
}

}  // namespace
}  // namespace c3
