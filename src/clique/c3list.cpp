#include "clique/c3list.hpp"

#include <atomic>
#include <vector>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {

CliqueResult c3list_search(const Digraph& dag, const EdgeCommunities& comms, int k,
                           const CliqueCallback* callback, const CliqueOptions& opts,
                           QueryScratch& scratch) {
  CliqueResult result;
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = comms.max_size();

  WallTimer search_timer;
  // Algorithm 1, line 2: all edges with at least k-2 triangles.
  const auto needed = static_cast<node_t>(k - 2);
  const std::vector<edge_t> tasks = pack_index<edge_t>(
      dag.num_arcs(), [&](std::size_t e) { return comms.size(static_cast<edge_t>(e)) >= needed; });
  result.stats.top_level_tasks = tasks.size();

  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;

  parallel_for_dynamic(
      0, tasks.size(),
      [&](std::size_t t) {
        if (stop.load(std::memory_order_relaxed)) return;
        CliqueScratch& w = scratch.local();
        const edge_t e = tasks[t];
        const auto members = comms.members(e);

        // k = 3 counting needs no adjacency at all: every community member
        // closes a triangle with the supporting edge.
        if (k == 3 && callback == nullptr) {
          w.count += members.size();
          ++w.ctr.recursive_calls;
          w.ctr.leaf_work += members.size();
          return;
        }

        // Rename C(e) to consecutive integers and build the indicator-table
        // adjacency of Dag[C(e)] (Section 2.2 preprocessing).
        build_local_graph(dag, members, w.lg);

        w.ctx.lg = &w.lg;
        w.ctx.prune = opts.distance_pruning;
        w.ctx.ctr = &w.ctr;
        w.ctx.callback = callback;
        w.ctx.stop = callback != nullptr ? &stop : nullptr;
        if (callback != nullptr) {
          w.member_orig.resize(members.size());
          for (std::size_t i = 0; i < members.size(); ++i)
            w.member_orig[i] = dag.original_id(members[i]);
          w.ctx.member_to_orig = w.member_orig.data();
          w.ctx.clique_stack.clear();
          w.ctx.clique_stack.push_back(dag.original_id(dag.arc_source(e)));
          w.ctx.clique_stack.push_back(dag.original_id(dag.arc_target(e)));
        }

        // Algorithm 1, line 3: recurse on the community with c = k - 2.
        w.count += search_cliques_all(w.ctx, k - 2, opts.triangle_growth);
      },
      1);

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult c3list_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::C3List;
  return PreparedGraph(g, o).count(k);
}

CliqueResult c3list_list(const Graph& g, int k, const CliqueCallback& callback,
                         const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::C3List;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
