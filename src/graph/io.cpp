#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <algorithm>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "snapshot/snapshot.hpp"

namespace c3 {
namespace {

constexpr std::array<char, 8> kMagic = {'c', '3', 'g', 'r', 'a', 'p', 'h', '1'};

[[noreturn]] void fail(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("c3::io: " + what + ": " + path.string());
}

}  // namespace

EdgeList read_edge_list(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  EdgeList edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Skip blank lines and SNAP/NetworkRepository comment conventions.
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#' || line[pos] == '%') continue;
    char* cursor = line.data() + pos;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(cursor, &end, 10);
    if (end == cursor)
      throw std::invalid_argument("c3::io: malformed edge at " + path.string() + ":" +
                                  std::to_string(lineno));
    cursor = end;
    const unsigned long long v = std::strtoull(cursor, &end, 10);
    if (end == cursor)
      throw std::invalid_argument("c3::io: malformed edge at " + path.string() + ":" +
                                  std::to_string(lineno));
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1)
      throw std::invalid_argument("c3::io: vertex id too large at " + path.string() + ":" +
                                  std::to_string(lineno));
    edges.push_back(Edge{static_cast<node_t>(u), static_cast<node_t>(v)});
  }
  return edges;
}

void write_edge_list(const std::filesystem::path& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "# c3list edge list: " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  for (const Edge& e : g.endpoints()) out << e.u << ' ' << e.v << '\n';
  if (!out) fail(path, "write error");
}

Graph read_graph(const std::filesystem::path& path) { return build_graph(read_edge_list(path)); }

void write_graph_binary(const std::filesystem::path& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  for (const Edge& e : g.endpoints()) {
    out.write(reinterpret_cast<const char*>(&e.u), sizeof e.u);
    out.write(reinterpret_cast<const char*>(&e.v), sizeof e.v);
  }
  if (!out) fail(path, "write error");
}

Graph read_graph_binary(const std::filesystem::path& path) {
  // Validate the file shape up front — magic, header, and the edge-section
  // bounds implied by the header — so a truncated or corrupt file fails with
  // the offending offset instead of a huge allocation or garbage graph.
  constexpr std::uint64_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(std::uint64_t);
  constexpr std::uint64_t kEdgeBytes = 2 * sizeof(node_t);
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec) fail(path, "cannot stat");
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  if (actual < kHeaderBytes) {
    fail(path, "truncated header: file holds " + std::to_string(actual) +
                   " bytes, the binary-graph header needs " + std::to_string(kHeaderBytes));
  }
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail(path, "bad magic at offset 0 (not a c3list binary graph)");
  std::uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&m), sizeof m);
  if (!in) fail(path, "truncated header at offset 8");
  if (n > kInvalidNode) {
    fail(path, "corrupt header at offset 8: vertex count " + std::to_string(n) +
                   " exceeds the node id range");
  }
  if ((actual - kHeaderBytes) % kEdgeBytes != 0 || m != (actual - kHeaderBytes) / kEdgeBytes) {
    fail(path, "edge section out of bounds: header at offset 16 records " + std::to_string(m) +
                   " edges (" + std::to_string(kHeaderBytes + m * kEdgeBytes) +
                   " bytes total), file holds " + std::to_string(actual));
  }
  EdgeList edges(m);
  static_assert(sizeof(Edge) == kEdgeBytes);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) fail(path, "truncated edge data");
  for (std::uint64_t i = 0; i < m; ++i) {
    if (edges[i].u >= n || edges[i].v >= n) {
      fail(path, "edge " + std::to_string(i) + " at offset " +
                     std::to_string(kHeaderBytes + i * kEdgeBytes) + " references vertex " +
                     std::to_string(edges[i].u >= n ? edges[i].u : edges[i].v) +
                     " outside the header's vertex count " + std::to_string(n));
    }
  }
  return build_graph(edges, static_cast<node_t>(n));
}

namespace {

/// Splits a line into unsigned integers (whitespace separated).
std::vector<unsigned long long> parse_numbers(const std::string& line) {
  std::vector<unsigned long long> out;
  const char* cursor = line.c_str();
  char* end = nullptr;
  while (true) {
    const unsigned long long v = std::strtoull(cursor, &end, 10);
    if (end == cursor) break;
    out.push_back(v);
    cursor = end;
  }
  return out;
}

}  // namespace

Graph read_graph_metis(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line;
  // Header: n m [fmt [ncon]]; '%' lines are comments.
  std::vector<unsigned long long> header;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    header = parse_numbers(line);
    break;
  }
  if (header.size() < 2)
    throw std::invalid_argument("c3::io: METIS header must have n and m: " + path.string());
  const auto n = static_cast<node_t>(header[0]);
  const unsigned long long fmt = header.size() >= 3 ? header[2] : 0;
  const bool has_vertex_weights = (fmt / 10) % 10 == 1;
  const bool has_edge_weights = fmt % 10 == 1;
  const std::size_t vertex_weight_count = has_vertex_weights ? (header.size() >= 4 ? header[3] : 1) : 0;

  EdgeList edges;
  node_t u = 0;
  while (u < n && std::getline(in, line)) {
    ++lineno;
    const std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos != std::string::npos && line[pos] == '%') continue;
    const auto numbers = parse_numbers(line);
    std::size_t i = vertex_weight_count;  // skip this vertex's weights
    while (i < numbers.size()) {
      const unsigned long long nbr = numbers[i++];
      if (has_edge_weights) ++i;  // skip the weight
      if (nbr == 0 || nbr > n)
        throw std::invalid_argument("c3::io: METIS neighbor out of range at " + path.string() +
                                    ":" + std::to_string(lineno));
      const auto v = static_cast<node_t>(nbr - 1);  // 1-based
      if (u < v) edges.push_back(Edge{u, v});       // each edge listed twice
    }
    ++u;
  }
  if (u != n) fail(path, "METIS file ended before all vertex lines were read");
  return build_graph(edges, n);
}

void write_graph_metis(const std::filesystem::path& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    bool first = true;
    for (const node_t w : g.neighbors(v)) {
      out << (first ? "" : " ") << (w + 1);
      first = false;
    }
    out << '\n';
  }
  if (!out) fail(path, "write error");
}

Graph read_graph_matrix_market(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0)
    throw std::invalid_argument("c3::io: missing MatrixMarket banner: " + path.string());
  if (line.find("coordinate") == std::string::npos)
    throw std::invalid_argument("c3::io: only coordinate MatrixMarket supported: " +
                                path.string());
  // Size line after comments.
  std::vector<unsigned long long> size_line;
  while (std::getline(in, line)) {
    const std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    size_line = parse_numbers(line);
    break;
  }
  if (size_line.size() < 3)
    throw std::invalid_argument("c3::io: malformed MatrixMarket size line: " + path.string());
  const auto n = static_cast<node_t>(std::max(size_line[0], size_line[1]));
  const unsigned long long nnz = size_line[2];

  EdgeList edges;
  edges.reserve(nnz);
  unsigned long long read_count = 0;
  while (read_count < nnz && std::getline(in, line)) {
    const std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    const auto numbers = parse_numbers(line);
    if (numbers.size() < 2)
      throw std::invalid_argument("c3::io: malformed MatrixMarket entry: " + path.string());
    ++read_count;
    if (numbers[0] == 0 || numbers[1] == 0 || numbers[0] > n || numbers[1] > n)
      throw std::invalid_argument("c3::io: MatrixMarket index out of range: " + path.string());
    const auto u = static_cast<node_t>(numbers[0] - 1);
    const auto v = static_cast<node_t>(numbers[1] - 1);
    if (u != v) edges.push_back(Edge{u, v});  // pattern only; builder symmetrizes
  }
  if (read_count != nnz) fail(path, "MatrixMarket file ended before nnz entries");
  return build_graph(edges, n);
}

Graph read_graph_any(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".mtx") return read_graph_matrix_market(path);
  if (ext == ".metis" || ext == ".graph") return read_graph_metis(path);
  if (ext == ".bin") return read_graph_binary(path);
  if (ext == ".c3snap") {
    // A snapshot's graph is backed by the mapping; copying detaches it so
    // the returned Graph owns its arrays after the mapping unwinds.
    return snapshot::Snapshot::open(path).graph();
  }
  return read_graph(path);
}

}  // namespace c3
