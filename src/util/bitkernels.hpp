// SIMD bit-kernel substrate with runtime CPU dispatch.
//
// Every search half of the clique engine bottoms out in the same handful of
// operations over 64-bit word rows (the paper's "boolean indicator tables",
// Section 2.2): masked AND, AND+popcount, fused interval/suffix intersection,
// and set-bit iteration. This header exposes them twice:
//
//   * `bits::kernels()` — a function-pointer table selected once at startup
//     from the best backend the host CPU supports (AVX-512-VPOPCNTDQ > AVX2 >
//     NEON > scalar), overridable with the `C3_KERNEL` environment variable
//     (scalar|avx2|avx512|neon|auto) and at runtime via set_kernel_backend()
//     for tests and ablation benches. The scalar backend is always compiled
//     and is bit-for-bit the reference implementation in util/bitwords.hpp.
//
//   * `kern::*` — the inline wrappers the hot paths call. Rows of up to
//     kKernelInlineWords words short-circuit to the inlined scalar helpers
//     (a dispatch call costs more than the op itself at that size); wider
//     rows go through the table.
//
// Alignment/stride contract (DESIGN.md "Kernel substrate"): callers lay rows
// out with kernel_stride_words(n) words per row inside KernelWords storage
// (64-byte aligned). Wide rows are padded to the 512-bit vector width so the
// wide kernels' main loops are tail-free; padding words MUST stay zero —
// every helper here and in bitwords.hpp preserves that invariant, and the
// popcounts rely on it.
//
// Adding a backend: implement the eight KernelTable entries in a new
// bitkernels_<isa>.cpp behind a C3_BITKERNELS_<ISA> compile definition (see
// src/CMakeLists.txt for the per-source flag plumbing), return the table
// from detail::<isa>_table(), and wire CPU detection + the enum value in
// bitkernels.cpp. The parity suite in tests/util/bitwords_test.cpp picks up
// any backend available_kernel_backends() reports automatically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "util/bitwords.hpp"

namespace c3::bits {

enum class KernelBackend : int { Scalar = 0, AVX2 = 1, AVX512 = 2, NEON = 3 };

/// The dispatchable bit-kernel set. All pointers are always non-null in an
/// installed table. Semantics match the synonymous bits:: helpers exactly
/// (the scalar table *is* those helpers); `nwords` never needs to be a
/// multiple of the vector width — vector backends run a scalar tail.
struct KernelTable {
  void (*and_into)(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                   std::size_t nwords);
  void (*and_assign)(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords);
  std::uint64_t (*popcount)(const std::uint64_t* a, std::size_t nwords);
  std::uint64_t (*popcount_and)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t nwords);
  std::uint64_t (*popcount_and3)(const std::uint64_t* a, const std::uint64_t* b,
                                 const std::uint64_t* c, std::size_t nwords);
  /// dst = a & b & mask & [lo, hi] (inclusive bit range); returns |dst|.
  std::uint64_t (*intersect_interval)(const std::uint64_t* a, const std::uint64_t* b,
                                      const std::uint64_t* mask, std::uint64_t* dst,
                                      std::size_t nwords, std::size_t lo, std::size_t hi);
  /// dst = a & mask & {bits > x}; returns |dst|.
  std::uint64_t (*intersect_above)(const std::uint64_t* a, const std::uint64_t* mask,
                                   std::uint64_t* dst, std::size_t nwords, std::size_t x);
  /// fn(ctx, i) for every set bit i of a & b, ascending. Vector backends
  /// skip all-zero blocks without visiting their words bit by bit.
  void (*for_each_bit_and)(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                           void* ctx, void (*fn)(void* ctx, std::size_t bit));
  KernelBackend backend;
};

namespace detail {
// The active table. constinit-pointed at the scalar table before any static
// initializer runs; re-pointed once at startup by the C3_KERNEL/CPUID
// selection and by set_kernel_backend(). Acquire/release keeps backend
// swaps race-free for TSan (hot-path loads are uncontended and predictable).
extern std::atomic<const KernelTable*> g_active;
}  // namespace detail

/// The active kernel table (never null).
[[nodiscard]] inline const KernelTable& kernels() noexcept {
  return *detail::g_active.load(std::memory_order_acquire);
}

[[nodiscard]] KernelBackend active_kernel_backend() noexcept;
[[nodiscard]] const char* kernel_backend_name(KernelBackend b) noexcept;

/// The table for `b`, or nullptr when the backend is not compiled in or the
/// running CPU lacks the ISA. kernel_table(KernelBackend::Scalar) never
/// fails. Useful for side-by-side backend comparisons without touching the
/// global dispatch (parity tests, microbenches).
[[nodiscard]] const KernelTable* kernel_table(KernelBackend b) noexcept;

/// Every backend the host can actually run, best first; always ends with
/// Scalar.
[[nodiscard]] std::vector<KernelBackend> available_kernel_backends();

/// The backend the startup selection would pick absent any override.
[[nodiscard]] KernelBackend best_kernel_backend() noexcept;

/// Installs `b` as the active backend; returns false (and changes nothing)
/// when the backend is unavailable on this host. Not meant to race with
/// in-flight queries — flip it between runs (tests, ablation benches).
bool set_kernel_backend(KernelBackend b) noexcept;

/// Parses "scalar|avx2|avx512|neon|auto" (case-insensitive; "auto" = best
/// available) into `out`; false on an unknown name.
[[nodiscard]] bool parse_kernel_backend(const char* name, KernelBackend& out) noexcept;

// ------------------------------------------------------- storage contract

inline constexpr std::size_t kKernelAlignBytes = 64;   ///< row storage alignment
inline constexpr std::size_t kKernelWidthWords = 8;    ///< widest vector: 512 bits
inline constexpr std::size_t kKernelInlineWords = 4;   ///< <= this: skip dispatch

/// Row stride in words for a universe of `nbits` bits: exact for narrow rows
/// (<= kKernelInlineWords words, where the ops inline as scalar code and
/// padding would only inflate memory traffic) and rounded up to the 512-bit
/// vector width beyond that, so the wide kernels' main loops cover the whole
/// row without a tail. Padding words must stay zero.
[[nodiscard]] constexpr std::size_t kernel_stride_words(std::size_t nbits) noexcept {
  const std::size_t w = words_for(nbits);
  return w <= kKernelInlineWords
             ? w
             : (w + kKernelWidthWords - 1) & ~(kKernelWidthWords - 1);
}

/// Minimal 64-byte-aligning allocator for the bitset row/mask pools.
template <typename T>
class KernelAllocator {
 public:
  using value_type = T;
  KernelAllocator() noexcept = default;
  template <typename U>
  KernelAllocator(const KernelAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kKernelAlignBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kKernelAlignBytes});
  }
  friend bool operator==(const KernelAllocator&, const KernelAllocator&) noexcept { return true; }
};

/// 64-byte-aligned word storage for bitset rows and mask pools.
using KernelWords = std::vector<std::uint64_t, KernelAllocator<std::uint64_t>>;

}  // namespace c3::bits

// The call layer the hot loops use: tiny rows inline as scalar code, wide
// rows dispatch to the selected backend. Signatures mirror bits:: exactly.
namespace c3::kern {

inline void and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t nwords) noexcept {
  if (nwords <= bits::kKernelInlineWords) return bits::and_into(dst, a, b, nwords);
  bits::kernels().and_into(dst, a, b, nwords);
}

inline void and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) noexcept {
  if (nwords <= bits::kKernelInlineWords) return bits::and_assign(dst, a, nwords);
  bits::kernels().and_assign(dst, a, nwords);
}

[[nodiscard]] inline std::uint64_t popcount(const std::uint64_t* a, std::size_t nwords) noexcept {
  if (nwords <= bits::kKernelInlineWords) return bits::popcount(a, nwords);
  return bits::kernels().popcount(a, nwords);
}

[[nodiscard]] inline std::uint64_t popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                                                std::size_t nwords) noexcept {
  if (nwords <= bits::kKernelInlineWords) return bits::popcount_and(a, b, nwords);
  return bits::kernels().popcount_and(a, b, nwords);
}

[[nodiscard]] inline std::uint64_t popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                                                 const std::uint64_t* c,
                                                 std::size_t nwords) noexcept {
  if (nwords <= bits::kKernelInlineWords) return bits::popcount_and3(a, b, c, nwords);
  return bits::kernels().popcount_and3(a, b, c, nwords);
}

[[nodiscard]] inline std::uint64_t intersect_interval(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      const std::uint64_t* mask,
                                                      std::uint64_t* dst, std::size_t nwords,
                                                      std::size_t lo, std::size_t hi) noexcept {
  // Short-circuit on the *interval's* word span, not the row stride: the op
  // only reads [word(lo), word(hi)] (the rest of dst is a clear), so a narrow
  // community interval inside a wide row is still a tiny-op for which the
  // dispatch call costs more than the work.
  if (nwords <= bits::kKernelInlineWords || hi < lo ||
      bits::word_index(hi) - bits::word_index(lo) < bits::kKernelInlineWords)
    return bits::intersect_interval(a, b, mask, dst, nwords, lo, hi);
  return bits::kernels().intersect_interval(a, b, mask, dst, nwords, lo, hi);
}

[[nodiscard]] inline std::uint64_t intersect_above(const std::uint64_t* a,
                                                   const std::uint64_t* mask, std::uint64_t* dst,
                                                   std::size_t nwords, std::size_t x) noexcept {
  // Same span logic: only the suffix past word(x) does real AND+popcount
  // work, and the vertex-growth recursions shrink that suffix as x climbs.
  if (nwords <= bits::kKernelInlineWords ||
      nwords - bits::word_index(x) <= bits::kKernelInlineWords)
    return bits::intersect_above(a, mask, dst, nwords, x);
  return bits::kernels().intersect_above(a, mask, dst, nwords, x);
}

template <typename F>
inline void for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                             F&& f) {
  if (nwords <= bits::kKernelInlineWords) return bits::for_each_bit_and(a, b, nwords, f);
  using Fn = std::remove_reference_t<F>;
  bits::kernels().for_each_bit_and(
      a, b, nwords, const_cast<void*>(static_cast<const void*>(&f)),
      [](void* ctx, std::size_t bit) { (*static_cast<Fn*>(ctx))(bit); });
}

}  // namespace c3::kern
