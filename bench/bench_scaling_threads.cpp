// Strong scaling over the worker count (the paper evaluates at 72 threads;
// this container may expose as little as one hardware thread, in which case
// the sweep documents that the parallel code paths run and the speedup
// column simply saturates at ~1x).
#include <cstdio>

#include "c3list.hpp"
#include "datasets.hpp"
#include "parallel/parallel.hpp"
#include "util/cli.hpp"
#include "util/run_stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int k = static_cast<int>(cli.get_int("k", 8));
  const int reps = static_cast<int>(c3::env_int("C3_BENCH_REPS", 3));

  const c3::bench::Dataset ds = c3::bench::bio_sc_ht_like(scale);
  std::printf("# Strong scaling — c3List on the %s stand-in, k = %d (%d reps)\n",
              ds.name.c_str(), k, reps);
  std::printf("# hardware workers available: %d\n\n", c3::num_workers());

  const int original = c3::num_workers();
  double base = 0.0;
  c3::Table table({"workers", "time[s]", "speedup", "#cliques"});
  for (const int workers : {1, 2, 4, 8}) {
    c3::set_num_workers(workers);
    c3::RunStats stats;
    c3::count_t count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      c3::WallTimer timer;
      count = c3::count_cliques(ds.graph, k).count;
      stats.add(timer.seconds());
    }
    if (workers == 1) base = stats.mean();
    table.add_row({std::to_string(workers), c3::strfmt("%.3f", stats.mean()),
                   c3::strfmt("%.2fx", base / stats.mean()), c3::with_commas(count)});
  }
  c3::set_num_workers(original);
  table.print();
  return 0;
}
