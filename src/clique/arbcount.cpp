#include "clique/arbcount.hpp"

#include <atomic>
#include <vector>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "parallel/parallel.hpp"
#include "util/bitwords.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

struct Env {
  const CliqueCallback* callback;
};

// Early-stop state rides in w.ctx (SearchContext::poll_stop / request_stop),
// the same shared-flag mechanism the community-centric searches use.

/// Vertex-at-a-time recursion over the induced bitset subgraph: pick the
/// next clique vertex x from the candidate mask (ascending = respecting the
/// orientation), descend into row(x) ∩ mask ∩ {> x}.
count_t arb_rec(const Env& env, CliqueScratch& w, const std::uint64_t* mask, int level, int l) {
  ++w.ctr.recursive_calls;
  if (w.ctx.poll_stop()) return 0;
  const LocalGraph& lg = w.lg;
  const auto words = static_cast<std::size_t>(lg.words());

  if (l == 1) {
    const count_t found = bits::popcount(mask, words);
    w.ctr.leaf_work += found;
    if (env.callback == nullptr) return found;
    bits::for_each_bit(mask, words, [&](std::size_t x) {
      if (w.ctx.poll_stop()) return;
      w.clique_stack.push_back(w.member_orig[x]);
      if (!(*env.callback)(std::span<const node_t>(w.clique_stack))) w.ctx.request_stop();
      w.clique_stack.pop_back();
    });
    return found;
  }

  std::uint64_t* next =
      w.mask_pool.data() + static_cast<std::size_t>(level) * words;
  count_t total = 0;
  bits::for_each_bit(mask, words, [&](std::size_t x) {
    if (w.ctx.poll_stop()) return;
    // next = candidates after x that are adjacent to x.
    const std::uint64_t* row = lg.row(static_cast<int>(x));
    const std::size_t wx = bits::word_index(x);
    for (std::size_t ww = 0; ww < wx; ++ww) next[ww] = 0;
    for (std::size_t ww = wx; ww < words; ++ww) next[ww] = row[ww] & mask[ww];
    next[wx] &= ~((x % 64 == 63) ? ~std::uint64_t{0} : ((std::uint64_t{1} << ((x % 64) + 1)) - 1));
    w.ctr.intersection_words += words - wx;
    w.ctr.pairs_probed += 1;

    if (l == 2) {
      const count_t found = bits::popcount(next, words);
      w.ctr.leaf_work += found;
      total += found;
      if (env.callback != nullptr) {
        bits::for_each_bit(next, words, [&](std::size_t y) {
          if (w.ctx.poll_stop()) return;
          w.clique_stack.push_back(w.member_orig[x]);
          w.clique_stack.push_back(w.member_orig[y]);
          if (!(*env.callback)(std::span<const node_t>(w.clique_stack))) w.ctx.request_stop();
          w.clique_stack.pop_back();
          w.clique_stack.pop_back();
        });
      }
      return;
    }
    if (bits::popcount(next, words) >= static_cast<std::uint64_t>(l - 1)) {
      ++w.ctr.edges_matched;
      if (env.callback != nullptr) w.clique_stack.push_back(w.member_orig[x]);
      total += arb_rec(env, w, next, level + 1, l - 1);
      if (env.callback != nullptr) w.clique_stack.pop_back();
    }
  });
  return total;
}

}  // namespace

CliqueResult arbcount_search(const Digraph& dag, int k, const CliqueCallback* callback,
                             const CliqueOptions& opts, QueryScratch& scratch) {
  (void)opts;
  CliqueResult result;
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = result.stats.order_quality;

  WallTimer search_timer;
  const node_t n = dag.num_nodes();
  result.stats.top_level_tasks = n;
  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;
  Env env{callback};

  parallel_for_dynamic(
      0, n,
      [&](std::size_t u) {
        if (stop.load(std::memory_order_relaxed)) return;
        const auto members = dag.out_neighbors(static_cast<node_t>(u));
        if (static_cast<int>(members.size()) < k - 1) return;
        CliqueScratch& w = scratch.local();
        w.ctx.callback = callback;
        w.ctx.stop = callback != nullptr ? &stop : nullptr;

        // Induce and rename G[N+(u)] (the per-vertex re-representation).
        build_local_graph(dag, members, w.lg);
        const auto words = static_cast<std::size_t>(w.lg.words());
        const auto depth = static_cast<std::size_t>(k);
        if (w.mask_pool.size() < (depth + 1) * words) w.mask_pool.assign((depth + 1) * words, 0);

        std::uint64_t* universe = w.mask_pool.data() + depth * words;
        bits::fill_prefix(universe, members.size(), words);

        if (callback != nullptr) {
          w.member_orig.resize(members.size());
          for (std::size_t i = 0; i < members.size(); ++i)
            w.member_orig[i] = dag.original_id(members[i]);
          w.clique_stack.clear();
          w.clique_stack.push_back(dag.original_id(static_cast<node_t>(u)));
        }

        w.count += arb_rec(env, w, universe, 0, k - 1);
      },
      1);

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult arbcount_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::ArbCount;
  return PreparedGraph(g, o).count(k);
}

CliqueResult arbcount_list(const Graph& g, int k, const CliqueCallback& callback,
                           const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::ArbCount;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
