// Clique spectrum: counts of k-cliques for every k at once.
//
// "Finding large cliques" in practice means sweeping k — the paper's own
// evaluation runs k = 6..10 — and the expensive preprocessing (degeneracy
// order, orientation, communities) is identical for every k. This is a
// convenience wrapper over PreparedGraph::spectrum (engine.hpp): prepare
// once, rerun only the search per k, stop at the clique number.
#pragma once

#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

struct CliqueSpectrum {
  /// counts[k] = number of k-cliques, for k = 0..omega (counts[0] = 0).
  std::vector<count_t> counts;
  /// The clique number (largest k with counts[k] > 0; 0 for empty graphs).
  node_t omega = 0;
  /// Total time spent in shared preprocessing vs the per-k searches.
  double preprocess_seconds = 0.0;
  double search_seconds = 0.0;
};

/// Counts k-cliques for all k = 1..min(kmax, omega) with shared
/// preprocessing (one PreparedGraph). `kmax` = 0 means "up to the clique
/// number". All CliqueOptions are honored, including `algorithm`
/// (c3List by default).
[[nodiscard]] CliqueSpectrum clique_spectrum(const Graph& g, int kmax = 0,
                                             const CliqueOptions& opts = {});

}  // namespace c3
