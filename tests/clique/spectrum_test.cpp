// Tests for the clique spectrum (shared-preprocessing k sweep).
#include "clique/spectrum.hpp"

#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "clique/max_clique.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Spectrum, CompleteGraphIsPascalRow) {
  const CliqueSpectrum s = clique_spectrum(complete_graph(10));
  ASSERT_EQ(s.omega, 10u);
  ASSERT_EQ(s.counts.size(), 11u);
  for (count_t k = 1; k <= 10; ++k) EXPECT_EQ(s.counts[k], binomial(10, k)) << "k=" << k;
}

TEST(Spectrum, MatchesPerKCounts) {
  const Graph g = social_like(200, 1500, 0.45, 17);
  const CliqueSpectrum s = clique_spectrum(g);
  EXPECT_EQ(s.omega, max_clique_size(g));
  for (int k = 1; k <= static_cast<int>(s.omega); ++k) {
    EXPECT_EQ(s.counts[static_cast<std::size_t>(k)], count_cliques(g, k).count) << "k=" << k;
  }
}

TEST(Spectrum, RespectsKmaxCap) {
  const Graph g = complete_graph(12);
  const CliqueSpectrum s = clique_spectrum(g, 5);
  EXPECT_EQ(s.omega, 5u);
  EXPECT_EQ(s.counts.size(), 6u);
  EXPECT_EQ(s.counts[5], binomial(12, 5));
}

TEST(Spectrum, TriangleFreeStopsAtTwo) {
  const CliqueSpectrum s = clique_spectrum(hypercube(6));
  EXPECT_EQ(s.omega, 2u);
  EXPECT_EQ(s.counts[1], 64u);
  EXPECT_EQ(s.counts[2], 64u * 6 / 2);
}

TEST(Spectrum, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(clique_spectrum(Graph{}).omega, 0u);
  const CliqueSpectrum s = clique_spectrum(build_graph(EdgeList{}, 7));
  EXPECT_EQ(s.omega, 1u);
  EXPECT_EQ(s.counts[1], 7u);
}

TEST(Spectrum, OptionsAreHonored) {
  const Graph g = erdos_renyi(60, 450, 23);
  CliqueOptions tri;
  tri.triangle_growth = true;
  CliqueOptions approx;
  approx.vertex_order = VertexOrderKind::ApproxDegeneracy;
  const CliqueSpectrum base = clique_spectrum(g);
  const CliqueSpectrum with_tri = clique_spectrum(g, 0, tri);
  const CliqueSpectrum with_approx = clique_spectrum(g, 0, approx);
  EXPECT_EQ(base.counts, with_tri.counts);
  EXPECT_EQ(base.counts, with_approx.counts);
}

TEST(Spectrum, UnimodalOnRandomGraphs) {
  // Clique counts per size are unimodal for these families — a cheap sanity
  // property that catches off-by-one k plumbing.
  const Graph g = bio_like(200, 900, 10, 16, 0.7, 31);
  const CliqueSpectrum s = clique_spectrum(g);
  bool decreasing = false;
  for (std::size_t k = 2; k < s.counts.size(); ++k) {
    if (s.counts[k] < s.counts[k - 1]) decreasing = true;
    if (decreasing) {
      ASSERT_LE(s.counts[k], s.counts[k - 1]) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace c3
