// Exhaustive differential testing on tiny graphs.
//
// Every one of the 2^10 = 1024 graphs on 5 vertices, and a randomized sweep
// of 8-vertex graphs, are counted by every algorithm/option combination and
// checked against brute force. Tiny universes hit all the boundary paths at
// once: empty candidate sets, single-word bitsets with partial last words,
// cliques equal to the whole graph, isolated vertices, and every parity of
// the recursion.
#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace c3 {
namespace {

Graph graph_from_mask(node_t n, std::uint32_t mask) {
  EdgeList edges;
  std::uint32_t bit = 0;
  for (node_t u = 0; u < n; ++u) {
    for (node_t v = u + 1; v < n; ++v, ++bit) {
      if (mask & (1u << bit)) edges.push_back(Edge{u, v});
    }
  }
  return build_graph(edges, n);
}

std::vector<CliqueOptions> option_matrix() {
  std::vector<CliqueOptions> out;
  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                              Algorithm::KCList, Algorithm::ArbCount}) {
    CliqueOptions base;
    base.algorithm = alg;
    out.push_back(base);
  }
  CliqueOptions tri;
  tri.triangle_growth = true;
  out.push_back(tri);
  CliqueOptions noprune;
  noprune.distance_pruning = false;
  out.push_back(noprune);
  CliqueOptions cd_approx;
  cd_approx.algorithm = Algorithm::C3ListCD;
  cd_approx.edge_order = EdgeOrderKind::ApproxCommunityDegeneracy;
  out.push_back(cd_approx);
  CliqueOptions approx_order;
  approx_order.vertex_order = VertexOrderKind::ApproxDegeneracy;
  out.push_back(approx_order);
  return out;
}

TEST(Exhaustive, AllFiveVertexGraphsAllOptions) {
  const auto options = option_matrix();
  for (std::uint32_t mask = 0; mask < (1u << 10); ++mask) {
    const Graph g = graph_from_mask(5, mask);
    for (int k = 3; k <= 5; ++k) {
      const count_t expect = brute_force_count(g, k);
      for (std::size_t o = 0; o < options.size(); ++o) {
        ASSERT_EQ(count_cliques(g, k, options[o]).count, expect)
            << "mask=" << mask << " k=" << k << " option#" << o;
      }
    }
  }
}

TEST(Exhaustive, RandomEightVertexGraphsAllOptions) {
  const auto options = option_matrix();
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    const auto mask = static_cast<std::uint32_t>(rng.next_below(1u << 28));
    const Graph g = graph_from_mask(8, mask);
    for (int k = 3; k <= 8; ++k) {
      const count_t expect = brute_force_count(g, k);
      for (std::size_t o = 0; o < options.size(); ++o) {
        ASSERT_EQ(count_cliques(g, k, options[o]).count, expect)
            << "trial=" << trial << " k=" << k << " option#" << o;
      }
    }
  }
}

}  // namespace
}  // namespace c3
