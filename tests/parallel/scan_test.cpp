// Unit and property tests for the parallel prefix sums.
#include "parallel/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& x : v) x = rng.next_below(1000);
  return v;
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, ExclusiveMatchesSerialReference) {
  const std::size_t n = GetParam();
  const auto in = random_values(n, 42 + n);
  std::vector<std::uint64_t> out(n);
  const auto total = exclusive_scan<std::uint64_t>(in, out, 7);

  std::uint64_t carry = 7;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], carry) << "position " << i << " size " << n;
    carry += in[i];
  }
  EXPECT_EQ(total, carry);
}

TEST_P(ScanSizes, InclusiveMatchesSerialReference) {
  const std::size_t n = GetParam();
  const auto in = random_values(n, 1042 + n);
  std::vector<std::uint64_t> out(n);
  const auto total = inclusive_scan<std::uint64_t>(in, out);

  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry += in[i];
    ASSERT_EQ(out[i], carry) << "position " << i << " size " << n;
  }
  EXPECT_EQ(total, carry);
}

TEST_P(ScanSizes, ExclusiveAliasedInputOutput) {
  const std::size_t n = GetParam();
  auto data = random_values(n, 7 + n);
  const auto reference = data;
  const auto total = exclusive_scan<std::uint64_t>(data, data, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], carry);
    carry += reference[i];
  }
  EXPECT_EQ(total, carry);
}

TEST_P(ScanSizes, InclusiveAliasedInputOutput) {
  const std::size_t n = GetParam();
  auto data = random_values(n, 77 + n);
  const auto reference = data;
  inclusive_scan<std::uint64_t>(data, data);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry += reference[i];
    ASSERT_EQ(data[i], carry);
  }
}

// Sizes straddle the serial cutoff and block boundaries.
INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097, 8192, 100'000,
                                           1'000'003));

/// Forces the blocked multi-worker path even on single-core machines.
class ScanForcedParallel : public ::testing::Test {
 protected:
  void SetUp() override { original_ = set_num_workers(4); }
  void TearDown() override { set_num_workers(original_); }
  int original_ = 1;
};

TEST_F(ScanForcedParallel, BlockedExclusiveAndInclusive) {
  const std::size_t n = 250'000;
  const auto in = random_values(n, 5);
  std::vector<std::uint64_t> out(n);
  const auto total = exclusive_scan<std::uint64_t>(in, out, 3);
  std::uint64_t carry = 3;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], carry);
    carry += in[i];
  }
  EXPECT_EQ(total, carry);

  inclusive_scan<std::uint64_t>(in, out);
  carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry += in[i];
    ASSERT_EQ(out[i], carry);
  }
}

TEST_F(ScanForcedParallel, BlockedAliasedScan) {
  auto data = random_values(123'457, 6);
  const auto reference = data;
  exclusive_scan<std::uint64_t>(data, data, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], carry);
    carry += reference[i];
  }
}

TEST(Scan, EmptyReturnsInit) {
  std::vector<int> empty;
  std::vector<int> out;
  EXPECT_EQ(exclusive_scan<int>(empty, out, 5), 5);
  EXPECT_EQ(inclusive_scan<int>(empty, out, 5), 5);
}

TEST(Scan, WorksWithSignedTypes) {
  std::vector<long long> in = {5, -3, 2, -10, 4};
  std::vector<long long> out(in.size());
  const auto total = exclusive_scan<long long>(in, out, 0);
  EXPECT_EQ(total, -2);
  EXPECT_EQ(out, (std::vector<long long>{0, 5, 2, 4, -6}));
}

}  // namespace
}  // namespace c3
