#include <unordered_set>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {

Graph erdos_renyi(node_t n, edge_t m, std::uint64_t seed) {
  if (n < 2) return build_graph(EdgeList{}, n);
  const count_t max_edges = static_cast<count_t>(n) * (n - 1) / 2;
  if (m > max_edges) m = max_edges;

  // Draw edges in independent per-block streams (thread-count invariant);
  // duplicates are merged by the builder, so keep drawing until the *distinct*
  // target is met.
  EdgeList edges;
  edges.reserve(m + m / 8);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    node_t u = static_cast<node_t>(rng.next_below(n));
    node_t v = static_cast<node_t>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.push_back(Edge{u, v});
  }
  return build_graph(edges, n);
}

}  // namespace c3
