// On-disk layout of a PreparedGraph snapshot (DESIGN.md Section 3).
//
// A snapshot is one relocatable binary file:
//
//   [ SnapshotHeader | SectionRecord x section_count | pad | section 0 | pad
//     | section 1 | ... ]
//
// The header carries the magic, format version, an algorithm/options
// fingerprint (everything that determines the *content* of the artifacts),
// the graph shape, the scalar artifacts (exact degeneracy, sigma, rounds),
// and a checksum over itself plus the section table. Each section is one
// flat array of a trivially-copyable element type, 64-byte aligned in the
// file, with its own FNV-1a checksum. All integers are in native byte order;
// the header records sizeof(node_t)/sizeof(edge_t) so a snapshot written by
// an incompatible build is refused rather than misread.
//
// Versioning rules:
//  * kFormatVersion changes when the file layout changes (header fields,
//    section encoding). Readers refuse other versions.
//  * kArtifactSchema changes when the *meaning* of a serialized artifact
//    changes (e.g. a different community ordering for the same options) —
//    the artifacts would still parse but would no longer match what the
//    current code builds, so readers refuse a mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "graph/types.hpp"

namespace c3::snapshot {

inline constexpr char kMagic[8] = {'c', '3', 's', 'n', 'a', 'p', '0', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kArtifactSchema = 1;

/// Every section offset (and the first section's start) is aligned to this,
/// so pointers into the page-aligned mapping are aligned for any element.
inline constexpr std::uint64_t kSectionAlign = 64;

/// Which artifacts the snapshot carries (SnapshotHeader::artifact_mask).
enum ArtifactBit : std::uint32_t {
  kArtifactDag = 1u << 0,
  kArtifactCommunities = 1u << 1,
  kArtifactEdgeOrder = 1u << 2,
  kArtifactExactDegeneracy = 1u << 3,
};

/// Section kinds. The graph sections are always present; artifact sections
/// only when the matching ArtifactBit is set.
enum class SectionKind : std::uint32_t {
  GraphOffsets = 0,      // edge_t, n+1
  GraphAdjacency = 1,    // node_t, 2m
  GraphEdgeIds = 2,      // edge_t, 2m
  GraphEndpoints = 3,    // Edge,   m
  DagOutOffsets = 4,     // edge_t, n+1
  DagOutAdjacency = 5,   // node_t, m
  DagInOffsets = 6,      // edge_t, n+1
  DagInAdjacency = 7,    // node_t, m
  DagArcSources = 8,     // node_t, m
  DagRankToOriginal = 9, // node_t, n
  CommOffsets = 10,      // edge_t, m+1
  CommMembers = 11,      // node_t, T
  EdgeOrderOrder = 12,   // edge_t, m
  EdgeOrderPos = 13,     // edge_t, m
  EdgeOrderCandOffsets = 14,  // edge_t, m+1
  EdgeOrderCandMembers = 15,  // node_t, T
};

[[nodiscard]] constexpr const char* section_name(SectionKind kind) noexcept {
  switch (kind) {
    case SectionKind::GraphOffsets: return "graph.offsets";
    case SectionKind::GraphAdjacency: return "graph.adjacency";
    case SectionKind::GraphEdgeIds: return "graph.edge_ids";
    case SectionKind::GraphEndpoints: return "graph.endpoints";
    case SectionKind::DagOutOffsets: return "dag.out_offsets";
    case SectionKind::DagOutAdjacency: return "dag.out_adjacency";
    case SectionKind::DagInOffsets: return "dag.in_offsets";
    case SectionKind::DagInAdjacency: return "dag.in_adjacency";
    case SectionKind::DagArcSources: return "dag.arc_sources";
    case SectionKind::DagRankToOriginal: return "dag.rank_to_original";
    case SectionKind::CommOffsets: return "communities.offsets";
    case SectionKind::CommMembers: return "communities.members";
    case SectionKind::EdgeOrderOrder: return "edge_order.order";
    case SectionKind::EdgeOrderPos: return "edge_order.pos";
    case SectionKind::EdgeOrderCandOffsets: return "edge_order.candidate_offsets";
    case SectionKind::EdgeOrderCandMembers: return "edge_order.candidate_members";
  }
  return "unknown";
}

/// One flat array in the file. `offset` is from the start of the file and is
/// kSectionAlign-aligned; `count` is in elements of `elem_bytes` each.
struct SectionRecord {
  std::uint32_t kind = 0;        // SectionKind
  std::uint32_t elem_bytes = 0;  // sizeof the element type
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;    // fnv1a64 over the payload bytes
};
static_assert(sizeof(SectionRecord) == 32);

/// Fixed-size file header, written verbatim. `header_checksum` is fnv1a64
/// over the header (with this field zeroed) followed by the section table.
struct SnapshotHeader {
  char magic[8] = {};
  std::uint32_t format_version = 0;
  std::uint32_t artifact_schema = 0;
  std::uint32_t header_bytes = 0;   // sizeof(SnapshotHeader)
  std::uint32_t node_bytes = 0;     // sizeof(node_t) of the writing build
  std::uint32_t edge_bytes = 0;     // sizeof(edge_t) of the writing build
  std::uint32_t section_count = 0;
  std::uint64_t file_bytes = 0;     // total file size, for truncation checks

  // Fingerprint: the CliqueOptions fields that determine artifact content.
  std::uint32_t algorithm = 0;      // c3::Algorithm
  std::uint32_t vertex_order = 0;   // c3::VertexOrderKind
  std::uint32_t edge_order_kind = 0;  // c3::EdgeOrderKind
  std::uint32_t option_flags = 0;   // bit 0: distance_pruning, bit 1: triangle_growth
  std::uint64_t eps_bits = 0;       // bit pattern of CliqueOptions::eps
  std::uint64_t order_seed = 0;

  // Graph shape.
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;

  // Which artifacts are present, plus the scalar ones inline.
  std::uint32_t artifact_mask = 0;
  std::uint32_t exact_degeneracy = 0;    // valid iff kArtifactExactDegeneracy
  std::uint32_t edge_order_sigma = 0;    // valid iff kArtifactEdgeOrder
  std::uint32_t edge_order_rounds = 0;   // valid iff kArtifactEdgeOrder

  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(SnapshotHeader) == 112);

inline constexpr std::uint32_t kOptionDistancePruning = 1u << 0;
inline constexpr std::uint32_t kOptionTriangleGrowth = 1u << 1;

/// The section checksum: FNV-1a folded over 64-bit words (little-endian
/// loads, zero-padded tail) instead of bytes — one multiply per 8 bytes, so
/// verifying a whole snapshot at open() is a multi-GB/s scan, far below both
/// artifact-rebuild cost and the 10x open-vs-prepare acceptance bar.
/// Dependency-free and stable: it is part of the file format (bump
/// kFormatVersion if it ever changes).
[[nodiscard]] inline std::uint64_t checksum64(const void* data, std::size_t bytes,
                                              std::uint64_t h = 0xcbf29ce484222325ull) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t words = bytes / 8;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h = (h ^ w) * kPrime;
  }
  if (bytes % 8 != 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + words * 8, bytes % 8);
    h = (h ^ tail) * kPrime;
  }
  return h;
}

[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t x, std::uint64_t a) noexcept {
  return (x + a - 1) / a * a;
}

}  // namespace c3::snapshot
