// Golden tests replaying the paper's worked examples (Figures 1-6 and the
// Observations of Section 3).
#include <gtest/gtest.h>

#include "clique/c3list.hpp"
#include "clique/combinatorics.hpp"
#include "graph/digraph.hpp"
#include "graph/gen/generators.hpp"
#include "graph/gen/paper_examples.hpp"
#include "triangle/communities.hpp"

namespace c3 {
namespace {

Digraph orient_by_id(const Graph& g) {
  std::vector<node_t> order(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) order[v] = v;
  return Digraph::orient(g, order);
}

/// Computes R^E_c(G): edges whose endpoints have at least c vertices of the
/// whole universe ordered between them (id order).
std::vector<Edge> relevant_edges(const Graph& g, node_t c) {
  std::vector<Edge> out;
  for (const Edge& e : g.endpoints()) {
    if (e.v - e.u - 1 >= c) out.push_back(e);
  }
  return out;
}

TEST(PaperFigures, Figure1EdgeSupportsSixClique) {
  // "In the example, the community of the edge {v1, v2} contains all the
  // other vertices ... Indeed, the edge {v1, v2} does support a 6-clique."
  const Graph g = figure1_graph();
  // Community in the undirected sense: common neighborhood.
  std::vector<node_t> common;
  for (node_t w = 0; w < 6; ++w) {
    if (w != 0 && w != 1 && g.has_edge(0, w) && g.has_edge(1, w)) common.push_back(w);
  }
  EXPECT_EQ(common, (std::vector<node_t>{2, 3, 4, 5}));
  EXPECT_EQ(c3list_count(g, 6).count, 1u);
}

TEST(PaperFigures, Figure2OnlyOneRelevantSupportingEdge) {
  // "only the edge (v1, v6) could support a 6-clique using this pruning
  // rule" — the unique pair with >= 4 vertices ordered between.
  const Graph g = figure2_graph();
  const auto relevant = relevant_edges(g, 4);
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0].u, 0u);
  EXPECT_EQ(relevant[0].v, 5u);
}

TEST(PaperFigures, Figure3TwoFiveCliquesNoSixClique) {
  // "the graph only contains two 5-cliques and no 6-clique because there is
  // no edge (v3, v4)."
  const Graph g = figure2_graph();
  CliqueOptions byid;
  byid.vertex_order = VertexOrderKind::ById;  // match the drawn order
  EXPECT_EQ(c3list_count(g, 6, byid).count, 0u);
  EXPECT_EQ(c3list_count(g, 5, byid).count, 2u);
}

TEST(PaperFigures, Figure3RecursionProbesTheV2V5Pair) {
  // Replay Figure 3(b): inside the community {v2..v5} of (v1, v6), the only
  // pair at distance >= 2 is (v2, v5), which is an edge, and the recursion
  // then fails on the missing (v3, v4).
  const Graph g = figure2_graph();
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  const edge_t e16 = dag.arc_id(0, 5);
  const auto members = comms.members(e16);
  ASSERT_EQ(members.size(), 4u);
  // Pairs of members with >= 2 members between them: only (members[0],
  // members[3]) = (v2, v5).
  EXPECT_EQ(members[0], 1u);
  EXPECT_EQ(members[3], 4u);
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_FALSE(g.has_edge(2, 3));  // the missing (v3, v4)
}

TEST(PaperFigures, Figure4RelevantEdgesAndPairs) {
  // R^E_3(G) = {(v1,v5), (v1,v6)}; R^P_3 additionally contains (v2,v6).
  const Graph g = figure4_graph();
  const auto relevant = relevant_edges(g, 3);
  ASSERT_EQ(relevant.size(), 2u);
  EXPECT_EQ(relevant[0].u, 0u);
  EXPECT_EQ(relevant[0].v, 4u);
  EXPECT_EQ(relevant[1].u, 0u);
  EXPECT_EQ(relevant[1].v, 5u);
  // The pair (v2, v6) is relevant but not an edge.
  EXPECT_FALSE(g.has_edge(1, 5));
  EXPECT_GE(5u - 1u - 1u, 3u);
}

TEST(PaperFigures, Figure5RelevantVertexSets) {
  // P+_3({v1..v6}) = {v1, v2}, P-_3 = {v5, v6}: Observation 3 with |V|=6,
  // c=3 gives 2 relevant out-vertices.
  EXPECT_EQ(relevant_vertex_count(6, 3), 2u);
  // And Observation 4: |R^P_3| = C(3, 2) = 3 pairs.
  EXPECT_EQ(relevant_pair_count(6, 3), 3u);
}

TEST(PaperFigures, Observation3And4ClosedForms) {
  for (count_t n = 0; n <= 30; ++n) {
    for (count_t c = 0; c <= 10; ++c) {
      // Brute-force count over positions 0..n-1.
      count_t pairs = 0, outs = 0;
      for (count_t u = 0; u < n; ++u) {
        bool is_out = false;
        for (count_t v = u + 1; v < n; ++v) {
          if (v - u - 1 >= c) {
            ++pairs;
            is_out = true;
          }
        }
        outs += is_out ? 1 : 0;
      }
      ASSERT_EQ(relevant_pair_count(n, c), pairs) << n << " " << c;
      ASSERT_EQ(relevant_vertex_count(n, c), outs) << n << " " << c;
    }
  }
}

TEST(PaperFigures, Observation1SupportingEdgeUnique) {
  // For the K6 of Figure 1 under the id order: the 6-clique's supporting
  // edge is (v1, v6) and its community holds the other four vertices; every
  // other edge has a smaller community.
  const Graph g = figure1_graph();
  const Digraph dag = orient_by_id(g);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  for (edge_t e = 0; e < dag.num_arcs(); ++e) {
    if (dag.arc_source(e) == 0 && dag.arc_target(e) == 5) {
      EXPECT_EQ(comms.size(e), 4u);
    } else {
      EXPECT_LT(comms.size(e), 4u);
    }
  }
}

TEST(PaperFigures, CliqueSizeBounds) {
  // Section 1.1: an s-degenerate graph has no (s+2)-clique; k <= sigma + 2.
  const Graph g = figure2_graph();  // K6 minus one edge: s = 4
  EXPECT_EQ(c3list_count(g, 6).count, 0u);
  EXPECT_GT(c3list_count(g, 5).count, 0u);
}

}  // namespace
}  // namespace c3
