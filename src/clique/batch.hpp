// QueryBatch — schedule a heterogeneous set of clique queries against one
// PreparedGraph.
//
// A serving layer rarely gets one query at a time: it gets a mixed bag of
// counts, decision probes, spectra, and max-clique requests against the
// same prepared graph. The batch executor runs such a set with two-level
// parallelism:
//
//   * *across* queries — small queries (count / has_clique / find_clique)
//     are issued concurrently from a pool of executor threads, each leasing
//     its own QueryScratch from the engine, while the global worker cap is
//     split between them so the machine is not oversubscribed;
//   * *within* queries — large queries (spectrum, max_clique, per-vertex /
//     per-edge counts, which internally fan out over many k or run long
//     searches) run after the concurrent phase, one at a time, keeping the
//     full worker pool for their internal parallelism.
//
// Results come back in submission order, each with its own payload, stats,
// and wall-clock seconds. The engine's artifacts are forced once up front,
// so no query in the batch pays preparation.
#pragma once

#include <optional>
#include <vector>

#include "clique/common.hpp"
#include "clique/engine.hpp"
#include "clique/spectrum.hpp"
#include "graph/types.hpp"

namespace c3 {

enum class QueryKind {
  Count,            ///< number of k-cliques
  HasClique,        ///< does a k-clique exist?
  FindClique,       ///< some k-clique, if any
  PerVertexCounts,  ///< k-clique count per vertex
  PerEdgeCounts,    ///< k-clique count per edge
  Spectrum,         ///< counts for every k up to kmax (0 = clique number)
  MaxClique,        ///< a maximum clique and its size
};

/// One query of a batch. `k` parameterizes the per-k kinds; `kmax` bounds a
/// Spectrum (0 = up to the clique number). Unused fields are ignored.
struct BatchQuery {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  int kmax = 0;
};

/// One query's outcome. Which fields are meaningful depends on `kind`:
/// Count -> count + stats; HasClique -> found; FindClique -> found +
/// witness; PerVertexCounts / PerEdgeCounts -> per_counts; Spectrum ->
/// spectrum; MaxClique -> omega + witness. `seconds` is the query's wall
/// time inside the batch.
struct BatchResult {
  QueryKind kind = QueryKind::Count;
  int k = 0;
  count_t count = 0;
  bool found = false;
  std::vector<node_t> witness;
  std::vector<count_t> per_counts;
  CliqueSpectrum spectrum;
  node_t omega = 0;
  CliqueStats stats;
  double seconds = 0.0;
};

class QueryBatch {
 public:
  /// Binds the batch to `engine` (not copied — must outlive the batch).
  explicit QueryBatch(const PreparedGraph& engine) : engine_(&engine) {}

  // Each adder returns the query's index into run()'s result vector.
  int add(const BatchQuery& query);
  int add_count(int k) { return add({QueryKind::Count, k, 0}); }
  int add_has_clique(int k) { return add({QueryKind::HasClique, k, 0}); }
  int add_find_clique(int k) { return add({QueryKind::FindClique, k, 0}); }
  int add_per_vertex_counts(int k) { return add({QueryKind::PerVertexCounts, k, 0}); }
  int add_per_edge_counts(int k) { return add({QueryKind::PerEdgeCounts, k, 0}); }
  int add_spectrum(int kmax = 0) { return add({QueryKind::Spectrum, 0, kmax}); }
  int add_max_clique() { return add({QueryKind::MaxClique, 0, 0}); }

  [[nodiscard]] std::size_t size() const noexcept { return queries_.size(); }
  [[nodiscard]] const std::vector<BatchQuery>& queries() const noexcept { return queries_; }

  /// Executes every query and returns results in submission order.
  /// `concurrency` caps how many small queries run at once (0 = one per
  /// worker; 1 = fully serial). While the concurrent phase runs, the global
  /// worker cap is divided among the executor threads and restored
  /// afterwards. Rethrows the first query exception after all threads join.
  /// Idempotent: run() may be called again (everything re-executes against
  /// the already-warm engine).
  [[nodiscard]] std::vector<BatchResult> run(int concurrency = 0) const;

 private:
  const PreparedGraph* engine_;
  std::vector<BatchQuery> queries_;
};

/// Convenience one-call form: batch-execute `queries` against `engine`.
[[nodiscard]] std::vector<BatchResult> run_query_batch(const PreparedGraph& engine,
                                                       const std::vector<BatchQuery>& queries,
                                                       int concurrency = 0);

/// Human-readable query-kind name (tool/bench output).
[[nodiscard]] const char* query_kind_name(QueryKind kind) noexcept;

}  // namespace c3
