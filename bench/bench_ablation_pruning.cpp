// Ablation of the paper's core contribution: the relevant-pair pruning
// criterion (Figure 2; the Theta((1/(1-k/s))^k) work factor of Section 1.3).
//
// Runs c3List with the distance criterion enabled vs disabled and reports
// probed pairs and runtime. The prediction: the saving factor grows with k
// (it is the pruning that removes the straightforwardly exponential runtime
// growth in the clique size).
#include <cstdio>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int kmin = static_cast<int>(cli.get_int("kmin", 6));
  const int kmax = static_cast<int>(cli.get_int("kmax", 12));

  std::printf("# Ablation — relevant-pair pruning (delta_I(u,v) >= c-2)\n");
  std::printf("# 'saved' = probed pairs without pruning / with pruning; the paper predicts\n");
  std::printf("# the advantage grows with k, particularly for k approaching gamma.\n\n");

  for (const auto& make : {&c3::bench::bio_sc_ht_like, &c3::bench::jester_like}) {
    const c3::bench::Dataset ds = make(scale);
    std::printf("## %s stand-in\n", ds.name.c_str());
    c3::Table table({"k", "pairs(pruned)", "pairs(full)", "saved", "time(pruned)[s]",
                     "time(full)[s]", "speedup", "#cliques"});
    for (int k = kmin; k <= kmax; ++k) {
      c3::CliqueOptions with, without;
      with.distance_pruning = true;
      without.distance_pruning = false;

      c3::WallTimer t1;
      const c3::CliqueResult rw = c3::count_cliques(ds.graph, k, with);
      const double time_with = t1.seconds();
      c3::WallTimer t2;
      const c3::CliqueResult ro = c3::count_cliques(ds.graph, k, without);
      const double time_without = t2.seconds();
      if (rw.count != ro.count) std::printf("!! count mismatch at k=%d\n", k);

      const double saved = rw.stats.pairs_probed == 0
                               ? 0.0
                               : static_cast<double>(ro.stats.pairs_probed) /
                                     static_cast<double>(rw.stats.pairs_probed);
      table.add_row({std::to_string(k), c3::with_commas(rw.stats.pairs_probed),
                     c3::with_commas(ro.stats.pairs_probed), c3::strfmt("%.2fx", saved),
                     c3::strfmt("%.3f", time_with), c3::strfmt("%.3f", time_without),
                     c3::strfmt("%.2fx", time_with > 0 ? time_without / time_with : 0.0),
                     c3::with_commas(rw.count)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
