// Edge communities (Section 1.1 / Algorithm 1, line 1: "Build the
// communities and sort them").
//
// In the oriented graph, the community of an arc e = (u, v) is
// C(e) = N+(u) ∩ N−(v): the vertices w with u → w → v, i.e. exactly the
// vertices ordered between u and v that close a triangle over e. Every
// triangle (a, b, c), a < b < c, belongs to exactly one community — that of
// its supporting arc (a, c), with member b — so the total community size
// equals the triangle count T.
//
// Stored as a CSR keyed by arc id, with each community sorted ascending by
// rank (the order Algorithm 2's candidate arrays require).
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/types.hpp"
#include "util/array_store.hpp"

namespace c3 {

class EdgeCommunities {
 public:
  EdgeCommunities() = default;

  /// Builds all communities of `dag`. O(m * max-out-degree) work for the
  /// triangle enumeration plus O(T log gamma) for the per-community sorts;
  /// polylog depth.
  [[nodiscard]] static EdgeCommunities build(const Digraph& dag);

  /// Assembles from prebuilt arrays without recomputation (the snapshot
  /// loader's path; arrays may be ArrayStore views over mapped memory).
  [[nodiscard]] static EdgeCommunities from_parts(ArrayStore<edge_t> offsets,
                                                  ArrayStore<node_t> members);

  /// Community of arc e, sorted ascending; all members lie strictly between
  /// the arc's endpoints in rank order.
  [[nodiscard]] std::span<const node_t> members(edge_t e) const noexcept {
    return {members_.data() + offsets_[e], members_.data() + offsets_[e + 1]};
  }

  [[nodiscard]] node_t size(edge_t e) const noexcept {
    return static_cast<node_t>(offsets_[e + 1] - offsets_[e]);
  }

  /// Number of arcs (communities).
  [[nodiscard]] edge_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : static_cast<edge_t>(offsets_.size() - 1);
  }

  /// Total size of all communities == number of triangles.
  [[nodiscard]] count_t total_size() const noexcept { return members_.size(); }

  /// Largest community size (the paper's gamma).
  [[nodiscard]] node_t max_size() const noexcept;

  /// Raw arrays for the snapshot writer.
  [[nodiscard]] std::span<const edge_t> raw_offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const node_t> raw_members() const noexcept { return members_; }

 private:
  // ArrayStore so snapshot-loaded communities can borrow mapped sections.
  ArrayStore<edge_t> offsets_;   // m+1
  ArrayStore<node_t> members_;   // T, per-arc sorted
};

}  // namespace c3
