#include "clique/recursive.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitkernels.hpp"
#include "util/bitwords.hpp"

namespace c3 {
namespace {

/// dst = row_a & row_b & mask & open-interval(a, b); returns |dst|.
/// This is line 8 of Algorithm 2: I' <- I ∩ C(e), where the community of
/// (a, b) inside the local DAG is exactly the common neighborhood restricted
/// to vertices ordered strictly between a and b. One fused kernel call
/// (util/bitkernels.hpp) — AND3 + interval masking + popcount in a single
/// pass over the interval's words.
int intersect_community(const std::uint64_t* row_a, const std::uint64_t* row_b,
                        const std::uint64_t* mask, int words, int a, int b, std::uint64_t* dst,
                        LocalCounters& ctr) noexcept {
  const auto lo = static_cast<std::size_t>(a) + 1;
  const std::size_t hi = static_cast<std::size_t>(b) - 1;
  if (hi < lo) {
    bits::clear_words(dst, static_cast<std::size_t>(words));
    return 0;
  }
  ctr.intersection_words += bits::word_index(hi) - bits::word_index(lo) + 1;
  return static_cast<int>(
      kern::intersect_interval(row_a, row_b, mask, dst, static_cast<std::size_t>(words), lo, hi));
}

/// Emits one complete clique from the listing stack; returns false when the
/// callback requests early termination.
bool emit(SearchContext& ctx) {
  return (*ctx.callback)(std::span<const node_t>(ctx.clique_stack));
}

}  // namespace

void SearchContext::ensure_capacity(int gamma, int depth, int words) {
  const auto g = static_cast<std::size_t>(std::max(gamma, 1));
  const auto d = static_cast<std::size_t>(std::max(depth, 1));
  const auto w = static_cast<std::size_t>(std::max(words, 1));
  if (g <= cand_stride_ && w <= mask_stride_ && d <= depth_) return;
  cand_stride_ = std::max(cand_stride_, g);
  mask_stride_ = std::max(mask_stride_, w);
  depth_ = std::max(depth_, d);
  cand_pool_.assign(depth_ * cand_stride_, 0);
  mask_pool_.assign(depth_ * mask_stride_, 0);
}

count_t search_cliques(SearchContext& ctx, std::span<const int> I, const std::uint64_t* I_mask,
                       int c, int level) {
  assert(c >= 1);
  LocalCounters& ctr = *ctx.ctr;
  ++ctr.recursive_calls;
  if (ctx.poll_stop()) return 0;

  const LocalGraph& lg = *ctx.lg;
  const int words = lg.words();
  const bool listing = ctx.callback != nullptr;

  // Base case c == 1 (Algorithm 2, line 2): every candidate is a clique.
  if (c == 1) {
    ctr.leaf_work += I.size();
    if (!listing) return static_cast<count_t>(I.size());
    count_t emitted = 0;
    for (const int a : I) {
      if (ctx.poll_stop()) break;
      ctx.clique_stack.push_back(ctx.member_to_orig[a]);
      const bool keep_going = emit(ctx);
      ctx.clique_stack.pop_back();
      ++emitted;
      if (!keep_going) {
        ctx.request_stop();
        break;
      }
    }
    return emitted;
  }

  // Base case c == 2 (line 4): every edge inside I is a clique.
  if (c == 2) {
    if (!listing) {
      count_t twice = 0;
      for (const int a : I) {
        twice += kern::popcount_and(lg.row(a), I_mask, static_cast<std::size_t>(words));
      }
      ctr.intersection_words += I.size() * static_cast<std::size_t>(words);
      ctr.leaf_work += twice / 2;
      return twice / 2;
    }
    count_t emitted = 0;
    for (const int a : I) {
      if (ctx.poll_stop()) break;
      kern::for_each_bit_and(lg.row(a), I_mask, static_cast<std::size_t>(words),
                             [&](std::size_t b) {
                               if (ctx.poll_stop() || static_cast<int>(b) <= a) return;
                               ctx.clique_stack.push_back(ctx.member_to_orig[a]);
                               ctx.clique_stack.push_back(ctx.member_to_orig[b]);
                               if (!emit(ctx)) ctx.request_stop();
                               ctx.clique_stack.pop_back();
                               ctx.clique_stack.pop_back();
                               ++emitted;
                             });
    }
    ctr.leaf_work += emitted;
    return emitted;
  }

  // Recursive case (lines 6-10). The relevant-pair criterion: with I kept
  // sorted, delta_I(I[i], I[j]) = j - i - 1, so only j >= i + c - 1 can
  // support a further (c)-clique through the pair (Figure 2).
  const int t = static_cast<int>(I.size());
  const int gap = ctx.prune ? c - 2 : 0;
  std::uint64_t* community = ctx.mask_at(level);
  count_t total = 0;

  for (int i = 0; i < t && !ctx.poll_stop(); ++i) {
    const int a = I[static_cast<std::size_t>(i)];
    const std::uint64_t* row_a = lg.row(a);
    for (int j = i + 1 + gap; j < t && !ctx.stopped; ++j) {
      const int b = I[static_cast<std::size_t>(j)];
      ++ctr.pairs_probed;
      if (!bits::test_bit(row_a, static_cast<std::size_t>(b))) continue;  // line 7
      ++ctr.edges_matched;

      const int isz =
          intersect_community(row_a, lg.row(b), I_mask, words, a, b, community, ctr);
      if (isz < c - 2) continue;  // too few candidates to finish the clique

      if (c - 2 == 1 && !listing) {
        // Leaf shortcut: each surviving candidate completes one clique.
        ++ctr.recursive_calls;
        ctr.leaf_work += static_cast<count_t>(isz);
        total += static_cast<count_t>(isz);
        continue;
      }
      if (c - 2 == 2 && !listing) {
        // Leaf shortcut: count the edges inside the community mask directly.
        ++ctr.recursive_calls;
        count_t twice = 0;
        bits::for_each_bit(community, static_cast<std::size_t>(words), [&](std::size_t x) {
          twice += kern::popcount_and(lg.row(static_cast<int>(x)), community,
                                      static_cast<std::size_t>(words));
        });
        ctr.intersection_words += static_cast<count_t>(isz) * static_cast<count_t>(words);
        ctr.leaf_work += twice / 2;
        total += twice / 2;
        continue;
      }

      // Materialize the new candidate array (ascending == rank order) and
      // recurse with budget c - 2.
      int* next = ctx.cand_at(level);
      int pos = 0;
      bits::for_each_bit(community, static_cast<std::size_t>(words),
                         [&](std::size_t x) { next[pos++] = static_cast<int>(x); });
      if (listing) {
        ctx.clique_stack.push_back(ctx.member_to_orig[a]);
        ctx.clique_stack.push_back(ctx.member_to_orig[b]);
      }
      total += search_cliques(ctx, std::span<const int>(next, static_cast<std::size_t>(pos)),
                              community, c - 2, level + 1);
      if (listing) {
        ctx.clique_stack.pop_back();
        ctx.clique_stack.pop_back();
      }
    }
  }
  return total;
}

count_t search_cliques_tri(SearchContext& ctx, std::span<const int> I,
                           const std::uint64_t* I_mask, int c, int level) {
  // The pair-growth bases already handle c <= 3 (a triangle is counted at
  // its supporting pair with one popcount).
  if (c <= 3) return search_cliques(ctx, I, I_mask, c, level);

  LocalCounters& ctr = *ctx.ctr;
  ++ctr.recursive_calls;
  if (ctx.poll_stop()) return 0;

  const LocalGraph& lg = *ctx.lg;
  const int words = lg.words();
  const bool listing = ctx.callback != nullptr;
  const int t = static_cast<int>(I.size());
  const int gap = ctx.prune ? c - 2 : 0;
  std::uint64_t* community = ctx.mask_at(level);
  std::uint64_t* inner = ctx.mask_at(level + 1);
  count_t total = 0;

  for (int i = 0; i < t && !ctx.poll_stop(); ++i) {
    const int a = I[static_cast<std::size_t>(i)];
    const std::uint64_t* row_a = lg.row(a);
    for (int j = i + 1 + gap; j < t && !ctx.stopped; ++j) {
      const int b = I[static_cast<std::size_t>(j)];
      ++ctr.pairs_probed;
      if (!bits::test_bit(row_a, static_cast<std::size_t>(b))) continue;
      ++ctr.edges_matched;
      const int bsz = intersect_community(row_a, lg.row(b), I_mask, words, a, b, community, ctr);
      if (bsz < c - 2) continue;

      // Grow by the third triangle vertex: the minimal internal member x.
      bits::for_each_bit(community, static_cast<std::size_t>(words), [&](std::size_t xbit) {
        if (ctx.poll_stop()) return;
        const int x = static_cast<int>(xbit);
        // inner = community ∩ N(x) ∩ {> x}, fused with its popcount.
        ctr.intersection_words += static_cast<std::size_t>(words) - bits::word_index(xbit);
        const std::uint64_t isz = kern::intersect_above(
            lg.row(x), community, inner, static_cast<std::size_t>(words), xbit);
        if (isz < static_cast<std::uint64_t>(c - 3)) return;

        if (c - 3 == 1 && !listing) {
          ++ctr.recursive_calls;
          ctr.leaf_work += isz;
          total += isz;
          return;
        }
        int* next = ctx.cand_at(level);
        int pos = 0;
        bits::for_each_bit(inner, static_cast<std::size_t>(words),
                           [&](std::size_t y) { next[pos++] = static_cast<int>(y); });
        if (listing) {
          ctx.clique_stack.push_back(ctx.member_to_orig[a]);
          ctx.clique_stack.push_back(ctx.member_to_orig[b]);
          ctx.clique_stack.push_back(ctx.member_to_orig[x]);
        }
        total += search_cliques_tri(ctx, std::span<const int>(next, static_cast<std::size_t>(pos)),
                                    inner, c - 3, level + 2);
        if (listing) {
          ctx.clique_stack.pop_back();
          ctx.clique_stack.pop_back();
          ctx.clique_stack.pop_back();
        }
      });
    }
  }
  return total;
}

count_t search_cliques_all(SearchContext& ctx, int c, bool triangle_growth) {
  const int n = ctx.lg->size();
  const int words = ctx.lg->words();
  // Depth bound: c shrinks by >= 2 per level (pair growth) and the triangle
  // variant consumes two mask slots per level; c + 3 covers both with slack.
  ctx.ensure_capacity(n, c + 3, words);
  int* universe = ctx.cand_at(c + 2);  // top level borrows the last slot
  for (int i = 0; i < n; ++i) universe[i] = i;
  std::uint64_t* mask = ctx.mask_at(c + 2);
  bits::fill_prefix(mask, static_cast<std::size_t>(n), static_cast<std::size_t>(words));
  const std::span<const int> all(universe, static_cast<std::size_t>(n));
  return triangle_growth ? search_cliques_tri(ctx, all, mask, c, 0)
                         : search_cliques(ctx, all, mask, c, 0);
}

count_t search_cliques_vertex(SearchContext& ctx, const std::uint64_t* mask, int c, int level) {
  assert(c >= 1);
  LocalCounters& ctr = *ctx.ctr;
  ++ctr.recursive_calls;
  if (ctx.poll_stop()) return 0;

  const LocalGraph& lg = *ctx.lg;
  const auto words = static_cast<std::size_t>(lg.words());
  const bool listing = ctx.callback != nullptr;

  // Base case c == 1: every remaining candidate completes a clique.
  if (c == 1) {
    const count_t found = kern::popcount(mask, words);
    ctr.leaf_work += found;
    if (!listing) return found;
    bits::for_each_bit(mask, words, [&](std::size_t x) {
      if (ctx.poll_stop()) return;
      ctx.clique_stack.push_back(ctx.member_to_orig[x]);
      if (!emit(ctx)) ctx.request_stop();
      ctx.clique_stack.pop_back();
    });
    return found;
  }

  std::uint64_t* next = ctx.mask_at(level);
  count_t total = 0;
  bits::for_each_bit(mask, words, [&](std::size_t x) {
    if (ctx.poll_stop()) return;
    // next = candidates after x that are adjacent to x, count fused in.
    ctr.intersection_words += words - bits::word_index(x);
    ctr.pairs_probed += 1;
    const std::uint64_t isz = kern::intersect_above(lg.row(static_cast<int>(x)), mask, next,
                                                    words, x);

    if (c == 2) {
      ctr.leaf_work += isz;
      total += static_cast<count_t>(isz);
      if (listing) {
        bits::for_each_bit(next, words, [&](std::size_t y) {
          if (ctx.poll_stop()) return;
          ctx.clique_stack.push_back(ctx.member_to_orig[x]);
          ctx.clique_stack.push_back(ctx.member_to_orig[y]);
          if (!emit(ctx)) ctx.request_stop();
          ctx.clique_stack.pop_back();
          ctx.clique_stack.pop_back();
        });
      }
      return;
    }
    if (isz >= static_cast<std::uint64_t>(c - 1)) {
      ++ctr.edges_matched;
      if (listing) ctx.clique_stack.push_back(ctx.member_to_orig[x]);
      total += search_cliques_vertex(ctx, next, c - 1, level + 1);
      if (listing) ctx.clique_stack.pop_back();
    }
  });
  return total;
}

count_t search_cliques_vertex_all(SearchContext& ctx, int c) {
  const int n = ctx.lg->size();
  const int words = ctx.lg->words();
  // One mask slot per level 0..c-2, plus the universe borrowing slot c.
  ctx.ensure_capacity(n, c + 1, words);
  std::uint64_t* universe = ctx.mask_at(c);
  bits::fill_prefix(universe, static_cast<std::size_t>(n), static_cast<std::size_t>(words));
  return search_cliques_vertex(ctx, universe, c, 0);
}

}  // namespace c3
