// Deterministic pseudo-random number generation.
//
// Every generator and randomized algorithm in this library takes an explicit
// 64-bit seed so that graphs, orders, and experiments are exactly
// reproducible across runs and thread counts. We use splitmix64 for seeding
// and xoshiro256** as the workhorse generator (fast, passes BigCrush, and
// cheap to fork into independent per-thread streams).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace c3 {

/// One round of splitmix64. Useful as a seeding function and as a cheap
/// stateless hash of a 64-bit value.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mixing of a 64-bit key (one splitmix64 round).
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t key) noexcept {
  std::uint64_t s = key;
  return splitmix64(s);
}

/// xoshiro256** by Blackman and Vigna. Satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating splitmix64, per the authors'
  /// recommendation. Any seed value (including 0) is valid.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent stream for parallel use: forks a generator whose
  /// state is a hash of (seed material, stream index). Distinct indices give
  /// statistically independent sequences, and the result does not depend on
  /// how many other streams exist — the foundation for thread-count-invariant
  /// generators.
  [[nodiscard]] constexpr Xoshiro256 fork(std::uint64_t stream) const noexcept {
    std::uint64_t s = state_[0] ^ hash64(stream + 0x1d8e4e27c47d124fULL);
    return Xoshiro256(splitmix64(s));
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// (no modulo bias beyond 2^-64, which is irrelevant at our scales).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using uint128 = unsigned __int128;
#pragma GCC diagnostic pop
    const uint128 wide = static_cast<uint128>(operator()()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace c3
