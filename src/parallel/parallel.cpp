#include "parallel/parallel.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

#include <algorithm>
#include <atomic>

namespace c3 {
namespace {

// Worker cap shared by all parallel loops. Defaults to the OpenMP pool size
// (respects OMP_NUM_THREADS); 1 in serial builds. Atomic so tests can flip
// it concurrently.
std::atomic<int> g_workers{0};

// High-water mark of the cap (0 = "nothing above the default yet").
std::atomic<int> g_max_workers{0};

// Per-thread cap installed by WorkerCapScope (0 = uncapped). Thread-local, so
// concurrent scopes on different threads never interact; it only ever lowers
// the effective worker count, so PerWorker structures sized to max_workers()
// stay in bounds.
thread_local int t_worker_cap = 0;

#if defined(_OPENMP)
int default_workers() noexcept { return std::max(1, omp_get_max_threads()); }
#else
int default_workers() noexcept { return 1; }
#endif

}  // namespace

int num_workers() noexcept {
  const int global = g_workers.load(std::memory_order_relaxed);
  const int w = global > 0 ? global : default_workers();
  return t_worker_cap > 0 && t_worker_cap < w ? t_worker_cap : w;
}

int set_num_workers(int workers) noexcept {
  const int clamped = std::max(1, workers);
  // Raise the high-water mark first, so a PerWorker constructed after this
  // call returns can never observe a cap above max_workers().
  int seen = g_max_workers.load(std::memory_order_relaxed);
  while (seen < clamped &&
         !g_max_workers.compare_exchange_weak(seen, clamped, std::memory_order_relaxed)) {
  }
  // Atomic swap so concurrent set/restore pairs cannot lose an update. The
  // raw slot value 0 means "unset"; report it as the effective default so the
  // returned value always round-trips through set_num_workers.
  const int old = g_workers.exchange(clamped, std::memory_order_relaxed);
  return old > 0 ? old : default_workers();
}

int max_workers() noexcept {
  return std::max(g_max_workers.load(std::memory_order_relaxed), default_workers());
}

WorkerCapScope::WorkerCapScope(int cap) noexcept : saved_(t_worker_cap) {
  if (cap > 0) t_worker_cap = saved_ > 0 ? std::min(saved_, cap) : cap;
}

WorkerCapScope::~WorkerCapScope() { t_worker_cap = saved_; }

#if defined(_OPENMP)
int worker_id() noexcept { return omp_get_thread_num(); }
bool in_parallel() noexcept { return omp_in_parallel() != 0; }
#else
int worker_id() noexcept { return 0; }
bool in_parallel() noexcept { return false; }
#endif

namespace detail {

void parallel_for_impl(std::int64_t begin, std::int64_t end, bool dynamic, std::int64_t grain,
                       void (*body)(std::int64_t, void*), void* ctx) {
  if (begin >= end) return;
  const std::int64_t trip = end - begin;
  const int workers = num_workers();
  // Serial fallback when the trip count is below the grain size or only one
  // worker is available. Nested parallel regions are not used: a loop
  // launched from inside a parallel region (e.g. from a recursive clique
  // search) runs serially, which matches the intended "parallel outer loop
  // only" execution.
  if (workers <= 1 || trip < grain || in_parallel()) {
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
    return;
  }
#if defined(_OPENMP)
  if (dynamic) {
    const int chunk = static_cast<int>(std::max<std::int64_t>(1, grain));
#pragma omp parallel for schedule(dynamic, chunk) num_threads(workers)
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
  } else {
#pragma omp parallel for schedule(static) num_threads(workers)
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
  }
#else
  (void)dynamic;
  for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
#endif
}

}  // namespace detail
}  // namespace c3
