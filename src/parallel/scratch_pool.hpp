// Checkout/return pool of reusable scratch objects.
//
// A ScratchPool<T> hands each in-flight task its own T through an RAII
// Lease: acquire() pops a warm object off the free list (or default-
// constructs a fresh one when every object is checked out — the pool grows
// under contention and never blocks), and the lease returns it on
// destruction. Objects keep their internal buffers across checkouts, so a
// steady-state pool serves any number of sequential or concurrent tasks
// without allocating.
//
// This is the substrate for per-query engine state: one PreparedGraph owns
// one pool, every query leases one object, and concurrent queries therefore
// never share mutable scratch (see clique/scratch.hpp and DESIGN.md §2.5).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace c3 {

namespace detail {
/// Process-global scratch-lease telemetry, aggregated over every
/// ScratchPool<T> instantiation (the registry keys by name, not by T).
/// Resolved in acquire() — never first-resolved from the noexcept put()
/// path — and cached per instantiation via function-local statics.
struct ScratchPoolMetrics {
  obs::Gauge& outstanding;
  obs::Counter& leases;
  obs::Counter& created;

  static ScratchPoolMetrics& global() {
    static ScratchPoolMetrics m{
        obs::Registry::global().gauge("c3_scratch_leases_outstanding"),
        obs::Registry::global().counter("c3_scratch_leases_total"),
        obs::Registry::global().counter("c3_scratch_objects_created_total")};
    return m;
  }
};
}  // namespace detail

template <typename T>
class ScratchPool {
 public:
  /// Exclusive ownership of one pooled T for the lease's lifetime; the
  /// object returns to the pool (warm) on destruction. Movable, not
  /// copyable.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)), item_(std::move(other.item_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        item_ = std::move(other.item_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] T& operator*() const noexcept { return *item_; }
    [[nodiscard]] T* operator->() const noexcept { return item_.get(); }
    [[nodiscard]] T* get() const noexcept { return item_.get(); }

    /// Returns the object to the pool early; the lease becomes empty.
    void release() noexcept {
      if (pool_ != nullptr && item_ != nullptr) pool_->put(std::move(item_));
      pool_ = nullptr;
      item_ = nullptr;
    }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* pool, std::unique_ptr<T> item) noexcept
        : pool_(pool), item_(std::move(item)) {}

    ScratchPool* pool_ = nullptr;
    std::unique_ptr<T> item_;
  };

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Checks out one object. Reuses a warm one when available; otherwise
  /// default-constructs (growing the pool's eventual size by one). Never
  /// blocks on other leases.
  [[nodiscard]] Lease acquire() {
    // Resolve the registry series here, before any lease exists: put() is
    // noexcept and must never be the first caller (registration allocates).
    // The outstanding gauge moves on every checkout/return regardless of
    // obs::enabled() so it can never drift out of balance when the switch
    // flips mid-lease; the monotonic counters are gated like every other
    // record site.
    detail::ScratchPoolMetrics& metrics = detail::ScratchPoolMetrics::global();
    if (obs::enabled()) metrics.leases.add();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        // Reserve room for every outstanding object before counting this
        // checkout, so (a) the noexcept put() on lease return can
        // push_back without ever allocating and (b) a throwing reserve
        // leaves the accounting untouched.
        free_.reserve(free_.size() + outstanding_ + 1);
        ++outstanding_;
        std::unique_ptr<T> item = std::move(free_.back());
        free_.pop_back();
        metrics.outstanding.add();
        return Lease(this, std::move(item));
      }
    }
    // Construct outside the lock and before the checkout is counted: if
    // T's constructor throws, no lease exists and nothing leaks.
    std::unique_ptr<T> item = std::make_unique<T>();
    if (obs::enabled()) metrics.created.add();
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.reserve(free_.size() + outstanding_ + 1);
    ++outstanding_;
    metrics.outstanding.add();
    return Lease(this, std::move(item));
  }

  /// Number of objects currently parked in the pool (not leased out).
  [[nodiscard]] std::size_t idle() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  void put(std::unique_ptr<T> item) noexcept {
    // Already-initialized (this lease's acquire() resolved it), so the
    // lookup cannot throw here.
    detail::ScratchPoolMetrics::global().outstanding.sub();
    const std::lock_guard<std::mutex> lock(mutex_);
    --outstanding_;
    free_.push_back(std::move(item));  // capacity guaranteed by acquire()
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace c3
