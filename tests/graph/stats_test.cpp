// Tests for the Table 2 statistics pipeline.
#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(Stats, CompleteGraph) {
  const GraphStats s = compute_stats(complete_graph(10));
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 45u);
  EXPECT_EQ(s.triangles, binomial(10, 3));
  EXPECT_EQ(s.degeneracy, 9u);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_DOUBLE_EQ(s.edges_per_node, 4.5);
  EXPECT_DOUBLE_EQ(s.triangles_per_node, 12.0);
  EXPECT_NEAR(s.triangles_per_edge, 120.0 / 45.0, 1e-12);
}

TEST(Stats, HypercubeHasNoTriangles) {
  const GraphStats s = compute_stats(hypercube(5));
  EXPECT_EQ(s.nodes, 32u);
  EXPECT_EQ(s.edges, 80u);  // 2^5 * 5 / 2
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_EQ(s.degeneracy, 5u);
}

TEST(Stats, EmptyGraphIsAllZero) {
  const GraphStats s = compute_stats(Graph{});
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.edges, 0u);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_EQ(s.degeneracy, 0u);
  EXPECT_EQ(s.edges_per_node, 0.0);
}

TEST(Stats, GridGraph) {
  const GraphStats s = compute_stats(grid_graph(10, 10));
  EXPECT_EQ(s.nodes, 100u);
  EXPECT_EQ(s.edges, 180u);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_EQ(s.degeneracy, 2u);
}

}  // namespace
}  // namespace c3
