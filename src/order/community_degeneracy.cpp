#include "order/community_degeneracy.hpp"

#include <algorithm>
#include <vector>

#include "parallel/parallel.hpp"

namespace c3 {
namespace {

/// Initial per-edge triangle counts |C_G(e)| by merging the (sorted)
/// neighborhoods of the endpoints. O(sum over edges of d(u)+d(v)).
std::vector<node_t> edge_triangle_counts(const Graph& g) {
  const auto endpoints = g.endpoints();
  std::vector<node_t> count(endpoints.size(), 0);
  parallel_for(
      0, endpoints.size(),
      [&](std::size_t e) {
        const auto nu = g.neighbors(endpoints[e].u);
        const auto nv = g.neighbors(endpoints[e].v);
        std::size_t i = 0, j = 0;
        node_t c = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] < nv[j]) {
            ++i;
          } else if (nu[i] > nv[j]) {
            ++j;
          } else {
            ++c;
            ++i;
            ++j;
          }
        }
        count[e] = c;
      },
      64);
  return count;
}

}  // namespace

// Edge analogue of the Batagelj-Zaversnik sweep: edges sit in bins by their
// current triangle count; processing an edge enumerates its remaining
// triangles and decrements the two partner edges (with the clamping guard
// cnt[f] > cnt[e], which keeps processing counts non-decreasing — so the
// maximum processing count is exactly the community degeneracy, the same
// argument as for k-truss decomposition).
EdgeOrderResult community_degeneracy_order(const Graph& g) {
  const edge_t m = g.num_edges();
  const auto endpoints = g.endpoints();
  EdgeOrderResult result;
  result.order.reserve(m);
  result.pos.assign(m, static_cast<edge_t>(-1));
  result.candidate_offsets.assign(m + 1, 0);
  if (m == 0) {
    result.rounds = 0;
    return result;
  }
  result.rounds = static_cast<node_t>(m);  // one edge per "round": linear depth

  std::vector<node_t> cnt = edge_triangle_counts(g);
  const node_t max_cnt = *std::max_element(cnt.begin(), cnt.end());

  // Counting sort of edges by triangle count.
  std::vector<edge_t> bin(static_cast<std::size_t>(max_cnt) + 2, 0);
  for (edge_t e = 0; e < m; ++e) bin[cnt[e] + 1]++;
  for (std::size_t d = 0; d + 1 < bin.size(); ++d) bin[d + 1] += bin[d];
  std::vector<edge_t> edges_sorted(m), epos(m);
  {
    std::vector<edge_t> cursor(bin.begin(), bin.end() - 1);
    for (edge_t e = 0; e < m; ++e) {
      const edge_t p = cursor[cnt[e]]++;
      edges_sorted[p] = e;
      epos[e] = p;
    }
  }

  std::vector<bool> processed(m, false);
  // Candidate sets are appended in sweep order, then re-indexed by edge id.
  std::vector<std::pair<edge_t, node_t>> flat_candidates;  // (edge, member)
  node_t sigma = 0;

  for (edge_t i = 0; i < m; ++i) {
    const edge_t e = edges_sorted[i];
    result.order.push_back(e);
    result.pos[e] = i;
    processed[e] = true;
    sigma = std::max(sigma, cnt[e]);

    // Enumerate remaining triangles of e: common neighbors w with both
    // partner edges unprocessed.
    const node_t u = endpoints[e].u;
    const node_t v = endpoints[e].v;
    const auto nu = g.neighbors(u);
    const auto nv = g.neighbors(v);
    const auto idu = g.edge_ids(u);
    const auto idv = g.edge_ids(v);
    std::size_t a = 0, b = 0;
    while (a < nu.size() && b < nv.size()) {
      if (nu[a] < nv[b]) {
        ++a;
      } else if (nu[a] > nv[b]) {
        ++b;
      } else {
        const edge_t f = idu[a];  // edge {u, w}
        const edge_t h = idv[b];  // edge {v, w}
        if (!processed[f] && !processed[h]) {
          flat_candidates.emplace_back(e, nu[a]);
          // Decrement with the clamping guard (see header comment).
          for (const edge_t partner : {f, h}) {
            if (cnt[partner] > cnt[e]) {
              const node_t dp = cnt[partner];
              const edge_t pp = epos[partner];
              const edge_t pt = bin[dp];
              const edge_t t = edges_sorted[pt];
              if (partner != t) {
                std::swap(edges_sorted[pp], edges_sorted[pt]);
                epos[partner] = pt;
                epos[t] = pp;
              }
              ++bin[dp];
              --cnt[partner];
            }
          }
        }
        ++a;
        ++b;
      }
    }
  }
  result.sigma = sigma;

  // Re-index the flat (edge, member) pairs into a CSR keyed by edge id.
  for (const auto& [e, w] : flat_candidates) result.candidate_offsets[e + 1]++;
  for (edge_t e = 0; e < m; ++e) result.candidate_offsets[e + 1] += result.candidate_offsets[e];
  result.candidate_members.resize(flat_candidates.size());
  {
    std::vector<edge_t> cursor(result.candidate_offsets.begin(),
                               result.candidate_offsets.end() - 1);
    for (const auto& [e, w] : flat_candidates) result.candidate_members[cursor[e]++] = w;
  }
  // Members arrive in merge order (ascending w) per edge already, but the
  // sweep interleaves edges; the scatter above preserves per-edge order, and
  // per-edge enumeration is ascending — so each set is already sorted.
  return result;
}

node_t community_degeneracy(const Graph& g) { return community_degeneracy_order(g).sigma; }

}  // namespace c3
