// Maximum clique queries built on the k-clique machinery.
//
// An s-degenerate graph has clique number at most s + 1, so the clique
// number is found by binary-searching k in [2, s+1] with an early-exit
// k-clique decision (the listing callback stops at the first witness).
// "Finding large cliques" is the paper's title application.
#pragma once

#include <optional>
#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

/// True iff g contains a k-clique (early-exit search).
[[nodiscard]] bool has_clique(const Graph& g, int k, const CliqueOptions& opts = {});

/// Some k-clique of g, or nullopt if none exists.
[[nodiscard]] std::optional<std::vector<node_t>> find_clique(const Graph& g, int k,
                                                             const CliqueOptions& opts = {});

/// The clique number omega(g).
[[nodiscard]] node_t max_clique_size(const Graph& g, const CliqueOptions& opts = {});

/// A maximum clique of g (empty for the empty graph).
[[nodiscard]] std::vector<node_t> find_max_clique(const Graph& g, const CliqueOptions& opts = {});

}  // namespace c3
