// Low-depth approximate degeneracy ordering (Section 4.1, Lemma 4.2;
// Besta et al., Shi et al.).
//
// Peels the graph in rounds: every round removes *all* vertices whose
// current degree is at most (1 + eps/2) times the current average degree.
// An s-degenerate graph has average degree at most 2s, so every removed
// vertex has out-degree at most (2 + eps)s in the induced orientation —
// a (2 + eps)-approximate degeneracy order. At least an eps-fraction of the
// remaining vertices is removed per round, so there are O(log n) rounds and
// the total work is O(n + m) with polylogarithmic depth.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

struct ApproxDegeneracyResult {
  /// Concatenation of the rounds' removals; vertices removed in the same
  /// round are ordered by id (deterministic, thread-count independent).
  std::vector<node_t> order;
  /// Number of peeling rounds (the depth-determining quantity).
  node_t rounds = 0;
  /// Maximum out-degree induced by orienting with `order` — at most
  /// (2 + eps) * degeneracy.
  node_t max_out_degree = 0;
};

/// Computes a (2 + eps)-approximate degeneracy order. `eps` must be > 0.
[[nodiscard]] ApproxDegeneracyResult approx_degeneracy_order(const Graph& g, double eps = 0.5);

}  // namespace c3
