// Shared bench harness: reruns one of the paper's figure series
// (total runtime of c3List vs ArbCount vs kcList for k = 6..10) on a dataset
// stand-in and prints the same rows the figure reports.
//
// Environment / flags:
//   C3_BENCH_REPS   repetitions per measurement (default 3; paper used >=10)
//   --scale X       grow/shrink the generated dataset
//   --kmin/--kmax   clique size range (default 6..10 like the figures)
//   --csv           additionally dump a CSV block for plotting
//   --prepared      run the k sweep through one PreparedGraph per algorithm
//                   (prepare once, search per k) and report prepare vs
//                   search seconds separately
#pragma once

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/run_stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace c3::bench {

struct FigureConfig {
  std::string figure;      ///< e.g. "Figure 8b"
  std::string paper_ref;   ///< the paper's qualitative takeaway to compare against
  int kmin = 6;
  int kmax = 10;
};

inline const std::vector<Algorithm> kFigureAlgorithms = {Algorithm::C3List, Algorithm::ArbCount,
                                                         Algorithm::KCList};

/// Times one full run (preprocessing + search, like the paper's "Total
/// Runtime") of `alg` on `g`.
inline double timed_run(const Graph& g, int k, Algorithm alg, count_t& count_out) {
  CliqueOptions opts;
  opts.algorithm = alg;
  WallTimer timer;
  const CliqueResult r = count_cliques(g, k, opts);
  const double t = timer.seconds();
  count_out = r.count;
  return t;
}

/// Prepared-mode sweep: one PreparedGraph per algorithm, preparation timed
/// once, only the k-dependent search timed per query. The "amortized total"
/// column shows what the one-shot path would have re-paid per k.
inline void run_figure_prepared(const FigureConfig& cfg, const Dataset& ds,
                                const CommandLine& cli) {
  const int reps = static_cast<int>(env_int("C3_BENCH_REPS", 3));
  const int kmin = static_cast<int>(cli.get_int("kmin", cfg.kmin));
  const int kmax = static_cast<int>(cli.get_int("kmax", cfg.kmax));
  if (kmax < kmin) {
    std::printf("# %s: empty k range (%d..%d)\n", cfg.figure.c_str(), kmin, kmax);
    return;
  }
  const auto n_algs = kFigureAlgorithms.size();
  const auto n_ks = static_cast<std::size_t>(kmax - kmin + 1);

  std::printf("# %s — %s, prepared query engine (prepare once, search per k)\n",
              cfg.figure.c_str(), ds.name.c_str());
  std::printf("# %d repetitions per point\n\n", reps);

  std::vector<RunStats> prep(n_algs);
  std::vector<std::vector<RunStats>> search(n_algs, std::vector<RunStats>(n_ks));
  std::vector<count_t> counts(n_ks, 0);

  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t a = 0; a < n_algs; ++a) {
      CliqueOptions opts;
      opts.algorithm = kFigureAlgorithms[a];
      const PreparedGraph engine(ds.graph, opts);
      WallTimer prep_timer;
      engine.prepare();
      prep[a].add(prep_timer.seconds());
      for (int k = kmin; k <= kmax; ++k) {
        const auto ki = static_cast<std::size_t>(k - kmin);
        const CliqueResult r = engine.count(k);
        search[a][ki].add(r.stats.search_seconds);
        if (rep == 0 && a == 0) {
          counts[ki] = r.count;
        } else if (r.count != counts[ki]) {
          std::printf("!! count mismatch at k=%d: %llu vs %llu\n", k,
                      static_cast<unsigned long long>(r.count),
                      static_cast<unsigned long long>(counts[ki]));
        }
      }
    }
  }

  Table prep_table({"algorithm", "prepare[s]", "std%"});
  for (std::size_t a = 0; a < n_algs; ++a) {
    prep_table.add_row({algorithm_name(kFigureAlgorithms[a]), strfmt("%.3f", prep[a].mean()),
                        strfmt("%.1f%%", 100.0 * prep[a].rel_stddev())});
  }
  prep_table.print();
  std::printf("\n");

  Table table({"k", "c3List[s]", "ArbCount[s]", "kcList[s]", "#cliques", "prep/search(c3)"});
  for (int k = kmin; k <= kmax; ++k) {
    const auto ki = static_cast<std::size_t>(k - kmin);
    const double c3 = search[0][ki].mean();
    table.add_row({std::to_string(k), strfmt("%.3f", c3), strfmt("%.3f", search[1][ki].mean()),
                   strfmt("%.3f", search[2][ki].mean()), with_commas(counts[ki]),
                   strfmt("%.2fx", c3 > 0.0 ? prep[0].mean() / c3 : 0.0)});
  }
  table.print();

  if (cli.has_flag("csv")) {
    std::printf("\nk,c3list_search,arbcount_search,kclist_search\n");
    for (int k = kmin; k <= kmax; ++k) {
      const auto ki = static_cast<std::size_t>(k - kmin);
      std::printf("%d,%.4f,%.4f,%.4f\n", k, search[0][ki].mean(), search[1][ki].mean(),
                  search[2][ki].mean());
    }
  }
}

inline void run_figure(const FigureConfig& cfg, const Dataset& ds, const CommandLine& cli) {
  if (cli.has_flag("prepared")) {
    run_figure_prepared(cfg, ds, cli);
    return;
  }
  const int reps = static_cast<int>(env_int("C3_BENCH_REPS", 3));
  const int kmin = static_cast<int>(cli.get_int("kmin", cfg.kmin));
  const int kmax = static_cast<int>(cli.get_int("kmax", cfg.kmax));

  const GraphStats stats = compute_stats(ds.graph);
  std::printf("# %s — %s (stand-in: %s)\n", cfg.figure.c_str(), ds.name.c_str(),
              ds.generator.c_str());
  std::printf("# %s\n", ds.paper_note.c_str());
  std::printf("# ours:  |V|=%s |E|=%s |T|=%s s=%u E/V=%.1f T/V=%.1f T/E=%.1f\n",
              with_commas(stats.nodes).c_str(), with_commas(stats.edges).c_str(),
              with_commas(stats.triangles).c_str(), stats.degeneracy, stats.edges_per_node,
              stats.triangles_per_node, stats.triangles_per_edge);
  std::printf("# paper reference: %s\n", cfg.paper_ref.c_str());
  std::printf("# %d repetitions per point (paper: >=10), 1 worker unless OMP_NUM_THREADS set\n\n",
              reps);

  Table table({"k", "c3List[s]", "ArbCount[s]", "kcList[s]", "std%max", "#cliques", "fastest",
               "c3/best-base"});
  std::vector<std::array<double, 3>> series;

  for (int k = kmin; k <= kmax; ++k) {
    std::array<RunStats, 3> per_alg;
    count_t count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t a = 0; a < kFigureAlgorithms.size(); ++a) {
        count_t c = 0;
        per_alg[a].add(timed_run(ds.graph, k, kFigureAlgorithms[a], c));
        if (rep == 0 && a == 0) {
          count = c;
        } else if (c != count) {
          std::printf("!! count mismatch at k=%d: %llu vs %llu\n", k,
                      static_cast<unsigned long long>(c),
                      static_cast<unsigned long long>(count));
        }
      }
    }
    const double c3 = per_alg[0].mean();
    const double arb = per_alg[1].mean();
    const double kcl = per_alg[2].mean();
    const double best_base = std::min(arb, kcl);
    double worst_rel = 0.0;
    for (const auto& s : per_alg) worst_rel = std::max(worst_rel, s.rel_stddev());
    const char* fastest = c3 <= best_base ? "c3List" : (arb <= kcl ? "ArbCount" : "kcList");
    table.add_row({std::to_string(k), strfmt("%.3f", c3), strfmt("%.3f", arb),
                   strfmt("%.3f", kcl), strfmt("%.1f%%", 100.0 * worst_rel), with_commas(count),
                   fastest, strfmt("%.2fx", best_base / c3)});
    series.push_back({c3, arb, kcl});
  }
  table.print();

  if (cli.has_flag("csv")) {
    std::printf("\nk,c3list,arbcount,kclist\n");
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("%d,%.4f,%.4f,%.4f\n", kmin + static_cast<int>(i), series[i][0], series[i][1],
                  series[i][2]);
    }
  }
}

}  // namespace c3::bench
