#include "snapshot/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <fstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace c3::snapshot {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("c3::snapshot: " + what + ": " + path.string());
}

}  // namespace

void MappedFile::reset() noexcept {
#if !defined(_WIN32)
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  heap_.reset();
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    heap_ = std::move(other.heap_);
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::prefault() const noexcept {
#if !defined(_WIN32)
  if (mapped_ && data_ != nullptr && size_ > 0) {
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_WILLNEED);
  }
#endif
}

bool MappedFile::lock_memory() const noexcept {
#if defined(_WIN32)
  return false;
#else
  // Heap fallback: mlock assumes a page-aligned mapping — locking an
  // unaligned heap buffer would pin whatever else shares its boundary
  // pages. The buffer is already resident, so "not locked" is the honest
  // no-op, reported as false for Snapshot::memory_locked().
  if (!mapped_ || data_ == nullptr || size_ == 0) return false;
  return ::mlock(data_, size_) == 0;
#endif
}

MappedFile MappedFile::read_heap(const std::filesystem::path& path) {
  MappedFile out;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail(path, "cannot open for reading");
  const auto bytes = static_cast<std::size_t>(in.tellg());
  if (bytes == 0) return out;  // empty file: validation rejects it later
  out.heap_ = std::make_unique<std::byte[]>(bytes);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.heap_.get()), static_cast<std::streamsize>(bytes));
  if (!in) fail(path, "read error");
  out.data_ = out.heap_.get();
  out.size_ = bytes;
  return out;
}

MappedFile MappedFile::view(const std::byte* data, std::size_t size) noexcept {
  // mapped_ stays false and heap_ stays null, so reset() releases nothing —
  // the bytes belong to whoever handed them out.
  MappedFile out;
  out.data_ = data;
  out.size_ = size;
  return out;
}

MappedFile MappedFile::map_readonly(const std::filesystem::path& path) {
#if defined(_WIN32)
  return read_heap(path);
#else
  MappedFile out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, std::string("cannot open for reading (") + std::strerror(errno) + ")");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path, std::string("fstat failed (") + std::strerror(err) + ")");
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  if (bytes == 0) {
    ::close(fd);
    out.size_ = 0;
    return out;  // empty file: validation rejects it with a precise message
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    fail(path, std::string("mmap failed (") + std::strerror(err) + ")");
  }
  out.data_ = static_cast<const std::byte*>(addr);
  out.size_ = bytes;
  out.mapped_ = true;
  return out;
#endif
}

}  // namespace c3::snapshot
