// LineFrontEnd — the wire protocol of c3serve, independent of any socket.
//
// One request per line, one response per line. A request is a graph id from
// the catalog followed by a query in the Query/Answer text grammar
// (query.hpp) — the exact line a query file holds, prefixed by which graph
// to ask:
//
//   social count 4 workers=2      ->  count 4: 2718 cliques
//   web maxclique witness=0       ->  maxclique: omega 9
//   web list 3 limit=2            ->  list 3: 2 cliques [truncated]
//
// plus the admin commands: `stats` (one line of counters, including the
// answer cache's hits/misses/evictions), `metrics` (Prometheus text
// exposition of the whole obs registry — the only multi-line reply, closed
// by its `# EOF` terminator line), `trace` (the recent-trace ring as one
// line of chrome://tracing JSON), `catalog` (the graph ids), `ping`
// (liveness), and `quit` (close after the reply). Blank and '#'-comment
// lines are skipped without a response. Every failure — unknown graph, parse
// error, snapshot open failure, execution error — becomes one line starting
// with "error: "; no request kills the connection.
//
// In front of execution sit the two serving-layer pieces:
//
//   * the AnswerCache (optional): before running, the request's canonical
//     key — engine fingerprint + format_query(canonical_question(q)) — is
//     looked up; a hit answers without touching the engine or an admission
//     slot. Complete answers are inserted after execution; truncated ones
//     never are.
//
//   * per-graph admission control: at most `max_inflight_per_graph`
//     requests execute per graph at a time (plus an optional
//     `max_inflight_total` across the catalog); excess requests *block*
//     rather than fail. Freed capacity is handed out as explicit grants in
//     round-robin order over the waiting graphs, so a flood against one hot
//     graph queues against that graph's slots while other graphs' waiters
//     get their fair turn at the shared budget — fairness across the
//     catalog by construction, not by condvar race.
//
// Telemetry (obs/): the serving counters live in the metrics registry as
// instance-labeled series (instance="N", one N per front end), so stats()
// and the `stats` line are *views* of the registry while concurrent front
// ends (tests, multiple servers in one process) stay isolated. When
// obs::enabled(), each query request additionally carries a TraceContext
// whose stage spans (parse, admission wait, cache lookup, prepare, search,
// format) feed the c3_stage_seconds histograms; the context rides out on
// Reply::trace so the transport can add its socket-write span before the
// trace publishes into the ring.
//
// process() is safe to call from any number of connection threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "clique/answer_cache.hpp"
#include "clique/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace c3::net {

struct FrontEndOptions {
  /// Queries executing concurrently per graph; further requests for that
  /// graph block until a slot frees. >= 1.
  int max_inflight_per_graph = 4;
  /// Queries executing concurrently across the whole catalog (0 = no total
  /// cap). When contended, freed capacity is handed to waiters *round-robin
  /// across graphs* — not to whichever connection thread wins the condvar
  /// race — so a flood against one hot graph cannot starve light traffic on
  /// the others out of the shared budget.
  int max_inflight_total = 0;
};

/// Counter snapshot for stats()/the `stats` admin line. Sourced from this
/// instance's registry series (see the header comment).
struct FrontEndStats {
  std::uint64_t requests = 0;   ///< query requests (admin lines not counted)
  std::uint64_t answered = 0;   ///< successful answers (cache hits included)
  std::uint64_t cache_hits = 0; ///< answered straight from the cache
  std::uint64_t errors = 0;     ///< error: responses
  int peak_inflight = 0;        ///< max concurrent executions on any graph
  AnswerCacheStats cache;       ///< zeroed when no cache is attached
};

class LineFrontEnd {
 public:
  /// `cache` may be nullptr (no caching). Both `service` and `cache` must
  /// outlive the front end.
  LineFrontEnd(const CliqueService& service, AnswerCache* cache, FrontEndOptions opts = {});

  struct Reply {
    std::string line;      ///< the one response line (empty if !respond)
    bool respond = true;   ///< false: blank/comment input, send nothing
    bool close = false;    ///< true after `quit`: reply, then hang up
    /// The request's trace, when tracing is on (query requests only). The
    /// transport may record its write into it (Stage::SocketWrite); the
    /// trace publishes to the ring/histograms when this pointer dies.
    std::unique_ptr<obs::TraceContext> trace;
  };

  /// Handles one request line (newline already stripped). Never throws —
  /// failures become "error: ..." replies.
  [[nodiscard]] Reply process(std::string_view line);

  [[nodiscard]] FrontEndStats stats() const;

  /// The `metrics` admin payload: Prometheus text exposition of the whole
  /// registry (instantaneous serving-layer state — cache counters, catalog
  /// size, peak inflight — is mirrored into gauges at scrape time). The
  /// final line is the `# EOF` terminator.
  [[nodiscard]] std::string metrics_text() const;

  /// Extra "key=value" text appended to the `stats` admin line — the server
  /// hooks its connection gauges in here. Set once, before traffic.
  /// Embedded newlines are folded to spaces (one-answer-per-line protocol).
  void set_stats_suffix_source(std::function<std::string()> source);

 private:
  struct GraphGate {
    int inflight = 0;
    int peak = 0;
    int waiting = 0;  ///< threads blocked in Admission for this graph
    /// Capacity grants handed to this gate's waiters but not yet consumed.
    /// Grants are issued by grant_locked() in round-robin gate order and
    /// count against both caps until the woken waiter converts its grant
    /// into an inflight slot — so a grant can never be stolen by a barger.
    int grants = 0;
    /// Per-gate condvar (all gates share gate_mutex_): freeing a slot on
    /// graph A wakes a waiter for A, never one for B — a shared condvar
    /// with notify_one could hand A's wakeup to a B-waiter whose predicate
    /// is still false, losing it and stranding A's waiter.
    std::condition_variable free_slot;
    /// Registry mirror of `inflight` (c3_graph_inflight{graph="..."}),
    /// resolved once when the gate is created.
    obs::Gauge* inflight_gauge = nullptr;
  };

  /// Blocks until an execution slot for `id` is free; RAII-released.
  class Admission;

  /// Hands freed capacity to blocked waiters, scanning the gates round-robin
  /// from rr_cursor_ and granting while both caps have room. Must hold
  /// gate_mutex_.
  void grant_locked();

  [[nodiscard]] std::uint64_t fingerprint_for(const std::string& id);
  [[nodiscard]] std::string stats_line() const;

  const CliqueService* service_;
  AnswerCache* cache_;
  FrontEndOptions opts_;
  std::function<std::string()> stats_suffix_;

  mutable std::mutex gate_mutex_;
  std::map<std::string, GraphGate, std::less<>> gates_;
  int total_inflight_ = 0;  // guarded by gate_mutex_
  int total_grants_ = 0;
  int total_waiting_ = 0;
  std::string rr_cursor_;  ///< next gate to consider for a grant

  mutable std::shared_mutex fingerprint_mutex_;
  std::unordered_map<std::string, std::uint64_t> fingerprints_;

  // This instance's registry series (instance="N" label). The request
  // counters move unconditionally — they are the serving stats, not optional
  // telemetry — so `stats` keeps working under C3_OBS=off; the off switch
  // gates tracing and the latency histograms.
  std::string instance_label_;
  obs::Counter* requests_;
  obs::Counter* answered_;
  obs::Counter* cache_hits_;
  obs::Counter* errors_;
  obs::Histogram* admission_wait_;  // c3_admission_wait_seconds (shared)
};

}  // namespace c3::net
