#include "clique/spectrum.hpp"

#include "clique/engine.hpp"

namespace c3 {

CliqueSpectrum clique_spectrum(const Graph& g, int kmax, const CliqueOptions& opts) {
  // The engine prepares once (order, orientation, communities / edge order)
  // and reruns only the k-dependent search per size.
  return PreparedGraph(g, opts).spectrum(kmax);
}

}  // namespace c3
