#include "clique/spectrum.hpp"

#include <algorithm>

#include "clique/local_graph.hpp"
#include "clique/order_util.hpp"
#include "clique/recursive.hpp"
#include "graph/digraph.hpp"
#include "parallel/pack.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"
#include "triangle/communities.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

struct Worker {
  LocalGraph lg;
  SearchContext ctx;
  LocalCounters ctr;
  count_t count = 0;
};

}  // namespace

CliqueSpectrum clique_spectrum(const Graph& g, int kmax, const CliqueOptions& opts) {
  CliqueSpectrum out;
  out.counts.assign(2, 0);
  if (g.num_nodes() == 0) return out;
  out.counts[1] = g.num_nodes();
  out.omega = 1;
  if (g.num_edges() == 0) return out;
  out.counts.push_back(g.num_edges());
  out.omega = 2;

  // Shared preprocessing: order once, orient once, communities once.
  WallTimer prep_timer;
  const std::vector<node_t> order = make_vertex_order(
      g, opts.vertex_order, opts.eps, VertexOrderKind::ExactDegeneracy, opts.order_seed);
  const Digraph dag = Digraph::orient(g, order);
  const EdgeCommunities comms = EdgeCommunities::build(dag);
  const node_t gamma = comms.max_size();
  out.preprocess_seconds = prep_timer.seconds();

  // omega <= gamma + 2 (a k-clique needs a community of k-2).
  const int limit = kmax > 0 ? std::min(kmax, static_cast<int>(gamma) + 2)
                             : static_cast<int>(gamma) + 2;

  WallTimer search_timer;
  for (int k = 3; k <= limit; ++k) {
    const auto needed = static_cast<node_t>(k - 2);
    const std::vector<edge_t> tasks = pack_index<edge_t>(dag.num_arcs(), [&](std::size_t e) {
      return comms.size(static_cast<edge_t>(e)) >= needed;
    });
    if (tasks.empty()) break;

    PerWorker<Worker> workers;
    parallel_for_dynamic(
        0, tasks.size(),
        [&](std::size_t t) {
          Worker& w = workers.local();
          const edge_t e = tasks[t];
          const auto members = comms.members(e);
          if (k == 3) {
            w.count += members.size();
            return;
          }
          build_local_graph(dag, members, w.lg);
          w.ctx.lg = &w.lg;
          w.ctx.prune = opts.distance_pruning;
          w.ctx.ctr = &w.ctr;
          w.ctx.callback = nullptr;
          w.count += search_cliques_all(w.ctx, k - 2, opts.triangle_growth);
        },
        1);
    count_t total = 0;
    for (std::size_t i = 0; i < workers.size(); ++i) total += workers.slot(i).count;
    if (total == 0) break;
    out.counts.push_back(total);
    out.omega = static_cast<node_t>(k);
  }
  out.search_seconds = search_timer.seconds();
  return out;
}

}  // namespace c3
