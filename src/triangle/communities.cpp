#include "triangle/communities.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "triangle/triangle_count.hpp"

namespace c3 {

EdgeCommunities EdgeCommunities::build(const Digraph& dag) {
  const edge_t m = dag.num_arcs();
  EdgeCommunities out;
  out.offsets_.assign(m + 1, 0);
  if (m == 0) return out;

  // Pass 1: size each community. Triangle (a, b, c) contributes member b to
  // the supporting arc (a, c).
  std::vector<std::atomic<node_t>> size(m);
  parallel_for(0, m, [&](std::size_t e) { size[e].store(0, std::memory_order_relaxed); });
  for_each_triangle(dag, [&](node_t a, node_t, node_t c) {
    const edge_t support = dag.arc_id(a, c);
    size[support].fetch_add(1, std::memory_order_relaxed);
  });

  {
    std::vector<edge_t> sz(m);
    parallel_for(0, m, [&](std::size_t e) { sz[e] = size[e].load(std::memory_order_relaxed); });
    out.offsets_[m] = exclusive_scan<edge_t>(sz, std::span<edge_t>(out.offsets_.data(), m));
  }
  out.members_.resize(out.offsets_[m]);

  // Pass 2: scatter members, then sort each community ascending ("Build the
  // communities and sort them", Algorithm 1 line 1).
  std::vector<std::atomic<edge_t>> cursor(m);
  parallel_for(0, m, [&](std::size_t e) {
    cursor[e].store(out.offsets_[e], std::memory_order_relaxed);
  });
  for_each_triangle(dag, [&](node_t a, node_t b, node_t c) {
    const edge_t support = dag.arc_id(a, c);
    out.members_[cursor[support].fetch_add(1, std::memory_order_relaxed)] = b;
  });
  parallel_for_dynamic(0, m, [&](std::size_t e) {
    std::sort(out.members_.begin() + static_cast<std::ptrdiff_t>(out.offsets_[e]),
              out.members_.begin() + static_cast<std::ptrdiff_t>(out.offsets_[e + 1]));
  });
  return out;
}

EdgeCommunities EdgeCommunities::from_parts(ArrayStore<edge_t> offsets,
                                            ArrayStore<node_t> members) {
  EdgeCommunities out;
  out.offsets_ = std::move(offsets);
  out.members_ = std::move(members);
  return out;
}

node_t EdgeCommunities::max_size() const noexcept {
  const edge_t m = num_edges();
  if (m == 0) return 0;
  return parallel_max(0, m, node_t{0},
                      [&](std::size_t e) { return size(static_cast<edge_t>(e)); });
}

}  // namespace c3
