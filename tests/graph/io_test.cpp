// Tests for graph I/O (text edge lists and the binary format).
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "clique/engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "snapshot/snapshot.hpp"

namespace c3 {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "c3list_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  const Graph g = erdos_renyi(100, 300, 3);
  const auto path = dir_ / "g.txt";
  write_edge_list(path, g);
  const Graph h = read_graph(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(std::vector<node_t>(a.begin(), a.end()), std::vector<node_t>(b.begin(), b.end()));
  }
}

TEST_F(IoTest, ParsesCommentsBlanksAndWhitespace) {
  const auto path = dir_ / "messy.txt";
  std::ofstream out(path);
  out << "# snap-style comment\n\n% matrix-market style\n  0\t1 \n2 3\n1 2\n";
  out.close();
  const EdgeList edges = read_edge_list(path);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[2].u, 1u);
  EXPECT_EQ(edges[2].v, 2u);
}

TEST_F(IoTest, ThrowsOnMissingFile) {
  EXPECT_THROW((void)read_edge_list(dir_ / "nope.txt"), std::runtime_error);
}

TEST_F(IoTest, ThrowsOnMalformedLine) {
  const auto path = dir_ / "bad.txt";
  std::ofstream(path) << "0 1\nhello world\n";
  EXPECT_THROW((void)read_edge_list(path), std::invalid_argument);
}

TEST_F(IoTest, ThrowsOnTruncatedPair) {
  const auto path = dir_ / "bad2.txt";
  std::ofstream(path) << "0\n";
  EXPECT_THROW((void)read_edge_list(path), std::invalid_argument);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph g = rmat(256, 2000, 0.57, 0.19, 0.19, 11);
  const auto path = dir_ / "g.bin";
  write_graph_binary(path, g);
  const Graph h = read_graph_binary(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(std::vector<node_t>(a.begin(), a.end()), std::vector<node_t>(b.begin(), b.end()));
  }
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  const auto path = dir_ / "junk.bin";
  std::ofstream(path, std::ios::binary) << "this is not a graph";
  EXPECT_THROW((void)read_graph_binary(path), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedEdgeSection) {
  const Graph g = erdos_renyi(64, 256, 7);
  const auto path = dir_ / "trunc.bin";
  write_graph_binary(path, g);
  // Chop mid-edge: the header's edge count no longer fits the file.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  try {
    (void)read_graph_binary(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of bounds"), std::string::npos) << e.what();
  }
}

TEST_F(IoTest, BinaryRejectsShortHeader) {
  const auto path = dir_ / "short.bin";
  std::ofstream(path, std::ios::binary) << "c3graph1\x02";  // magic + 1 byte
  try {
    (void)read_graph_binary(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"), std::string::npos) << e.what();
  }
}

TEST_F(IoTest, BinaryRejectsEdgeEndpointBeyondVertexCount) {
  // Hand-craft: magic, n=2, m=1, edge {5, 1} — 5 is outside [0, n).
  const auto path = dir_ / "badvertex.bin";
  std::ofstream out(path, std::ios::binary);
  out.write("c3graph1", 8);
  const std::uint64_t n = 2, m = 1;
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  const std::uint32_t u = 5, v = 1;
  out.write(reinterpret_cast<const char*>(&u), sizeof u);
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  out.close();
  try {
    (void)read_graph_binary(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("outside the header's vertex count"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, SymmetrizesDirectedInput) {
  // The same edge in both orientations must collapse to one.
  const auto path = dir_ / "dir.txt";
  std::ofstream(path) << "0 1\n1 0\n1 2\n";
  const Graph g = read_graph(path);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, MetisRoundTrip) {
  const Graph g = erdos_renyi(80, 250, 21);
  const auto path = dir_ / "g.metis";
  write_graph_metis(path, g);
  const Graph h = read_graph_metis(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(std::vector<node_t>(a.begin(), a.end()), std::vector<node_t>(b.begin(), b.end()));
  }
}

TEST_F(IoTest, MetisParsesHandWrittenFile) {
  // Triangle plus a pendant: 4 vertices, 4 edges, 1-based neighbor lists.
  const auto path = dir_ / "hand.metis";
  std::ofstream(path) << "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n";
  const Graph g = read_graph_metis(path);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST_F(IoTest, MetisSkipsEdgeWeights) {
  // fmt=001: each neighbor followed by a weight.
  const auto path = dir_ / "weighted.metis";
  std::ofstream(path) << "3 2 001\n2 10 3 20\n1 10\n1 20\n";
  const Graph g = read_graph_metis(path);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST_F(IoTest, MetisRejectsTruncatedAndBadNeighbors) {
  const auto p1 = dir_ / "trunc.metis";
  std::ofstream(p1) << "3 1\n2\n";  // only one of three vertex lines
  EXPECT_THROW((void)read_graph_metis(p1), std::runtime_error);
  const auto p2 = dir_ / "badnbr.metis";
  std::ofstream(p2) << "2 1\n5\n\n";
  EXPECT_THROW((void)read_graph_metis(p2), std::invalid_argument);
}

TEST_F(IoTest, MatrixMarketParsesPatternAndValues) {
  const auto path = dir_ / "g.mtx";
  std::ofstream(path) << "%%MatrixMarket matrix coordinate real symmetric\n"
                      << "% SuiteSparse-style comment\n"
                      << "4 4 5\n"
                      << "2 1 0.5\n3 1 -1\n3 2 2.0\n4 4 9\n4 3 1\n";
  const Graph g = read_graph_matrix_market(path);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);  // diagonal 4-4 dropped
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST_F(IoTest, MatrixMarketRejectsBadBannerAndTruncation) {
  const auto p1 = dir_ / "nobanner.mtx";
  std::ofstream(p1) << "3 3 1\n1 2\n";
  EXPECT_THROW((void)read_graph_matrix_market(p1), std::invalid_argument);
  const auto p2 = dir_ / "short.mtx";
  std::ofstream(p2) << "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
  EXPECT_THROW((void)read_graph_matrix_market(p2), std::runtime_error);
}

TEST_F(IoTest, ReadGraphAnyDispatchesOnExtension) {
  const Graph g = erdos_renyi(40, 120, 33);
  write_edge_list(dir_ / "a.txt", g);
  write_graph_binary(dir_ / "a.bin", g);
  write_graph_metis(dir_ / "a.metis", g);
  const PreparedGraph engine(g, {});
  snapshot::write(dir_ / "a.c3snap", engine);
  for (const char* name : {"a.txt", "a.bin", "a.metis", "a.c3snap"}) {
    const Graph h = read_graph_any(dir_ / name);
    ASSERT_EQ(h.num_edges(), g.num_edges()) << name;
  }
}

}  // namespace
}  // namespace c3
