// accept_connection status discipline: transient failures must not read as
// the stop signal. Regression for the accept loop silently dying forever —
// any accept() error (an aborted handshake, an EMFILE blip) used to return
// the same invalid fd that means "the listener was shut down", so one bad
// inbound connection permanently stopped a server that still reported
// running(). The tests drive the real error paths: a shut-down listener, a
// dead fd, and genuine fd exhaustion via RLIMIT_NOFILE.
#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "clique/service.hpp"
#include "graph/gen/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace c3::net {
namespace {

/// Temporarily caps RLIMIT_NOFILE at the next unused descriptor number:
/// every NEW allocation fails with EMFILE while descriptors already open
/// keep working. (Capping at 0 would be wrong twice over: poll(nfds=1) on
/// an existing connection then fails with EINVAL — poll checks nfds against
/// the limit — and the fd a blocked accept() pre-reserved before the cap
/// still succeeds regardless.)
class NoNewFds {
 public:
  NoNewFds() {
    if (::getrlimit(RLIMIT_NOFILE, &saved_) != 0) return;
    const int next_free = ::dup(0);
    if (next_free < 0) return;
    ::close(next_free);
    rlimit capped = saved_;
    capped.rlim_cur = static_cast<rlim_t>(next_free);
    ok_ = ::setrlimit(RLIMIT_NOFILE, &capped) == 0;
  }
  ~NoNewFds() { restore(); }
  void restore() {
    if (ok_) {
      (void)::setrlimit(RLIMIT_NOFILE, &saved_);
      ok_ = false;
    }
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  rlimit saved_{};
  bool ok_ = false;
};

/// Blocking connect to 127.0.0.1:port on a pre-created socket — the fd is
/// allocated by the caller, so it works while NoNewFds is in force.
int raw_connect(int fd, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
}

TEST(Socket, ShutdownListenerReadsAsStopped) {
  int port = 0;
  const UniqueFd listener = listen_tcp("127.0.0.1", 0, &port);
  shutdown_listener(listener.get());
  EXPECT_EQ(accept_connection(listener.get()).status, AcceptStatus::Stopped);
}

TEST(Socket, DeadFdReadsAsStopped) {
  EXPECT_EQ(accept_connection(-1).status, AcceptStatus::Stopped);
}

TEST(Socket, FdExhaustionReadsAsRetryThenRecovers) {
  int port = 0;
  const UniqueFd listener = listen_tcp("127.0.0.1", 0, &port);
  const UniqueFd client(::socket(AF_INET, SOCK_STREAM, 0));  // fd before the cap
  ASSERT_TRUE(client.valid());
  ASSERT_EQ(raw_connect(client.get(), port), 0);  // completes via the backlog

  NoNewFds cap;
  if (!cap.ok()) GTEST_SKIP() << "setrlimit(RLIMIT_NOFILE) not permitted here";
  const AcceptResult starved = accept_connection(listener.get());
  cap.restore();
  EXPECT_EQ(starved.status, AcceptStatus::RetryAfterDelay);
  EXPECT_FALSE(starved.fd.valid());

  // With descriptors available again, the queued connection comes through.
  const AcceptResult ok = accept_connection(listener.get());
  EXPECT_EQ(ok.status, AcceptStatus::Accepted);
  EXPECT_TRUE(ok.fd.valid());
}

TEST(Socket, ServerAcceptLoopSurvivesFdExhaustion) {
  CliqueService service;
  service.add_graph("g", erdos_renyi(60, 300, 7));
  ServerOptions opts;
  opts.port = 0;
  CliqueServer server(service, opts);
  server.start();
  const auto port = static_cast<std::uint16_t>(server.port());

  // Both probe sockets are allocated while fds still exist; their connects
  // happen under the cap. The first connection rides the fd the blocked
  // accept() pre-reserved before the cap; the accept call re-entered after
  // it fails with EMFILE, so the second connection sits queued until the
  // cap lifts. Before the AcceptStatus split, that first EMFILE killed the
  // accept loop permanently (while running() still said true); now it backs
  // off and retries.
  UniqueFd first(::socket(AF_INET, SOCK_STREAM, 0));
  UniqueFd second(::socket(AF_INET, SOCK_STREAM, 0));
  ASSERT_TRUE(first.valid());
  ASSERT_TRUE(second.valid());
  {
    NoNewFds cap;
    if (!cap.ok()) GTEST_SKIP() << "setrlimit(RLIMIT_NOFILE) not permitted here";
    ASSERT_EQ(raw_connect(first.get(), port), 0);
    ASSERT_EQ(raw_connect(second.get(), port), 0);
    // A few retry beats (20ms each) with the cap held, so accept attempts
    // observably fail before recovery.
    ::usleep(60 * 1000);
  }

  // Once fds return, the queued connection is accepted and both clients get
  // served — the loop did not read EMFILE as stop().
  for (UniqueFd* probe : {&first, &second}) {
    LineChannel channel(std::move(*probe));
    ASSERT_TRUE(channel.write_line("ping"));
    std::string reply;
    ASSERT_EQ(channel.read_line(reply, 10.0), LineChannel::ReadStatus::Line);
    EXPECT_EQ(reply, "pong");
  }

  LineClient fresh("127.0.0.1", port);
  EXPECT_EQ(fresh.request("g count 3").rfind("count ", 0), 0u);
  EXPECT_TRUE(server.running());
  server.stop();
}

}  // namespace
}  // namespace c3::net
