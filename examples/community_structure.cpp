// Degeneracy vs community degeneracy — when does Algorithm 3 pay off?
//
// Section 1.1 of the paper: the community degeneracy sigma is strictly below
// the degeneracy s and can be *arbitrarily* smaller (hypercube: s = d,
// sigma = 0; complete-bipartite-plus-path: s = Theta(n), sigma <= 2).
// Buchanan et al. observed 27%-80% gaps on real graphs. This example
// measures the gap on several families and shows how the candidate sets of
// the sigma-parameterized Algorithm 3 shrink accordingly.
//
//   ./community_structure [--seed 1]
#include <cstdio>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

void profile(const char* name, const c3::Graph& g, int k, c3::Table& table) {
  const c3::node_t s = c3::degeneracy_order(g).degeneracy;
  const c3::node_t sigma = c3::community_degeneracy(g);

  // gamma under the two parameterizations: largest community (degeneracy
  // orientation) vs largest candidate set (community-degeneracy edge order).
  c3::CliqueOptions cd;
  cd.algorithm = c3::Algorithm::C3ListCD;

  c3::WallTimer t1;
  const auto r1 = c3::count_cliques(g, k);
  const double time_s = t1.seconds();
  c3::WallTimer t2;
  const auto r2 = c3::count_cliques(g, k, cd);
  const double time_cd = t2.seconds();

  table.add_row({name, std::to_string(g.num_nodes()), std::to_string(s), std::to_string(sigma),
                 c3::strfmt("%.0f%%", s == 0 ? 0.0 : 100.0 * (1.0 - double(sigma) / double(s))),
                 std::to_string(r1.stats.gamma), std::to_string(r2.stats.gamma),
                 c3::with_commas(r1.count), c3::strfmt("%.3f", time_s),
                 c3::strfmt("%.3f", time_cd)});
  if (r1.count != r2.count) std::printf("!! count mismatch on %s\n", name);
}

}  // namespace

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int k = 4;

  std::printf("== community_structure: sigma vs s (k = %d) ==\n\n", k);
  c3::Table table({"graph", "n", "s", "sigma", "gap", "gamma(deg)", "gamma(cd)", "#cliques",
                   "c3List[s]", "c3List-CD[s]"});

  // The paper's analytic separation examples.
  profile("hypercube d=10", c3::hypercube(10), k, table);
  profile("bipartite+line", c3::bipartite_plus_line(64), k, table);
  // Real-world-like families (Buchanan et al.'s 27-80% regime).
  profile("social-like", c3::social_like(8000, 60'000, 0.4, seed), k, table);
  profile("collaboration", c3::collaboration_like(8000, 6000, 16, seed + 1), k, table);
  profile("bio modules", c3::bio_like(3000, 20'000, 60, 24, 0.5, seed + 2), k, table);
  profile("mesh kNN", c3::mesh_like(6000, 12, seed + 3), k, table);

  table.print();
  std::printf(
      "\nReading: 'gap' is how far sigma sits below s; gamma(cd) <= sigma bounds the\n"
      "candidate sets Algorithm 3 recurses on, vs gamma(deg) <= s-1 for Algorithm 1.\n");
  return 0;
}
