#include "clique/answer_cache.hpp"

#include <functional>
#include <string_view>
#include <utility>

#include "clique/engine.hpp"

namespace c3 {
namespace {

/// FNV-1a over raw bytes — the same fold the snapshot checksums use, small
/// enough to keep local (the clique layer must not include snapshot/).
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_value(const T& value, std::uint64_t h) noexcept {
  return fnv1a(&value, sizeof value, h);
}

}  // namespace

std::uint64_t engine_fingerprint(std::string_view graph_id, const PreparedGraph& engine) {
  const CliqueOptions& o = engine.options();
  const Graph& g = engine.graph();
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  h = fnv1a(graph_id.data(), graph_id.size(), h);
  // Every field that determines the prepared artifacts — the same set the
  // snapshot loader fingerprints — plus the graph shape, so a re-registered
  // id with a different graph or preparation never aliases.
  h = fnv1a_value(static_cast<std::uint32_t>(o.algorithm), h);
  h = fnv1a_value(static_cast<std::uint32_t>(o.vertex_order), h);
  h = fnv1a_value(static_cast<std::uint32_t>(o.edge_order), h);
  h = fnv1a_value(o.eps, h);
  h = fnv1a_value(o.order_seed, h);
  h = fnv1a_value(static_cast<std::uint32_t>(o.distance_pruning ? 1 : 0), h);
  h = fnv1a_value(static_cast<std::uint32_t>(o.triangle_growth ? 1 : 0), h);
  h = fnv1a_value(static_cast<std::uint64_t>(g.num_nodes()), h);
  h = fnv1a_value(static_cast<std::uint64_t>(g.num_edges()), h);
  return h;
}

AnswerCache::AnswerCache(std::size_t capacity, std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
}

AnswerCache::Key AnswerCache::make_key(std::uint64_t fingerprint, const Query& q) {
  return Key{fingerprint, format_query(canonical_question(q))};
}

std::string AnswerCache::flatten(const Key& key) {
  // The fingerprint is folded in as a prefix; '\x1f' (unit separator) cannot
  // appear in format_query output, so flat keys never collide across parts.
  return std::to_string(key.fingerprint) + '\x1f' + key.text;
}

AnswerCache::Shard& AnswerCache::shard_for(const std::string& flat, std::uint64_t fingerprint) {
  const std::size_t h = std::hash<std::string_view>{}(flat) ^ static_cast<std::size_t>(fingerprint);
  return *shards_[h % shards_.size()];
}

std::optional<Answer> AnswerCache::find(const Key& key) {
  const std::string flat = flatten(key);
  Shard& shard = shard_for(flat, key.fingerprint);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(std::string_view(flat));
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->second;
}

std::optional<Answer> AnswerCache::lookup(const Key& key) {
  std::optional<Answer> hit = find(key);
  if (hit.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

std::optional<Answer> AnswerCache::lookup(const Key& key, const Query& query) {
  std::optional<Answer> hit = find(key);
  if (hit.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return hit;
  }
  if (query.kind == QueryKind::Count) {
    SpectrumNote note;
    {
      const std::lock_guard<std::mutex> lock(spectrum_mutex_);
      const auto it = spectrum_index_.find(key.fingerprint);
      if (it != spectrum_index_.end()) note = it->second;
    }
    const int k = query.k;
    const bool in_range = k >= 0 && static_cast<node_t>(k) <= note.omega;
    if (!note.text.empty() && (in_range || note.complete)) {
      std::optional<Answer> spectrum = find(Key{key.fingerprint, note.text});
      if (spectrum.has_value()) {
        Answer answer;
        answer.kind = QueryKind::Count;
        answer.k = k;
        answer.count = in_range && static_cast<std::size_t>(k) < spectrum->spectrum.counts.size()
                           ? spectrum->spectrum.counts[static_cast<std::size_t>(k)]
                           : 0;
        answer.stats.cliques = answer.count;
        hits_.fetch_add(1, std::memory_order_relaxed);
        cross_k_hits_.fetch_add(1, std::memory_order_relaxed);
        return answer;
      }
      // The spectrum entry was evicted out from under its note; drop the
      // note (unless a newer spectrum already replaced it) and miss.
      const std::lock_guard<std::mutex> lock(spectrum_mutex_);
      const auto it = spectrum_index_.find(key.fingerprint);
      if (it != spectrum_index_.end() && it->second.text == note.text) {
        spectrum_index_.erase(it);
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void AnswerCache::note_spectrum(const Key& key, const Answer& answer) {
  // Only the two bare canonical spellings are indexable — any extra option
  // text means the entry answers a differently-shaped question.
  int kmax = 0;
  if (key.text != "spectrum") {
    constexpr std::string_view prefix = "spectrum ";
    if (key.text.size() <= prefix.size() || key.text.compare(0, prefix.size(), prefix) != 0) {
      return;
    }
    kmax = 0;
    for (std::size_t i = prefix.size(); i < key.text.size(); ++i) {
      const char c = key.text[i];
      if (c < '0' || c > '9') return;
      kmax = kmax * 10 + (c - '0');
    }
  }
  SpectrumNote note;
  note.text = key.text;
  note.omega = answer.omega;
  // kmax == omega leaves larger cliques unprobed; only a spectrum that ran
  // past its clamp (or had none) proves every k it does not list counts 0.
  note.complete = kmax == 0 || answer.omega < static_cast<node_t>(kmax);
  const std::lock_guard<std::mutex> lock(spectrum_mutex_);
  SpectrumNote& slot = spectrum_index_[key.fingerprint];
  const bool better = slot.text.empty() || (note.complete && !slot.complete) ||
                      (note.complete == slot.complete && note.omega >= slot.omega);
  if (better) slot = std::move(note);
}

bool AnswerCache::insert(const Key& key, const Answer& answer) {
  // A truncated answer is a valid partial result for the query that ran it,
  // never the answer to the canonical question — replaying it would serve
  // incomplete data to unbudgeted queries.
  if (answer.truncated) return false;
  if (per_shard_capacity_ == 0) return false;

  std::string flat = flatten(key);
  Shard& shard = shard_for(flat, key.fingerprint);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(std::string_view(flat)); it != shard.index.end()) {
      it->second->second = answer;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      insertions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.lru.emplace_front(std::move(flat), answer);
      shard.index.emplace(std::string_view(shard.lru.front().first), shard.lru.begin());
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(std::string_view(shard.lru.back().first));
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      insertions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (answer.kind == QueryKind::Spectrum) note_spectrum(key, answer);
  return true;
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.cross_k_hits = cross_k_hits_.load(std::memory_order_relaxed);
  s.entries = size();
  return s;
}

std::size_t AnswerCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void AnswerCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->index.clear();
    shard->lru.clear();
  }
  const std::lock_guard<std::mutex> lock(spectrum_mutex_);
  spectrum_index_.clear();
}

}  // namespace c3
