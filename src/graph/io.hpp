// Graph serialization: text edge lists and a compact binary format.
//
// The text reader accepts the common SNAP / Network-Repository edge-list
// conventions used for the paper's datasets: one "u v" pair per line,
// '#' or '%' comment lines, arbitrary whitespace, and an optional
// "n m" header. Inputs are symmetrized exactly as the paper's pipeline does
// ("All graphs ... have been symmetrized", Table 2).
#pragma once

#include <filesystem>
#include <string>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

/// Reads a whitespace-separated edge list. Throws std::runtime_error on I/O
/// failure and std::invalid_argument on malformed content.
[[nodiscard]] EdgeList read_edge_list(const std::filesystem::path& path);

/// Writes one "u v" line per undirected edge.
void write_edge_list(const std::filesystem::path& path, const Graph& g);

/// Reads an edge list and builds the (symmetrized, deduplicated) graph.
[[nodiscard]] Graph read_graph(const std::filesystem::path& path);

/// Compact binary round-trip (magic + counts + CSR arrays), for caching
/// generated benchmark graphs.
void write_graph_binary(const std::filesystem::path& path, const Graph& g);
[[nodiscard]] Graph read_graph_binary(const std::filesystem::path& path);

/// METIS graph format: header "n m [fmt]", then one line per vertex listing
/// its (1-based) neighbors. Vertex/edge weights in the input are skipped.
[[nodiscard]] Graph read_graph_metis(const std::filesystem::path& path);
void write_graph_metis(const std::filesystem::path& path, const Graph& g);

/// MatrixMarket coordinate format (as used by the SuiteSparse collection the
/// paper's Gearbox/Chebyshev4 graphs come from): "%%MatrixMarket matrix
/// coordinate ..." header, a size line "rows cols nnz", then 1-based "i j
/// [value]" entries. The matrix is treated as the adjacency of an undirected
/// graph (pattern symmetrized, diagonal dropped).
[[nodiscard]] Graph read_graph_matrix_market(const std::filesystem::path& path);

/// Dispatches on the file extension: .mtx -> MatrixMarket, .metis/.graph ->
/// METIS, .bin -> binary, .c3snap -> the graph section of a prepared-engine
/// snapshot (snapshot/snapshot.hpp; deep-copied out of the mapping),
/// anything else -> edge list.
[[nodiscard]] Graph read_graph_any(const std::filesystem::path& path);

}  // namespace c3
