#include "net/server.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace c3::net {
namespace {

/// Connection-lifecycle registry series (process-global: a monitor wants the
/// machine view, and one process runs one server in practice). The open
/// gauge moves unconditionally so it stays balanced across obs::enabled()
/// flips.
struct ConnMetrics {
  obs::Counter& accepted;
  obs::Gauge& open;
  obs::Counter& idle_closes;

  static ConnMetrics& global() {
    static ConnMetrics m{obs::Registry::global().counter("c3_connections_accepted_total"),
                         obs::Registry::global().gauge("c3_connections_open"),
                         obs::Registry::global().counter("c3_connections_idle_closed_total")};
    return m;
  }
};

}  // namespace

CliqueServer::CliqueServer(const CliqueService& service, ServerOptions opts)
    : service_(&service),
      opts_(std::move(opts)),
      cache_(opts_.cache_capacity > 0
                 ? std::make_unique<AnswerCache>(opts_.cache_capacity, opts_.cache_shards)
                 : nullptr),
      frontend_(service, cache_.get(),
                FrontEndOptions{opts_.max_inflight_per_graph, opts_.max_inflight_total}) {
  frontend_.set_stats_suffix_source([this] {
    return "connections=" + std::to_string(open_.load(std::memory_order_relaxed)) +
           " accepted=" + std::to_string(accepted_.load(std::memory_order_relaxed));
  });
}

CliqueServer::~CliqueServer() { stop(); }

void CliqueServer::start() {
  if (started_) throw std::logic_error("c3::net: CliqueServer::start() called twice");
  started_ = true;
  listener_ = listen_tcp(opts_.bind_address, opts_.port, &port_);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void CliqueServer::stop() {
  // Serialized: a second stop() (or the destructor racing an explicit call)
  // waits for the first to finish the teardown, then sees stopped_ and
  // returns.
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // No new connections. shutdown — not close — wakes the blocked accept()
  // (on Linux close() alone leaves it sleeping forever), and the fd must
  // stay open until the accept thread is joined: closing here would race
  // the accept loop's read of the descriptor.
  shutdown_listener(listener_.get());
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Half-close every connection's read side. Idle readers see EOF at once;
  // a thread mid-query finishes and still writes its response (the write
  // side stays open) before its next read observes the close.
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) conn->channel.shutdown_read();
  }
  // The accept thread is gone, so conns_ is stable: join everything.
  for (const auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
  running_.store(false, std::memory_order_release);
}

void CliqueServer::reap_finished() {
  const std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void CliqueServer::accept_loop() {
  for (;;) {
    AcceptResult accepted = accept_connection(listener_.get());
    if (stopping_.load(std::memory_order_acquire)) break;
    if (accepted.status == AcceptStatus::Stopped) break;  // listener closed
    reap_finished();  // long-lived servers must not hoard dead threads
    if (accepted.status == AcceptStatus::RetryAfterDelay) {
      // Out of fds/buffers. reap_finished() above may already have freed
      // descriptors; give the rest of the process a beat before asking the
      // kernel again. stop() still wins: shutdown_listener makes the next
      // accept return Stopped.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (accepted.status == AcceptStatus::Retry) continue;  // aborted handshake
    UniqueFd fd = std::move(accepted.fd);

    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) ConnMetrics::global().accepted.add();
    ConnMetrics::global().open.add();
    auto conn = std::make_unique<Connection>(LineChannel(std::move(fd), opts_.max_line_bytes));
    Connection& ref = *conn;
    {
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    ref.thread = std::thread([this, &ref] {
      serve_connection(ref);
      // The Connection object is reaped later (next accept, or stop());
      // send the FIN now so the peer sees EOF the moment we are done.
      ref.channel.shutdown();
      open_.fetch_sub(1, std::memory_order_relaxed);
      ConnMetrics::global().open.sub();
      ref.done.store(true, std::memory_order_release);
    });
  }
}

void CliqueServer::serve_connection(Connection& conn) {
  std::string line;
  for (;;) {
    switch (conn.channel.read_line(line, opts_.idle_timeout_seconds)) {
      case LineChannel::ReadStatus::Line:
        break;
      case LineChannel::ReadStatus::Timeout:
        idle_closes_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) ConnMetrics::global().idle_closes.add();
        (void)conn.channel.write_line("error: idle timeout, closing");
        return;
      case LineChannel::ReadStatus::TooLong:
        (void)conn.channel.write_line("error: request line over " +
                                      std::to_string(opts_.max_line_bytes) +
                                      " bytes, closing");
        return;
      case LineChannel::ReadStatus::Closed:
      case LineChannel::ReadStatus::Failed:
        return;
    }
    LineFrontEnd::Reply reply = frontend_.process(line);
    if (reply.respond) {
      bool ok = true;
      {
        // The last stage of the request's lifecycle; the trace publishes
        // when `reply.trace` dies at the end of this iteration.
        obs::TraceContext::Scope write_span(reply.trace.get(), obs::Stage::SocketWrite);
        ok = conn.channel.write_line(reply.line);
      }
      if (!ok) return;
    }
    if (reply.close) return;
  }
}

ServerStats CliqueServer::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_open = open_.load(std::memory_order_relaxed);
  s.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  s.frontend = frontend_.stats();
  return s;
}

}  // namespace c3::net
