// Tests for the CSR Graph accessors.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"

namespace c3 {
namespace {

Graph triangle_with_tail() {
  // 0-1-2 triangle, 2-3 tail.
  return build_graph(EdgeList{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle_with_tail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, NeighborsSortedAscending) {
  const Graph g = triangle_with_tail();
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(std::vector<node_t>(n2.begin(), n2.end()), (std::vector<node_t>{0, 1, 3}));
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle_with_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Graph, EdgeIdsDenseAndConsistent) {
  const Graph g = triangle_with_tail();
  std::vector<bool> seen(g.num_edges(), false);
  for (node_t u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ids = g.edge_ids(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_LT(ids[i], g.num_edges());
      // Both directions agree.
      EXPECT_EQ(g.edge_id(u, nbrs[i]), ids[i]);
      EXPECT_EQ(g.edge_id(nbrs[i], u), ids[i]);
      seen[ids[i]] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Graph, EdgeIdMissingEdge) {
  const Graph g = triangle_with_tail();
  EXPECT_EQ(g.edge_id(0, 3), static_cast<edge_t>(-1));
}

TEST(Graph, EndpointsTableCanonical) {
  const Graph g = triangle_with_tail();
  const auto eps = g.endpoints();
  ASSERT_EQ(eps.size(), g.num_edges());
  for (edge_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(eps[e].u, eps[e].v);
    EXPECT_EQ(g.edge_id(eps[e].u, eps[e].v), e);
  }
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedVertices) {
  const Graph g = build_graph(EdgeList{{0, 1}}, 5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
}

}  // namespace
}  // namespace c3
