// Maximal clique enumeration: Bron-Kerbosch with pivoting, driven by a
// degeneracy-order outer loop (Eppstein, Loeffler, Strash — discussed in the
// paper's related work, Section 1.2). Runs in O(s n 3^(s/3)) time, near the
// worst-case output bound for s-degenerate graphs.
#pragma once

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

/// Counts all maximal cliques of g.
[[nodiscard]] count_t count_maximal_cliques(const Graph& g);

/// Lists all maximal cliques. The callback receives each maximal clique
/// (unspecified order); returning false stops the enumeration. Returns the
/// number reported.
count_t list_maximal_cliques(const Graph& g, const CliqueCallback& callback);

/// Size of the largest clique, computed as a byproduct of maximal clique
/// enumeration. (See max_clique.hpp for the k-clique-search route.)
[[nodiscard]] node_t max_clique_size_bk(const Graph& g);

}  // namespace c3
