#include "clique/query.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>

#include "clique/engine.hpp"

namespace c3 {
namespace {

[[noreturn]] void parse_fail(const std::string& message, std::string token) {
  throw QueryParseError("query parse error: " + message, std::move(token));
}

/// Strictly parses a non-negative integer token (digits only — a sign, hex
/// prefix, or trailing junk is a hard error, never a silent different query).
long long parse_uint(const std::string& token, const char* field) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    parse_fail(std::string(field) + ": expected a non-negative integer, got '" + token + "'",
               token);
  }
  try {
    return std::stoll(token);
  } catch (const std::exception&) {
    parse_fail(std::string(field) + ": value '" + token + "' out of range", token);
  }
}

double parse_seconds(const std::string& token, const char* field) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size() || !(v >= 0.0) || !std::isfinite(v)) {
    parse_fail(std::string(field) + ": expected non-negative seconds, got '" + token + "'", token);
  }
  return v;
}

/// Applies one `key=value` option token to `opts`; unknown keys and bad
/// values are errors naming the token.
void apply_option(const std::string& token, QueryOptions& opts) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    parse_fail("unexpected token '" + token + "' (options are key=value: workers=, limit=, "
               "budget=, witness=)",
               token);
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "workers") {
    const long long workers = parse_uint(value, "workers");
    if (workers > (1 << 20)) {
      parse_fail("workers: value '" + value + "' out of range", value);
    }
    opts.max_workers = static_cast<int>(workers);
  } else if (key == "limit") {
    opts.result_limit = static_cast<count_t>(parse_uint(value, "limit"));
  } else if (key == "budget") {
    opts.budget_seconds = parse_seconds(value, "budget");
  } else if (key == "witness") {
    if (value != "0" && value != "1") {
      parse_fail("witness: expected 0 or 1 in '" + token + "'", token);
    }
    opts.want_witness = value == "1";
  } else {
    parse_fail("unknown option '" + token + "' (expected workers=, limit=, budget=, witness=)",
               token);
  }
}

/// One definition of "what the parser sees" for a raw input line: everything
/// up to the first '#' (comments run to end of line). parse_query and
/// parse_query_file both go through here, so the two paths cannot diverge on
/// where a comment starts.
std::string_view strip_comment(std::string_view line) noexcept {
  return line.substr(0, line.find('#'));
}

/// True when `line` holds no tokens once its comment is stripped (blank or
/// comment-only — the lines parse_query_file skips).
bool blank_line(std::string_view line) noexcept {
  return strip_comment(line).find_first_not_of(" \t\r\n") == std::string_view::npos;
}

bool takes_k(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Count:
    case QueryKind::List:
    case QueryKind::HasClique:
    case QueryKind::FindClique:
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts:
      return true;
    case QueryKind::Spectrum:
    case QueryKind::MaxClique:
      return false;
  }
  return false;
}

std::optional<QueryKind> kind_from_name(const std::string& name) noexcept {
  if (name == "count") return QueryKind::Count;
  if (name == "list") return QueryKind::List;
  if (name == "hasclique") return QueryKind::HasClique;
  if (name == "findclique") return QueryKind::FindClique;
  if (name == "vertexcounts") return QueryKind::PerVertexCounts;
  if (name == "edgecounts") return QueryKind::PerEdgeCounts;
  if (name == "spectrum") return QueryKind::Spectrum;
  if (name == "maxclique") return QueryKind::MaxClique;
  return std::nullopt;
}

}  // namespace

const char* query_kind_name(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Count:
      return "count";
    case QueryKind::List:
      return "list";
    case QueryKind::HasClique:
      return "hasclique";
    case QueryKind::FindClique:
      return "findclique";
    case QueryKind::PerVertexCounts:
      return "vertexcounts";
    case QueryKind::PerEdgeCounts:
      return "edgecounts";
    case QueryKind::Spectrum:
      return "spectrum";
    case QueryKind::MaxClique:
      return "maxclique";
  }
  return "?";
}

Query parse_query(std::string_view line) {
  std::istringstream in{std::string(strip_comment(line))};
  std::string head;
  if (!(in >> head)) parse_fail("empty query line", "");

  const std::optional<QueryKind> kind = kind_from_name(head);
  if (!kind.has_value()) {
    parse_fail("unknown query kind '" + head + "' (expected count, list, hasclique, findclique, "
               "vertexcounts, edgecounts, spectrum, or maxclique)",
               head);
  }
  Query q;
  q.kind = *kind;

  std::string token;
  if (takes_k(q.kind)) {
    if (!(in >> token)) {
      parse_fail(head + ": missing clique size K", "");
    }
    const long long k = parse_uint(token, head.c_str());
    if (k < 1 || k > (1 << 30)) {
      parse_fail(head + ": clique size must be >= 1, got '" + token + "'", token);
    }
    q.k = static_cast<int>(k);
  } else if (q.kind == QueryKind::Spectrum) {
    // Optional KMAX: a bare integer token right after the keyword.
    if (in >> token) {
      if (token.find('=') != std::string::npos) {
        apply_option(token, q.opts);
      } else {
        const long long kmax = parse_uint(token, "spectrum");
        if (kmax > (1 << 30)) {
          parse_fail("spectrum: KMAX '" + token + "' out of range", token);
        }
        q.kmax = static_cast<int>(kmax);
      }
    }
  }
  while (in >> token) apply_option(token, q.opts);
  return q;
}

std::vector<Query> parse_query_file(std::istream& in) {
  std::vector<Query> queries;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (blank_line(line)) continue;
    try {
      queries.push_back(parse_query(line));
    } catch (const QueryParseError& e) {
      throw QueryParseError("line " + std::to_string(line_number) + ": " + e.what(), e.token());
    }
  }
  return queries;
}

std::string format_query(const Query& q) {
  std::string out = query_kind_name(q.kind);
  if (takes_k(q.kind)) {
    out += ' ' + std::to_string(q.k);
  } else if (q.kind == QueryKind::Spectrum && q.kmax != 0) {
    out += ' ' + std::to_string(q.kmax);
  }
  const QueryOptions defaults;
  if (q.opts.max_workers != defaults.max_workers) {
    out += " workers=" + std::to_string(q.opts.max_workers);
  }
  if (q.opts.result_limit != defaults.result_limit) {
    out += " limit=" + std::to_string(q.opts.result_limit);
  }
  if (q.opts.budget_seconds != defaults.budget_seconds) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", q.opts.budget_seconds);
    out += " budget=";
    out += buf;
  }
  if (q.opts.want_witness != defaults.want_witness) {
    out += " witness=";
    out += q.opts.want_witness ? '1' : '0';
  }
  return out;
}

std::string format_answer(const Answer& a) {
  std::string out = query_kind_name(a.kind);
  if (takes_k(a.kind)) out += ' ' + std::to_string(a.k);
  out += ':';
  switch (a.kind) {
    case QueryKind::Count:
      out += ' ' + std::to_string(a.count) + " cliques";
      break;
    case QueryKind::List:
      out += ' ' + std::to_string(a.cliques.size()) + " cliques";
      break;
    case QueryKind::HasClique:
      out += a.found ? " yes" : " no";
      break;
    case QueryKind::FindClique:
      if (!a.found) {
        out += " none";
      } else if (a.witness.empty()) {
        out += " yes";
      } else {
        for (const node_t v : a.witness) out += ' ' + std::to_string(v);
      }
      break;
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts: {
      count_t nonzero = 0;
      for (const count_t c : a.per_counts) nonzero += c > 0 ? 1 : 0;
      out += ' ' + std::to_string(a.per_counts.size()) + " entries, " + std::to_string(nonzero) +
             " nonzero";
      break;
    }
    case QueryKind::Spectrum: {
      out += " omega " + std::to_string(a.spectrum.omega) + ", counts";
      for (const count_t c : a.spectrum.counts) out += ' ' + std::to_string(c);
      break;
    }
    case QueryKind::MaxClique:
      out += " omega " + std::to_string(a.omega);
      if (!a.witness.empty()) {
        out += ", witness";
        for (const node_t v : a.witness) out += ' ' + std::to_string(v);
      }
      break;
  }
  if (a.truncated) out += " [truncated]";
  return out;
}

bool query_needs_artifacts(const Query& q) noexcept {
  switch (q.kind) {
    case QueryKind::Count:
    case QueryKind::List:
    case QueryKind::HasClique:
    case QueryKind::FindClique:
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts:
      return q.k > 2;
    case QueryKind::Spectrum:
      return q.kmax <= 0 || q.kmax > 2;
    case QueryKind::MaxClique:
      return true;
  }
  return true;
}

namespace {

constexpr double kCostCap = 1e18;

/// Elementary-steps estimate for one exhaustive k-count: every edge spawns a
/// search whose branching is ~half the candidate-set bound per two levels.
/// O(1): the level loop is capped (beyond any real clique number the
/// estimate is flat — parse_query accepts k up to 2^30, and branch == 1
/// would otherwise never reach the cost cap).
double count_cost(double n, double m, double branch, int k) noexcept {
  if (k <= 0) return 1.0;
  if (k == 1) return std::max(1.0, n);
  double c = std::max(1.0, m);
  if (branch <= 1.0) return c;
  const int levels = std::min(k, 64);
  for (int level = 3; level <= levels; ++level) {
    c *= branch;
    if (c >= kCostCap) return kCostCap;
  }
  return c;
}

}  // namespace

double estimate_query_cost(const PreparedGraph& engine, const Query& q) noexcept {
  const Graph& g = engine.graph();
  const double n = static_cast<double>(g.num_nodes());
  const double m = static_cast<double>(g.num_edges());

  // Candidate-set bound from whatever is already built (never forces a
  // build); the engine caches the underlying scan per artifact state, so
  // this is a couple of atomic loads per estimate.
  const double bound = engine.cost_bound();
  const double branch = std::max(1.0, bound / 2.0);
  // Clique-number proxy for the open-ended kinds, clamped so cost loops stay
  // short.
  const int ub = static_cast<int>(std::clamp(bound + 2.0, 3.0, 64.0));

  switch (q.kind) {
    case QueryKind::Count:
      return count_cost(n, m, branch, q.k);
    case QueryKind::List: {
      double c = 2.0 * count_cost(n, m, branch, q.k);  // enumerate + materialize
      if (q.opts.result_limit > 0) {
        // Early-stopped listings touch at most ~limit emission paths.
        c = std::min(c, m + static_cast<double>(q.opts.result_limit) * branch *
                              static_cast<double>(std::max(1, q.k)));
      }
      return std::min(c, kCostCap);
    }
    case QueryKind::HasClique:
    case QueryKind::FindClique:
      // Decision probes stop at the first witness; most graphs that contain
      // a k-clique yield one long before the full enumeration finishes.
      return std::max(m, count_cost(n, m, branch, q.k) / 8.0);
    case QueryKind::PerVertexCounts:
      return std::min(kCostCap, count_cost(n, m, branch, q.k) * std::max(1, q.k));
    case QueryKind::PerEdgeCounts:
      return std::min(kCostCap,
                      count_cost(n, m, branch, q.k) * std::max(1, q.k) * std::max(1, q.k));
    case QueryKind::Spectrum: {
      const int limit = q.kmax > 0 ? std::min(q.kmax, ub) : ub;
      double total = n + m;
      for (int k = 3; k <= limit; ++k) {
        total += count_cost(n, m, branch, k);
        if (total >= kCostCap) return kCostCap;
      }
      return total;
    }
    case QueryKind::MaxClique: {
      // ~log2(ub) decision probes, the expensive ones near the clique number.
      const double probes = std::ceil(std::log2(std::max(2, ub))) + 1.0;
      return std::min(kCostCap, probes * std::max(m, count_cost(n, m, branch, ub) / 8.0));
    }
  }
  return kCostCap;
}

bool operator==(const QueryOptions& a, const QueryOptions& b) noexcept {
  // The cancel token is execution state, not part of the question — and it
  // has no text form, so comparing it would break the format/parse
  // round-trip for any query carrying one.
  return a.max_workers == b.max_workers && a.budget_seconds == b.budget_seconds &&
         a.result_limit == b.result_limit && a.want_witness == b.want_witness;
}

bool operator==(const Query& a, const Query& b) noexcept {
  return a.kind == b.kind && a.k == b.k && a.kmax == b.kmax && a.opts == b.opts;
}

Query canonical_question(const Query& q) {
  Query canon = q;
  canon.opts.max_workers = 0;
  canon.opts.budget_seconds = 0.0;
  canon.opts.cancel.reset();
  return canon;
}

bool same_question(const Query& a, const Query& b) noexcept {
  return a.kind == b.kind && a.k == b.k && a.kmax == b.kmax &&
         a.opts.result_limit == b.opts.result_limit &&
         a.opts.want_witness == b.opts.want_witness;
}

}  // namespace c3
