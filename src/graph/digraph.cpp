#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"

namespace c3 {

node_t Digraph::max_out_degree() const noexcept {
  const node_t n = num_nodes();
  if (n == 0) return 0;
  return parallel_max(0, n, node_t{0},
                      [&](std::size_t u) { return out_degree(static_cast<node_t>(u)); });
}

bool Digraph::has_arc(node_t u, node_t v) const noexcept {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

edge_t Digraph::arc_id(node_t u, node_t v) const noexcept {
  const auto nbrs = out_neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return static_cast<edge_t>(-1);
  return out_offsets_[u] + static_cast<edge_t>(it - nbrs.begin());
}

Digraph Digraph::from_parts(ArrayStore<edge_t> out_offsets, ArrayStore<node_t> out_adj,
                            ArrayStore<edge_t> in_offsets, ArrayStore<node_t> in_adj,
                            ArrayStore<node_t> arc_src, ArrayStore<node_t> rank_to_orig) {
  Digraph dag;
  dag.out_offsets_ = std::move(out_offsets);
  dag.out_adj_ = std::move(out_adj);
  dag.in_offsets_ = std::move(in_offsets);
  dag.in_adj_ = std::move(in_adj);
  dag.arc_src_ = std::move(arc_src);
  dag.rank_to_orig_ = std::move(rank_to_orig);
  return dag;
}

Digraph Digraph::orient(const Graph& g, std::span<const node_t> order) {
  const node_t n = g.num_nodes();
  if (order.size() != n) throw std::invalid_argument("orient: order size != vertex count");

  // rank[v] = position of original vertex v in the total order.
  std::vector<node_t> rank(n, kInvalidNode);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= n || rank[order[i]] != kInvalidNode)
      throw std::invalid_argument("orient: order is not a permutation");
    rank[order[i]] = static_cast<node_t>(i);
  }

  Digraph dag;
  dag.rank_to_orig_.assign(order.begin(), order.end());

  // Out-degree in rank space: for original vertex v at rank r, count
  // neighbors with higher rank.
  std::vector<edge_t> out_deg(n, 0), in_deg(n, 0);
  parallel_for(0, n, [&](std::size_t v) {
    edge_t od = 0;
    for (const node_t w : g.neighbors(static_cast<node_t>(v))) od += rank[w] > rank[v] ? 1 : 0;
    out_deg[rank[v]] = od;
    in_deg[rank[v]] = g.degree(static_cast<node_t>(v)) - od;
  });

  dag.out_offsets_.resize(n + 1);
  dag.out_offsets_[n] = exclusive_scan<edge_t>(out_deg, std::span<edge_t>(dag.out_offsets_.data(), n));
  dag.in_offsets_.resize(n + 1);
  dag.in_offsets_[n] = exclusive_scan<edge_t>(in_deg, std::span<edge_t>(dag.in_offsets_.data(), n));

  dag.out_adj_.resize(dag.out_offsets_[n]);
  dag.in_adj_.resize(dag.in_offsets_[n]);
  assert(dag.out_adj_.size() == g.num_edges());
  assert(dag.in_adj_.size() == g.num_edges());

  // Fill adjacency in rank space and sort each slice ascending.
  parallel_for(
      0, n,
      [&](std::size_t r) {
        const node_t v = dag.rank_to_orig_[r];
        edge_t opos = dag.out_offsets_[r];
        edge_t ipos = dag.in_offsets_[r];
        for (const node_t w : g.neighbors(v)) {
          if (rank[w] > r) {
            dag.out_adj_[opos++] = rank[w];
          } else {
            dag.in_adj_[ipos++] = rank[w];
          }
        }
        std::sort(dag.out_adj_.begin() + static_cast<std::ptrdiff_t>(dag.out_offsets_[r]),
                  dag.out_adj_.begin() + static_cast<std::ptrdiff_t>(opos));
        std::sort(dag.in_adj_.begin() + static_cast<std::ptrdiff_t>(dag.in_offsets_[r]),
                  dag.in_adj_.begin() + static_cast<std::ptrdiff_t>(ipos));
      },
      64);

  // Arc source table for O(1) source lookup.
  dag.arc_src_.resize(dag.out_adj_.size());
  parallel_for(0, n, [&](std::size_t r) {
    for (edge_t e = dag.out_offsets_[r]; e < dag.out_offsets_[r + 1]; ++e)
      dag.arc_src_[e] = static_cast<node_t>(r);
  });

  return dag;
}

}  // namespace c3
