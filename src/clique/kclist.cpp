#include "clique/kclist.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/digraph.hpp"
#include "clique/order_util.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

struct Worker {
  std::vector<int> label;                   // global, lazily grown to n
  std::vector<std::vector<node_t>> levels;  // candidate set per level
  std::vector<node_t> clique_stack;
  LocalCounters ctr;
  count_t count = 0;
  bool stopped = false;
};

struct Env {
  const Digraph* dag;
  const CliqueCallback* callback;
  std::atomic<bool>* stop;
};

count_t kclist_rec(const Env& env, Worker& w, int l) {
  ++w.ctr.recursive_calls;
  const std::vector<node_t>& S = w.levels[static_cast<std::size_t>(l)];
  const Digraph& dag = *env.dag;

  if (l == 2) {
    // Count the edges that stayed at level 2: each closes a clique.
    count_t found = 0;
    for (const node_t v : S) {
      for (const node_t x : dag.out_neighbors(v)) {
        ++w.ctr.pairs_probed;
        if (w.label[x] != 2) continue;
        ++found;
        if (env.callback != nullptr) {
          w.clique_stack.push_back(dag.original_id(v));
          w.clique_stack.push_back(dag.original_id(x));
          if (!(*env.callback)(std::span<const node_t>(w.clique_stack))) w.stopped = true;
          w.clique_stack.pop_back();
          w.clique_stack.pop_back();
          if (w.stopped) return found;
        }
      }
    }
    w.ctr.leaf_work += found;
    return found;
  }

  count_t total = 0;
  std::vector<node_t>& next = w.levels[static_cast<std::size_t>(l - 1)];
  for (const node_t v : S) {
    if (w.stopped) break;
    // Descend into N+(v) ∩ S: exactly the out-neighbors still labeled l.
    next.clear();
    for (const node_t x : dag.out_neighbors(v)) {
      ++w.ctr.pairs_probed;
      if (w.label[x] == l) {
        w.label[x] = l - 1;
        next.push_back(x);
        ++w.ctr.edges_matched;
      }
    }
    if (static_cast<int>(next.size()) >= l - 1) {
      if (env.callback != nullptr) w.clique_stack.push_back(dag.original_id(v));
      total += kclist_rec(env, w, l - 1);
      if (env.callback != nullptr) w.clique_stack.pop_back();
    }
    // Backtrack: restore the labels consumed above.
    for (const node_t x : next) w.label[x] = l;
  }
  return total;
}

CliqueResult run(const Graph& g, int k, const CliqueCallback* callback,
                 const CliqueOptions& opts) {
  CliqueResult result;
  if (k <= 2) {
    return callback != nullptr ? c3list_list(g, k, *callback, opts) : c3list_count(g, k, opts);
  }
  if (k > 255) throw std::invalid_argument("kclist: k too large");

  WallTimer prep_timer;
  const std::vector<node_t> order =
      make_vertex_order(g, opts.vertex_order, opts.eps, VertexOrderKind::ExactDegeneracy, opts.order_seed);
  const Digraph dag = Digraph::orient(g, order);
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = dag.max_out_degree();
  result.stats.preprocess_seconds = prep_timer.seconds();

  WallTimer search_timer;
  const node_t n = dag.num_nodes();
  result.stats.top_level_tasks = n;
  PerWorker<Worker> workers;
  std::atomic<bool> stop{false};
  Env env{&dag, callback, &stop};

  parallel_for_dynamic(
      0, n,
      [&](std::size_t u) {
        if (stop.load(std::memory_order_relaxed)) return;
        Worker& w = workers.local();
        if (w.label.empty()) {
          w.label.assign(n, 0);
          w.levels.resize(static_cast<std::size_t>(k));
        }
        const auto out = dag.out_neighbors(static_cast<node_t>(u));
        if (static_cast<int>(out.size()) < k - 1) return;

        std::vector<node_t>& top = w.levels[static_cast<std::size_t>(k - 1)];
        top.assign(out.begin(), out.end());
        for (const node_t x : top) w.label[x] = k - 1;
        if (callback != nullptr) {
          w.clique_stack.clear();
          w.clique_stack.push_back(dag.original_id(static_cast<node_t>(u)));
        }
        w.count += kclist_rec(env, w, k - 1);
        for (const node_t x : top) w.label[x] = 0;
        if (w.stopped) stop.store(true, std::memory_order_relaxed);
      },
      1);

  for (std::size_t i = 0; i < workers.size(); ++i) {
    result.count += workers.slot(i).count;
    workers.slot(i).ctr.merge_into(result.stats);
  }
  result.stats.cliques = result.count;
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

}  // namespace

CliqueResult kclist_count(const Graph& g, int k, const CliqueOptions& opts) {
  return run(g, k, nullptr, opts);
}

CliqueResult kclist_list(const Graph& g, int k, const CliqueCallback& callback,
                         const CliqueOptions& opts) {
  return run(g, k, &callback, opts);
}

}  // namespace c3
