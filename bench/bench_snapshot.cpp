// Snapshot bench — the perf baseline for the PR 4 snapshot subsystem.
//
// For each smoke graph (the shared CI stand-ins plus one larger social
// graph, the "largest smoke graph" the acceptance gate looks at) it
// measures the offline-prepare / online-serve split both ways:
//
//   cold      — construct a PreparedGraph and force full preparation
//               (prepare() + the upper-bound artifact), what every serving
//               process pays at startup without snapshots;
//   snapshot  — snapshot::write once, then Snapshot::open (mmap + checksum
//               verification), what a serving process pays instead.
//
// Reported per graph: best-of-reps prepare vs open seconds (and their
// ratio — the acceptance criterion is >= 10x on the largest graph),
// first-query latency on both engines, snapshot file size, and the
// resident-set growth of cold preparation vs snapshot serving.
// Counts for k = 3..6 are cross-checked between both engines (non-zero exit
// on any mismatch, or if a snapshot query reports preprocessing).
//
//   ./bench_snapshot [--out BENCH_pr4.json] [--reps 3] [--scale 1.0]
//
// Schema: {"bench", "workers", "graphs": [{"name", n, m, "prepare_seconds",
// "open_seconds", "speedup_open_vs_prepare", "cold_first_query_seconds",
// "snapshot_first_query_seconds", "write_seconds", "snapshot_bytes",
// "rss_cold_kb", "rss_snapshot_kb"}], "largest": {"name", "speedup"}}
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

/// Resident set size in KiB (0 where /proc is unavailable).
long rss_kb() {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::atol(line.c_str() + 6);
  }
#endif
  return 0;
}

struct Row {
  std::string name;
  node_t n = 0;
  edge_t m = 0;
  double prepare_seconds = 0.0;
  double open_seconds = 0.0;
  double cold_first_query = 0.0;
  double snap_first_query = 0.0;
  double write_seconds = 0.0;
  std::uint64_t snapshot_bytes = 0;
  long rss_cold_kb = 0;
  long rss_snap_kb = 0;

  [[nodiscard]] double speedup() const {
    return open_seconds > 0.0 ? prepare_seconds / open_seconds : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double scale = cli.get_double("scale", 1.0);
  const std::string out_path = cli.get_string("out", "BENCH_pr4.json");
  const std::filesystem::path snap_path =
      std::filesystem::temp_directory_path() / "c3_bench_snapshot.c3snap";

  // The shared CI smoke graphs plus one larger social graph: big enough that
  // preparation clearly dominates an mmap + checksum scan, small enough for
  // the CI release gate.
  std::vector<bench::SmokeGraph> graphs = bench::smoke_graphs();
  graphs.push_back({"social_like_xl",
                    social_like(static_cast<node_t>(20'000 * scale),
                                static_cast<edge_t>(160'000 * scale), 0.4, 7)});

  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;

  bool failed = false;
  std::vector<Row> rows;
  for (const bench::SmokeGraph& sg : graphs) {
    Row row;
    row.name = sg.name;
    row.n = sg.graph.num_nodes();
    row.m = sg.graph.num_edges();

    // Cold startup: full preparation, then the first query.
    const long rss_before_cold = rss_kb();
    std::optional<PreparedGraph> cold;
    for (int rep = 0; rep < reps; ++rep) {
      cold.emplace(sg.graph, opts);
      WallTimer timer;
      cold->prepare();
      (void)cold->clique_number_upper_bound();
      const double s = timer.seconds();
      row.prepare_seconds = rep == 0 ? s : std::min(row.prepare_seconds, s);
    }
    row.rss_cold_kb = rss_kb() - rss_before_cold;
    {
      WallTimer timer;
      (void)cold->count(4);
      row.cold_first_query = timer.seconds();
    }

    {
      WallTimer timer;
      snapshot::write(snap_path, *cold);
      row.write_seconds = timer.seconds();
    }
    row.snapshot_bytes = std::filesystem::file_size(snap_path);

    // Snapshot startup: mmap + validation, then the first query (which
    // faults the touched pages in — the honest first-hit cost).
    const long rss_before_snap = rss_kb();
    std::optional<snapshot::Snapshot> snap;
    for (int rep = 0; rep < reps; ++rep) {
      snap.reset();
      WallTimer timer;
      snap.emplace(snapshot::Snapshot::open(snap_path));
      const double s = timer.seconds();
      row.open_seconds = rep == 0 ? s : std::min(row.open_seconds, s);
    }
    {
      WallTimer timer;
      const CliqueResult r = snap->engine().count(4);
      row.snap_first_query = timer.seconds();
      if (r.stats.preprocess_seconds != 0.0) {
        std::printf("!! %s: snapshot query reported %.6f s of preprocessing\n", sg.name.c_str(),
                    r.stats.preprocess_seconds);
        failed = true;
      }
    }
    row.rss_snap_kb = rss_kb() - rss_before_snap;

    // Correctness gate: both engines must agree on every count.
    for (int k = 3; k <= 6; ++k) {
      const count_t a = cold->count(k).count;
      const count_t b = snap->engine().count(k).count;
      if (a != b) {
        std::printf("!! %s k=%d: cold %llu vs snapshot %llu\n", sg.name.c_str(), k,
                    static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
        failed = true;
      }
    }
    rows.push_back(row);
  }
  std::filesystem::remove(snap_path);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_snapshot: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"snapshot\", \"workers\": %d, \"graphs\": [", num_workers());
  Table table({"graph", "prepare[s]", "open[s]", "speedup", "q1 cold[s]", "q1 snap[s]", "MB"});
  const Row* largest = &rows.front();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (r.m > largest->m) largest = &r;
    table.add_row({r.name, strfmt("%.4f", r.prepare_seconds), strfmt("%.4f", r.open_seconds),
                   strfmt("%.1fx", r.speedup()), strfmt("%.4f", r.cold_first_query),
                   strfmt("%.4f", r.snap_first_query),
                   strfmt("%.1f", static_cast<double>(r.snapshot_bytes) / (1024.0 * 1024.0))});
    std::fprintf(
        json,
        "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu, \"prepare_seconds\": %.6f, "
        "\"open_seconds\": %.6f, \"speedup_open_vs_prepare\": %.2f, "
        "\"cold_first_query_seconds\": %.6f, \"snapshot_first_query_seconds\": %.6f, "
        "\"write_seconds\": %.6f, \"snapshot_bytes\": %llu, \"rss_cold_kb\": %ld, "
        "\"rss_snapshot_kb\": %ld}",
        i > 0 ? ", " : "", r.name.c_str(), r.n, static_cast<unsigned long long>(r.m),
        r.prepare_seconds, r.open_seconds, r.speedup(), r.cold_first_query, r.snap_first_query,
        r.write_seconds, static_cast<unsigned long long>(r.snapshot_bytes), r.rss_cold_kb,
        r.rss_snap_kb);
  }
  std::fprintf(json, "], \"largest\": {\"name\": \"%s\", \"speedup\": %.2f}}\n",
               largest->name.c_str(), largest->speedup());
  std::fclose(json);

  table.print();
  std::printf("wrote %s; largest graph %s: snapshot open %.1fx faster than cold prepare\n",
              out_path.c_str(), largest->name.c_str(), largest->speedup());

  if (failed) {
    std::fprintf(stderr, "bench_snapshot: cold/snapshot disagreement\n");
    return 1;
  }
  return 0;
}
