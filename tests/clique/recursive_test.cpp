// Direct tests of the Algorithm 2 engine on hand-built local subgraphs.
#include "clique/recursive.hpp"

#include <gtest/gtest.h>

#include <random>

#include "clique/combinatorics.hpp"
#include "util/bitkernels.hpp"

namespace c3 {
namespace {

struct EngineFixture {
  LocalGraph lg;
  SearchContext ctx;
  LocalCounters ctr;

  explicit EngineFixture(int n) {
    lg.reset(n);
    ctx.lg = &lg;
    ctx.ctr = &ctr;
    ctx.prune = true;
  }

  count_t count_all(int c) { return search_cliques_all(ctx, c); }
  count_t count_vertex_all(int c) { return search_cliques_vertex_all(ctx, c); }
};

/// Restores the active kernel backend on scope exit.
struct BackendGuard {
  bits::KernelBackend saved = bits::active_kernel_backend();
  ~BackendGuard() { bits::set_kernel_backend(saved); }
};

TEST(RecursiveEngine, BaseCaseCountsCandidates) {
  EngineFixture f(5);  // no edges
  EXPECT_EQ(f.count_all(1), 5u);
}

TEST(RecursiveEngine, BaseCaseCountsEdges) {
  EngineFixture f(4);
  f.lg.add_edge(0, 1);
  f.lg.add_edge(2, 3);
  f.lg.add_edge(0, 3);
  EXPECT_EQ(f.count_all(2), 3u);
}

TEST(RecursiveEngine, CompleteLocalGraphClosedForms) {
  const int n = 10;
  for (int c = 1; c <= n; ++c) {
    EngineFixture f(n);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) f.lg.add_edge(a, b);
    }
    EXPECT_EQ(f.count_all(c), binomial(n, c)) << "c=" << c;
  }
}

TEST(RecursiveEngine, PathHasNoTriangles) {
  EngineFixture f(6);
  for (int a = 0; a + 1 < 6; ++a) f.lg.add_edge(a, a + 1);
  EXPECT_EQ(f.count_all(3), 0u);
  EXPECT_EQ(f.count_all(2), 5u);
}

TEST(RecursiveEngine, CrossesWordBoundary) {
  // A complete local graph on 70 vertices exercises the 2-word bitset path.
  const int n = 70;
  EngineFixture f(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) f.lg.add_edge(a, b);
  }
  EXPECT_EQ(f.count_all(3), binomial(70, 3));
  EXPECT_EQ(f.count_all(4), binomial(70, 4));
}

TEST(RecursiveEngine, IntervalRestrictionPreventsDoubleCounting) {
  // Two triangles sharing an edge: {0,1,2} and {0,2,3} (edges 01 02 12 23 03).
  // A 3-clique search must count each exactly once even though vertex 0 and
  // 2 are common neighbors of several pairs.
  EngineFixture f(4);
  f.lg.add_edge(0, 1);
  f.lg.add_edge(0, 2);
  f.lg.add_edge(1, 2);
  f.lg.add_edge(2, 3);
  f.lg.add_edge(0, 3);
  EXPECT_EQ(f.count_all(3), 2u);
}

TEST(RecursiveEngine, CountersTrackProbes) {
  EngineFixture f(8);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) f.lg.add_edge(a, b);
  }
  (void)f.count_all(4);
  EXPECT_GT(f.ctr.pairs_probed, 0u);
  EXPECT_GT(f.ctr.edges_matched, 0u);
  EXPECT_GE(f.ctr.pairs_probed, f.ctr.edges_matched);
  EXPECT_GT(f.ctr.recursive_calls, 0u);
}

TEST(RecursiveEngine, PruneFlagOnlyChangesWork) {
  for (const bool prune : {true, false}) {
    EngineFixture f(12);
    for (int a = 0; a < 12; ++a) {
      for (int b = a + 1; b < 12; ++b) f.lg.add_edge(a, b);
    }
    f.ctx.prune = prune;
    EXPECT_EQ(f.count_all(6), binomial(12, 6)) << "prune=" << prune;
  }
}

TEST(RecursiveEngine, VertexGrowthMatchesEdgeGrowth) {
  // The vertex-at-a-time recursion (ArbCount / kcList dense path) must agree
  // with the edge-growth recursion on random local graphs, across word
  // boundaries and clique sizes.
  std::mt19937 rng(7);
  for (const int n : {6, 40, 70, 130}) {
    EngineFixture f(n);
    std::bernoulli_distribution edge(0.35);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (edge(rng)) f.lg.add_edge(a, b);
      }
    }
    for (int c = 1; c <= 5; ++c) {
      EXPECT_EQ(f.count_vertex_all(c), f.count_all(c)) << "n=" << n << " c=" << c;
    }
  }
}

TEST(RecursiveEngine, VertexGrowthCompleteGraphClosedForms) {
  const int n = 70;  // crosses the word boundary
  EngineFixture f(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) f.lg.add_edge(a, b);
  }
  for (int c = 1; c <= 6; ++c) {
    EXPECT_EQ(f.count_vertex_all(c), binomial(n, c)) << "c=" << c;
  }
}

TEST(RecursiveEngine, VertexGrowthListsCliques) {
  EngineFixture f(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) f.lg.add_edge(a, b);
  }
  const node_t to_orig[] = {100, 101, 102, 103};
  std::vector<std::vector<node_t>> reported;
  const CliqueCallback cb = [&](std::span<const node_t> clique) {
    reported.emplace_back(clique.begin(), clique.end());
    return true;
  };
  f.ctx.callback = &cb;
  f.ctx.member_to_orig = to_orig;
  EXPECT_EQ(f.count_vertex_all(3), 4u);
  ASSERT_EQ(reported.size(), 4u);
  for (const auto& c : reported) ASSERT_EQ(c.size(), 3u);
}

TEST(RecursiveEngine, ScalarBackendMatchesHostDefault) {
  // Same graph, same counts, with the dispatch pinned to scalar vs whatever
  // the host selected — the substrate must be invisible to results.
  std::mt19937 rng(11);
  EngineFixture f(150);  // wide enough for padded (8-word) rows
  std::bernoulli_distribution edge(0.3);
  for (int a = 0; a < 150; ++a) {
    for (int b = a + 1; b < 150; ++b) {
      if (edge(rng)) f.lg.add_edge(a, b);
    }
  }
  const BackendGuard guard;
  std::vector<count_t> host, scalar;
  for (int c = 2; c <= 5; ++c) {
    host.push_back(f.count_all(c));
    host.push_back(f.count_vertex_all(c));
  }
  ASSERT_TRUE(bits::set_kernel_backend(bits::KernelBackend::Scalar));
  for (int c = 2; c <= 5; ++c) {
    scalar.push_back(f.count_all(c));
    scalar.push_back(f.count_vertex_all(c));
  }
  EXPECT_EQ(host, scalar);
}

TEST(RecursiveEngine, LocalGraphResetClearsLazily) {
  LocalGraph lg;
  lg.reset(200);
  EXPECT_EQ(lg.dirty_rows(), 0);
  lg.add_edge(3, 150);
  lg.add_edge(3, 7);
  EXPECT_EQ(lg.dirty_rows(), 3);  // rows 3, 150, 7
  EXPECT_TRUE(lg.has_edge(150, 3));

  // Shrinking reset: previously-populated rows must read empty again even
  // though only the dirty ones were cleared.
  lg.reset(160);
  EXPECT_EQ(lg.dirty_rows(), 0);
  for (int a = 0; a < 160; ++a) ASSERT_EQ(lg.degree(a), 0) << "a=" << a;
  EXPECT_FALSE(lg.has_edge(3, 7));

  // Re-population under the new (smaller) universe behaves normally.
  lg.add_edge(0, 159);
  EXPECT_TRUE(lg.has_edge(159, 0));
  EXPECT_EQ(lg.degree(0), 1);

  // Growing reset after use: the new rows are zero too.
  lg.reset(500);
  for (int a = 0; a < 500; ++a) ASSERT_EQ(lg.degree(a), 0) << "a=" << a;
}

TEST(RecursiveEngine, LocalGraphStrideFollowsKernelContract) {
  LocalGraph lg;
  lg.reset(64);
  EXPECT_EQ(lg.words(), 1);  // narrow rows stay exact
  lg.reset(256);
  EXPECT_EQ(lg.words(), 4);
  lg.reset(257);
  EXPECT_EQ(lg.words(), 8);  // wide rows pad to the 512-bit width
}

TEST(RecursiveEngine, DenseSubproblemThresholdRoundTrip) {
  const int saved = dense_subproblem_min_vertices();
  set_dense_subproblem_min_vertices(1);
  EXPECT_TRUE(use_dense_subproblem(2, 4));        // tiny but dense
  EXPECT_FALSE(use_dense_subproblem(100, 100));   // big but sparse
  set_dense_subproblem_min_vertices(1000);
  EXPECT_FALSE(use_dense_subproblem(100, 10000));  // dense but below the floor
  set_dense_subproblem_min_vertices(saved);
}

TEST(RecursiveEngine, ListingReportsChosenVertices) {
  EngineFixture f(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) f.lg.add_edge(a, b);
  }
  const node_t to_orig[] = {100, 101, 102, 103};
  std::vector<std::vector<node_t>> reported;
  const CliqueCallback cb = [&](std::span<const node_t> clique) {
    std::vector<node_t> sorted(clique.begin(), clique.end());
    std::sort(sorted.begin(), sorted.end());
    reported.push_back(sorted);
    return true;
  };
  f.ctx.callback = &cb;
  f.ctx.member_to_orig = to_orig;
  EXPECT_EQ(f.count_all(3), 4u);
  ASSERT_EQ(reported.size(), 4u);
  for (const auto& c : reported) {
    ASSERT_EQ(c.size(), 3u);
    for (const node_t v : c) {
      ASSERT_GE(v, 100u);
      ASSERT_LE(v, 103u);
    }
  }
}

}  // namespace
}  // namespace c3
