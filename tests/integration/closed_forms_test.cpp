// Closed-form clique counts on structured families, checked for every
// algorithm (parameterized).
#include <gtest/gtest.h>

#include <tuple>

#include "clique/api.hpp"
#include "clique/combinatorics.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

const Algorithm kAlgorithms[] = {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                                 Algorithm::KCList, Algorithm::ArbCount};

class ClosedForms : public ::testing::TestWithParam<Algorithm> {
 protected:
  [[nodiscard]] CliqueOptions opts() const {
    CliqueOptions o;
    o.algorithm = GetParam();
    return o;
  }
};

TEST_P(ClosedForms, CompleteGraphAllK) {
  const Graph g = complete_graph(13);
  for (int k = 3; k <= 14; ++k) {
    EXPECT_EQ(count_cliques(g, k, opts()).count, binomial(13, static_cast<count_t>(k)))
        << "k=" << k;
  }
}

TEST_P(ClosedForms, TuranGraphs) {
  for (const node_t r : {3, 4, 5}) {
    const Graph g = turan_graph(20, r);
    for (node_t k = 3; k <= r + 1; ++k) {
      EXPECT_EQ(count_cliques(g, static_cast<int>(k), opts()).count, cliques_in_turan(20, r, k))
          << "r=" << r << " k=" << k;
    }
  }
}

TEST_P(ClosedForms, TriangleFreeFamilies) {
  EXPECT_EQ(count_cliques(hypercube(7), 3, opts()).count, 0u);
  EXPECT_EQ(count_cliques(grid_graph(12, 12), 3, opts()).count, 0u);
  EXPECT_EQ(count_cliques(cycle_graph(30), 3, opts()).count, 0u);
  EXPECT_EQ(count_cliques(star_graph(64), 3, opts()).count, 0u);
}

TEST_P(ClosedForms, BipartitePlusLineTriangles) {
  // Every path edge forms a triangle with each vertex of the other side:
  // (half - 1) * half triangles, and no 4-cliques (that would need two
  // adjacent side-B vertices).
  const node_t half = 8;
  const Graph g = bipartite_plus_line(half);
  EXPECT_EQ(count_cliques(g, 3, opts()).count,
            static_cast<count_t>(half - 1) * half);
  EXPECT_EQ(count_cliques(g, 4, opts()).count, 0u);
}

TEST_P(ClosedForms, DisjointCliquesAddUp) {
  // Two disjoint K7: counts double, nothing leaks across components.
  EdgeList edges;
  for (node_t u = 0; u < 7; ++u) {
    for (node_t v = u + 1; v < 7; ++v) {
      edges.push_back(Edge{u, v});
      edges.push_back(Edge{static_cast<node_t>(7 + u), static_cast<node_t>(7 + v)});
    }
  }
  const Graph g = build_graph(edges, 14);
  for (int k = 3; k <= 7; ++k) {
    EXPECT_EQ(count_cliques(g, k, opts()).count, 2 * binomial(7, static_cast<count_t>(k)))
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ClosedForms, ::testing::ValuesIn(kAlgorithms),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           std::string name = algorithm_name(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace c3
