// Wall-clock timing for benchmarks and examples.
#pragma once

#include <chrono>

namespace c3 {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace c3
