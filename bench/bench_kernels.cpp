// Kernel-substrate ablation bench — the perf evidence for the PR 7 SIMD
// bit-kernel work. Two sections:
//
//   micro      — the fused intersect kernels and masked popcounts timed per
//                backend (every backend the host can run, scalar included)
//                on 1024-bit and 8192-bit universes; reported as ns/op and
//                speedup over the scalar table.
//   end_to_end — the CI smoke graphs plus a community-overlay graph counted
//                by every production algorithm twice: once with the dispatch
//                pinned to scalar, once on the host-selected backend. The
//                self-timed search_seconds are compared and the counts are
//                cross-checked (non-zero exit on any mismatch).
//
//   ./bench_kernels [--out BENCH_pr7.json] [--reps 2] [--k 5]
//
// Schema: {"bench": "kernels", "host_backend", "workers", "micro":
// [{"op", "backend", "bits", "ns_per_op", "speedup_vs_scalar"}],
// "end_to_end": [{"graph", "algorithm", "k", "count", "scalar_seconds",
// "vector_seconds", "speedup"}], "checks_passed"}
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/bitkernels.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

/// Data sink the optimizer cannot remove.
volatile std::uint64_t g_sink = 0;

struct MicroResult {
  std::string op;
  bits::KernelBackend backend;
  std::size_t nbits = 0;
  double ns_per_op = 0.0;
  double speedup_vs_scalar = 0.0;  ///< filled once the scalar row is known
};

/// Times `op(table)` (which must consume the whole universe once per call)
/// and returns the best-of-3 ns per call.
template <typename Op>
double time_op(std::size_t iters, const Op& op) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::uint64_t acc = 0;
    WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) acc += op();
    const double s = timer.seconds();
    g_sink = acc;
    const double ns = s * 1e9 / static_cast<double>(iters);
    best = rep == 0 ? ns : std::min(best, ns);
  }
  return best;
}

/// Micro section: every available backend against random word buffers.
std::vector<MicroResult> run_micro() {
  std::vector<MicroResult> results;
  Xoshiro256 rng(0xBEEF);
  for (const std::size_t nbits : {std::size_t{1024}, std::size_t{8192}}) {
    const std::size_t nwords = bits::kernel_stride_words(nbits);
    bits::KernelWords a(nwords), b(nwords), mask(nwords), dst(nwords);
    for (std::size_t w = 0; w < nwords; ++w) {
      a[w] = rng();
      b[w] = rng();
      mask[w] = rng() | rng();  // denser mask, like a community bitmap
    }
    // Keep each measurement around a millisecond regardless of width.
    const std::size_t iters = std::max<std::size_t>(1, 2'000'000 / nwords);
    const std::size_t lo = 3, hi = nbits - 2;  // interval kernels span almost all words
    for (const bits::KernelBackend backend : bits::available_kernel_backends()) {
      const bits::KernelTable* table = bits::kernel_table(backend);
      if (table == nullptr) continue;
      results.push_back({"intersect_interval", backend, nbits,
                         time_op(iters,
                                 [&] {
                                   return table->intersect_interval(a.data(), b.data(), mask.data(),
                                                                    dst.data(), nwords, lo, hi);
                                 }),
                         0.0});
      results.push_back({"intersect_above", backend, nbits,
                         time_op(iters,
                                 [&] {
                                   return table->intersect_above(a.data(), mask.data(), dst.data(),
                                                                 nwords, lo);
                                 }),
                         0.0});
      results.push_back({"popcount_and", backend, nbits,
                         time_op(iters, [&] { return table->popcount_and(a.data(), b.data(), nwords); }),
                         0.0});
      results.push_back(
          {"popcount_and3", backend, nbits,
           time_op(iters,
                   [&] { return table->popcount_and3(a.data(), b.data(), mask.data(), nwords); }),
           0.0});
    }
  }
  // Attach the scalar baseline to every row of the same (op, nbits).
  for (MicroResult& r : results) {
    for (const MicroResult& s : results) {
      if (s.backend == bits::KernelBackend::Scalar && s.op == r.op && s.nbits == r.nbits) {
        r.speedup_vs_scalar = r.ns_per_op > 0.0 ? s.ns_per_op / r.ns_per_op : 0.0;
      }
    }
  }
  return results;
}

struct EndToEndResult {
  std::string graph;
  std::string algorithm;
  int k = 0;
  count_t count = 0;
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
};

/// Best-of-`reps` self-timed search_seconds under the currently active
/// backend; also returns the count for the cross-check.
std::pair<count_t, double> timed_count(const PreparedGraph& engine, int k, int reps) {
  count_t count = 0;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const CliqueResult r = engine.count(k);
    count = r.count;
    best = rep == 0 ? r.stats.search_seconds : std::min(best, r.stats.search_seconds);
  }
  return {count, best};
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int k = static_cast<int>(cli.get_int("k", 5));
  const std::string out_path = cli.get_string("out", "BENCH_pr7.json");

  const bits::KernelBackend host = bits::active_kernel_backend();
  std::printf("bench_kernels: host backend %s (best %s), %d workers\n",
              bits::kernel_backend_name(host), bits::kernel_backend_name(bits::best_kernel_backend()),
              num_workers());

  // --- Micro section ------------------------------------------------------
  const std::vector<MicroResult> micro = run_micro();
  {
    Table t({"op", "backend", "bits", "ns/op", "vs scalar"});
    for (const MicroResult& r : micro) {
      t.add_row({r.op, bits::kernel_backend_name(r.backend), std::to_string(r.nbits),
                 strfmt("%.1f", r.ns_per_op), strfmt("%.2fx", r.speedup_vs_scalar)});
    }
    t.print();
  }

  // --- End-to-end section -------------------------------------------------
  struct BenchGraph {
    std::string name;
    Graph graph;
    int k;
    int reps;
  };
  std::vector<BenchGraph> graphs;
  for (bench::SmokeGraph& sg : bench::smoke_graphs()) {
    graphs.push_back({std::move(sg.name), std::move(sg.graph), k, reps});
  }
  // Subproblems of <= 256 vertices take the inlined-scalar short circuit by
  // design (dispatch would cost more than the op), so the smoke graphs above
  // mostly measure parity, not speedup. This graph's communities span
  // 420-460 vertices — 8-word rows, a full 512-bit lane past the inline
  // threshold — so the search recursions actually dispatch with enough width
  // for the vectors to pay. k is pinned to 4 to keep the multi-second rows a
  // smoke, not a soak; one rep suffices at that scale.
  graphs.push_back({"dense_blocks",
                    bench::overlay_communities(social_like(1200, 6'000, 0.4, 21), 2, 420, 460, 99),
                    4, 1});

  const Algorithm algorithms[] = {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                                  Algorithm::KCList, Algorithm::ArbCount};
  std::vector<EndToEndResult> e2e;
  bool mismatch = false;
  for (const BenchGraph& sg : graphs) {
    for (const Algorithm alg : algorithms) {
      CliqueOptions opts;
      opts.algorithm = alg;
      const PreparedGraph engine(sg.graph, opts);

      if (!bits::set_kernel_backend(bits::KernelBackend::Scalar)) {
        std::fprintf(stderr, "bench_kernels: cannot pin scalar backend\n");
        return 1;
      }
      const auto [scalar_count, scalar_s] = timed_count(engine, sg.k, sg.reps);
      if (!bits::set_kernel_backend(host)) {
        std::fprintf(stderr, "bench_kernels: cannot restore host backend\n");
        return 1;
      }
      const auto [vector_count, vector_s] = timed_count(engine, sg.k, sg.reps);

      if (scalar_count != vector_count) {
        std::printf("!! %s %s k=%d: scalar=%llu %s=%llu\n", sg.name.c_str(), algorithm_name(alg),
                    sg.k, static_cast<unsigned long long>(scalar_count),
                    bits::kernel_backend_name(host), static_cast<unsigned long long>(vector_count));
        mismatch = true;
      }
      e2e.push_back({sg.name, algorithm_name(alg), sg.k, vector_count, scalar_s, vector_s});
      std::fprintf(stderr, "  %s/%s: scalar %.3fs, %s %.3fs\n", sg.name.c_str(),
                   algorithm_name(alg), scalar_s, bits::kernel_backend_name(host), vector_s);
    }
  }
  {
    Table t({"graph", "algorithm", "k", "cliques", "scalar s", "vector s", "speedup"});
    for (const EndToEndResult& r : e2e) {
      const double speedup = r.vector_seconds > 0.0 ? r.scalar_seconds / r.vector_seconds : 0.0;
      t.add_row({r.graph, r.algorithm, std::to_string(r.k), std::to_string(r.count),
                 strfmt("%.4f", r.scalar_seconds), strfmt("%.4f", r.vector_seconds),
                 strfmt("%.2fx", speedup)});
    }
    t.print();
  }

  // --- Report -------------------------------------------------------------
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"kernels\", \"host_backend\": \"%s\", \"workers\": %d, \"micro\": [",
               bits::kernel_backend_name(host), num_workers());
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroResult& r = micro[i];
    std::fprintf(json,
                 "%s{\"op\": \"%s\", \"backend\": \"%s\", \"bits\": %zu, \"ns_per_op\": %.3f, "
                 "\"speedup_vs_scalar\": %.4f}",
                 i > 0 ? ", " : "", r.op.c_str(), bits::kernel_backend_name(r.backend), r.nbits,
                 r.ns_per_op, r.speedup_vs_scalar);
  }
  std::fprintf(json, "], \"end_to_end\": [");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndResult& r = e2e[i];
    const double speedup = r.vector_seconds > 0.0 ? r.scalar_seconds / r.vector_seconds : 0.0;
    std::fprintf(json,
                 "%s{\"graph\": \"%s\", \"algorithm\": \"%s\", \"k\": %d, \"count\": %llu, "
                 "\"scalar_seconds\": %.6f, \"vector_seconds\": %.6f, \"speedup\": %.4f}",
                 i > 0 ? ", " : "", r.graph.c_str(), r.algorithm.c_str(), r.k,
                 static_cast<unsigned long long>(r.count), r.scalar_seconds, r.vector_seconds,
                 speedup);
  }
  std::fprintf(json, "], \"checks_passed\": %s}\n", mismatch ? "false" : "true");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  if (mismatch) {
    std::fprintf(stderr, "bench_kernels: cross-check FAILED\n");
    return 1;
  }
  return 0;
}
