// Regression tests for the worker-pool semantics documented in
// parallel/parallel.hpp: set_num_workers clamping and round-trip restore,
// the grain-size serial fallback, and the "no nested parallelism" rule for
// parallel_for launched from inside a parallel region.
#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace c3 {
namespace {

class WorkersTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = num_workers(); }
  void TearDown() override { set_num_workers(original_); }
  int original_ = 1;
};

TEST_F(WorkersTest, ClampsNonPositiveValuesToOne) {
  set_num_workers(0);
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(-17);
  EXPECT_EQ(num_workers(), 1);
}

TEST_F(WorkersTest, ReturnsOldValueThatRoundTrips) {
  const int before = num_workers();
  const int old = set_num_workers(3);
  EXPECT_EQ(old, before);
  EXPECT_EQ(num_workers(), 3);
  // The returned value must restore the previous effective pool size, even
  // through a chain of set/restore pairs.
  const int inner = set_num_workers(7);
  EXPECT_EQ(inner, 3);
  set_num_workers(inner);
  EXPECT_EQ(num_workers(), 3);
  set_num_workers(old);
  EXPECT_EQ(num_workers(), before);
}

TEST_F(WorkersTest, ReturnedValueRoundTripsEvenWhenClamped) {
  set_num_workers(-5);  // clamped to 1
  const int old = set_num_workers(4);
  EXPECT_EQ(old, 1);
  set_num_workers(old);
  EXPECT_EQ(num_workers(), 1);
}

TEST_F(WorkersTest, ConcurrentSetRestorePairsNeverObserveZero) {
  // set_num_workers must be an atomic swap: a load/store pair can lose an
  // update and report a stale "old" value under contention.
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const int old = set_num_workers(2 + (i % 3));
        if (old < 1) bad.store(true);
        set_num_workers(old);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_GE(num_workers(), 1);
}

TEST_F(WorkersTest, TripCountBelowGrainRunsSeriallyOnCallingThread) {
  set_num_workers(4);
  // parallel.hpp: "Falls back to a serial loop when the trip count is below
  // `grain`" — so 9 iterations under grain=10 must run in order, on the
  // calling thread, outside any parallel region.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(
      0, 9,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_FALSE(in_parallel());
        order.push_back(i);
      },
      /*grain=*/10);
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST_F(WorkersTest, TripCountEqualToGrainIsEligibleForParallelism) {
  set_num_workers(4);
  // Boundary of the documented contract: a trip count of exactly `grain` is
  // NOT below it, so the loop may go parallel. All indices must still be
  // visited exactly once.
  const std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_F(WorkersTest, SingleWorkerRunsSeriallyRegardlessOfGrain) {
  set_num_workers(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(
      0, 5000, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      /*grain=*/1);
  ASSERT_EQ(order.size(), 5000u);
  for (std::size_t i = 0; i < order.size(); ++i) ASSERT_EQ(order[i], i);
}

TEST_F(WorkersTest, NestedParallelForRunsSeriallyInsideOuterLoop) {
  set_num_workers(4);
  // An inner parallel_for launched from an outer parallel iteration must run
  // serially on the worker that spawned it ("parallel outer loop only").
  // Each inner loop therefore sees its indices in order, on one thread.
  const std::size_t outer_n = 32;
  const std::size_t inner_n = 64;
  std::vector<std::atomic<int>> violations(outer_n);
  std::vector<std::atomic<long long>> sums(outer_n);
  parallel_for(
      0, outer_n,
      [&](std::size_t o) {
        const std::thread::id outer_thread = std::this_thread::get_id();
        std::size_t expect_next = 0;
        parallel_for(
            0, inner_n,
            [&](std::size_t i) {
              if (std::this_thread::get_id() != outer_thread) violations[o].fetch_add(1);
              if (i != expect_next) violations[o].fetch_add(1);
              ++expect_next;
              sums[o].fetch_add(static_cast<long long>(i));
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  long long inner_sum_expect = 0;
  for (std::size_t i = 0; i < inner_n; ++i) inner_sum_expect += static_cast<long long>(i);
  for (std::size_t o = 0; o < outer_n; ++o) {
    EXPECT_EQ(violations[o].load(), 0) << "outer iteration " << o;
    EXPECT_EQ(sums[o].load(), inner_sum_expect) << "outer iteration " << o;
  }
}

TEST_F(WorkersTest, WorkerCapScopeCapsCallingThreadOnly) {
  set_num_workers(6);
  {
    const WorkerCapScope cap(2);
    EXPECT_EQ(num_workers(), 2);

    // Other threads are unaffected while this thread is capped.
    int other = 0;
    std::thread observer([&] { other = num_workers(); });
    observer.join();
    EXPECT_EQ(other, 6);

    // Nested scopes compose by minimum and cannot raise the cap.
    {
      const WorkerCapScope tighter(1);
      EXPECT_EQ(num_workers(), 1);
    }
    {
      const WorkerCapScope looser(5);
      EXPECT_EQ(num_workers(), 2) << "a nested scope must not raise the cap";
    }
    EXPECT_EQ(num_workers(), 2);
  }
  EXPECT_EQ(num_workers(), 6) << "destruction must restore the thread";
}

TEST_F(WorkersTest, WorkerCapScopeZeroIsNoOpAndGlobalStillApplies) {
  set_num_workers(4);
  {
    const WorkerCapScope noop(0);
    EXPECT_EQ(num_workers(), 4);
    const WorkerCapScope negative(-3);
    EXPECT_EQ(num_workers(), 4);
  }
  // A per-thread cap above the global cap changes nothing...
  {
    const WorkerCapScope roomy(100);
    EXPECT_EQ(num_workers(), 4);
    // ...and the global cap keeps applying under a scope when lowered.
    const int old = set_num_workers(2);
    EXPECT_EQ(num_workers(), 2);
    set_num_workers(old);
  }
  EXPECT_EQ(num_workers(), 4);
}

TEST_F(WorkersTest, WorkerCapScopeNeverRaisesAboveMaxWorkers) {
  // PerWorker sizes to max_workers(); a scope only ever lowers the
  // effective count, so it can never push num_workers() past that bound.
  set_num_workers(3);
  const WorkerCapScope cap(1000);
  EXPECT_LE(num_workers(), max_workers());
}

TEST_F(WorkersTest, CappedThreadRunsLoopsSerially) {
  set_num_workers(4);
  const WorkerCapScope cap(1);
  // With an effective single worker the loop must degrade to the exact
  // serial path (single thread, in order).
  std::vector<int> order;
  parallel_for(
      0, 64, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, /*grain=*/1);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(WorkersTest, NestedDynamicLoopAlsoSerial) {
  set_num_workers(4);
  std::atomic<int> violations{0};
  std::atomic<long long> total{0};
  parallel_for_dynamic(
      0, 16,
      [&](std::size_t) {
        const std::thread::id outer_thread = std::this_thread::get_id();
        parallel_for_dynamic(
            0, 100,
            [&](std::size_t i) {
              if (std::this_thread::get_id() != outer_thread) violations.fetch_add(1);
              total.fetch_add(static_cast<long long>(i));
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(total.load(), 16LL * (99 * 100 / 2));
}

}  // namespace
}  // namespace c3
