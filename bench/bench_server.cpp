// TCP serving bench — the perf number for the PR 6 network front end. A
// two-graph catalog (one in-memory, one snapshot-backed, like bench_service)
// goes behind a loopback CliqueServer; N concurrent LineClients each run the
// same mixed request set twice:
//
//   cold — empty answer cache: every request executes on the engine;
//   warm — the same requests again: the cache answers without touching the
//          engine (hits are asserted, not hoped for).
//
// Every wire answer is cross-checked against a direct CliqueService::run of
// the same request (non-zero exit on mismatch), so the bench doubles as an
// end-to-end protocol check. Results go to a machine-readable JSON report:
//
//   ./bench_server [--out BENCH_pr6.json] [--clients 8] [--reps 3]
//
// Schema: {"bench", "workers", "clients", "graphs": [{"name", n, m}],
// "requests", "cold_seconds", "warm_seconds", "warm_speedup",
// "cache_hit_rate"}
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

/// The serving mix, as request lines: small counts and probes over a few k,
/// a spectrum, and a max-clique, against each graph in turn.
std::vector<std::string> make_request_mix(const std::vector<std::string>& ids) {
  std::vector<std::string> requests;
  for (const std::string& id : ids) {
    for (int rep = 0; rep < 3; ++rep) {
      for (int k = 3; k <= 6; ++k) requests.push_back(id + " count " + std::to_string(k));
    }
    for (int k = 3; k <= 6; ++k) requests.push_back(id + " hasclique " + std::to_string(k));
    requests.push_back(id + " spectrum 6");
    requests.push_back(id + " maxclique witness=0");
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int clients = static_cast<int>(cli.get_int("clients", 8));
  const std::string out_path = cli.get_string("out", "BENCH_pr6.json");

  std::vector<bench::SmokeGraph> smoke = bench::smoke_graphs();
  if (smoke.size() < 2) {
    std::fprintf(stderr, "bench_server: needs at least two smoke graphs\n");
    return 1;
  }
  const std::filesystem::path snap_path =
      std::filesystem::temp_directory_path() /
      ("bench_server_" + std::to_string(::getpid()) + ".c3snap");
  {
    CliqueOptions opts;
    opts.algorithm = Algorithm::C3List;
    const PreparedGraph offline(smoke[1].graph, opts);
    snapshot::write(snap_path, offline);
  }

  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  CliqueService service;
  service.add_graph(smoke[0].name, Graph(smoke[0].graph), opts);
  service.add_snapshot(smoke[1].name, snap_path);
  const std::vector<std::string> ids = {smoke[0].name, smoke[1].name};
  for (const std::string& id : ids) service.prepare(id);

  const std::vector<std::string> requests = make_request_mix(ids);
  const std::size_t total_requests = requests.size() * static_cast<std::size_t>(clients);

  // Ground truth straight through the service, once per distinct request.
  std::map<std::string, std::string> expected;
  for (const std::string& r : requests) {
    if (expected.count(r) != 0) continue;
    const std::size_t space = r.find(' ');
    expected[r] = format_answer(service.run(r.substr(0, space), parse_query(r.substr(space + 1))));
  }

  /// One timed pass: `clients` threads, each sending every request in its
  /// own rotation. Returns the wall seconds; counts mismatches into `bad`.
  const auto pass = [&](const net::CliqueServer& server, int* bad) {
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    threads.reserve(static_cast<std::size_t>(clients));
    WallTimer timer;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          net::LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
          for (std::size_t i = 0; i < requests.size(); ++i) {
            const std::string& r = requests[(i + static_cast<std::size_t>(c)) % requests.size()];
            if (client.request(r) != expected[r]) mismatches.fetch_add(1);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bench_server: client: %s\n", e.what());
          mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    *bad += mismatches.load();
    return timer.seconds();
  };

  double cold_best = 0.0, warm_best = 0.0, hit_rate = 0.0;
  int bad = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // A fresh server per rep: the cold pass really is cold.
    net::ServerOptions server_opts;
    server_opts.port = 0;
    net::CliqueServer server(service, server_opts);
    server.start();

    const double cold = pass(server, &bad);
    cold_best = rep == 0 ? cold : std::min(cold_best, cold);
    const double warm = pass(server, &bad);
    warm_best = rep == 0 ? warm : std::min(warm_best, warm);

    const net::ServerStats stats = server.stats();
    const std::uint64_t asked = stats.frontend.cache.hits + stats.frontend.cache.misses;
    hit_rate = asked > 0 ? static_cast<double>(stats.frontend.cache.hits) /
                               static_cast<double>(asked)
                         : 0.0;
    if (stats.frontend.cache_hits == 0) {
      std::fprintf(stderr, "bench_server: warm pass produced no cache hits\n");
      ++bad;
    }
    server.stop();
  }
  std::filesystem::remove(snap_path);

  const double warm_speedup = warm_best > 0.0 ? cold_best / warm_best : 0.0;
  Table t({"pass", "clients", "requests", "seconds", "speedup"});
  t.add_row({"cold", std::to_string(clients), std::to_string(total_requests),
             strfmt("%.3f", cold_best), "1.00x"});
  t.add_row({"warm", std::to_string(clients), std::to_string(total_requests),
             strfmt("%.3f", warm_best), strfmt("%.2fx", warm_speedup)});
  t.print();
  std::printf("cache hit rate %.1f%%\n", hit_rate * 100.0);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_server: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"server\", \"workers\": %d, \"clients\": %d, \"graphs\": [",
               num_workers(), clients);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Graph& g = service.engine(ids[i]).graph();
    std::fprintf(json, "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu}", i > 0 ? ", " : "",
                 ids[i].c_str(), g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));
  }
  std::fprintf(json,
               "], \"requests\": %zu, \"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
               "\"warm_speedup\": %.4f, \"cache_hit_rate\": %.4f}\n",
               total_requests, cold_best, warm_best, warm_speedup, hit_rate);
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  if (bad != 0) {
    std::fprintf(stderr, "bench_server: cross-check FAILED (%d mismatches)\n", bad);
    return 1;
  }
  return 0;
}
