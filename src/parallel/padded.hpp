// Cache-line padded per-worker storage.
//
// Parallel counting algorithms accumulate into one cell per worker and reduce
// at the end; padding each cell to a cache line avoids false sharing, which
// would otherwise serialize the hot counting loops.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "parallel/parallel.hpp"

namespace c3 {

// Fixed at the x86-64 / common-ARM value rather than
// std::hardware_destructive_interference_size, whose value is not ABI-stable
// across compiler flags (GCC warns about exactly this).
inline constexpr std::size_t kCacheLineSize = 64;

/// A value padded to occupy at least one cache line.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};

/// One padded slot per worker, with a combining reduction.
///
/// Sized to max_workers() — the cap's high-water mark, not its current value
/// — so a set_num_workers increase *back up to* any previously seen cap
/// cannot push worker_id() past the slot count. A cap raised above every
/// previous value after construction is caught by the bounds clamp in
/// local(), which turns what used to be an out-of-bounds access into
/// sharing the last slot. Sharing is only race-free for atomic payloads;
/// raising the cap while a loop over a non-atomic PerWorker is in flight
/// remains unsupported (as all mid-loop cap changes are) — rebuild the
/// PerWorker after growing the pool, as QueryScratch::reset_query does.
template <typename T>
class PerWorker {
 public:
  PerWorker() : slots_(static_cast<std::size_t>(max_workers())) {}
  explicit PerWorker(const T& init) : slots_(static_cast<std::size_t>(max_workers()), Padded<T>{init}) {}

  /// The calling worker's slot (the last slot for out-of-range ids).
  [[nodiscard]] T& local() noexcept {
    const auto id = static_cast<std::size_t>(worker_id());
    return slots_[id < slots_.size() ? id : slots_.size() - 1].value;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] T& slot(std::size_t i) noexcept { return slots_[i].value; }
  [[nodiscard]] const T& slot(std::size_t i) const noexcept { return slots_[i].value; }

  /// Folds all slots with `combine(acc, slot)`, starting from `init`.
  template <typename Combine>
  [[nodiscard]] T reduce(T init, Combine&& combine) const {
    T acc = std::move(init);
    for (const auto& s : slots_) acc = combine(std::move(acc), s.value);
    return acc;
  }

 private:
  std::vector<Padded<T>> slots_;
};

}  // namespace c3
