// Per-vertex and per-edge k-clique counts (the "local counting" used by
// k-clique peeling and densest-subgraph algorithms, cf. Shi et al.).
#pragma once

#include <vector>

#include "clique/common.hpp"
#include "graph/graph.hpp"

namespace c3 {

/// counts[v] = number of k-cliques containing v. The sum over all vertices
/// equals k times the global k-clique count.
[[nodiscard]] std::vector<count_t> per_vertex_clique_counts(const Graph& g, int k,
                                                            const CliqueOptions& opts = {});

/// counts[e] = number of k-cliques containing undirected edge e (indexed by
/// the graph's edge ids). The sum equals C(k,2) times the global count.
[[nodiscard]] std::vector<count_t> per_edge_clique_counts(const Graph& g, int k,
                                                          const CliqueOptions& opts = {});

}  // namespace c3
