// c3list — parallel community-centric k-clique listing in sparse graphs.
//
// Umbrella header: include this to get the full public API (namespace c3).
//
//   Graph construction      graph/builder.hpp, graph/io.hpp, graph/gen/*
//   Orientation & orders    order/degeneracy.hpp, order/approx_degeneracy.hpp,
//                           order/community_degeneracy.hpp
//   Triangles/communities   triangle/triangle_count.hpp, triangle/communities.hpp
//   Clique counting         clique/api.hpp (count_cliques / list_cliques)
//   Typed queries           clique/query.hpp (Query/Answer: one sum type for
//                           every question, with per-query worker caps,
//                           budgets, and text round-tripping)
//   Prepared queries        clique/engine.hpp (PreparedGraph: prepare once,
//                           run(Query) or the named wrappers, concurrently
//                           from any number of threads)
//   Batched queries         clique/batch.hpp (QueryBatch: schedule a mixed
//                           query set; QueryStream: long-lived
//                           submit/poll/drain loop)
//   Graph catalog           clique/service.hpp (CliqueService: many named
//                           graphs — in-memory or snapshot-backed — behind
//                           one run(id, query) surface)
//   Snapshots               snapshot/snapshot.hpp (serialize a prepared
//                           engine offline, mmap it back at serve time)
//   Sharding                shard/partition.hpp, shard/sharded_engine.hpp
//                           (vertex-ownership partition + scatter-gather
//                           engine), snapshot/shard_manifest.hpp (one-file
//                           sharded snapshots)
//   Individual algorithms   clique/c3list.hpp, clique/c3list_cd.hpp,
//                           clique/hybrid.hpp, clique/kclist.hpp,
//                           clique/arbcount.hpp, clique/bruteforce.hpp
//   Extensions              clique/max_clique.hpp, clique/bron_kerbosch.hpp,
//                           clique/vertex_counts.hpp, clique/peeling.hpp
//
// Reproduction of: Gianinazzi, Besta, Schaffner, Hoefler, "Parallel
// Algorithms for Finding Large Cliques in Sparse Graphs", SPAA 2021.
#pragma once

#include "clique/answer_cache.hpp"
#include "clique/api.hpp"
#include "clique/arbcount.hpp"
#include "clique/batch.hpp"
#include "clique/bron_kerbosch.hpp"
#include "clique/bruteforce.hpp"
#include "clique/c3list.hpp"
#include "clique/c3list_cd.hpp"
#include "clique/combinatorics.hpp"
#include "clique/engine.hpp"
#include "clique/hybrid.hpp"
#include "clique/kclist.hpp"
#include "clique/max_clique.hpp"
#include "clique/peeling.hpp"
#include "clique/query.hpp"
#include "clique/service.hpp"
#include "clique/spectrum.hpp"
#include "clique/vertex_counts.hpp"
#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "graph/gen/generators.hpp"
#include "graph/gen/paper_examples.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"
#include "net/client.hpp"
#include "net/frontend.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "order/approx_degeneracy.hpp"
#include "order/community_degeneracy.hpp"
#include "order/degeneracy.hpp"
#include "parallel/parallel.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_engine.hpp"
#include "snapshot/shard_manifest.hpp"
#include "snapshot/snapshot.hpp"
#include "triangle/communities.hpp"
#include "triangle/triangle_count.hpp"
#include "util/bitkernels.hpp"
