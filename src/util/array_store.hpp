// Owned-or-borrowed flat array storage for the prepared artifacts.
//
// Every artifact the snapshot subsystem serializes (Graph CSR, oriented
// Digraph, EdgeCommunities, EdgeOrderResult) is a bundle of flat
// trivially-copyable arrays. An ArrayStore<T> holds one such array in one of
// two modes:
//
//   owned    — backed by a std::vector<T>, built in memory as before. The
//              default; every mutating vector-style operation works.
//   borrowed — a read-only view over memory someone else owns (a mapped
//              snapshot section). Created via ArrayStore::view; zero-copy.
//
// Read access (size/data/operator[]/iteration/span conversion) is identical
// in both modes, so the artifact classes work unchanged over either. The
// vector facade (push_back/resize/assign/...) is only legal in owned mode —
// borrowed stores are immutable by contract (the mapping is PROT_READ), and
// mutating one is a programming error caught by assert in debug builds.
// Copying an ArrayStore always deep-copies into owned storage, so copying a
// snapshot-backed artifact detaches it from the mapping.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace c3 {

template <typename T>
class ArrayStore {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArrayStore is for flat, snapshot-serializable element types");

 public:
  using value_type = T;

  ArrayStore() = default;

  /// Takes ownership of `v` (the usual construction path for built artifacts).
  ArrayStore(std::vector<T> v) : owned_(std::move(v)) { sync(); }  // NOLINT(google-explicit-constructor)

  /// A borrowed, read-only view over memory owned elsewhere (a mapped
  /// snapshot). The memory must outlive the store and everything built on it.
  [[nodiscard]] static ArrayStore view(std::span<const T> s) {
    ArrayStore a;
    a.data_ = s.data();
    a.size_ = s.size();
    a.borrowed_ = true;
    return a;
  }

  // Copies re-own: the new store is always `owned`, even when the source is
  // a borrowed view (this is how read_graph_any detaches a snapshot graph).
  ArrayStore(const ArrayStore& other) : owned_(other.begin(), other.end()) { sync(); }
  ArrayStore& operator=(const ArrayStore& other) {
    if (this != &other) {
      owned_.assign(other.begin(), other.end());
      borrowed_ = false;
      sync();
    }
    return *this;
  }

  ArrayStore(ArrayStore&& other) noexcept { *this = std::move(other); }
  ArrayStore& operator=(ArrayStore&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      borrowed_ = other.borrowed_;
      if (borrowed_) {
        data_ = other.data_;
        size_ = other.size_;
      } else {
        sync();
      }
      other.owned_.clear();
      other.borrowed_ = false;
      other.sync();
    }
    return *this;
  }

  ~ArrayStore() = default;

  // ------------------------------------------------------------ read access

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  operator std::span<const T>() const noexcept { return {data_, size_}; }  // NOLINT
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_, size_}; }

  /// True for a borrowed view (snapshot-backed); false for owned storage.
  [[nodiscard]] bool is_view() const noexcept { return borrowed_; }

  // ------------------------------------------- vector facade (owned only)

  [[nodiscard]] T* data() noexcept {
    assert(!borrowed_ && "mutating a borrowed (snapshot-backed) ArrayStore");
    return owned_.data();
  }
  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }

  void push_back(const T& v) {
    assert(!borrowed_);
    owned_.push_back(v);
    sync();
  }
  void reserve(std::size_t n) {
    assert(!borrowed_);
    owned_.reserve(n);
    sync();
  }
  void resize(std::size_t n, const T& v = T()) {
    assert(!borrowed_);
    owned_.resize(n, v);
    sync();
  }
  void assign(std::size_t n, const T& v) {
    assert(!borrowed_);
    owned_.assign(n, v);
    sync();
  }
  template <typename It>
  void assign(It first, It last) {
    assert(!borrowed_);
    owned_.assign(first, last);
    sync();
  }
  void clear() noexcept {
    assert(!borrowed_);
    owned_.clear();
    sync();
  }

 private:
  void sync() noexcept {
    data_ = owned_.data();
    size_ = owned_.size();
    borrowed_ = false;
  }

  std::vector<T> owned_;        // empty in borrowed mode
  const T* data_ = nullptr;     // always the live contents
  std::size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace c3
