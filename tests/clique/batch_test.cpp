// QueryBatch: a heterogeneous batch against one PreparedGraph must return,
// in submission order, exactly what issuing each query directly would have
// returned — at every concurrency level, with the worker cap restored.
#include "clique/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "clique/max_clique.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

TEST(QueryBatch, MixedBatchMatchesDirectQueries) {
  const Graph g = social_like(300, 2400, 0.4, 19);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);

  // Direct answers.
  const count_t c3 = engine.count(3).count;
  const count_t c4 = engine.count(4).count;
  const count_t c5 = engine.count(5).count;
  const node_t omega = engine.max_clique_size();
  const CliqueSpectrum spec = engine.spectrum();
  const std::vector<count_t> pv4 = engine.per_vertex_counts(4);

  for (const int concurrency : {0, 1, 2, 4}) {
    QueryBatch batch(engine);
    EXPECT_EQ(batch.add_count(3), 0);
    EXPECT_EQ(batch.add_count(4), 1);
    EXPECT_EQ(batch.add_has_clique(static_cast<int>(omega)), 2);
    EXPECT_EQ(batch.add_has_clique(static_cast<int>(omega) + 1), 3);
    EXPECT_EQ(batch.add_find_clique(4), 4);
    EXPECT_EQ(batch.add_spectrum(), 5);
    EXPECT_EQ(batch.add_max_clique(), 6);
    EXPECT_EQ(batch.add_per_vertex_counts(4), 7);
    EXPECT_EQ(batch.add_count(5), 8);
    ASSERT_EQ(batch.size(), 9u);

    const int cap_before = num_workers();
    const std::vector<BatchResult> results = batch.run(concurrency);
    EXPECT_EQ(num_workers(), cap_before) << "worker cap not restored";
    ASSERT_EQ(results.size(), 9u);

    EXPECT_EQ(results[0].count, c3);
    EXPECT_EQ(results[1].count, c4);
    EXPECT_TRUE(results[2].found);
    EXPECT_FALSE(results[3].found);
    EXPECT_TRUE(results[4].found);
    ASSERT_EQ(results[4].witness.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = i + 1; j < 4; ++j) {
        EXPECT_TRUE(g.has_edge(results[4].witness[i], results[4].witness[j]));
      }
    }
    EXPECT_EQ(results[5].spectrum.counts, spec.counts);
    EXPECT_EQ(results[5].omega, spec.omega);
    EXPECT_EQ(results[6].omega, omega);
    EXPECT_EQ(results[6].witness.size(), static_cast<std::size_t>(omega));
    EXPECT_EQ(results[7].per_counts, pv4);
    EXPECT_EQ(results[8].count, c5);

    // Kinds and k echo the submission.
    EXPECT_EQ(results[0].kind, QueryKind::Count);
    EXPECT_EQ(results[0].k, 3);
    EXPECT_EQ(results[6].kind, QueryKind::MaxClique);
  }
}

TEST(QueryBatch, BatchPaysPreparationOnceUpFront) {
  const Graph g = erdos_renyi(200, 1500, 7);
  const PreparedGraph engine(g, {});
  QueryBatch batch(engine);
  for (int k = 3; k <= 6; ++k) (void)batch.add_count(k);
  const auto results = batch.run();
  // run() forces prepare() before the first query, so no query reports
  // preparation cost.
  for (const BatchResult& r : results) EXPECT_EQ(r.stats.preprocess_seconds, 0.0);
  EXPECT_EQ(engine.artifacts_built(), 2);
}

TEST(QueryBatch, TrivialOnlyBatchBuildsNoArtifacts) {
  const Graph g = erdos_renyi(100, 700, 3);
  const PreparedGraph engine(g, {});
  QueryBatch batch(engine);
  (void)batch.add_count(1);
  (void)batch.add_count(2);
  (void)batch.add_spectrum(2);
  const auto results = batch.run(2);
  EXPECT_EQ(results[0].count, 100u);
  EXPECT_EQ(results[1].count, 700u);
  EXPECT_EQ(results[2].spectrum.omega, 2u);
  // Every answer comes from the graph alone; preparation must not run.
  EXPECT_EQ(engine.artifacts_built(), 0);
}

TEST(QueryBatch, BruteForceHeavyQueriesPrepareUpFront) {
  // BruteForce's prepare() builds nothing, but max-clique queries consult
  // the degeneracy upper bound — run() must force it up front so the query
  // itself still pays no preparation.
  const Graph g = erdos_renyi(80, 400, 13);
  CliqueOptions opts;
  opts.algorithm = Algorithm::BruteForce;
  const PreparedGraph engine(g, opts);
  QueryBatch batch(engine);
  (void)batch.add_max_clique();
  (void)batch.add_count(3);
  const auto results = batch.run(2);
  EXPECT_EQ(results[0].omega, max_clique_size(g));
  EXPECT_EQ(results[1].count, count_cliques(g, 3, opts).count);
  // Exactly the one up-front degeneracy build — nothing during the queries.
  EXPECT_EQ(engine.artifacts_built(), 1);
}

TEST(QueryBatch, RunIsRepeatable) {
  const Graph g = erdos_renyi(150, 1100, 3);
  const PreparedGraph engine(g, {});
  QueryBatch batch(engine);
  (void)batch.add_count(4);
  (void)batch.add_max_clique();
  const auto first = batch.run();
  const auto second = batch.run();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first[0].count, second[0].count);
  EXPECT_EQ(first[1].omega, second[1].omega);
}

TEST(QueryBatch, ConcurrentBatchesRestoreWorkerCap) {
  // Two batches running their concurrent phases at once must not interleave
  // the global save/split/restore of the worker cap (pre-fix, B could save
  // A's split value and "restore" the process to it permanently).
  const Graph g = erdos_renyi(150, 1100, 21);
  const PreparedGraph e1(g, {});
  const PreparedGraph e2(g, {});
  const count_t expect4 = e1.count(4).count;
  const int before = num_workers();

  auto run_batch = [&](const PreparedGraph& engine, count_t& out) {
    QueryBatch batch(engine);
    for (int k = 3; k <= 6; ++k) (void)batch.add_count(k);
    out = batch.run(4)[1].count;  // k = 4
  };
  count_t a_count = 0, b_count = 0;
  std::thread a([&] { run_batch(e1, a_count); });
  std::thread b([&] { run_batch(e2, b_count); });
  a.join();
  b.join();

  EXPECT_EQ(num_workers(), before) << "worker cap corrupted by racing batches";
  EXPECT_EQ(a_count, expect4);
  EXPECT_EQ(b_count, expect4);
}

TEST(QueryBatch, EmptyBatchAndEmptyGraph) {
  const Graph g = erdos_renyi(50, 200, 5);
  const PreparedGraph engine(g, {});
  EXPECT_TRUE(QueryBatch(engine).run().empty());

  const Graph empty;
  const PreparedGraph none(empty, {});
  QueryBatch batch(none);
  (void)batch.add_count(3);
  (void)batch.add_max_clique();
  (void)batch.add_spectrum();
  const auto results = batch.run(4);
  EXPECT_EQ(results[0].count, 0u);
  EXPECT_EQ(results[1].omega, 0u);
  EXPECT_FALSE(results[1].found);
  EXPECT_EQ(results[2].spectrum.omega, 0u);
}

TEST(QueryBatch, GlobalWorkerCountUntouchedThroughoutRun) {
  // Regression: the pre-Query executor split the *global* worker cap across
  // its threads (set_num_workers save/split/restore), so an external caller
  // could observe — or race — the temporarily reduced value. The rebuilt
  // executor caps per thread; an observer sampling continuously during the
  // batch must never see the global count move.
  const Graph g = social_like(250, 2000, 0.4, 23);
  const PreparedGraph engine(g, {});
  engine.prepare();
  const int before = num_workers();

  std::atomic<bool> watching{true};
  std::atomic<bool> saw_change{false};
  std::thread observer([&] {
    while (watching.load(std::memory_order_relaxed)) {
      if (num_workers() != before) saw_change.store(true, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  QueryBatch batch(engine);
  for (int rep = 0; rep < 3; ++rep) {
    for (int k = 3; k <= 5; ++k) (void)batch.add_count(k);
  }
  const std::vector<BatchResult> results = batch.run(4);
  watching.store(false, std::memory_order_relaxed);
  observer.join();

  EXPECT_FALSE(saw_change.load()) << "batch split leaked into the global worker count";
  EXPECT_EQ(num_workers(), before);
  for (const BatchResult& r : results) EXPECT_EQ(r.count, engine.count(r.k).count);
}

TEST(QueryBatch, PerQueryWorkerCapsRespected) {
  const Graph g = erdos_renyi(180, 1400, 27);
  const PreparedGraph engine(g, {});
  const count_t c4 = engine.count(4).count;
  const int before = num_workers();

  QueryBatch batch(engine);
  for (int i = 0; i < 6; ++i) {
    Query q;
    q.kind = QueryKind::Count;
    q.k = 4;
    q.opts.max_workers = 1 + (i % 3);  // varying per-query caps
    (void)batch.add(std::move(q));
  }
  const std::vector<Answer> answers = batch.answers(3);
  for (const Answer& a : answers) EXPECT_EQ(a.count, c4);
  EXPECT_EQ(num_workers(), before);
}

TEST(QueryBatch, CostModelSendsLargeKToTheSequentialPhase) {
  // Not a placement assertion (that is internal) — a behavior one: a batch
  // mixing tiny probes with a huge-k count must return correct results at
  // every concurrency, with the heavy query keeping its answer identical.
  const Graph g = social_like(300, 2600, 0.5, 29);
  const PreparedGraph engine(g, {});
  engine.prepare();
  const int big_k = std::max(3, static_cast<int>(engine.clique_number_upper_bound()) - 1);
  const count_t big = engine.count(big_k).count;
  const count_t small = engine.count(3).count;

  for (const int concurrency : {0, 2}) {
    QueryBatch batch(engine);
    (void)batch.add_count(3);
    (void)batch.add_count(big_k);
    (void)batch.add_count(3);
    const auto results = batch.run(concurrency);
    EXPECT_EQ(results[0].count, small);
    EXPECT_EQ(results[1].count, big);
    EXPECT_EQ(results[2].count, small);
  }
}

TEST(QueryBatch, AnswersEchoTypedQueries) {
  const Graph g = erdos_renyi(120, 800, 33);
  const PreparedGraph engine(g, {});
  QueryBatch batch(engine);
  Query list;
  list.kind = QueryKind::List;
  list.k = 3;
  list.opts.result_limit = 4;
  (void)batch.add(list);
  (void)batch.add_count(3);

  const std::vector<Answer> answers = batch.answers();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].kind, QueryKind::List);
  EXPECT_LE(answers[0].cliques.size(), 4u);
  EXPECT_EQ(answers[1].count, engine.count(3).count);
  // queries() exposes the typed submissions for tooling.
  EXPECT_EQ(batch.queries()[0].opts.result_limit, 4u);
}

TEST(QueryBatch, OneCallFormMatchesBuilder) {
  const Graph g = barabasi_albert(200, 4, 9);
  const PreparedGraph engine(g, {});
  const std::vector<BatchQuery> queries = {
      {QueryKind::Count, 3, 0}, {QueryKind::Count, 4, 0}, {QueryKind::MaxClique, 0, 0}};
  const auto a = run_query_batch(engine, queries);
  QueryBatch batch(engine);
  for (const BatchQuery& q : queries) (void)batch.add(q);
  const auto b = batch.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].omega, b[i].omega);
  }
}

}  // namespace
}  // namespace c3
