// Regenerates Figure 8c of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Tech-As-Skitter (internet topology) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::skitter_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 8c";
  cfg.paper_ref = "72T: c3List fastest for k>=8 (k=10: 921.66s vs 1068.98/1479.43); largest relative gains of all graphs";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
