// Tests for query-lifecycle tracing: span recording, the trace ring, the
// chrome://tracing export, and the slow-query log.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace c3 {
namespace {

using obs::SlowQueryLog;
using obs::Stage;
using obs::TraceContext;
using obs::TraceRecord;
using obs::TraceRing;

TraceRecord make_record(std::uint64_t id, std::string graph, std::string query) {
  TraceRecord r;
  r.request_id = id;
  r.graph_id = std::move(graph);
  r.query_text = std::move(query);
  return r;
}

TEST(ObsTrace, StageNamesCoverEveryStage) {
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const char* name = obs::stage_name(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(ObsTrace, ContextRecordsSpansAndMetadata) {
  TraceContext trace("web", "count 5");
  EXPECT_EQ(trace.record().graph_id, "web");
  EXPECT_EQ(trace.record().query_text, "count 5");

  trace.add_span(Stage::Parse, 0, 1000);
  trace.add_span(Stage::Search, 1000, 5000);
  trace.annotate("algorithm", "kclist");
  trace.mark_cache_hit();
  trace.mark_truncated(true);

  const TraceRecord& r = trace.record();
  ASSERT_EQ(r.spans.size(), 2u);
  EXPECT_EQ(r.stage_ns(Stage::Parse), 1000u);
  EXPECT_EQ(r.stage_ns(Stage::Search), 5000u);
  EXPECT_EQ(r.stage_ns(Stage::Format), 0u);  // never recorded
  EXPECT_TRUE(r.cache_hit);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.error);
  ASSERT_EQ(r.annotations.size(), 1u);
  EXPECT_EQ(r.annotations[0].first, "algorithm");
  EXPECT_EQ(r.annotations[0].second, "kclist");
  trace.mark_error();
  EXPECT_TRUE(trace.record().error);
}

TEST(ObsTrace, NowNsIsMonotone) {
  TraceContext trace("g", "q");
  const std::uint64_t a = trace.now_ns();
  const std::uint64_t b = trace.now_ns();
  EXPECT_GE(b, a);
}

TEST(ObsTrace, ScopeToleratesNullAndIsIdempotent) {
  // Null context: constructing, closing, and destroying must all be no-ops.
  {
    TraceContext::Scope null_scope(nullptr, Stage::Parse);
    null_scope.close();
  }
  TraceContext trace("g", "q");
  {
    TraceContext::Scope scope(&trace, Stage::Format);
    scope.close();
    scope.close();  // second close is a no-op
  }  // destructor after close must not double-record
  EXPECT_EQ(trace.record().spans.size(), 1u);
  EXPECT_EQ(trace.record().spans[0].stage, Stage::Format);
}

TEST(ObsTrace, FinishPublishesToGlobalRingOnce) {
  TraceRing& ring = TraceRing::global();
  ring.clear();
  {
    TraceContext trace("ringtest", "count 3");
    trace.add_span(Stage::Search, 0, 42);
    trace.finish();
    trace.finish();  // idempotent
  }  // destructor after finish must not publish again
  const std::vector<TraceRecord> traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].graph_id, "ringtest");
  EXPECT_GT(traces[0].request_id, 0u);
  ring.clear();
}

TEST(ObsTraceRing, BoundedOldestFirst) {
  TraceRing ring(3);
  for (std::uint64_t i = 1; i <= 5; ++i) ring.push(make_record(i, "g", "q"));
  EXPECT_EQ(ring.size(), 3u);
  const std::vector<TraceRecord> traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 3u);
  // Capacity 3 after 5 pushes keeps the newest 3, oldest first.
  EXPECT_EQ(traces[0].request_id, 3u);
  EXPECT_EQ(traces[1].request_id, 4u);
  EXPECT_EQ(traces[2].request_id, 5u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(ObsTraceRing, SetCapacityShrinksKeepingNewest) {
  TraceRing ring(8);
  for (std::uint64_t i = 1; i <= 6; ++i) ring.push(make_record(i, "g", "q"));
  ring.set_capacity(2);
  const std::vector<TraceRecord> traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].request_id, 5u);
  EXPECT_EQ(traces[1].request_id, 6u);
}

TEST(ObsChromeTrace, EmitsLoadableSingleLineJson) {
  TraceRecord r = make_record(7, "web", "count 5 workers=2");
  r.start_epoch_us = 1000;
  r.spans.push_back({Stage::Parse, 0, 1500});
  r.spans.push_back({Stage::Search, 2000, 250'000});
  r.annotations.emplace_back("algorithm", "kclist");
  r.cache_hit = false;

  const std::string json = obs::chrome_trace_json({r});
  // One line, wrapped in the chrome://tracing envelope.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  // Complete events for both spans, on the request's tid.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"search\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // Search span carries the annotations; metadata names the request.
  EXPECT_NE(json.find("\"algorithm\":\"kclist\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsChromeTrace, EscapesQueryText) {
  TraceRecord r = make_record(1, "g", "count \"quoted\"\nnewline\\slash");
  r.spans.push_back({Stage::Parse, 0, 10});
  const std::string json = obs::chrome_trace_json({r});
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
}

TEST(ObsSlowQueryLog, FormatRecordIsOneStructuredLine) {
  TraceRecord r = make_record(9, "web", "count 5");
  r.spans.push_back({Stage::Search, 0, 250'000'000});  // 250 ms
  r.spans.push_back({Stage::Parse, 0, 1'000'000});     // 1 ms
  r.annotations.emplace_back("algorithm", "kclist");
  r.error = true;

  const std::string line = SlowQueryLog::format_record(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("id=9"), std::string::npos);
  EXPECT_NE(line.find("graph=web"), std::string::npos);
  EXPECT_NE(line.find("search_ms=250"), std::string::npos);
  EXPECT_NE(line.find("algorithm=kclist"), std::string::npos);
  EXPECT_NE(line.find("error=1"), std::string::npos);
  EXPECT_NE(line.find("query="), std::string::npos);
}

TEST(ObsSlowQueryLog, ThresholdGatesLogging) {
  SlowQueryLog& log = SlowQueryLog::global();
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  log.configure(0.1, sink);  // 100 ms threshold
  EXPECT_DOUBLE_EQ(log.threshold_seconds(), 0.1);

  const std::uint64_t before = log.logged();
  TraceRecord fast = make_record(1, "g", "q");
  fast.spans.push_back({Stage::Search, 0, 1'000'000});  // 1 ms — under
  log.maybe_log(fast);
  EXPECT_EQ(log.logged(), before);

  TraceRecord slow = make_record(2, "g", "q");
  slow.spans.push_back({Stage::Search, 0, 500'000'000});  // 500 ms — over
  log.maybe_log(slow);
  EXPECT_EQ(log.logged(), before + 1);

  // The record actually reached the sink.
  std::fflush(sink);
  std::rewind(sink);
  char buf[512] = {};
  ASSERT_NE(std::fgets(buf, sizeof(buf), sink), nullptr);
  EXPECT_NE(std::string(buf).find("slow_query"), std::string::npos);
  EXPECT_NE(std::string(buf).find("id=2"), std::string::npos);

  log.configure(0.0);  // disable and detach the sink before tmpfile closes
  std::fclose(sink);
  EXPECT_DOUBLE_EQ(log.threshold_seconds(), 0.0);
}

}  // namespace
}  // namespace c3
