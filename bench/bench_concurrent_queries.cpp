// Concurrent-query throughput bench — the perf baseline for the PR 3 lease
// engine + batch executor. For each generator stand-in it builds one
// PreparedGraph, then answers the same mixed query set (counts over several
// k, decision probes, witness lookups, plus a spectrum and a max-clique)
// two ways:
//
//   sequential — one query at a time through the engine API, the pre-lease
//                serving model;
//   batch      — QueryBatch::run, which executes the small queries
//                concurrently on executor threads (each leasing its own
//                scratch) and the heavy ones with full internal parallelism.
//
// Results are cross-checked query by query (non-zero exit on mismatch) and
// written to a machine-readable JSON report:
//
//   ./bench_concurrent_queries [--out BENCH_pr3.json] [--reps 3]
//                              [--concurrency 0 = one per worker]
//
// Schema: {"bench", "workers", "concurrency", "graphs": [{"name", n, m,
// "queries", "sequential_seconds", "batch_seconds", "speedup"}]}
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

/// The serving-mix stand-in: mostly small count/decision queries over a few
/// k values, a couple of witness lookups, one spectrum, one max-clique.
std::vector<BatchQuery> make_query_mix() {
  std::vector<BatchQuery> queries;
  for (int rep = 0; rep < 4; ++rep) {
    for (int k = 3; k <= 6; ++k) queries.push_back({QueryKind::Count, k, 0});
  }
  for (int k = 3; k <= 6; ++k) queries.push_back({QueryKind::HasClique, k, 0});
  queries.push_back({QueryKind::FindClique, 3, 0});
  queries.push_back({QueryKind::FindClique, 4, 0});
  queries.push_back({QueryKind::Spectrum, 0, 6});
  queries.push_back({QueryKind::MaxClique, 0, 0});
  return queries;
}

bool results_agree(const BatchResult& a, const BatchResult& b) {
  return a.count == b.count && a.found == b.found && a.omega == b.omega &&
         a.spectrum.counts == b.spectrum.counts && a.witness.size() == b.witness.size();
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int concurrency = static_cast<int>(cli.get_int("concurrency", 0));
  const std::string out_path = cli.get_string("out", "BENCH_pr3.json");

  const std::vector<bench::SmokeGraph> graphs = bench::smoke_graphs();
  const std::vector<BatchQuery> queries = make_query_mix();

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_concurrent_queries: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\"bench\": \"concurrent_queries\", \"workers\": %d, \"concurrency\": %d, "
               "\"graphs\": [",
               num_workers(), concurrency);

  bool mismatch = false;
  Table table({"graph", "queries", "sequential[s]", "batch[s]", "speedup"});
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const bench::SmokeGraph& ng = graphs[gi];
    CliqueOptions opts;
    opts.algorithm = Algorithm::C3List;
    const PreparedGraph engine(ng.graph, opts);
    engine.prepare();  // both modes measure pure query throughput

    // Best-of-reps to damp scheduler noise; identical query set both ways.
    double seq_best = 0.0, batch_best = 0.0;
    std::vector<BatchResult> seq_results, batch_results;
    for (int rep = 0; rep < reps; ++rep) {
      // Sequential baseline: the same query set, one at a time (what a
      // serving loop without the batch executor would pay).
      WallTimer seq_timer;
      seq_results = run_query_batch(engine, queries, /*concurrency=*/1);
      const double seq = seq_timer.seconds();
      seq_best = rep == 0 ? seq : std::min(seq_best, seq);

      WallTimer batch_timer;
      batch_results = run_query_batch(engine, queries, concurrency);
      const double bat = batch_timer.seconds();
      batch_best = rep == 0 ? bat : std::min(batch_best, bat);
    }

    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!results_agree(seq_results[i], batch_results[i])) {
        std::printf("!! %s query %zu (%s): batch and sequential disagree\n", ng.name.c_str(), i,
                    query_kind_name(queries[i].kind));
        mismatch = true;
      }
    }

    const double speedup = batch_best > 0.0 ? seq_best / batch_best : 0.0;
    table.add_row({ng.name, std::to_string(queries.size()), strfmt("%.3f", seq_best),
                   strfmt("%.3f", batch_best), strfmt("%.2fx", speedup)});
    std::fprintf(json,
                 "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu, \"queries\": %zu, "
                 "\"sequential_seconds\": %.6f, \"batch_seconds\": %.6f, \"speedup\": %.4f}",
                 gi > 0 ? ", " : "", ng.name.c_str(), ng.graph.num_nodes(),
                 static_cast<unsigned long long>(ng.graph.num_edges()), queries.size(), seq_best,
                 batch_best, speedup);
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);

  table.print();
  std::printf("wrote %s (%d workers)\n", out_path.c_str(), num_workers());

  if (mismatch) {
    std::fprintf(stderr, "bench_concurrent_queries: batch/sequential result mismatch\n");
    return 1;
  }
  return 0;
}
