// c3tool — command-line front end for the library.
//
//   c3tool gen      --kind social --n 10000 --m 80000 --seed 1 --out g.txt
//   c3tool stats    --in g.txt
//   c3tool count    --in g.txt --k 7 [--alg c3list|cd|hybrid|kclist|arbcount]
//   c3tool sweep    --in g.txt [--kmin 3 --kmax 0] [--alg A]   (prepare once,
//                   query every k; kmax 0 = up to the clique number)
//   c3tool maxclique --in g.txt
//   c3tool batch    --in g.txt --queries q.txt [--alg A] [--concurrency N]
//                   (prepare once, run a mixed query file through QueryBatch)
//   c3tool convert  --in g.txt --out g.metis
//
// Input format is chosen by extension (.txt/.mtx/.metis/.graph/.bin); see
// graph/io.hpp. Generators: social, collab, topo, mesh, spectral, rating,
// bio, er, rmat, ba, hypercube, complete.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

Graph generate(const CommandLine& cli) {
  const std::string kind = cli.get_string("kind", "social");
  const auto n = static_cast<node_t>(cli.get_int("n", 10'000));
  const auto m = static_cast<edge_t>(cli.get_int("m", 8 * static_cast<long long>(n)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (kind == "social") return social_like(n, m, cli.get_double("closure", 0.4), seed);
  if (kind == "collab")
    return collaboration_like(n, static_cast<count_t>(cli.get_int("papers", n / 2)),
                              static_cast<node_t>(cli.get_int("team", 16)), seed);
  if (kind == "topo")
    return topology_like(n, static_cast<node_t>(cli.get_int("attach", 3)),
                         cli.get_double("closure", 0.5), seed);
  if (kind == "mesh") return mesh_like(n, static_cast<node_t>(cli.get_int("knn", 16)), seed);
  if (kind == "spectral")
    return spectral_like(n, static_cast<node_t>(cli.get_int("band", 8)),
                         static_cast<node_t>(cli.get_int("window", 24)),
                         static_cast<node_t>(cli.get_int("stride", 12)), seed);
  if (kind == "rating")
    return rating_projection(n, static_cast<node_t>(cli.get_int("items", 120)),
                             static_cast<node_t>(cli.get_int("ratings", 8)), seed);
  if (kind == "bio")
    return bio_like(n, m, static_cast<node_t>(cli.get_int("modules", 60)),
                    static_cast<node_t>(cli.get_int("module_size", 22)),
                    cli.get_double("density", 0.7), seed);
  if (kind == "er") return erdos_renyi(n, m, seed);
  if (kind == "rmat") return rmat(n, m, 0.57, 0.19, 0.19, seed);
  if (kind == "ba") return barabasi_albert(n, static_cast<node_t>(cli.get_int("attach", 3)), seed);
  if (kind == "hypercube") return hypercube(static_cast<node_t>(cli.get_int("dim", 10)));
  if (kind == "complete") return complete_graph(n);
  std::fprintf(stderr, "c3tool: unknown generator kind '%s'\n", kind.c_str());
  std::exit(2);
}

void write_any(const Graph& g, const std::string& out) {
  if (out.size() >= 4 && out.substr(out.size() - 4) == ".bin") {
    write_graph_binary(out, g);
  } else if (out.size() >= 6 && out.substr(out.size() - 6) == ".metis") {
    write_graph_metis(out, g);
  } else {
    write_edge_list(out, g);
  }
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "c3list") return Algorithm::C3List;
  if (name == "cd") return Algorithm::C3ListCD;
  if (name == "hybrid") return Algorithm::Hybrid;
  if (name == "kclist") return Algorithm::KCList;
  if (name == "arbcount") return Algorithm::ArbCount;
  if (name == "brute") return Algorithm::BruteForce;
  std::fprintf(stderr, "c3tool: unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

int cmd_gen(const CommandLine& cli) {
  const Graph g = generate(cli);
  const std::string out = cli.get_string("out", "graph.txt");
  write_any(g, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_stats(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const GraphStats s = compute_stats(g);
  const node_t sigma = community_degeneracy(g);
  Table t({"|V|", "|E|", "|T|", "s", "sigma", "maxdeg", "E/V", "T/V", "T/E"});
  t.add_row({with_commas(s.nodes), with_commas(s.edges), with_commas(s.triangles),
             std::to_string(s.degeneracy), std::to_string(sigma), std::to_string(s.max_degree),
             strfmt("%.2f", s.edges_per_node), strfmt("%.2f", s.triangles_per_node),
             strfmt("%.2f", s.triangles_per_edge)});
  t.print();
  return 0;
}

int cmd_count(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const int k = static_cast<int>(cli.get_int("k", 5));
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));
  opts.triangle_growth = cli.has_flag("triangle-growth");
  if (cli.has_flag("no-prune")) opts.distance_pruning = false;
  WallTimer timer;
  const CliqueResult r = count_cliques(g, k, opts);
  std::printf("%llu %d-cliques in %.3f s (%s; prep %.3f s, gamma %u)\n",
              static_cast<unsigned long long>(r.count), k, timer.seconds(),
              algorithm_name(opts.algorithm), r.stats.preprocess_seconds, r.stats.gamma);
  return 0;
}

int cmd_sweep(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const int kmin = static_cast<int>(cli.get_int("kmin", 3));
  const int kmax = static_cast<int>(cli.get_int("kmax", 0));
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));
  opts.triangle_growth = cli.has_flag("triangle-growth");
  if (cli.has_flag("no-prune")) opts.distance_pruning = false;

  // Prepare once; every query below reuses the artifacts (its stats report
  // zero preprocess seconds).
  const PreparedGraph engine(g, opts);
  WallTimer prep_timer;
  engine.prepare();
  const int hi = kmax > 0 ? kmax : static_cast<int>(engine.clique_number_upper_bound());
  std::printf("%s prepared in %.3f s (omega <= %d)\n", algorithm_name(opts.algorithm),
              prep_timer.seconds(), static_cast<int>(engine.clique_number_upper_bound()));

  Table t({"k", "#cliques", "search[s]"});
  for (int k = kmin; k <= hi; ++k) {
    const CliqueResult r = engine.count(k);
    t.add_row({std::to_string(k), with_commas(r.count), strfmt("%.3f", r.stats.search_seconds)});
    if (r.count == 0 && k >= 3) break;  // past the clique number
  }
  t.print();
  return 0;
}

/// Parses one query-file line into a BatchQuery. Grammar (one query per
/// line; blank lines and everything from '#' to end of line are skipped):
///   count K | hasclique K | findclique K | vertexcounts K | edgecounts K
///   | spectrum [KMAX] | maxclique
/// Malformed arguments and trailing garbage are hard errors (exit 2), not
/// silently ignored — a typo must not degrade into a different (possibly
/// far more expensive) query.
bool parse_query_line(const std::string& line, BatchQuery& out) {
  std::istringstream in(line.substr(0, line.find('#')));
  std::string kind;
  if (!(in >> kind)) return false;

  const auto fail = [&line]() {
    std::fprintf(stderr, "c3tool batch: cannot parse query line '%s'\n", line.c_str());
    std::exit(2);
  };
  const auto end_of_line = [&in]() {
    std::string tail;
    return !(in >> tail);
  };

  int k = 0;
  if (kind == "count" && (in >> k) && k > 0) {
    out = {QueryKind::Count, k, 0};
  } else if (kind == "hasclique" && (in >> k) && k > 0) {
    out = {QueryKind::HasClique, k, 0};
  } else if (kind == "findclique" && (in >> k) && k > 0) {
    out = {QueryKind::FindClique, k, 0};
  } else if (kind == "vertexcounts" && (in >> k) && k > 0) {
    out = {QueryKind::PerVertexCounts, k, 0};
  } else if (kind == "edgecounts" && (in >> k) && k > 0) {
    out = {QueryKind::PerEdgeCounts, k, 0};
  } else if (kind == "spectrum") {
    int kmax = 0;
    std::string arg;
    if (in >> arg) {  // optional KMAX; if present it must be all digits
      if (arg.find_first_not_of("0123456789") != std::string::npos) fail();
      try {
        kmax = std::stoi(arg);
      } catch (const std::exception&) {
        fail();  // out of int range
      }
    }
    out = {QueryKind::Spectrum, 0, kmax};
  } else if (kind == "maxclique") {
    out = {QueryKind::MaxClique, 0, 0};
  } else {
    fail();
  }
  if (!end_of_line()) fail();
  return true;
}

int cmd_batch(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const std::string queries_path = cli.get_string("queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "c3tool batch: --queries FILE is required\n");
    return 2;
  }
  std::ifstream in(queries_path);
  if (!in) {
    std::fprintf(stderr, "c3tool batch: cannot read %s\n", queries_path.c_str());
    return 2;
  }
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));

  const PreparedGraph engine(g, opts);
  QueryBatch batch(engine);
  std::string line;
  while (std::getline(in, line)) {
    BatchQuery q;
    if (parse_query_line(line, q)) (void)batch.add(q);
  }
  if (batch.size() == 0) {
    std::fprintf(stderr, "c3tool batch: %s holds no queries\n", queries_path.c_str());
    return 2;
  }

  WallTimer prep_timer;
  engine.prepare();
  const double prep = prep_timer.seconds();
  WallTimer batch_timer;
  const std::vector<BatchResult> results =
      batch.run(static_cast<int>(cli.get_int("concurrency", 0)));
  const double total = batch_timer.seconds();

  Table t({"#", "query", "k", "result", "time[s]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BatchResult& r = results[i];
    std::string result;
    switch (r.kind) {
      case QueryKind::Count:
        result = with_commas(r.count) + " cliques";
        break;
      case QueryKind::HasClique:
        result = r.found ? "yes" : "no";
        break;
      case QueryKind::FindClique:
        result = r.found ? strfmt("witness of %zu", r.witness.size()) : "none";
        break;
      case QueryKind::PerVertexCounts:
      case QueryKind::PerEdgeCounts: {
        count_t nonzero = 0;
        for (const count_t c : r.per_counts) nonzero += c > 0 ? 1 : 0;
        result = strfmt("%zu entries, %llu nonzero", r.per_counts.size(),
                        static_cast<unsigned long long>(nonzero));
        break;
      }
      case QueryKind::Spectrum:
        result = strfmt("omega %u, %zu sizes", r.spectrum.omega, r.spectrum.counts.size());
        break;
      case QueryKind::MaxClique:
        result = strfmt("omega %u", r.omega);
        break;
    }
    t.add_row({std::to_string(i), query_kind_name(r.kind),
               r.kind == QueryKind::Spectrum ? std::to_string(batch.queries()[i].kmax)
                                             : std::to_string(r.k),
               result, strfmt("%.3f", r.seconds)});
  }
  t.print();
  std::printf("%zu queries in %.3f s wall (prepare %.3f s, %s)\n", results.size(), total, prep,
              algorithm_name(opts.algorithm));
  return 0;
}

int cmd_maxclique(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  WallTimer timer;
  const auto witness = find_max_clique(g);
  std::printf("omega = %zu (%.3f s); witness:", witness.size(), timer.seconds());
  for (const node_t v : witness) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

int cmd_convert(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const std::string out = cli.get_string("out", "graph.bin");
  write_any(g, out);
  std::printf("converted to %s (%u vertices, %llu edges)\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

void usage() {
  std::puts(
      "usage: c3tool <gen|stats|count|sweep|maxclique|batch|convert> [--flags]\n"
      "  gen       --kind K --n N [--m M --seed S] --out FILE\n"
      "  stats     --in FILE\n"
      "  count     --in FILE --k K [--alg A] [--triangle-growth] [--no-prune]\n"
      "  sweep     --in FILE [--kmin 3] [--kmax 0] [--alg A]  (prepare once, all k)\n"
      "  maxclique --in FILE\n"
      "  batch     --in FILE --queries FILE [--alg A] [--concurrency N]\n"
      "            query file lines: count K | hasclique K | findclique K |\n"
      "            vertexcounts K | edgecounts K | spectrum [KMAX] | maxclique\n"
      "  convert   --in FILE --out FILE");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const CommandLine cli(argc - 1, argv + 1);
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "stats") return cmd_stats(cli);
    if (command == "count") return cmd_count(cli);
    if (command == "sweep") return cmd_sweep(cli);
    if (command == "maxclique") return cmd_maxclique(cli);
    if (command == "batch") return cmd_batch(cli);
    if (command == "convert") return cmd_convert(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "c3tool: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
