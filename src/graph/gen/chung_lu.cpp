#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {

// Chung-Lu: each endpoint of each edge is drawn proportionally to a weight
// w_v ~ v^(-exponent) (Zipf). Sampling uses the inverse-CDF over the weight
// prefix sums, so expected degrees follow the weights and the expected edge
// count is exactly m.
Graph chung_lu(node_t n, edge_t m, double exponent, std::uint64_t seed) {
  if (n < 2) return build_graph(EdgeList{}, n);

  std::vector<double> cdf(n);
  double total = 0.0;
  for (node_t v = 0; v < n; ++v) {
    total += std::pow(static_cast<double>(v + 1), -exponent);
    cdf[v] = total;
  }
  for (node_t v = 0; v < n; ++v) cdf[v] /= total;

  auto sample = [&](Xoshiro256& rng) -> node_t {
    const double r = rng.next_double();
    // Binary search the inverse CDF.
    node_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const node_t mid = lo + (hi - lo) / 2;
      if (cdf[mid] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  EdgeList edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    Xoshiro256 rng = Xoshiro256(seed).fork(i);
    node_t u, v;
    do {
      u = sample(rng);
      v = sample(rng);
    } while (u == v);
    edges[i] = Edge{u, v};
  });
  return build_graph(edges, n);
}

// Social-network stand-in (Orkut): Chung-Lu skeleton for the heavy-tailed
// degrees, plus triadic-closure edges (connect two random neighbors of a
// random vertex) for the high triangle density and degeneracy of social
// graphs (Table 2: Orkut, T/E 5.4, s 253).
Graph social_like(node_t n, edge_t m, double closure_fraction, std::uint64_t seed) {
  const auto closure_edges = static_cast<edge_t>(static_cast<double>(m) * closure_fraction);
  const edge_t skeleton_edges = m > closure_edges ? m - closure_edges : m;
  const Graph skeleton = chung_lu(n, skeleton_edges, 0.55, seed);

  EdgeList edges(skeleton.endpoints().begin(), skeleton.endpoints().end());
  Xoshiro256 rng = Xoshiro256(seed).fork(0x50C1A1);
  for (edge_t i = 0; i < closure_edges; ++i) {
    const auto v = static_cast<node_t>(rng.next_below(n));
    const auto nbrs = skeleton.neighbors(v);
    if (nbrs.size() < 2) continue;
    const node_t a = nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
    const node_t b = nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
    if (a != b) edges.push_back(Edge{a, b});
  }
  return build_graph(edges, n);
}

// Gene-association stand-in (Bio-SC-HT): sparse Chung-Lu background plus
// dense random modules (protein complexes / functional groups), giving very
// high T/E at moderate size (Table 2: Bio-SC-HT, T/E 22.2, s 100).
Graph bio_like(node_t n, edge_t m, node_t modules, node_t module_size, double module_density,
               std::uint64_t seed) {
  const Graph background = chung_lu(n, m, 0.8, seed);
  EdgeList edges(background.endpoints().begin(), background.endpoints().end());
  Xoshiro256 rng = Xoshiro256(seed).fork(0xB10);
  for (node_t mod = 0; mod < modules; ++mod) {
    // Random members (possibly overlapping across modules, like real
    // pathway annotations).
    std::vector<node_t> members(module_size);
    for (auto& v : members) v = static_cast<node_t>(rng.next_below(n));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j] && rng.next_double() < module_density) {
          edges.push_back(Edge{members[i], members[j]});
        }
      }
    }
  }
  return build_graph(edges, n);
}

}  // namespace c3
