// Local subgraph representation for the recursive search.
//
// Algorithm 1 preprocesses each qualifying edge e by renaming its community
// C(e) to consecutive integers and building "an adjacency matrix of G[C(e)]"
// with "a boolean indicator table" per edge (Section 2.2). We realize both
// as bitset rows over the local universe: row(a) holds the local neighbors
// of a, so edge probes are single bit tests and community intersections are
// word-parallel ANDs.
//
// Local ids are assigned in ascending rank order, so the total order of the
// orientation is the natural `<` on local ids and the paper's distance
// function delta_I is an index difference in the sorted candidate array.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/common.hpp"
#include "graph/digraph.hpp"
#include "util/bitwords.hpp"

namespace c3 {

/// Reusable per-worker storage for one local subgraph and the recursion
/// stacks on top of it. Sized for the largest community met so far; reused
/// across top-level edges to avoid allocation in the hot loop.
class LocalGraph {
 public:
  /// Prepares an empty local graph over `n` vertices (clears rows).
  void reset(int n);

  /// Number of local vertices.
  [[nodiscard]] int size() const noexcept { return n_; }

  /// Words per bitset row.
  [[nodiscard]] int words() const noexcept { return words_; }

  /// Adds the undirected edge {a, b} (sets both direction bits).
  void add_edge(int a, int b) noexcept {
    bits::set_bit(row_mut(a), static_cast<std::size_t>(b));
    bits::set_bit(row_mut(b), static_cast<std::size_t>(a));
  }

  [[nodiscard]] bool has_edge(int a, int b) const noexcept {
    return bits::test_bit(row(a), static_cast<std::size_t>(b));
  }

  [[nodiscard]] const std::uint64_t* row(int a) const noexcept {
    return rows_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(words_);
  }

  [[nodiscard]] std::uint64_t* row_mut(int a) noexcept {
    return rows_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(words_);
  }

  /// Local degree of a (popcount of its row).
  [[nodiscard]] int degree(int a) const noexcept {
    return static_cast<int>(bits::popcount(row(a), static_cast<std::size_t>(words_)));
  }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> rows_;
};

/// Populates `lg` with the subgraph of `dag` induced by `members` (global
/// ranks, sorted ascending). Every arc between members is found in the
/// out-list of its lower endpoint via a sorted two-pointer intersection:
/// O(sum over members of (out-degree + |members|)).
void build_local_graph(const Digraph& dag, std::span<const node_t> members, LocalGraph& lg);

}  // namespace c3
