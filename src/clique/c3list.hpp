// c3List — the paper's community-centric k-clique listing algorithm
// (Algorithm 1 driving Algorithm 2).
//
// Pipeline: orient the graph by a total vertex order (Section 4), build and
// sort all edge communities (Section 2.2), then — in parallel over the edges
// supporting at least k-2 triangles — rename each community to a local
// universe, build its indicator-table adjacency, and run the recursive
// search for (k-2)-cliques inside it. Work/depth bounds: Theorem 2.1,
// instantiated by the chosen order per Table 1.
//
// The pipeline is split into a prepare half (order + orientation +
// communities, owned by PreparedGraph in engine.hpp) and the search half
// below, so one preparation can serve many k queries.
#pragma once

#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "parallel/padded.hpp"
#include "triangle/communities.hpp"

namespace c3 {

/// Counts all k-cliques of g. Options select the orientation (exact
/// degeneracy, (2+eps)-approximate, or by id) and the pruning ablation.
[[nodiscard]] CliqueResult c3list_count(const Graph& g, int k, const CliqueOptions& opts = {});

/// Lists all k-cliques of g through `callback` (see CliqueCallback for the
/// early-exit contract). Returns the number of cliques reported.
[[nodiscard]] CliqueResult c3list_list(const Graph& g, int k, const CliqueCallback& callback,
                                       const CliqueOptions& opts = {});

/// Search half of Algorithm 1 on prepared artifacts: requires k >= 3, an
/// oriented `dag` and its edge communities. `callback` may be null
/// (counting). `scratch` is this query's leased state — reset here, reused
/// warm across queries, and the only mutable state the search touches, so
/// concurrent callers with distinct leases never interfere. Stats report
/// only the search (preprocess_seconds stays 0).
[[nodiscard]] CliqueResult c3list_search(const Digraph& dag, const EdgeCommunities& comms, int k,
                                         const CliqueCallback* callback, const CliqueOptions& opts,
                                         QueryScratch& scratch);

}  // namespace c3
