#include "order/degeneracy.hpp"

#include <algorithm>
#include <vector>

namespace c3 {

// Batagelj-Zaversnik bin-sort peeling, O(n + m). Vertices sit in `verts`
// sorted ascending by current degree, partitioned into per-degree blocks
// whose left boundaries are `bin[d]`. The sweep processes `verts` left to
// right; decrementing a neighbor moves it to the front of its block (one
// swap) and advances that block boundary. The guard `deg[w] > deg[v]`
// simultaneously skips processed vertices and clamps degrees at the current
// peel level, which makes removal degrees non-decreasing — so the degree at
// removal *is* the core number, and the maximum is the degeneracy.
DegeneracyResult degeneracy_order(const Graph& g) {
  const node_t n = g.num_nodes();
  DegeneracyResult result;
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<node_t> deg(n);
  node_t max_deg = 0;
  for (node_t v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  // Counting sort of vertices by degree.
  std::vector<node_t> bin(max_deg + 2, 0);
  for (node_t v = 0; v < n; ++v) bin[deg[v] + 1]++;
  for (node_t d = 0; d <= max_deg; ++d) bin[d + 1] += bin[d];
  std::vector<node_t> verts(n), pos(n);
  {
    std::vector<node_t> cursor(bin.begin(), bin.end() - 1);
    for (node_t v = 0; v < n; ++v) {
      const node_t p = cursor[deg[v]]++;
      verts[p] = v;
      pos[v] = p;
    }
  }

  result.order.resize(n);
  node_t degeneracy = 0;
  for (node_t i = 0; i < n; ++i) {
    const node_t v = verts[i];
    result.order[i] = v;
    result.core[v] = deg[v];
    degeneracy = std::max(degeneracy, deg[v]);
    for (const node_t w : g.neighbors(v)) {
      if (deg[w] > deg[v]) {
        const node_t dw = deg[w];
        const node_t pw = pos[w];
        const node_t pt = bin[dw];  // front of w's block
        const node_t t = verts[pt];
        if (w != t) {
          std::swap(verts[pw], verts[pt]);
          pos[w] = pt;
          pos[t] = pw;
        }
        ++bin[dw];
        --deg[w];
      }
    }
  }
  result.degeneracy = degeneracy;
  return result;
}

}  // namespace c3
