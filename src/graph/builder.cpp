#include "graph/builder.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"

namespace c3 {

Graph build_graph(std::span<const Edge> edges, node_t num_nodes) {
  // Infer the vertex count when not provided.
  node_t n = num_nodes;
  if (n == 0 && !edges.empty()) {
    const node_t max_id = parallel_reduce(
        0, edges.size(), node_t{0},
        [&](std::size_t i) { return std::max(edges[i].u, edges[i].v); },
        [](node_t a, node_t b) { return std::max(a, b); });
    n = max_id + 1;
  }
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) throw std::invalid_argument("build_graph: vertex id out of range");
  }

  // Pass 1: symmetrized degree histogram (self-loops dropped).
  std::vector<std::atomic<edge_t>> counts(n);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge e = edges[i];
    if (e.u == e.v) return;
    counts[e.u].fetch_add(1, std::memory_order_relaxed);
    counts[e.v].fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<edge_t> offsets(n + 1);
  {
    std::vector<edge_t> degree(n);
    parallel_for(0, n, [&](std::size_t u) { degree[u] = counts[u].load(std::memory_order_relaxed); });
    offsets[n] = exclusive_scan<edge_t>(degree, std::span<edge_t>(offsets.data(), n));
  }

  // Pass 2: scatter both directions (unsorted, possibly duplicated).
  std::vector<node_t> adj(offsets[n]);
  std::vector<std::atomic<edge_t>> cursor(n);
  parallel_for(0, n, [&](std::size_t u) { cursor[u].store(offsets[u], std::memory_order_relaxed); });
  parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge e = edges[i];
    if (e.u == e.v) return;
    adj[cursor[e.u].fetch_add(1, std::memory_order_relaxed)] = e.v;
    adj[cursor[e.v].fetch_add(1, std::memory_order_relaxed)] = e.u;
  });

  // Pass 3: per-vertex sort + dedup; record the deduplicated degree.
  std::vector<edge_t> dedup_degree(n);
  parallel_for(
      0, n,
      [&](std::size_t u) {
        node_t* lo = adj.data() + offsets[u];
        node_t* hi = adj.data() + offsets[u + 1];
        std::sort(lo, hi);
        dedup_degree[u] = static_cast<edge_t>(std::unique(lo, hi) - lo);
      },
      64);

  // Pass 4: compact into the final CSR.
  std::vector<edge_t> final_offsets(n + 1);
  final_offsets[n] =
      exclusive_scan<edge_t>(dedup_degree, std::span<edge_t>(final_offsets.data(), n));
  std::vector<node_t> final_adj(final_offsets[n]);
  parallel_for(
      0, n,
      [&](std::size_t u) {
        std::copy(adj.data() + offsets[u], adj.data() + offsets[u] + dedup_degree[u],
                  final_adj.data() + final_offsets[u]);
      },
      64);

  // Pass 5: assign undirected edge ids. The slot at the lower endpoint of
  // each edge gets a fresh id (ids are dense in [0, m), ordered by
  // (min endpoint, max endpoint)); the mirrored slot looks it up.
  std::vector<edge_t> lower_count(n);
  parallel_for(0, n, [&](std::size_t u) {
    const node_t* lo = final_adj.data() + final_offsets[u];
    const node_t* hi = final_adj.data() + final_offsets[u + 1];
    lower_count[u] =
        static_cast<edge_t>(hi - std::lower_bound(lo, hi, static_cast<node_t>(u + 1)));
  });
  std::vector<edge_t> id_base(n + 1);
  const edge_t m = exclusive_scan<edge_t>(lower_count, std::span<edge_t>(id_base.data(), n));
  id_base[n] = m;
  assert(m * 2 == final_adj.size());

  std::vector<edge_t> edge_ids(final_adj.size());
  // First the canonical (u < v) slots...
  parallel_for(0, n, [&](std::size_t u) {
    const node_t* lo = final_adj.data() + final_offsets[u];
    const node_t* hi = final_adj.data() + final_offsets[u + 1];
    const node_t* first_upper = std::lower_bound(lo, hi, static_cast<node_t>(u + 1));
    edge_t id = id_base[u];
    for (const node_t* p = first_upper; p < hi; ++p) {
      edge_ids[static_cast<std::size_t>(p - final_adj.data())] = id++;
    }
  });
  // ...then the mirrored (u > v) slots via binary search at the lower side.
  parallel_for(0, n, [&](std::size_t u) {
    const node_t* lo = final_adj.data() + final_offsets[u];
    const node_t* hi = final_adj.data() + final_offsets[u + 1];
    for (const node_t* p = lo; p < hi && *p < static_cast<node_t>(u); ++p) {
      const node_t v = *p;  // v < u: the id lives at v's slice
      const node_t* vlo = final_adj.data() + final_offsets[v];
      const node_t* vhi = final_adj.data() + final_offsets[v + 1];
      const node_t* pos = std::lower_bound(vlo, vhi, static_cast<node_t>(u));
      assert(pos != vhi && *pos == static_cast<node_t>(u));
      edge_ids[static_cast<std::size_t>(p - final_adj.data())] =
          edge_ids[static_cast<std::size_t>(pos - final_adj.data())];
    }
  });

  return Graph(std::move(final_offsets), std::move(final_adj), std::move(edge_ids));
}

}  // namespace c3
