// ArbCount — the baseline of Shi, Dhulipala, Shun, "Parallel clique counting
// and peeling algorithms" (2020; GBBS).
//
// Same clique-growing scheme as kcList, with the two changes the paper
// attributes to Shi et al. (Sections 1.2 and 4.1): (i) the orientation uses
// the low-depth (2+eps)-approximate degeneracy order instead of the
// sequential exact one, and (ii) the recursive search runs on *induced
// subgraphs re-represented per top-level vertex* ("improvements in the data
// structure used to represent the graph during the recursive search") — here
// the same renamed bitset representation the core algorithm uses, where
// candidate-set intersections are word-parallel. Work
// O(m (s(1+eps))^(k-2)) in expectation, depth O(k log n + log^2 n) whp.
#pragma once

#include "clique/c3list.hpp"
#include "clique/common.hpp"
#include "clique/scratch.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "parallel/padded.hpp"

namespace c3 {

/// Counts all k-cliques with ArbCount.
[[nodiscard]] CliqueResult arbcount_count(const Graph& g, int k, const CliqueOptions& opts = {});

/// Listing variant.
[[nodiscard]] CliqueResult arbcount_list(const Graph& g, int k, const CliqueCallback& callback,
                                         const CliqueOptions& opts = {});

/// Search half on a prepared orientation: requires k >= 3. `callback` may be
/// null (counting). `scratch` is this query's leased state (see
/// c3list_search).
[[nodiscard]] CliqueResult arbcount_search(const Digraph& dag, int k,
                                           const CliqueCallback* callback,
                                           const CliqueOptions& opts, QueryScratch& scratch);

}  // namespace c3
