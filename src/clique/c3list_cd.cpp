#include "clique/c3list_cd.hpp"

#include <algorithm>
#include <atomic>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Builds the local subgraph over V'(e) = `members` (sorted by vertex id,
/// which serves as the inner total order): the pair {a, b} is an edge iff it
/// is an edge of g *and* ordered after e in the edge order. The recursion
/// must stay within the subgraph (V, E[e <=]) so that e is the unique
/// lowest-ordered edge of every clique reported under it.
void build_local_graph_cd(const Graph& g, std::span<const node_t> members,
                          std::span<const edge_t> edge_pos, edge_t epos, LocalGraph& lg) {
  const int n = static_cast<int>(members.size());
  lg.reset(n);
  for (int a = 0; a < n; ++a) {
    const node_t va = members[static_cast<std::size_t>(a)];
    const auto nbrs = g.neighbors(va);
    const auto ids = g.edge_ids(va);
    // Two-pointer over (neighbors of va) x (members above a); each local
    // edge is discovered once, at its lower endpoint.
    std::size_t i = 0;
    std::size_t j = static_cast<std::size_t>(a) + 1;
    while (i < nbrs.size() && j < members.size()) {
      if (nbrs[i] < members[j]) {
        ++i;
      } else if (nbrs[i] > members[j]) {
        ++j;
      } else {
        if (edge_pos[ids[i]] > epos) lg.add_edge(a, static_cast<int>(j));
        ++i;
        ++j;
      }
    }
  }
}

}  // namespace

CliqueResult c3list_cd_search(const Graph& g, const EdgeOrderResult& order, int k,
                              const CliqueCallback* callback, const CliqueOptions& opts,
                              QueryScratch& scratch) {
  CliqueResult result;
  result.stats.order_quality = order.sigma;

  WallTimer search_timer;
  // Algorithm 3, line 3: every edge whose candidate set can hold k-2 more
  // vertices spawns a search task.
  const auto needed = static_cast<node_t>(k - 2);
  const std::vector<edge_t> tasks = pack_index<edge_t>(g.num_edges(), [&](std::size_t e) {
    return order.candidate_count(static_cast<edge_t>(e)) >= needed;
  });
  result.stats.top_level_tasks = tasks.size();

  node_t gamma = 0;
  for (const edge_t e : tasks) gamma = std::max(gamma, order.candidate_count(e));
  result.stats.gamma = gamma;

  const auto endpoints = g.endpoints();
  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;

  parallel_for_dynamic(
      0, tasks.size(),
      [&](std::size_t t) {
        if (stop.load(std::memory_order_relaxed)) return;
        CliqueScratch& w = scratch.local();
        const edge_t e = tasks[t];
        const auto members = order.candidates(e);
        // Algorithm 3, line 4: V' <- community of e among later edges.
        build_local_graph_cd(g, members, order.pos, order.pos[e], w.lg);
        w.ctx.lg = &w.lg;
        w.ctx.prune = opts.distance_pruning;
        w.ctx.ctr = &w.ctr;
        w.ctx.callback = callback;
        w.ctx.stop = callback != nullptr ? &stop : nullptr;
        if (callback != nullptr) {
          // V'(e) members are original vertex ids already.
          w.ctx.member_to_orig = members.data();
          w.ctx.clique_stack.clear();
          w.ctx.clique_stack.push_back(endpoints[e].u);
          w.ctx.clique_stack.push_back(endpoints[e].v);
        }
        // Algorithm 3, line 5: recurse with c = k - 2.
        w.count += search_cliques_all(w.ctx, k - 2, opts.triangle_growth);
      },
      1);

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult c3list_cd_count_with_order(const Graph& g, int k, const EdgeOrderResult& order,
                                        const CliqueOptions& opts) {
  if (k <= 2) {
    CliqueOptions o = opts;
    o.algorithm = Algorithm::C3ListCD;
    CliqueResult result = PreparedGraph(g, o).count(k);
    result.stats.order_quality = order.sigma;
    return result;
  }
  QueryScratch scratch;
  return c3list_cd_search(g, order, k, nullptr, opts, scratch);
}

CliqueResult c3list_cd_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::C3ListCD;
  return PreparedGraph(g, o).count(k);
}

CliqueResult c3list_cd_list(const Graph& g, int k, const CliqueCallback& callback,
                            const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::C3ListCD;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
