#include "clique/api.hpp"

#include <stdexcept>

#include "clique/arbcount.hpp"
#include "clique/bruteforce.hpp"
#include "clique/c3list_cd.hpp"
#include "clique/hybrid.hpp"
#include "clique/kclist.hpp"

namespace c3 {

CliqueResult count_cliques(const Graph& g, int k, const CliqueOptions& opts) {
  switch (opts.algorithm) {
    case Algorithm::C3List:
      return c3list_count(g, k, opts);
    case Algorithm::C3ListCD:
      return c3list_cd_count(g, k, opts);
    case Algorithm::Hybrid:
      return hybrid_count(g, k, opts);
    case Algorithm::KCList:
      return kclist_count(g, k, opts);
    case Algorithm::ArbCount:
      return arbcount_count(g, k, opts);
    case Algorithm::BruteForce: {
      CliqueResult r;
      r.count = brute_force_count(g, k);
      r.stats.cliques = r.count;
      return r;
    }
  }
  throw std::invalid_argument("count_cliques: unknown algorithm");
}

CliqueResult list_cliques(const Graph& g, int k, const CliqueCallback& callback,
                          const CliqueOptions& opts) {
  switch (opts.algorithm) {
    case Algorithm::C3List:
      return c3list_list(g, k, callback, opts);
    case Algorithm::C3ListCD:
      return c3list_cd_list(g, k, callback, opts);
    case Algorithm::Hybrid:
      return hybrid_list(g, k, callback, opts);
    case Algorithm::KCList:
      return kclist_list(g, k, callback, opts);
    case Algorithm::ArbCount:
      return arbcount_list(g, k, callback, opts);
    case Algorithm::BruteForce: {
      CliqueResult r;
      r.count = brute_force_list(g, k, callback);
      r.stats.cliques = r.count;
      return r;
    }
  }
  throw std::invalid_argument("list_cliques: unknown algorithm");
}

const char* algorithm_name(Algorithm alg) noexcept {
  switch (alg) {
    case Algorithm::C3List:
      return "c3List";
    case Algorithm::C3ListCD:
      return "c3List-CD";
    case Algorithm::Hybrid:
      return "Hybrid";
    case Algorithm::KCList:
      return "kcList";
    case Algorithm::ArbCount:
      return "ArbCount";
    case Algorithm::BruteForce:
      return "BruteForce";
  }
  return "?";
}

}  // namespace c3
