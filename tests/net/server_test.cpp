// CliqueServer loopback acceptance: many concurrent client connections
// against a mixed catalog (one in-memory graph, one snapshot-backed), every
// answer byte-identical to a direct CliqueService::run, repeated questions
// hitting the answer cache, truncated answers never replayed from it,
// admin commands over the wire, idle-timeout closes, and graceful shutdown.
#include "net/server.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "clique/service.hpp"
#include "graph/gen/generators.hpp"
#include "net/client.hpp"
#include "snapshot/snapshot.hpp"

namespace c3::net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: parallel ctest runs each TEST_F as its own
    // process, and a shared path would race TearDown's remove_all.
    dir_ = std::filesystem::temp_directory_path() /
           ("c3list_server_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    // Two-graph catalog: "mem" lives in memory, "snap" is written offline
    // and registered as a lazily-opened snapshot — the c3serve shape.
    const Graph mem_graph = social_like(220, 1700, 0.45, 23);
    const Graph snap_graph = erdos_renyi(150, 1100, 31);
    const PreparedGraph offline(snap_graph, {});
    snapshot_path_ = dir_ / "snap.c3snap";
    snapshot::write(snapshot_path_, offline);

    service_.add_graph("mem", mem_graph);
    service_.add_snapshot("snap", snapshot_path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Ground truth for `<id> <query>` straight through the service.
  std::string direct(const std::string& request) {
    const std::size_t space = request.find(' ');
    return format_answer(
        service_.run(request.substr(0, space), parse_query(request.substr(space + 1))));
  }

  CliqueService service_;
  std::filesystem::path dir_;
  std::filesystem::path snapshot_path_;
};

TEST_F(ServerTest, ConcurrentClientsGetGroundTruthAnswersAndCacheHits) {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.max_inflight_per_graph = 3;
  CliqueServer server(service_, opts);
  server.start();
  ASSERT_GT(server.port(), 0);

  // Every request a client will send, with its expected answer precomputed.
  const std::vector<std::string> requests = {
      "mem count 4",  "mem hasclique 3",  "mem spectrum",       "mem maxclique witness=0",
      "snap count 4", "snap hasclique 3", "snap vertexcounts 3", "snap count 5",
  };
  std::map<std::string, std::string> expected;
  for (const std::string& r : requests) expected[r] = direct(r);

  constexpr int kClients = 8;
  constexpr int kReps = 4;  // every client repeats its rotation: cache food
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
        for (int rep = 0; rep < kReps; ++rep) {
          const std::string& request = requests[(c + rep) % requests.size()];
          const std::string answer = client.request(request);
          if (answer != expected[request]) {
            failures[c] = "for '" + request + "' got '" + answer + "'";
          }
        }
        if (client.request("ping") != "pong") failures[c] = "ping failed";
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  // One more client re-asks a settled question: with every answer inserted
  // by now, this is deterministically a cache hit.
  {
    LineClient extra("127.0.0.1", static_cast<std::uint16_t>(server.port()));
    EXPECT_EQ(extra.request("mem count 4"), expected["mem count 4"]);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients) + 1);
  EXPECT_EQ(stats.frontend.requests, static_cast<std::uint64_t>(kClients) * kReps + 1);
  EXPECT_EQ(stats.frontend.answered, static_cast<std::uint64_t>(kClients) * kReps + 1);
  EXPECT_EQ(stats.frontend.errors, 0u);
  EXPECT_GT(stats.frontend.cache_hits, 0u);
  EXPECT_LE(stats.frontend.cache.entries, requests.size());

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, TruncatedAnswersAreRecomputedNotReplayed) {
  ServerOptions opts;
  opts.port = 0;
  CliqueServer server(service_, opts);
  server.start();

  LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
  const std::string first = client.request("mem list 3 limit=1");
  ASSERT_NE(first.find("[truncated]"), std::string::npos) << first;
  const std::string second = client.request("mem list 3 limit=1");
  EXPECT_EQ(second, first);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frontend.cache_hits, 0u) << "a truncated answer was replayed";
  EXPECT_EQ(stats.frontend.cache.insertions, 0u);
  server.stop();
}

TEST_F(ServerTest, AdminCommandsOverTheWire) {
  ServerOptions opts;
  opts.port = 0;
  CliqueServer server(service_, opts);
  server.start();

  LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
  EXPECT_EQ(client.request("ping"), "pong");
  EXPECT_EQ(client.request("catalog"), "catalog: mem snap");
  (void)client.request("mem count 3");
  const std::string stats_line = client.request("stats");
  EXPECT_EQ(stats_line.rfind("stats: requests=1 ", 0), 0u) << stats_line;
  EXPECT_NE(stats_line.find("connections=1"), std::string::npos) << stats_line;

  const std::string error = client.request("nosuch count 3");
  EXPECT_EQ(error.rfind("error: ", 0), 0u) << error;

  // quit: one "bye", then the server closes the connection.
  EXPECT_EQ(client.request("quit"), "bye");
  EXPECT_FALSE(client.read_line().has_value()) << "connection must be closed after quit";
  server.stop();
}

TEST_F(ServerTest, MetricsScrapeAndTraceExportOverTheWire) {
  ServerOptions opts;
  opts.port = 0;
  CliqueServer server(service_, opts);
  server.start();

  LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
  // Drive a miss, a hit, and an error so the exposition has real values.
  (void)client.request("mem count 4");
  (void)client.request("mem count 4");
  (void)client.request("nosuch count 3");

  const std::string text = client.scrape_metrics();
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  EXPECT_NE(text.find("# TYPE c3_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("c3_requests_total{instance="), std::string::npos);
  EXPECT_NE(text.find("c3_catalog_graphs 2"), std::string::npos);
  EXPECT_NE(text.find("c3_connections_open"), std::string::npos);
  EXPECT_NE(text.find("c3_answer_cache_hits{instance="), std::string::npos);
  if (obs::enabled()) {
    EXPECT_NE(text.find("c3_stage_seconds{stage=\"socket_write\""), std::string::npos);
    EXPECT_NE(text.find("c3_connections_accepted_total 1"), std::string::npos);
  }

  // A second scrape still parses and the counters moved monotonically: the
  // scrape itself is not a request, but the error request above landed.
  const std::string again = client.scrape_metrics();
  EXPECT_EQ(again.substr(again.size() - 6), "# EOF\n");

  if (obs::enabled()) {
    // The trace ring replays the recent requests as one line of
    // chrome://tracing JSON.
    const std::string json = client.request("trace");
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"search\""), std::string::npos);
    EXPECT_NE(json.find("mem count 4"), std::string::npos);
  }
  server.stop();
}

TEST_F(ServerTest, IdleConnectionsAreClosed) {
  ServerOptions opts;
  opts.port = 0;
  opts.idle_timeout_seconds = 0.2;
  CliqueServer server(service_, opts);
  server.start();

  LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()), 10.0);
  EXPECT_EQ(client.request("ping"), "pong");
  // Stay silent past the timeout: the server warns once and hangs up.
  const auto warning = client.read_line();
  ASSERT_TRUE(warning.has_value());
  EXPECT_NE(warning->find("idle timeout"), std::string::npos) << *warning;
  EXPECT_FALSE(client.read_line().has_value());

  EXPECT_EQ(server.stats().idle_closes, 1u);
  server.stop();
}

TEST_F(ServerTest, GracefulShutdownFinishesInFlightWork) {
  ServerOptions opts;
  opts.port = 0;
  CliqueServer server(service_, opts);
  server.start();
  const int port = server.port();

  // Clients fire one query each; stop() lands while some are likely still
  // executing. Every client must either get its full answer or a clean EOF —
  // never a hang, never a torn line.
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        LineClient client("127.0.0.1", static_cast<std::uint16_t>(port));
        if (!client.send("mem count 5")) return;  // racing stop(): fine
        const auto answer = client.read_line();
        if (answer.has_value() && answer->rfind("count 5: ", 0) != 0) {
          failures[c] = "torn answer: '" + *answer + "'";
        }
      } catch (const std::exception&) {
        // Refused connects and reset reads are legitimate outcomes of the
        // race with stop(); only a hang or a torn line would be a bug.
      }
    });
  }
  server.stop();  // race the clients deliberately
  for (std::thread& t : clients) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_FALSE(server.running());

  // stop() is idempotent and the destructor tolerates a stopped server.
  server.stop();
}

TEST_F(ServerTest, OversizedLinesGetOneErrorThenClose) {
  ServerOptions opts;
  opts.port = 0;
  opts.max_line_bytes = 128;
  CliqueServer server(service_, opts);
  server.start();

  LineClient client("127.0.0.1", static_cast<std::uint16_t>(server.port()));
  const std::string huge(1024, 'x');
  ASSERT_TRUE(client.send(huge));
  const auto reply = client.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("error: ", 0), 0u) << *reply;
  EXPECT_FALSE(client.read_line().has_value()) << "oversized senders are disconnected";
  server.stop();
}

}  // namespace
}  // namespace c3::net
