// CliqueServer — the TCP front door of a CliqueService catalog.
//
// Thread-per-connection serving of the LineFrontEnd protocol: an accept
// thread hands each connection to its own thread, which loops
// read-line -> process -> write-line until the client quits, disconnects,
// errors, or sits idle past the timeout. The model matches the engine: a
// query may fan out over the whole worker pool, so a handful of connection
// threads saturates the machine long before thread-per-connection overhead
// matters — admission control (per-graph in-flight bounds, LineFrontEnd)
// is what actually protects the pool, not connection multiplexing.
//
//   CliqueService service;            // the catalog (outlives the server)
//   service.add_snapshot("web", "web.c3snap");
//   CliqueServer server(service);     // port 0: kernel-assigned
//   server.start();
//   printf("listening on %d\n", server.port());
//   ...
//   server.stop();                    // graceful: drains in-flight requests
//
// Graceful shutdown: stop() closes the listener (no new connections), then
// half-closes every connection's read side — a blocked reader sees EOF and
// exits, a connection mid-query finishes the query and writes its response
// before noticing — and joins every thread. Destruction stops implicitly.
//
// The answer cache sits inside the front end: ServerOptions sizes it,
// `stats` (the admin command) and stats() surface its counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "clique/answer_cache.hpp"
#include "clique/service.hpp"
#include "net/frontend.hpp"
#include "net/socket.hpp"

namespace c3::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the real one
  /// Concurrent query executions per graph (LineFrontEnd admission).
  int max_inflight_per_graph = 4;
  /// Concurrent query executions across the whole catalog (0 = no total
  /// cap); contended capacity is granted round-robin over graphs.
  int max_inflight_total = 0;
  /// A connection with no complete request line for this long is told
  /// "error: idle timeout" and closed. <= 0: never.
  double idle_timeout_seconds = 300.0;
  /// Answer cache entries (0 disables caching). See AnswerCache.
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
  /// Protocol violation bound: longer request lines end the connection.
  std::size_t max_line_bytes = 1 << 16;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t idle_closes = 0;
  FrontEndStats frontend;
};

class CliqueServer {
 public:
  /// Binds nothing yet; `service` must outlive the server.
  CliqueServer(const CliqueService& service, ServerOptions opts = {});

  /// stop()s if still running.
  ~CliqueServer();

  CliqueServer(const CliqueServer&) = delete;
  CliqueServer& operator=(const CliqueServer&) = delete;

  /// Binds, listens, and starts accepting. Throws std::runtime_error when
  /// the address/port cannot be bound; std::logic_error if already started.
  void start();

  /// Graceful shutdown (see header comment). Idempotent; start() may not be
  /// called again afterwards.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection {
    explicit Connection(LineChannel ch) : channel(std::move(ch)) {}
    LineChannel channel;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  void reap_finished();

  const CliqueService* service_;
  ServerOptions opts_;
  std::unique_ptr<AnswerCache> cache_;  // null when cache_capacity == 0
  LineFrontEnd frontend_;

  UniqueFd listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex stop_mutex_;
  bool stopped_ = false;  // guarded by stop_mutex_

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> idle_closes_{0};
};

}  // namespace c3::net
