// Synthetic graph generators.
//
// All generators are deterministic in their seed and thread-count invariant.
// Two groups:
//
//  * Classic random / structured families (Erdős–Rényi, R-MAT, Chung–Lu,
//    Barabási–Albert, hypercube, complete, Turán, grid, star, path, cycle,
//    planted clique) — used by the test suite for closed-form and
//    property-based validation, and as building blocks.
//
//  * Dataset stand-ins (DESIGN.md Section 5): one generator per benchmark
//    graph of the paper's Table 2, matched on the structural axes the paper
//    reports (|E|/|V|, |T|/|V|, |T|/|E|, degeneracy). See datasets.hpp in
//    bench/ for the calibrated parameters.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace c3 {

// ---------------------------------------------------------------- classic

/// G(n, m) Erdős–Rényi: m distinct uniform edges (self-loops rejected).
[[nodiscard]] Graph erdos_renyi(node_t n, edge_t m, std::uint64_t seed);

/// R-MAT (Chakrabarti et al.): recursive quadrant sampling with parameters
/// (a, b, c); heavy-tailed, community-free. n is rounded up to a power of 2
/// internally but the returned graph has exactly n vertices.
[[nodiscard]] Graph rmat(node_t n, edge_t m, double a, double b, double c, std::uint64_t seed);

/// Chung–Lu with a Zipf(exponent) expected-degree sequence scaled to ~m
/// edges. Skewed degrees without R-MAT's locality artifacts.
[[nodiscard]] Graph chung_lu(node_t n, edge_t m, double exponent, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices. Hub-dominated, low triangle density.
[[nodiscard]] Graph barabasi_albert(node_t n, node_t attach, std::uint64_t seed);

/// The d-dimensional hypercube Q_d (2^d vertices): degeneracy d, community
/// degeneracy 0, no triangles — the paper's flagship sigma << s example.
[[nodiscard]] Graph hypercube(node_t dimension);

/// Complete graph K_n.
[[nodiscard]] Graph complete_graph(node_t n);

/// Turán graph T(n, r): complete r-partite with balanced parts.
[[nodiscard]] Graph turan_graph(node_t n, node_t r);

/// 2D grid (rows x cols), 4-neighborhood. Degeneracy 2, no triangles.
[[nodiscard]] Graph grid_graph(node_t rows, node_t cols);

/// Star K_{1,n-1}: 1-degenerate with unbounded max degree (Section 1.1).
[[nodiscard]] Graph star_graph(node_t n);

/// Simple path on n vertices.
[[nodiscard]] Graph path_graph(node_t n);

/// Simple cycle on n vertices.
[[nodiscard]] Graph cycle_graph(node_t n);

/// Erdős–Rényi background plus a planted clique on `clique_size` random
/// vertices; the planted member ids are returned via out parameter if given.
[[nodiscard]] Graph planted_clique(node_t n, edge_t m, node_t clique_size, std::uint64_t seed,
                                   std::vector<node_t>* planted = nullptr);

/// The paper's Section 1.1 example of community degeneracy 1 with degeneracy
/// Theta(n): complete bipartite K_{half,half} plus a path (line) on one side.
[[nodiscard]] Graph bipartite_plus_line(node_t half);

// ----------------------------------------------------------- dataset-like

/// Social-network stand-in (Orkut): Chung–Lu skeleton + random-walk closure
/// edges for high triangle density and large degeneracy.
[[nodiscard]] Graph social_like(node_t n, edge_t m, double closure_fraction, std::uint64_t seed);

/// Collaboration-network stand-in (Ca-DBLP): a union of overlapping cliques
/// ("papers") with power-law team sizes over a scale-free author base.
[[nodiscard]] Graph collaboration_like(node_t authors, count_t papers, node_t max_team,
                                       std::uint64_t seed);

/// Internet-topology stand-in (Tech-As-Skitter): preferential attachment
/// backbone + a little local closure (few triangles per edge, hubs).
[[nodiscard]] Graph topology_like(node_t n, node_t attach, double closure_fraction,
                                  std::uint64_t seed);

/// FEM-mesh stand-in (Gearbox): k-nearest-neighbor graph of random points in
/// the unit cube — quasi-regular, T/E around 1.
[[nodiscard]] Graph mesh_like(node_t n, node_t neighbors, std::uint64_t seed);

/// Numerical-scheme stand-in (Chebyshev4): banded matrix graph with
/// overlapping dense windows along the diagonal.
[[nodiscard]] Graph spectral_like(node_t n, node_t band, node_t window, node_t stride,
                                  std::uint64_t seed);

/// Rating-projection stand-in (Jester2): project a random bipartite
/// user-item graph onto users (co-rating edges). Dense, high degeneracy.
/// `projection_window` caps the per-item clique size (real projections
/// threshold co-rating counts similarly); it directly controls the largest
/// cliques of the projection.
[[nodiscard]] Graph rating_projection(node_t users, node_t items, node_t ratings_per_user,
                                      std::uint64_t seed, node_t projection_window = 32);

/// Gene-association stand-in (Bio-SC-HT): Chung–Lu background + embedded
/// dense modules (functional complexes).
[[nodiscard]] Graph bio_like(node_t n, edge_t m, node_t modules, node_t module_size,
                             double module_density, std::uint64_t seed);

}  // namespace c3
