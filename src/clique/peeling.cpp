#include "clique/peeling.hpp"

#include <algorithm>
#include <stdexcept>

#include "clique/engine.hpp"
#include "graph/subgraph.hpp"

namespace c3 {

DensestResult kclique_densest_peeling(const Graph& g, int k, double eps,
                                      const CliqueOptions& opts) {
  if (k < 2) throw std::invalid_argument("kclique_densest_peeling: k must be >= 2");
  if (eps <= 0.0) throw std::invalid_argument("kclique_densest_peeling: eps must be positive");

  DensestResult best;
  // `current` maps the working subgraph's local ids to original ids.
  std::vector<node_t> current(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) current[v] = v;

  InducedSubgraph sub;
  sub.graph = g;
  sub.to_parent = current;

  while (!current.empty()) {
    ++best.rounds;
    // One engine per round, for API uniformity: each round's subgraph needs
    // a fresh preparation. Sharing preparation *across* rounds needs
    // incremental re-preparation under vertex removals (ROADMAP follow-up).
    const PreparedGraph engine(sub.graph, opts);
    const std::vector<count_t> counts = engine.per_vertex_counts(k);
    count_t total_times_k = 0;
    for (const count_t c : counts) total_times_k += c;
    const count_t cliques = total_times_k / static_cast<count_t>(k);
    if (cliques == 0) break;

    const double density = static_cast<double>(cliques) / static_cast<double>(current.size());
    if (density > best.density) {
      best.density = density;
      best.cliques = cliques;
      best.vertices = current;
    }

    // Peel everything with count <= (1+eps) * k * rho_k. At least one vertex
    // always qualifies (min <= average = k * rho_k), so the loop terminates.
    const double threshold = (1.0 + eps) * static_cast<double>(k) * density;
    std::vector<node_t> survivors_local;
    for (node_t v = 0; v < sub.graph.num_nodes(); ++v) {
      if (static_cast<double>(counts[v]) > threshold) survivors_local.push_back(v);
    }
    if (survivors_local.size() == current.size()) break;  // defensive: no progress

    std::vector<node_t> next(survivors_local.size());
    for (std::size_t i = 0; i < survivors_local.size(); ++i)
      next[i] = sub.to_parent[survivors_local[i]];
    sub = induced_subgraph(sub.graph, survivors_local);
    // Rebase to original ids.
    for (std::size_t i = 0; i < sub.to_parent.size(); ++i) sub.to_parent[i] = next[i];
    current = std::move(next);
  }
  return best;
}

}  // namespace c3
