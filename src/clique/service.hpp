// CliqueService — a catalog of named prepared graphs behind one query
// surface; the object a server embeds.
//
// A serving process rarely hosts one graph: it hosts a catalog — some graphs
// built in-process, most mmap-loaded from .c3snap snapshots prepared
// offline — and routes each incoming Query (query.hpp) to the right engine
// by graph id:
//
//   CliqueService service;
//   service.add_graph("social", std::move(g));             // in-memory
//   service.add_snapshot("web", "web.c3snap");             // lazily opened
//   Answer a = service.run("web", parse_query("count 7"));
//
// Snapshot entries are opened lazily on first use (latched, exactly once, so
// racing queries wait rather than double-map) and hold the mapping for the
// service's lifetime; registering costs only a path. add_graph takes
// ownership of the Graph and constructs its engine immediately (preparation
// itself stays lazy inside PreparedGraph).
//
// Sharded graphs are first-class catalog rows: add_sharded_graph partitions
// an in-memory graph behind a ShardedEngine, and add_snapshot accepts a
// sharded manifest (.c3shard) as transparently as a flat .c3snap — the entry
// sniffs the magic at first open and routes through the right loader, so a
// sharded graph stays *one* id with one path. Queries against either kind go
// through run(); engine() refuses a sharded id (there is no single
// PreparedGraph to hand out) and sharded_engine() exposes the composed
// engine instead.
//
// Thread-safety: run()/engine()/prepare() may be called from any number of
// threads concurrently — the catalog is read under a shared lock and every
// engine is itself reentrant. Registration (add_graph / add_snapshot) takes
// the exclusive lock and may interleave with queries to *other* graphs;
// registered entries are never removed or replaced, so handed-out engine
// references stay valid for the service's lifetime. Duplicate ids and
// lookups of unknown ids throw std::invalid_argument naming the id.
#pragma once

#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "clique/common.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "graph/graph.hpp"
#include "shard/partition.hpp"
#include "snapshot/snapshot.hpp"

namespace c3 {

namespace obs {
class TraceContext;
}
namespace shard {
class ShardedEngine;
}

/// One catalog row (inspection/tooling output).
struct ServiceGraphInfo {
  std::string id;
  bool from_snapshot = false;
  bool opened = false;  ///< engine constructed (always true for in-memory)
  /// Graph shape; 0/0 for a snapshot entry not yet opened (the shape is in
  /// the file, not the catalog).
  node_t num_nodes = 0;
  edge_t num_edges = 0;
  /// Shard count for a sharded entry; 0 for an unsharded one (and for a
  /// sharded snapshot entry not yet opened — the count is in the manifest).
  int shards = 0;
};

class CliqueService {
 public:
  CliqueService();
  ~CliqueService();
  CliqueService(const CliqueService&) = delete;
  CliqueService& operator=(const CliqueService&) = delete;

  /// Registers an in-memory graph under `id`; the service takes ownership
  /// and constructs its engine immediately (artifacts still build lazily).
  void add_graph(std::string id, Graph graph, const CliqueOptions& opts = {});

  /// Registers a snapshot-backed graph under `id`. The file is not touched
  /// until the first query (or prepare()) for this id; open failures —
  /// missing file, corrupt snapshot, fingerprint mismatch against
  /// `expected` — surface from that first use, and every later use rethrows
  /// the same failure. `open` carries the warm-up hints (checksums,
  /// prefault, mlock).
  /// `path` may name a flat snapshot (.c3snap) or a sharded manifest — the
  /// first open sniffs the magic and loads accordingly.
  void add_snapshot(std::string id, std::filesystem::path path,
                    const snapshot::SnapshotOpenOptions& open = {},
                    std::optional<CliqueOptions> expected = std::nullopt);

  /// Registers an in-memory graph served sharded: partitions `graph` under
  /// `sharding` and builds one engine per shard (plus halo engines) behind a
  /// ShardedEngine. `graph` itself is not retained — each shard owns its
  /// subgraph. Queries route through run(); engine() refuses the id.
  void add_sharded_graph(std::string id, const Graph& graph,
                         const shard::ShardingOptions& sharding,
                         const CliqueOptions& opts = {});

  [[nodiscard]] bool has_graph(std::string_view id) const;
  [[nodiscard]] std::size_t size() const;

  /// Catalog summary in registration order.
  [[nodiscard]] std::vector<ServiceGraphInfo> catalog() const;

  /// The engine serving `id`, opening a snapshot entry if this is its first
  /// use. The reference stays valid for the service's lifetime. Throws
  /// std::invalid_argument for an unknown id, std::runtime_error for a
  /// snapshot that fails to open — or for a *sharded* id, which has no
  /// single engine (route queries through run()).
  [[nodiscard]] const PreparedGraph& engine(std::string_view id) const;

  /// The composed engine of a sharded entry (opening it on first use), or
  /// nullptr when `id` is served unsharded. Throws like engine() for
  /// unknown ids and failed opens.
  [[nodiscard]] const shard::ShardedEngine* sharded_engine(std::string_view id) const;

  /// Routes one query to whichever engine serves `id` (flat or sharded).
  [[nodiscard]] Answer run(std::string_view id, const Query& query) const;

  /// As run(), threading `trace` (which may be nullptr) into the engine: a
  /// flat entry records its Search span, a sharded one records per-shard
  /// ShardSearch spans plus shard-count/policy annotations.
  [[nodiscard]] Answer run(std::string_view id, const Query& query,
                           obs::TraceContext* trace) const;

  /// Cache-keying identity of whichever engine serves `id` (opening it on
  /// first use): engine_fingerprint for a flat entry, sharded_fingerprint
  /// for a sharded one — the two never collide.
  [[nodiscard]] std::uint64_t fingerprint(std::string_view id) const;

  /// Forces `id` ready to serve: snapshot opened, artifacts and the
  /// clique-number upper bound built. A server calls this per graph at
  /// startup to move every cost off the first query.
  void prepare(std::string_view id) const;

 private:
  struct Entry;
  [[nodiscard]] Entry& find(std::string_view id) const;

  mutable std::shared_mutex catalog_mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace c3
