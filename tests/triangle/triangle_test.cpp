// Tests for parallel triangle counting.
#include "triangle/triangle_count.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <tuple>

#include "clique/combinatorics.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

Digraph orient_by_id(const Graph& g) {
  std::vector<node_t> order(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) order[v] = v;
  return Digraph::orient(g, order);
}

count_t brute_triangles(const Graph& g) {
  count_t t = 0;
  for (node_t a = 0; a < g.num_nodes(); ++a) {
    for (const node_t b : g.neighbors(a)) {
      if (b <= a) continue;
      for (const node_t c : g.neighbors(b)) {
        if (c <= b) continue;
        if (g.has_edge(a, c)) ++t;
      }
    }
  }
  return t;
}

TEST(Triangles, ClosedForms) {
  EXPECT_EQ(count_triangles(orient_by_id(complete_graph(10))), binomial(10, 3));
  EXPECT_EQ(count_triangles(orient_by_id(hypercube(6))), 0u);
  EXPECT_EQ(count_triangles(orient_by_id(grid_graph(7, 7))), 0u);
  EXPECT_EQ(count_triangles(orient_by_id(cycle_graph(3))), 1u);
  EXPECT_EQ(count_triangles(orient_by_id(cycle_graph(17))), 0u);
  EXPECT_EQ(count_triangles(orient_by_id(star_graph(20))), 0u);
  // Turan T(n,3): triangles = one vertex per part.
  EXPECT_EQ(count_triangles(orient_by_id(turan_graph(9, 3))), 27u);
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const Graph g = erdos_renyi(60, 400, seed);
    EXPECT_EQ(count_triangles(orient_by_id(g)), brute_triangles(g)) << "seed " << seed;
  }
}

TEST(Triangles, CountInvariantUnderOrientation) {
  const Graph g = social_like(300, 2500, 0.4, 9);
  const count_t by_id = count_triangles(orient_by_id(g));
  // Orient by reversed id order: same triangles.
  std::vector<node_t> rev(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) rev[v] = g.num_nodes() - 1 - v;
  EXPECT_EQ(count_triangles(Digraph::orient(g, rev)), by_id);
}

TEST(Triangles, ForEachTriangleEmitsEachOnceOrdered) {
  const Graph g = erdos_renyi(40, 200, 7);
  const Digraph dag = orient_by_id(g);
  std::set<std::tuple<node_t, node_t, node_t>> seen;
  std::atomic<int> bad{0};
  for_each_triangle(dag, [&](node_t a, node_t b, node_t c) {
    if (!(a < b && b < c)) bad.fetch_add(1);
    static std::mutex m;
    const std::lock_guard<std::mutex> lock(m);
    if (!seen.emplace(a, b, c).second) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(seen.size(), brute_triangles(g));
  // Every emitted triple really is a triangle.
  for (const auto& [a, b, c] : seen) {
    EXPECT_TRUE(g.has_edge(a, b));
    EXPECT_TRUE(g.has_edge(b, c));
    EXPECT_TRUE(g.has_edge(a, c));
  }
}

TEST(Triangles, EmptyGraph) {
  EXPECT_EQ(count_triangles(orient_by_id(build_graph(EdgeList{}, 3))), 0u);
  EXPECT_EQ(count_triangles(Digraph{}), 0u);
}

}  // namespace
}  // namespace c3
