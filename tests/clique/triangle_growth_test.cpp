// Tests for the triangle-growth generalization (the paper's conclusion:
// "extend the cliques by larger motifs such as triangles").
#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"
#include "test_helpers.hpp"

namespace c3 {
namespace {

CliqueOptions tri_opts(Algorithm alg) {
  CliqueOptions o;
  o.algorithm = alg;
  o.triangle_growth = true;
  return o;
}

TEST(TriangleGrowth, CompleteGraphClosedFormAllVariants) {
  const Graph g = complete_graph(13);
  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid}) {
    for (int k = 4; k <= 13; ++k) {
      EXPECT_EQ(count_cliques(g, k, tri_opts(alg)).count, binomial(13, static_cast<count_t>(k)))
          << algorithm_name(alg) << " k=" << k;
    }
  }
}

TEST(TriangleGrowth, MatchesBruteForceAcrossParities) {
  // k-2 mod 3 hits all residues: the recursion mixes triangle steps with the
  // pair/vertex base cases.
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = erdos_renyi(45, 330, seed);
    for (int k = 4; k <= 9; ++k) {
      EXPECT_EQ(count_cliques(g, k, tri_opts(Algorithm::C3List)).count, brute_force_count(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(TriangleGrowth, AgreesWithEdgeGrowthOnDenseBlocks) {
  const Graph g = bio_like(300, 1500, 12, 16, 0.6, 7);
  for (int k = 4; k <= 8; ++k) {
    CliqueOptions edge_growth;
    EXPECT_EQ(count_cliques(g, k, tri_opts(Algorithm::C3List)).count,
              count_cliques(g, k, edge_growth).count)
        << "k=" << k;
  }
}

TEST(TriangleGrowth, ListingIsValidAndComplete) {
  const Graph g = erdos_renyi(50, 380, 5);
  for (int k = 4; k <= 7; ++k) {
    const count_t expect = brute_force_count(g, k);
    testing::CliqueCollector collector(g, k);
    const CliqueResult r = list_cliques(g, k, collector.callback(), tri_opts(Algorithm::C3List));
    EXPECT_EQ(r.count, expect) << "k=" << k;
    collector.expect_valid(expect);
  }
}

TEST(TriangleGrowth, DeepSearchAgreement) {
  // A deep search (k = 14 in K24) exercises many triangle levels; both
  // growth schemes must agree exactly. (The triangle variant trades fewer
  // *levels* — depth ~c/3 vs ~c/2 — for more children per node, so call
  // counts are not comparable, only correctness is asserted.)
  const Graph g = complete_graph(24);
  CliqueOptions edge_growth;
  const CliqueResult edge = count_cliques(g, 14, edge_growth);
  const CliqueResult tri = count_cliques(g, 14, tri_opts(Algorithm::C3List));
  EXPECT_EQ(edge.count, tri.count);
  EXPECT_EQ(tri.count, binomial(24, 14));
  EXPECT_GT(tri.stats.recursive_calls, 0u);
}

TEST(TriangleGrowth, PruningAblationStillCorrect) {
  const Graph g = social_like(150, 1100, 0.45, 9);
  for (int k = 5; k <= 7; ++k) {
    CliqueOptions o = tri_opts(Algorithm::C3List);
    o.distance_pruning = false;
    EXPECT_EQ(count_cliques(g, k, o).count, brute_force_count(g, k)) << "k=" << k;
  }
}

}  // namespace
}  // namespace c3
