// Fixed-width console table rendering for the bench harness.
//
// Each bench binary regenerates one of the paper's tables or figure series;
// this printer produces aligned, machine-greppable rows (also valid CSV when
// requested) so EXPERIMENTS.md can quote them directly.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace c3 {

/// A simple right-aligned text table. Columns are sized to their widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Appends one row; the cell count should match the header.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Renders with space padding and a rule under the header.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string{};
        os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(width[i])) << cell;
      }
      os << '\n';
    };
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < width.size(); ++i) rule += width[i] + (i ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    os.flush();
  }

  /// Renders as CSV (for downstream plotting).
  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) os << (i ? "," : "") << cells[i];
      os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string (for table cells).
template <typename... Args>
[[nodiscard]] std::string strfmt(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

/// Human-readable count with thousands separators (e.g. 117,185,083).
[[nodiscard]] inline std::string with_commas(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace c3
