// Per-worker scratch shared by the search halves of all clique algorithms.
//
// Every algorithm's inner loop re-represents a small subproblem (a community,
// a candidate set, an out-neighborhood) in worker-local storage. One
// CliqueScratch is the union of those worker states, so a PreparedGraph can
// own a single PerWorker<CliqueScratch> pool and reuse the warm buffers —
// bitset rows, recursion stacks, label arrays, mask pools — across many
// queries instead of reallocating them per call. Fields unused by a given
// algorithm stay empty and cost nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "graph/types.hpp"
#include "parallel/padded.hpp"

namespace c3 {

/// Scratch arrays of the small-universe exact degeneracy sweep the hybrid
/// algorithm runs inside each out-neighborhood (see hybrid.cpp).
struct LocalDegeneracyScratch {
  std::vector<int> adj_offsets, adj, degree, bin, verts, pos;
};

/// One worker's reusable state for a sequence of clique searches. Owned per
/// engine (PerWorker<CliqueScratch>) and handed to the *_search functions;
/// reset_query() clears the per-query accumulators while keeping the
/// capacity of every buffer.
struct CliqueScratch {
  // Shared by the community-centric searches (c3List, c3List-CD, hybrid).
  LocalGraph lg;
  SearchContext ctx;
  std::vector<node_t> member_orig;  // local id -> original vertex id (listing)

  // Hybrid: the out-neighborhood subgraph before the inner-order renaming,
  // plus the inner exact degeneracy order and its scratch.
  LocalGraph lg_aux;
  std::vector<int> inner_order, inner_rank;
  LocalDegeneracyScratch deg;

  // kcList: per-level label array and candidate sets.
  std::vector<int> label;
  std::vector<std::vector<node_t>> levels;

  // ArbCount: one candidate mask per recursion level.
  std::vector<std::uint64_t> mask_pool;

  // kcList/ArbCount listing stack (c3List's lives in ctx.clique_stack).
  std::vector<node_t> clique_stack;

  // Per-query accumulators. Early-stop state lives in ctx (stopped / stop /
  // callback) for every algorithm — kcList and ArbCount use only those
  // fields of their SearchContext, so the cross-worker stop logic exists
  // exactly once (SearchContext::poll_stop / request_stop).
  LocalCounters ctr;
  count_t count = 0;

  /// Resets the per-query accumulators; all buffers keep their capacity.
  void reset_query() noexcept {
    ctr = {};
    count = 0;
    ctx.stopped = false;
    ctx.stop = nullptr;
    ctx.callback = nullptr;
  }
};

/// Prepares every slot of a scratch pool for a new query. Called by the
/// *_search functions; slots touched by previous queries keep their warm
/// buffers.
inline void reset_scratch_pool(PerWorker<CliqueScratch>& pool) noexcept {
  for (std::size_t i = 0; i < pool.size(); ++i) pool.slot(i).reset_query();
}

/// Merges every slot's count and counters into `result` after a search.
inline void merge_scratch_pool(const PerWorker<CliqueScratch>& pool, CliqueResult& result) {
  for (std::size_t i = 0; i < pool.size(); ++i) {
    result.count += pool.slot(i).count;
    pool.slot(i).ctr.merge_into(result.stats);
  }
  result.stats.cliques = result.count;
}

}  // namespace c3
