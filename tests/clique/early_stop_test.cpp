// Regression tests for cross-worker early stop: a callback returning false
// on one worker must halt the *other* workers' in-flight searches promptly
// (via the shared stop flag polled inside the recursions), not merely stop
// new top-level tasks from starting.
#include <gtest/gtest.h>

#include <atomic>
#include <span>

#include "clique/api.hpp"
#include "clique/max_clique.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"

namespace c3 {
namespace {

const Algorithm kParallelAlgorithms[] = {Algorithm::C3List, Algorithm::C3ListCD,
                                         Algorithm::Hybrid, Algorithm::KCList,
                                         Algorithm::ArbCount};

TEST(EarlyStop, OneWorkersStopHaltsInFlightSearches) {
  // K28 at k = 5: ~98k cliques total, and every top-level task holds
  // thousands — so a worker that misses the stop signal and finishes its
  // in-flight task emits thousands of extra callbacks. With the shared flag
  // polled at every emission, post-stop callbacks are bounded by the number
  // of concurrently in-flight emissions (~one per worker).
  const Graph g = complete_graph(28);
  for (const Algorithm alg : kParallelAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    std::atomic<count_t> calls{0};
    const CliqueCallback stop_once = [&](std::span<const node_t>) {
      // Only the very first invocation requests the stop.
      return calls.fetch_add(1, std::memory_order_relaxed) != 0;
    };
    (void)list_cliques(g, 5, stop_once, opts);
    const count_t total = calls.load();
    EXPECT_GE(total, 1u) << algorithm_name(alg);
    EXPECT_LE(total, static_cast<count_t>(num_workers()) * 64 + 64) << algorithm_name(alg);
  }
}

TEST(EarlyStop, StopInsideDeepRecursionStillReportsPartialCount) {
  const Graph g = complete_graph(20);
  for (const Algorithm alg : kParallelAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    std::atomic<count_t> calls{0};
    const CliqueCallback stop_after_five = [&](std::span<const node_t>) {
      return calls.fetch_add(1, std::memory_order_relaxed) + 1 < 5;
    };
    const CliqueResult r = list_cliques(g, 6, stop_after_five, opts);
    EXPECT_GE(calls.load(), 5u) << algorithm_name(alg);
    EXPECT_GE(r.count, 1u) << algorithm_name(alg);
    // Far fewer than the full enumeration (C(20,6) = 38760).
    EXPECT_LT(calls.load(), 38760u / 2) << algorithm_name(alg);
  }
}

TEST(EarlyStop, WitnessQueriesStayCorrect) {
  const Graph g = social_like(150, 1100, 0.45, 7);
  for (const Algorithm alg : kParallelAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const auto witness = find_clique(g, 4, opts);
    ASSERT_TRUE(witness.has_value()) << algorithm_name(alg);
    ASSERT_EQ(witness->size(), 4u) << algorithm_name(alg);
    for (std::size_t i = 0; i < witness->size(); ++i) {
      for (std::size_t j = i + 1; j < witness->size(); ++j) {
        EXPECT_TRUE(g.has_edge((*witness)[i], (*witness)[j])) << algorithm_name(alg);
      }
    }
  }
}

}  // namespace
}  // namespace c3
