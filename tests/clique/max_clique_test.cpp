// Tests for the maximum-clique queries.
#include "clique/max_clique.hpp"

#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(MaxClique, KnownCliqueNumbers) {
  EXPECT_EQ(max_clique_size(complete_graph(9)), 9u);
  EXPECT_EQ(max_clique_size(turan_graph(20, 4)), 4u);
  EXPECT_EQ(max_clique_size(hypercube(5)), 2u);
  EXPECT_EQ(max_clique_size(cycle_graph(7)), 2u);
  EXPECT_EQ(max_clique_size(cycle_graph(3)), 3u);
  EXPECT_EQ(max_clique_size(star_graph(50)), 2u);
  EXPECT_EQ(max_clique_size(grid_graph(5, 5)), 2u);
}

TEST(MaxClique, EmptyAndEdgeless) {
  EXPECT_EQ(max_clique_size(Graph{}), 0u);
  EXPECT_EQ(max_clique_size(build_graph(EdgeList{}, 5)), 1u);
  EXPECT_TRUE(find_max_clique(Graph{}).empty());
  EXPECT_EQ(find_max_clique(build_graph(EdgeList{}, 5)).size(), 1u);
}

TEST(MaxClique, FindsPlantedClique) {
  std::vector<node_t> planted;
  const Graph g = planted_clique(400, 700, 10, 5, &planted);
  // Background is far too sparse for a 10-clique of its own.
  EXPECT_EQ(max_clique_size(g), 10u);
  const auto witness = find_max_clique(g);
  ASSERT_EQ(witness.size(), 10u);
  for (std::size_t i = 0; i < witness.size(); ++i) {
    for (std::size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_TRUE(g.has_edge(witness[i], witness[j]));
    }
  }
}

TEST(MaxClique, HasCliqueMonotone) {
  const Graph g = turan_graph(24, 5);
  for (int k = 1; k <= 5; ++k) EXPECT_TRUE(has_clique(g, k)) << k;
  for (int k = 6; k <= 9; ++k) EXPECT_FALSE(has_clique(g, k)) << k;
}

TEST(MaxClique, FindCliqueWitnessValid) {
  const Graph g = complete_graph(8);
  const auto w = find_clique(g, 5);
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->size(), 5u);
  for (std::size_t i = 0; i < w->size(); ++i) {
    for (std::size_t j = i + 1; j < w->size(); ++j) {
      EXPECT_TRUE(g.has_edge((*w)[i], (*w)[j]));
    }
  }
  EXPECT_FALSE(find_clique(g, 9).has_value());
  EXPECT_FALSE(find_clique(g, 0).has_value());
}

TEST(MaxClique, WorksWithAllAlgorithms) {
  const Graph g = planted_clique(200, 400, 8, 7, nullptr);
  for (const Algorithm alg :
       {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid, Algorithm::KCList,
        Algorithm::ArbCount}) {
    CliqueOptions opts;
    opts.algorithm = alg;
    EXPECT_EQ(max_clique_size(g, opts), 8u) << algorithm_name(alg);
  }
}

}  // namespace
}  // namespace c3
