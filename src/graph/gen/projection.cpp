// Bipartite rating-projection stand-in (Jester2).
//
// Jester2 is the co-rating projection of a user x joke bipartite graph with
// only ~150 jokes — so the projection is extremely dense locally (T/V ~ 700,
// degeneracy 128 at 50K vertices). We reproduce the mechanism directly:
// sample a random bipartite graph (items weighted by popularity) and connect
// users sharing an item.
#include <vector>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {

Graph rating_projection(node_t users, node_t items, node_t ratings_per_user, std::uint64_t seed,
                        node_t projection_window) {
  if (users < 2 || items == 0) return build_graph(EdgeList{}, users);

  // item_members[i] = users who rated item i. Zipf-ish item popularity via
  // squared uniform sampling (popular items collect most ratings).
  std::vector<std::vector<node_t>> item_members(items);
  Xoshiro256 rng(seed);
  for (node_t u = 0; u < users; ++u) {
    for (node_t r = 0; r < ratings_per_user; ++r) {
      const double x = rng.next_double();
      const auto item = static_cast<node_t>(static_cast<double>(items) * x * x);
      item_members[std::min<node_t>(item, items - 1)].push_back(u);
    }
  }

  // Project: clique over each item's members. To keep the stand-in sparse
  // enough, cap the per-item projection by connecting members along a
  // sliding window when the item is very popular (real projections threshold
  // co-rating counts similarly).
  EdgeList edges;
  for (const auto& members : item_members) {
    const std::size_t sz = members.size();
    const std::size_t window = projection_window;  // full clique below, banded above
    for (std::size_t i = 0; i < sz; ++i) {
      const std::size_t hi = std::min(sz, i + window);
      for (std::size_t j = i + 1; j < hi; ++j) {
        if (members[i] != members[j]) edges.push_back(Edge{members[i], members[j]});
      }
    }
  }
  return build_graph(edges, users);
}

}  // namespace c3
