#include "graph/stats.hpp"

#include "graph/digraph.hpp"
#include "order/degeneracy.hpp"
#include "triangle/triangle_count.hpp"

namespace c3 {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.max_degree = g.max_degree();

  const DegeneracyResult deg = degeneracy_order(g);
  s.degeneracy = deg.degeneracy;

  const Digraph dag = Digraph::orient(g, deg.order);
  s.triangles = count_triangles(dag);

  if (s.nodes > 0) {
    s.edges_per_node = static_cast<double>(s.edges) / static_cast<double>(s.nodes);
    s.triangles_per_node = static_cast<double>(s.triangles) / static_cast<double>(s.nodes);
  }
  if (s.edges > 0) {
    s.triangles_per_edge = static_cast<double>(s.triangles) / static_cast<double>(s.edges);
  }
  return s;
}

}  // namespace c3
