// Unit tests for parallel packing / compaction.
#include "parallel/pack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace c3 {
namespace {

TEST(Pack, IndexSelectsMatchingAscending) {
  const auto idx = pack_index(100, [](std::size_t i) { return i % 7 == 0; });
  std::vector<std::uint32_t> expect;
  for (std::uint32_t i = 0; i < 100; i += 7) expect.push_back(i);
  EXPECT_EQ(idx, expect);
}

TEST(Pack, IndexEmptyAndFull) {
  EXPECT_TRUE(pack_index(0, [](std::size_t) { return true; }).empty());
  EXPECT_TRUE(pack_index(100, [](std::size_t) { return false; }).empty());
  EXPECT_EQ(pack_index(100, [](std::size_t) { return true; }).size(), 100u);
}

TEST(Pack, IfPreservesOrderOnLargeInput) {
  const std::size_t n = 300'000;
  std::vector<std::uint64_t> data(n);
  Xoshiro256 rng(3);
  for (auto& x : data) x = rng.next_below(1000);

  const auto kept = pack_if<std::uint64_t>(data, [&](std::size_t i) { return data[i] < 100; });
  std::vector<std::uint64_t> expect;
  for (const auto x : data)
    if (x < 100) expect.push_back(x);
  EXPECT_EQ(kept, expect);
}

TEST(Pack, WideIndexType) {
  const auto idx = pack_index<std::uint64_t>(10, [](std::size_t i) { return i >= 8; });
  EXPECT_EQ(idx, (std::vector<std::uint64_t>{8, 9}));
}

TEST(Pack, ComplementsPartitionTheInput) {
  const std::size_t n = 100'000;
  auto pred = [](std::size_t i) { return (i * 2654435761u) % 3 == 0; };
  const auto yes = pack_index(n, pred);
  const auto no = pack_index(n, [&](std::size_t i) { return !pred(i); });
  EXPECT_EQ(yes.size() + no.size(), n);
}

}  // namespace
}  // namespace c3
