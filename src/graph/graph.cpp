#include "graph/graph.hpp"

#include <algorithm>
#include <utility>

#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"

namespace c3 {

Graph::Graph(std::vector<edge_t> offsets, std::vector<node_t> adj, std::vector<edge_t> edge_ids)
    : offsets_(std::move(offsets)), adj_(std::move(adj)), edge_ids_(std::move(edge_ids)) {
  endpoints_.resize(num_edges());
  const node_t n = num_nodes();
  // Each undirected edge id appears in exactly two adjacency slots; the slot
  // at the lower endpoint (u < v) fills the canonical orientation.
  parallel_for(0, n, [&](std::size_t u) {
    const auto nbrs = neighbors(static_cast<node_t>(u));
    const auto ids = this->edge_ids(static_cast<node_t>(u));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (static_cast<node_t>(u) < nbrs[i]) {
        endpoints_[ids[i]] = Edge{static_cast<node_t>(u), nbrs[i]};
      }
    }
  });
}

Graph Graph::from_parts(ArrayStore<edge_t> offsets, ArrayStore<node_t> adj,
                        ArrayStore<edge_t> edge_ids, ArrayStore<Edge> endpoints) {
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.edge_ids_ = std::move(edge_ids);
  g.endpoints_ = std::move(endpoints);
  return g;
}

bool Graph::has_edge(node_t u, node_t v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

edge_t Graph::edge_id(node_t u, node_t v) const noexcept {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return static_cast<edge_t>(-1);
  return edge_ids(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

node_t Graph::max_degree() const noexcept {
  const node_t n = num_nodes();
  if (n == 0) return 0;
  return parallel_max(
      0, n, node_t{0}, [&](std::size_t u) { return degree(static_cast<node_t>(u)); });
}

}  // namespace c3
