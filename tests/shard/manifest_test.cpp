// Sharded manifest tests: write/open round trips serve answers bit-identical
// to the in-memory sharded engine AND the flat engine for every algorithm;
// inspect_sharded reports the directory faithfully; corrupt, truncated, and
// foreign-version files are refused with errors naming the problem (the
// version message names both versions); and CliqueService serves a manifest
// as one catalog entry — run() routes, engine() refuses, catalog() reports
// the shard count.
#include "snapshot/shard_manifest.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "clique/service.hpp"
#include "graph/gen/generators.hpp"
#include "shard/sharded_engine.hpp"
#include "snapshot/snapshot.hpp"

namespace c3 {
namespace {

using shard::ShardedEngine;
using shard::ShardingOptions;

const Algorithm kAllAlgorithms[] = {Algorithm::C3List,   Algorithm::C3ListCD,
                                    Algorithm::Hybrid,   Algorithm::KCList,
                                    Algorithm::ArbCount, Algorithm::BruteForce};

Query make_query(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c3list_shard_manifest_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void corrupt_byte(const std::filesystem::path& path, std::uint64_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::string open_error(const std::filesystem::path& path) {
    try {
      (void)snapshot::ShardedSnapshot::open(path);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }

  std::filesystem::path dir_;
};

TEST_F(ShardManifestTest, RoundTripParityAllAlgorithms) {
  const Graph g = social_like(140, 1000, 0.45, 17);
  for (const Algorithm alg : kAllAlgorithms) {
    SCOPED_TRACE(algorithm_name(alg));
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph flat(g, opts);
    ShardingOptions sharding;
    sharding.shards = 3;
    const ShardedEngine in_memory(g, sharding, opts);
    const auto path = dir_ / "roundtrip.c3shard";
    snapshot::write_sharded(path, in_memory);
    ASSERT_TRUE(snapshot::is_shard_manifest(path));

    const auto snap = snapshot::ShardedSnapshot::open(path);
    const ShardedEngine& loaded = snap.engine();
    EXPECT_EQ(loaded.num_shards(), 3u);
    EXPECT_EQ(loaded.num_nodes(), g.num_nodes());

    // The four counting kinds, bit-identical across all three executions.
    for (int k = 3; k <= 5; ++k) {
      const Query q = make_query(QueryKind::Count, k);
      const count_t expected = flat.run(q).count;
      EXPECT_EQ(in_memory.run(q).count, expected) << "k=" << k;
      EXPECT_EQ(loaded.run(q).count, expected) << "k=" << k;
    }
    const Query pv = make_query(QueryKind::PerVertexCounts, 3);
    EXPECT_EQ(loaded.run(pv).per_counts, flat.run(pv).per_counts);
    const Query pe = make_query(QueryKind::PerEdgeCounts, 3);
    EXPECT_EQ(loaded.run(pe).per_counts, flat.run(pe).per_counts);
    const Query sp = make_query(QueryKind::Spectrum);
    const Answer sa = flat.run(sp);
    const Answer sb = loaded.run(sp);
    EXPECT_EQ(sb.spectrum.counts, sa.spectrum.counts);
    EXPECT_EQ(sb.omega, sa.omega);

    // Everything came off the mapping: no shard prepares anything.
    const Answer counted = loaded.run(make_query(QueryKind::Count, 4));
    EXPECT_EQ(counted.stats.preprocess_seconds, 0.0);
  }
}

TEST_F(ShardManifestTest, InspectDescribesTheDirectory) {
  const Graph g = social_like(120, 900, 0.4, 23);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3ListCD;
  ShardingOptions sharding;
  sharding.shards = 2;
  sharding.policy = shard::PartitionPolicy::VertexRange;
  const ShardedEngine engine(g, sharding, opts);
  const auto path = dir_ / "inspect.c3shard";
  snapshot::write_sharded(path, engine);

  const snapshot::ShardManifestInfo info = snapshot::inspect_sharded(path);
  EXPECT_EQ(info.format_version, snapshot::kShardFormatVersion);
  EXPECT_EQ(info.policy, shard::PartitionPolicy::VertexRange);
  EXPECT_EQ(info.num_nodes, g.num_nodes());
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
  EXPECT_EQ(info.options.algorithm, Algorithm::C3ListCD);
  ASSERT_EQ(info.shards.size(), 2u);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < info.shards.size(); ++i) {
    const snapshot::ShardSectionInfo& s = info.shards[i];
    EXPECT_EQ(s.first_owned, expect);
    expect += s.owned_count;
    EXPECT_EQ(s.first_owned, engine.first_owned(i));
    EXPECT_EQ(s.owned_count, engine.owned_count(i));
    EXPECT_EQ(s.halo_count, engine.halo_ids(i).size());
    EXPECT_GT(s.snap_bytes, 0u);
    EXPECT_EQ(s.num_nodes, engine.main_engine(i).graph().num_nodes());
  }
  EXPECT_EQ(expect, g.num_nodes());
  // The last shard has no halo, hence no halo image.
  EXPECT_EQ(info.shards.back().halo_count, 0u);
  EXPECT_EQ(info.shards.back().halo_snap_offset, 0u);
}

TEST_F(ShardManifestTest, SniffRejectsFlatSnapshotsAndGarbage) {
  const Graph g = erdos_renyi(60, 400, 9);
  const PreparedGraph engine(g, {});
  const auto flat = dir_ / "flat.c3snap";
  snapshot::write(flat, engine);
  EXPECT_FALSE(snapshot::is_shard_manifest(flat));

  const auto garbage = dir_ / "garbage.c3shard";
  std::ofstream(garbage, std::ios::binary) << std::string(4096, 'x');
  EXPECT_FALSE(snapshot::is_shard_manifest(garbage));
  EXPECT_NE(open_error(garbage).find("bad magic"), std::string::npos);

  EXPECT_FALSE(snapshot::is_shard_manifest(dir_ / "does_not_exist"));

  const auto shorty = dir_ / "short.c3shard";
  std::ofstream(shorty, std::ios::binary) << "c3";
  EXPECT_NE(open_error(shorty).find("truncated header"), std::string::npos);
}

TEST_F(ShardManifestTest, RefusesNewerFormatVersionNamingBothVersions) {
  const Graph g = erdos_renyi(50, 300, 4);
  const ShardedEngine engine(g, ShardingOptions{}, {});
  const auto path = dir_ / "version.c3shard";
  snapshot::write_sharded(path, engine);
  ASSERT_EQ(open_error(path), "");  // sanity: the pristine file loads

  // format_version is the u32 right after the 12-byte magic. Stamp a future
  // version (v2 over v1): a reader must refuse it *before* any checksum talk
  // and name both versions, so an operator knows which side is stale.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    const std::uint32_t future = snapshot::kShardFormatVersion + 1;
    f.seekp(12);
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  const std::string error = open_error(path);
  EXPECT_NE(error.find("format version mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("v" + std::to_string(snapshot::kShardFormatVersion + 1)),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("v" + std::to_string(snapshot::kShardFormatVersion)), std::string::npos)
      << error;
  // inspect_sharded applies the same validation.
  EXPECT_THROW((void)snapshot::inspect_sharded(path), std::runtime_error);
}

TEST_F(ShardManifestTest, RefusesTruncationAndTamper) {
  const Graph g = social_like(100, 700, 0.4, 31);
  ShardingOptions sharding;
  sharding.shards = 2;
  const ShardedEngine engine(g, sharding, {});
  const auto path = dir_ / "valid.c3shard";
  snapshot::write_sharded(path, engine);
  ASSERT_EQ(open_error(path), "");

  auto tampered = dir_ / "truncated.c3shard";
  std::filesystem::copy_file(path, tampered);
  std::filesystem::resize_file(tampered, std::filesystem::file_size(tampered) - 9);
  EXPECT_NE(open_error(tampered).find("truncated"), std::string::npos);

  // A flipped byte in the record table breaks the header checksum.
  tampered = dir_ / "table.c3shard";
  std::filesystem::copy_file(path, tampered);
  corrupt_byte(tampered, sizeof(snapshot::ShardManifestHeader) + 16);
  EXPECT_NE(open_error(tampered).find("header checksum mismatch"), std::string::npos);

  // A flipped byte in a section payload breaks that shard's fingerprint —
  // but loads fine with verification off (the trusted-store fast path).
  tampered = dir_ / "payload.c3shard";
  std::filesystem::copy_file(path, tampered);
  const snapshot::ShardManifestInfo info = snapshot::inspect_sharded(path);
  corrupt_byte(tampered, info.shards[0].snap_offset + info.shards[0].snap_bytes - 3);
  const std::string error = open_error(tampered);
  EXPECT_NE(error.find("checksum mismatch") != std::string::npos ||
                error.find("fingerprint") != std::string::npos,
            false)
      << error;
}

TEST_F(ShardManifestTest, ServiceServesManifestAsOneEntry) {
  const Graph g = social_like(110, 800, 0.45, 41);
  CliqueOptions opts;
  opts.algorithm = Algorithm::KCList;
  const PreparedGraph flat(g, opts);
  ShardingOptions sharding;
  sharding.shards = 2;
  const ShardedEngine in_memory(g, sharding, opts);
  const auto path = dir_ / "served.c3shard";
  snapshot::write_sharded(path, in_memory);

  CliqueService service;
  service.add_snapshot("web", path);          // sharded manifest, sniffed lazily
  service.add_sharded_graph("mem", g, sharding, opts);
  service.add_graph("plain", Graph(g), opts);

  // run() routes both sharded kinds; answers match the flat engine exactly.
  for (int k = 3; k <= 5; ++k) {
    const Query q = make_query(QueryKind::Count, k);
    const count_t expected = flat.run(q).count;
    EXPECT_EQ(service.run("web", q).count, expected) << "k=" << k;
    EXPECT_EQ(service.run("mem", q).count, expected) << "k=" << k;
    EXPECT_EQ(service.run("plain", q).count, expected) << "k=" << k;
  }
  const Query sp = make_query(QueryKind::Spectrum);
  EXPECT_EQ(service.run("web", sp).spectrum.counts, flat.run(sp).spectrum.counts);

  // catalog() reports the partition; engine() refuses sharded ids but
  // sharded_engine() hands the composed engine out.
  for (const ServiceGraphInfo& info : service.catalog()) {
    if (info.id == "web" || info.id == "mem") {
      EXPECT_EQ(info.shards, 2) << info.id;
    } else {
      EXPECT_EQ(info.shards, 0) << info.id;
    }
  }
  EXPECT_THROW((void)service.engine("web"), std::runtime_error);
  EXPECT_THROW((void)service.engine("mem"), std::runtime_error);
  EXPECT_NO_THROW((void)service.engine("plain"));
  EXPECT_NE(service.sharded_engine("web"), nullptr);
  EXPECT_NE(service.sharded_engine("mem"), nullptr);
  EXPECT_EQ(service.sharded_engine("plain"), nullptr);

  // Sharded and flat registrations of the same graph must never share an
  // answer-cache identity.
  EXPECT_NE(service.fingerprint("mem"), service.fingerprint("plain"));
  EXPECT_NE(service.fingerprint("web"), service.fingerprint("mem"));  // ids differ
}

TEST_F(ShardManifestTest, ServiceSurfacesOpenFailuresLazily) {
  CliqueService service;
  service.add_snapshot("ghost", dir_ / "missing.c3shard");
  // Registration is cheap; the failure surfaces on first use, and again on
  // every later use.
  EXPECT_THROW((void)service.run("ghost", make_query(QueryKind::Count, 3)),
               std::runtime_error);
  EXPECT_THROW((void)service.run("ghost", make_query(QueryKind::Count, 3)),
               std::runtime_error);
}

}  // namespace
}  // namespace c3
