// Tests for per-vertex / per-edge k-clique counts.
#include "clique/vertex_counts.hpp"

#include <gtest/gtest.h>

#include "clique/api.hpp"
#include "clique/combinatorics.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

TEST(VertexCounts, CompleteGraphSymmetric) {
  const Graph g = complete_graph(8);
  const auto counts = per_vertex_clique_counts(g, 4);
  for (node_t v = 0; v < 8; ++v) {
    EXPECT_EQ(counts[v], binomial(7, 3)) << "v=" << v;  // choose the other 3
  }
}

TEST(VertexCounts, SumIdentity) {
  const Graph g = social_like(200, 1400, 0.4, 3);
  for (int k = 3; k <= 5; ++k) {
    const count_t total = count_cliques(g, k).count;
    const auto counts = per_vertex_clique_counts(g, k);
    count_t sum = 0;
    for (const count_t c : counts) sum += c;
    EXPECT_EQ(sum, static_cast<count_t>(k) * total) << "k=" << k;
  }
}

TEST(VertexCounts, PlantedCliqueMembersStandOut) {
  std::vector<node_t> planted;
  const Graph g = planted_clique(300, 500, 9, 11, &planted);
  const auto counts = per_vertex_clique_counts(g, 6);
  for (const node_t v : planted) {
    EXPECT_GE(counts[v], binomial(8, 5)) << "member " << v;
  }
}

TEST(EdgeCounts, SumIdentity) {
  const Graph g = erdos_renyi(60, 500, 7);
  for (int k = 3; k <= 5; ++k) {
    const count_t total = count_cliques(g, k).count;
    const auto counts = per_edge_clique_counts(g, k);
    count_t sum = 0;
    for (const count_t c : counts) sum += c;
    EXPECT_EQ(sum, binomial(static_cast<count_t>(k), 2) * total) << "k=" << k;
  }
}

TEST(EdgeCounts, TrianglePerEdgeMatchesCommunitySize) {
  const Graph g = erdos_renyi(50, 300, 13);
  const auto counts = per_edge_clique_counts(g, 3);
  const auto endpoints = g.endpoints();
  for (edge_t e = 0; e < g.num_edges(); ++e) {
    // Count common neighbors directly.
    count_t expect = 0;
    for (const node_t w : g.neighbors(endpoints[e].u)) {
      if (g.has_edge(endpoints[e].v, w)) ++expect;
    }
    ASSERT_EQ(counts[e], expect) << "edge " << e;
  }
}

}  // namespace
}  // namespace c3
