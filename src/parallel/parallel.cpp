#include "parallel/parallel.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

namespace c3 {
namespace {

// Worker cap shared by all parallel loops. Defaults to the OpenMP pool size
// (respects OMP_NUM_THREADS). Atomic so tests can flip it concurrently.
std::atomic<int> g_workers{0};

int default_workers() noexcept { return std::max(1, omp_get_max_threads()); }

}  // namespace

int num_workers() noexcept {
  const int w = g_workers.load(std::memory_order_relaxed);
  return w > 0 ? w : default_workers();
}

int set_num_workers(int workers) noexcept {
  const int clamped = std::max(1, workers);
  const int old = num_workers();
  g_workers.store(clamped, std::memory_order_relaxed);
  return old;
}

int worker_id() noexcept { return omp_get_thread_num(); }

bool in_parallel() noexcept { return omp_in_parallel() != 0; }

namespace detail {

void parallel_for_impl(std::int64_t begin, std::int64_t end, bool dynamic, std::int64_t grain,
                       void (*body)(std::int64_t, void*), void* ctx) {
  if (begin >= end) return;
  const std::int64_t trip = end - begin;
  const int workers = num_workers();
  // Nested parallel regions are not used: a loop launched from inside a
  // parallel region (e.g. from a recursive clique search) runs serially,
  // which matches the intended "parallel outer loop only" execution.
  if (workers <= 1 || trip <= grain || in_parallel()) {
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
    return;
  }
  if (dynamic) {
    const int chunk = static_cast<int>(std::max<std::int64_t>(1, grain));
#pragma omp parallel for schedule(dynamic, chunk) num_threads(workers)
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
  } else {
#pragma omp parallel for schedule(static) num_threads(workers)
    for (std::int64_t i = begin; i < end; ++i) body(i, ctx);
  }
}

}  // namespace detail
}  // namespace c3
