// Plan/execute query engine: prepare the graph once, answer many queries —
// from many threads at once.
//
// Every clique algorithm factors into a *query-independent* prepare half —
// the total vertex order and the oriented DAG (Section 4), the sorted edge
// communities (Algorithm 1, line 1), or the community-degeneracy edge order
// (Algorithm 3) — and a k-dependent search half. The one-shot entry points
// recompute the prepare half on every call; a PreparedGraph computes each
// artifact at most once (lazily, on first use) and serves any number of
// queries from it: counts and listings for any k, the full clique spectrum,
// per-vertex/per-edge local counts, and maximum-clique searches. It also
// owns a ScratchPool of per-query state (local bitset subgraphs, recursion
// stacks, label arrays), so repeated queries reuse warm buffers instead of
// reallocating.
//
// Contract (see DESIGN.md Section 2):
//  * The Graph must outlive the PreparedGraph; the engine keeps a reference.
//  * opts.algorithm is fixed at construction and selects which artifacts are
//    built; all queries of one engine run that algorithm.
//  * Each query's CliqueStats.preprocess_seconds reports only the
//    preparation performed *during that query* — 0 once the artifacts exist
//    (the reuse guarantee; prepare() forces them eagerly).
//  * Queries are safe to issue concurrently from any number of threads.
//    Lazy preparation is latched per artifact (the first query to need one
//    builds it exactly once while concurrent queries wait, and only the
//    building query's stats report the cost), and every in-flight query
//    leases its own QueryScratch from the engine's pool, so no mutable
//    state is shared between queries. Queries still parallelize internally
//    across the worker pool. For scheduling a whole set of queries, see
//    QueryBatch (batch.hpp).
//  * run(const Query&) is the one execution entry (query.hpp): every named
//    query method below is a thin wrapper that builds the matching Query.
//    Queries carry their own resource control — per-query worker cap,
//    wall-clock budget, cancel token, result limit — honored uniformly by
//    every kind.
//  * Engines compose: shard::ShardedEngine (shard/sharded_engine.hpp) runs
//    one PreparedGraph per shard and merges the per-shard Answers; the
//    CliqueStats merge hook is accumulate_stats (common.hpp), which sums the
//    work counters and takes the max of the wall-clock fields, so a merged
//    answer's stats read like one engine's.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "clique/common.hpp"
#include "clique/query.hpp"
#include "clique/scratch.hpp"
#include "clique/spectrum.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "order/community_degeneracy.hpp"
#include "triangle/communities.hpp"

namespace c3 {

/// A bundle of already-built artifacts handed to a PreparedGraph at
/// construction — the snapshot loader's path (snapshot/snapshot.hpp). Each
/// present artifact is installed with its preparation latch already fired,
/// so no query ever rebuilds it: artifacts_built() counts it immediately and
/// stays stable, and prepare_seconds() stays 0. Artifacts may be backed by
/// borrowed (mmap-backed) memory; whatever owns that memory must outlive the
/// engine.
struct PreparedArtifacts {
  std::optional<Digraph> dag;
  std::optional<EdgeCommunities> communities;
  std::optional<EdgeOrderResult> edge_order;
  std::optional<node_t> exact_degeneracy;
};

class PreparedGraph {
 public:
  /// Binds the engine to `g` (not copied — must outlive the engine) and
  /// fixes the algorithm and its options. No artifact is built yet.
  explicit PreparedGraph(const Graph& g, const CliqueOptions& opts = {});

  /// Loaded-artifact construction: installs every artifact present in
  /// `loaded` as already prepared. The engine never rebuilds an installed
  /// artifact; artifacts missing from `loaded` are still built lazily on
  /// first use. Shape invariants (the artifacts describe `g` under `opts`)
  /// are the caller's responsibility — the snapshot loader validates them
  /// before constructing.
  PreparedGraph(const Graph& g, const CliqueOptions& opts, PreparedArtifacts loaded);

  PreparedGraph(PreparedGraph&&) noexcept;
  PreparedGraph& operator=(PreparedGraph&&) noexcept;
  ~PreparedGraph();

  // ------------------------------------------------------------- queries

  /// The unified entry: answers any Query (query.hpp), honoring its
  /// per-query options — worker cap (a WorkerCapScope around the query, so
  /// the global cap is never touched), wall-clock budget / cancel token
  /// (best-effort early termination with Answer::truncated set), List result
  /// limit, and witness suppression. A default-options Query behaves exactly
  /// like the matching named method below; the named methods are thin
  /// wrappers over this.
  [[nodiscard]] Answer run(const Query& query) const;

  /// run() with telemetry: when `trace` is non-null the engine records
  /// Prepare and Search spans into it and annotates the search — algorithm,
  /// kernel backend, dense-vs-CSR routing, and the CliqueStats work counters
  /// (recursive_calls, leaf_work, ...). Also feeds the per-kind registry
  /// metrics (c3_queries_total{kind=...}, c3_query_seconds{kind=...}) when
  /// telemetry is enabled; a null trace with obs off costs one branch.
  [[nodiscard]] Answer run(const Query& query, obs::TraceContext* trace) const;

  /// Counts all k-cliques.
  [[nodiscard]] CliqueResult count(int k) const;

  /// Lists all k-cliques through `callback` (see CliqueCallback).
  [[nodiscard]] CliqueResult list(int k, const CliqueCallback& callback) const;

  /// Counts k-cliques for every k = 1..min(kmax, omega) with one shared
  /// preparation; kmax = 0 means "up to the clique number".
  [[nodiscard]] CliqueSpectrum spectrum(int kmax = 0) const;

  /// counts[v] = number of k-cliques containing v.
  [[nodiscard]] std::vector<count_t> per_vertex_counts(int k) const;

  /// counts[e] = number of k-cliques containing edge e (graph edge ids).
  [[nodiscard]] std::vector<count_t> per_edge_counts(int k) const;

  /// True iff the graph contains a k-clique (early-exit listing).
  [[nodiscard]] bool has_clique(int k) const;

  /// Some k-clique, or nullopt if none exists.
  [[nodiscard]] std::optional<std::vector<node_t>> find_clique(int k) const;

  /// The clique number omega, by binary search over has_clique in
  /// [2, clique_number_upper_bound()].
  [[nodiscard]] node_t max_clique_size() const;

  /// A maximum clique (empty for the empty graph).
  [[nodiscard]] std::vector<node_t> max_clique() const;

  // ---------------------------------------------- plan control / inspection

  /// Forces the algorithm's artifacts to exist now, so later queries report
  /// preprocess_seconds == 0. Idempotent and safe to race with queries.
  void prepare() const;

  /// Cumulative seconds spent building artifacts so far.
  [[nodiscard]] double prepare_seconds() const noexcept;

  /// How many artifacts (vertex order + DAG, communities, edge order, exact
  /// degeneracy) have been built so far. Each is built at most once no
  /// matter how many queries race for it — the build-exactly-once guarantee
  /// the concurrency tests assert.
  [[nodiscard]] int artifacts_built() const noexcept;

  // The built-artifact views the snapshot writer serializes. nullptr /
  // nullopt when the artifact has not been built (or installed) yet. Safe to
  // call concurrently with queries: an artifact becomes visible only after
  // its build completes. Call prepare() first to force the algorithm's set.
  [[nodiscard]] const Digraph* dag_if_built() const noexcept;
  [[nodiscard]] const EdgeCommunities* communities_if_built() const noexcept;
  [[nodiscard]] const EdgeOrderResult* edge_order_if_built() const noexcept;
  [[nodiscard]] std::optional<node_t> exact_degeneracy_if_built() const noexcept;

  /// An upper bound on the clique number derived from the prepared
  /// artifacts: gamma + 2 (c3List), sigma + 2 (c3List-CD), max out-degree
  /// + 1 (orientation-based), degeneracy + 1 otherwise.
  [[nodiscard]] node_t clique_number_upper_bound() const;

  /// Candidate-set bound for the scheduler's cost model
  /// (estimate_query_cost): the largest community when built, else the
  /// DAG's max out-degree when built, else a sqrt(2m) graph proxy. Never
  /// triggers preparation; the underlying O(n)/O(m) scan runs at most once
  /// per artifact state (cached, keyed by artifacts_built()), so per-query
  /// estimates cost a couple of atomic loads.
  [[nodiscard]] double cost_bound() const noexcept;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const CliqueOptions& options() const noexcept { return opts_; }

 private:
  // All lazily memoized state lives behind one pointer: the once-latches
  // that serialize artifact construction, the artifacts themselves, the
  // prepare-time accounting, and the per-query scratch pool. Heap-held so
  // the engine stays movable (std::once_flag is not) and so in-flight
  // queries on other threads keep a stable address.
  struct Memo;

  struct QueryControl;  // budget/cancel polling shared by run()'s kinds

  // The `prep` out-parameters accumulate seconds of preparation performed by
  // *this call* — the building query; threads that merely wait on the latch
  // add nothing. execute() forwards the sum into stats.preprocess_seconds.
  [[nodiscard]] CliqueResult execute(int k, const CliqueCallback* callback) const;
  [[nodiscard]] CliqueResult dispatch(int k, const CliqueCallback* callback, double& prep) const;
  void run_max_clique(const Query& query, Answer& answer, QueryControl& control) const;
  [[nodiscard]] const Digraph& dag(double& prep) const;
  [[nodiscard]] const EdgeCommunities& communities(double& prep) const;
  [[nodiscard]] const EdgeOrderResult& edge_order(double& prep) const;
  [[nodiscard]] node_t exact_degeneracy(double& prep) const;
  [[nodiscard]] node_t upper_bound(double& prep) const;

  const Graph* g_;
  CliqueOptions opts_;
  std::unique_ptr<Memo> memo_;
};

}  // namespace c3
