// LineFrontEnd: the wire protocol without sockets. Admin commands, request
// routing, one-line errors for every failure class, answer-cache integration
// (hits counted, truncated answers never cached), and per-graph admission
// keeping concurrent executions at or below the configured limit.
#include "net/frontend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clique/answer_cache.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "clique/service.hpp"
#include "graph/gen/generators.hpp"

namespace c3::net {
namespace {

/// Registers the two-graph catalog most tests share (CliqueService itself
/// is pinned in place — neither copyable nor movable).
void add_two_graphs(CliqueService& service) {
  service.add_graph("social", social_like(220, 1700, 0.45, 23));
  service.add_graph("er", erdos_renyi(120, 900, 31));
}

TEST(FrontEnd, AdminCommandsAndSilentLines) {
  CliqueService service;
  add_two_graphs(service);
  LineFrontEnd fe(service, nullptr);

  EXPECT_EQ(fe.process("ping").line, "pong");
  EXPECT_EQ(fe.process("catalog").line, "catalog: social er");

  const auto quit = fe.process("quit");
  EXPECT_EQ(quit.line, "bye");
  EXPECT_TRUE(quit.close);
  EXPECT_TRUE(fe.process("bye").close);

  // Blank and comment lines produce no response at all.
  EXPECT_FALSE(fe.process("").respond);
  EXPECT_FALSE(fe.process("   \t").respond);
  EXPECT_FALSE(fe.process("# a comment line").respond);

  const auto stats = fe.process("stats");
  EXPECT_EQ(stats.line.rfind("stats: requests=0 ", 0), 0u) << stats.line;
  EXPECT_NE(stats.line.find("graphs=2"), std::string::npos) << stats.line;
}

TEST(FrontEnd, AnswersMatchDirectServiceRuns) {
  CliqueService service;
  add_two_graphs(service);
  LineFrontEnd fe(service, nullptr);

  for (const char* line : {"social count 4", "er hasclique 3", "social spectrum",
                           "er maxclique witness=0", "social count 4 workers=2"}) {
    const std::string text(line);
    const std::size_t space = text.find(' ');
    const Answer direct =
        service.run(text.substr(0, space), parse_query(text.substr(space + 1)));
    EXPECT_EQ(fe.process(line).line, format_answer(direct)) << line;
  }
  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.requests, 5u);
  EXPECT_EQ(s.answered, 5u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(FrontEnd, EveryFailureIsOneErrorLine) {
  CliqueService service;
  add_two_graphs(service);
  LineFrontEnd fe(service, nullptr);

  // Unknown graph, parse error, bare unknown token — each one line, each
  // counted, none fatal.
  const std::string unknown = fe.process("nosuch count 3").line;
  EXPECT_EQ(unknown.rfind("error: ", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("nosuch"), std::string::npos) << unknown;

  const std::string parse = fe.process("social cuont 3").line;
  EXPECT_EQ(parse.rfind("error: ", 0), 0u) << parse;
  EXPECT_NE(parse.find("cuont"), std::string::npos) << parse;

  const std::string bare = fe.process("social").line;
  EXPECT_EQ(bare.rfind("error: ", 0), 0u) << bare;

  EXPECT_EQ(fe.stats().errors, 3u);
  EXPECT_EQ(fe.stats().answered, 0u);

  // The front end still answers afterwards.
  EXPECT_EQ(fe.process("ping").line, "pong");
  EXPECT_EQ(fe.process("social hasclique 2").line.rfind("hasclique 2: ", 0), 0u);
}

TEST(FrontEnd, CacheHitsCountAndSkipExecution) {
  CliqueService service;
  add_two_graphs(service);
  AnswerCache cache(64);
  LineFrontEnd fe(service, &cache);

  const std::string first = fe.process("social count 4").line;
  EXPECT_EQ(fe.stats().cache_hits, 0u);
  // Different execution options, same question — must hit.
  EXPECT_EQ(fe.process("social count 4 workers=2").line, first);
  EXPECT_EQ(fe.process("social count 4 budget=100").line, first);
  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.answered, 3u);
  EXPECT_EQ(s.cache.hits, 2u);
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.cache.insertions, 1u);
}

TEST(FrontEnd, TruncatedAnswersAreNeverServedFromCache) {
  CliqueService service;
  service.add_graph("g", social_like(200, 1600, 0.5, 3));
  AnswerCache cache(64);
  LineFrontEnd fe(service, &cache);

  // `list 3 limit=1` is deterministically truncated (the graph has many
  // 3-cliques); asking twice must execute twice — zero cache hits, zero
  // cache entries.
  const std::string a = fe.process("g list 3 limit=1").line;
  EXPECT_NE(a.find("[truncated]"), std::string::npos) << a;
  const std::string b = fe.process("g list 3 limit=1").line;
  EXPECT_NE(b.find("[truncated]"), std::string::npos) << b;
  EXPECT_EQ(fe.stats().cache_hits, 0u);
  EXPECT_EQ(fe.stats().cache.insertions, 0u);
  EXPECT_EQ(cache.size(), 0u);

  // A complete listing of the same k does cache.
  const std::string full = fe.process("g list 3").line;
  EXPECT_EQ(full.find("[truncated]"), std::string::npos) << full;
  EXPECT_EQ(fe.process("g list 3").line, full);
  EXPECT_EQ(fe.stats().cache_hits, 1u);
}

TEST(FrontEnd, CountServedCrossKFromCachedSpectrum) {
  CliqueService service;
  add_two_graphs(service);
  AnswerCache cache(64);
  LineFrontEnd fe(service, &cache);

  // One spectrum run memoizes every per-k count; the follow-up counts are
  // answered from the cache without touching the engine, and show up in the
  // dedicated cross-k counter (a subset of cache_hits).
  const std::string spectrum = fe.process("social spectrum").line;
  ASSERT_EQ(spectrum.rfind("spectrum:", 0), 0u) << spectrum;

  const Answer direct = service.run("social", parse_query("count 3"));
  EXPECT_EQ(fe.process("social count 3").line, format_answer(direct));
  // Far past omega: the complete spectrum proves zero.
  const std::string none = fe.process("social count 99").line;
  EXPECT_NE(none.find("0 cliques"), std::string::npos) << none;

  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache.cross_k_hits, 2u);
  EXPECT_EQ(s.cache.misses, 1u);  // only the spectrum itself missed
  EXPECT_EQ(s.answered, 3u);

  // The stats admin line exposes the counter for operators.
  EXPECT_NE(fe.process("stats").line.find("cache_cross_k_hits=2"), std::string::npos);
}

TEST(FrontEnd, AdmissionCapsConcurrentExecutionsPerGraph) {
  CliqueService service;
  service.add_graph("g", social_like(300, 2600, 0.5, 11));
  FrontEndOptions opts;
  opts.max_inflight_per_graph = 2;
  LineFrontEnd fe(service, nullptr, opts);

  // 8 threads hammer the same graph with distinct (uncacheable-identical)
  // queries; the gate must keep peak concurrent executions at <= 2 while
  // every request still completes with a real answer.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string line = "g count " + std::to_string(3 + t % 3);
      for (int rep = 0; rep < 3; ++rep) {
        const auto reply = fe.process(line);
        if (reply.line.rfind("count ", 0) != 0) failures[t] = reply.line;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kThreads) * 3);
  EXPECT_EQ(s.answered, static_cast<std::uint64_t>(kThreads) * 3);
  EXPECT_GE(s.peak_inflight, 1);
  EXPECT_LE(s.peak_inflight, 2) << "admission let more than the limit through";
}

TEST(FrontEnd, FreedSlotOnOneGraphNeverStrandsAnothersWaiter) {
  // Regression: all gates once shared a single condition_variable with
  // notify_one — freeing a slot on graph A could wake a waiter for graph B
  // (whose predicate was still false), which re-slept and swallowed the
  // wakeup while A's own waiter stayed blocked forever. Two saturated
  // gates with interleaved completions make that schedule likely; the pass
  // condition is simply that every request completes instead of the
  // process hanging into the ctest timeout.
  CliqueService service;
  add_two_graphs(service);
  FrontEndOptions opts;
  opts.max_inflight_per_graph = 1;
  LineFrontEnd fe(service, nullptr, opts);

  constexpr int kThreads = 8;  // 4 per graph, all contending for 1 slot each
  constexpr int kReps = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string id = (t % 2 == 0) ? "social" : "er";
      for (int rep = 0; rep < kReps; ++rep) {
        const auto reply = fe.process(id + " count " + std::to_string(3 + (t + rep) % 3));
        if (reply.line.rfind("count ", 0) != 0) failures[t] = reply.line;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.answered, static_cast<std::uint64_t>(kThreads) * kReps);
  EXPECT_LE(s.peak_inflight, 1) << "a gate admitted past its cap";
}

TEST(FrontEnd, StatsSuffixHookAppends) {
  CliqueService service;
  add_two_graphs(service);
  LineFrontEnd fe(service, nullptr);
  fe.set_stats_suffix_source([] { return std::string("connections=7"); });
  const std::string line = fe.process("stats").line;
  EXPECT_NE(line.find(" connections=7"), std::string::npos) << line;
}

TEST(FrontEnd, StatsSuffixNewlinesAreSanitized) {
  // Regression: the suffix used to be appended verbatim, so a multi-line
  // suffix source smuggled extra lines into the one-answer-per-line
  // protocol (the next read parsed half a stats line as a request).
  CliqueService service;
  add_two_graphs(service);
  LineFrontEnd fe(service, nullptr);
  fe.set_stats_suffix_source([] { return std::string("connections=7\nuptime=3\r\nbad"); });
  const std::string line = fe.process("stats").line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  EXPECT_EQ(line.find('\r'), std::string::npos) << line;
  // The suffix content survives, folded onto the single line.
  EXPECT_NE(line.find("connections=7 uptime=3"), std::string::npos) << line;
  EXPECT_NE(line.find("bad"), std::string::npos) << line;
}

TEST(FrontEnd, MetricsWordReturnsExposition) {
  CliqueService service;
  add_two_graphs(service);
  AnswerCache cache(64);
  LineFrontEnd fe(service, &cache);

  // Drive one miss and one hit so the serving counters are non-trivial.
  ASSERT_EQ(fe.process("social count 4").line.rfind("count 4: ", 0), 0u);
  ASSERT_EQ(fe.process("social count 4").line.rfind("count 4: ", 0), 0u);

  const auto reply = fe.process("metrics");
  EXPECT_TRUE(reply.respond);
  EXPECT_FALSE(reply.close);
  const std::string& text = reply.line;
  // Exposition ends with the "# EOF" terminator; the transport appends the
  // final newline, so the reply itself must not carry a trailing one.
  ASSERT_GE(text.size(), 5u);
  EXPECT_EQ(text.substr(text.size() - 5), "# EOF") << "...'" << text.substr(text.size() - 16) << "'";
  // Serving counters, catalog and cache mirrors, and (when telemetry is on)
  // the per-stage latency summaries all land in one exposition.
  EXPECT_NE(text.find("# TYPE c3_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("c3_requests_total{instance="), std::string::npos);
  EXPECT_NE(text.find("c3_catalog_graphs 2"), std::string::npos);
  EXPECT_NE(text.find("c3_answer_cache_hits{instance="), std::string::npos);
  EXPECT_NE(text.find("c3_answer_cache_misses{instance="), std::string::npos);
  EXPECT_NE(text.find("c3_peak_inflight{instance="), std::string::npos);
  if (obs::enabled()) {
    EXPECT_NE(text.find("# TYPE c3_stage_seconds summary"), std::string::npos);
    EXPECT_NE(text.find("c3_stage_seconds{stage=\"search\",quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("c3_queries_total{kind=\"count\"}"), std::string::npos);
  }
}

TEST(FrontEnd, ConcurrentMixedTrafficStatsReconcile) {
  // FrontEndStats accounting under concurrent mixed traffic: valid queries
  // (mostly cache hits after warmup), guaranteed errors, and admin words all
  // interleaved. The totals must reconcile exactly — every non-admin request
  // is either answered or an error, the front end's hit counter agrees with
  // the sharded AnswerCache counters, and admission never exceeds its cap.
  CliqueService service;
  add_two_graphs(service);
  AnswerCache cache(256);
  FrontEndOptions opts;
  opts.max_inflight_per_graph = 2;
  LineFrontEnd fe(service, &cache, opts);

  constexpr int kThreads = 8;
  constexpr int kReps = 12;
  std::atomic<std::uint64_t> sent_valid{0};
  std::atomic<std::uint64_t> sent_errors{0};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        switch ((t + rep) % 5) {
          case 0:
          case 1: {  // valid query from a tiny set — repeats become hits
            const std::string id = (t % 2 == 0) ? "social" : "er";
            const auto reply = fe.process(id + " count " + std::to_string(3 + rep % 2));
            if (reply.line.rfind("count ", 0) != 0) failures[t] = reply.line;
            sent_valid.fetch_add(1);
            break;
          }
          case 2: {  // unknown graph — always an error
            const auto reply = fe.process("nosuch count 3");
            if (reply.line.rfind("error: ", 0) != 0) failures[t] = reply.line;
            sent_errors.fetch_add(1);
            break;
          }
          case 3: {  // parse error — always an error
            const auto reply = fe.process("social cuont 3");
            if (reply.line.rfind("error: ", 0) != 0) failures[t] = reply.line;
            sent_errors.fetch_add(1);
            break;
          }
          case 4: {  // admin words — must not count as requests
            if (fe.process("ping").line != "pong") failures[t] = "bad ping";
            if (fe.process("stats").line.rfind("stats: ", 0) != 0) failures[t] = "bad stats";
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  const FrontEndStats s = fe.stats();
  const AnswerCacheStats c = cache.stats();
  EXPECT_EQ(s.requests, sent_valid.load() + sent_errors.load());
  EXPECT_EQ(s.answered, sent_valid.load());
  EXPECT_EQ(s.errors, sent_errors.load());
  EXPECT_EQ(s.requests, s.answered + s.errors);
  // The front end's hit counter and the per-shard cache counters agree, and
  // every valid request did exactly one lookup: hits + misses = answered.
  EXPECT_EQ(s.cache_hits, c.hits);
  EXPECT_EQ(c.hits + c.misses, sent_valid.load());
  // 4 distinct (graph, k) questions exist; every miss beyond the first per
  // question raced a concurrent miss, so insertions <= misses and the cache
  // holds at most the distinct questions.
  EXPECT_LE(c.insertions, c.misses);
  EXPECT_GE(c.misses, 4u);
  EXPECT_LE(c.entries, 4u);
  EXPECT_GE(s.peak_inflight, 1);
  EXPECT_LE(s.peak_inflight, 2) << "admission let more than the cap through";
}

}  // namespace
}  // namespace c3::net
