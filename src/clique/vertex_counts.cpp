#include "clique/vertex_counts.hpp"

#include <atomic>

#include "clique/api.hpp"

namespace c3 {

std::vector<count_t> per_vertex_clique_counts(const Graph& g, int k, const CliqueOptions& opts) {
  std::vector<std::atomic<count_t>> acc(g.num_nodes());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (const node_t v : clique) acc[v].fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  (void)list_cliques(g, k, tally, opts);
  std::vector<count_t> out(g.num_nodes());
  for (node_t v = 0; v < g.num_nodes(); ++v) out[v] = acc[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<count_t> per_edge_clique_counts(const Graph& g, int k, const CliqueOptions& opts) {
  std::vector<std::atomic<count_t>> acc(g.num_edges());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const edge_t e = g.edge_id(clique[i], clique[j]);
        acc[e].fetch_add(1, std::memory_order_relaxed);
      }
    }
    return true;
  };
  (void)list_cliques(g, k, tally, opts);
  std::vector<count_t> out(g.num_edges());
  for (edge_t e = 0; e < g.num_edges(); ++e) out[e] = acc[e].load(std::memory_order_relaxed);
  return out;
}

}  // namespace c3
