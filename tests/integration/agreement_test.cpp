// Cross-algorithm agreement: every algorithm must report identical counts on
// a diverse sweep of graphs and clique sizes (parameterized property test).
#include <gtest/gtest.h>

#include <tuple>

#include "clique/api.hpp"
#include "clique/bruteforce.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

struct GraphCase {
  const char* name;
  Graph graph;
};

GraphCase make_case(int which) {
  switch (which) {
    case 0:
      return {"erdos_renyi", erdos_renyi(48, 350, 101)};
    case 1:
      return {"social_like", social_like(80, 600, 0.4, 102)};
    case 2:
      return {"collaboration", collaboration_like(90, 60, 9, 103)};
    case 3:
      return {"rating_projection", rating_projection(60, 12, 5, 104)};
    case 4:
      return {"planted_clique", planted_clique(70, 180, 9, 105, nullptr)};
    case 5:
      return {"mesh", mesh_like(120, 7, 106)};
    default:
      return {"bio", bio_like(80, 250, 5, 12, 0.6, 107)};
  }
}

class Agreement : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Agreement, AllAlgorithmsMatchBruteForce) {
  const auto [which, k] = GetParam();
  const GraphCase c = make_case(which);
  const count_t expect = brute_force_count(c.graph, k);

  for (const Algorithm alg : {Algorithm::C3List, Algorithm::C3ListCD, Algorithm::Hybrid,
                              Algorithm::KCList, Algorithm::ArbCount}) {
    CliqueOptions opts;
    opts.algorithm = alg;
    EXPECT_EQ(count_cliques(c.graph, k, opts).count, expect)
        << c.name << " k=" << k << " alg=" << algorithm_name(alg);
  }
  // Approximate orders for the two order-sensitive algorithms.
  CliqueOptions approx_vertex;
  approx_vertex.algorithm = Algorithm::C3List;
  approx_vertex.vertex_order = VertexOrderKind::ApproxDegeneracy;
  EXPECT_EQ(count_cliques(c.graph, k, approx_vertex).count, expect) << c.name << " k=" << k;

  CliqueOptions approx_edge;
  approx_edge.algorithm = Algorithm::C3ListCD;
  approx_edge.edge_order = EdgeOrderKind::ApproxCommunityDegeneracy;
  EXPECT_EQ(count_cliques(c.graph, k, approx_edge).count, expect) << c.name << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Agreement,
                         ::testing::Combine(::testing::Range(0, 7), ::testing::Range(3, 8)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
                           return "graph" + std::to_string(std::get<0>(info.param)) + "_k" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace c3
