// Per-query scratch leased by the search halves of all clique algorithms.
//
// Every algorithm's inner loop re-represents a small subproblem (a community,
// a candidate set, an out-neighborhood) in worker-local storage. One
// CliqueScratch is the union of those worker states; one QueryScratch is a
// full query's mutable state — a CliqueScratch per worker plus the shared
// early-stop flag — so nothing a search touches outlives or escapes the
// query. A PreparedGraph owns a ScratchPool<QueryScratch> and checks one
// QueryScratch out per in-flight query (ScratchLease): sequential queries
// reuse the same warm buffers, concurrent queries each get their own, and
// the pool grows only under actual contention. Fields unused by a given
// algorithm stay empty and cost nothing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "clique/common.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "graph/types.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel.hpp"
#include "parallel/scratch_pool.hpp"

namespace c3 {

/// Scratch arrays of the small-universe exact degeneracy sweep the hybrid
/// algorithm runs inside each out-neighborhood (see hybrid.cpp).
struct LocalDegeneracyScratch {
  std::vector<int> adj_offsets, adj, degree, bin, verts, pos;
};

/// One worker's reusable state for a sequence of clique searches; handed to
/// the *_search functions inside a QueryScratch. reset_query() clears the
/// per-query accumulators while keeping the capacity of every buffer.
struct CliqueScratch {
  // Shared by the community-centric searches (c3List, c3List-CD, hybrid).
  LocalGraph lg;
  SearchContext ctx;
  std::vector<node_t> member_orig;  // local id -> original vertex id (listing)

  // Hybrid: the out-neighborhood subgraph before the inner-order renaming,
  // plus the inner exact degeneracy order and its scratch.
  LocalGraph lg_aux;
  std::vector<int> inner_order, inner_rank;
  LocalDegeneracyScratch deg;

  // kcList: per-level label array and candidate sets. (ArbCount's per-level
  // candidate masks live in ctx — search_cliques_vertex uses the same
  // aligned mask pool as the edge-growth recursion.)
  std::vector<int> label;
  std::vector<std::vector<node_t>> levels;

  // kcList listing stack (c3List's and ArbCount's live in ctx.clique_stack).
  std::vector<node_t> clique_stack;

  // Per-query accumulators. Early-stop state lives in ctx (stopped / stop /
  // callback) for every algorithm — kcList and ArbCount use only those
  // fields of their SearchContext, so the cross-worker stop logic exists
  // exactly once (SearchContext::poll_stop / request_stop).
  LocalCounters ctr;
  count_t count = 0;

  /// Resets the per-query accumulators; all buffers keep their capacity.
  void reset_query() noexcept {
    ctr = {};
    count = 0;
    ctx.stopped = false;
    ctx.stop = nullptr;
    ctx.callback = nullptr;
  }
};

/// One query's complete mutable state: a warm CliqueScratch per worker and
/// the stop flag shared by that query's workers (and nobody else's). The
/// search halves receive exactly one QueryScratch and touch nothing outside
/// it, which is what makes queries against one PreparedGraph safe to issue
/// from many threads at once.
struct QueryScratch {
  PerWorker<CliqueScratch> workers;
  std::atomic<bool> stop{false};

  /// Set by a search half whose traversal unwound via an exception (a
  /// throwing listing callback): backtracking was skipped, so invariants
  /// like kcList's all-zeros label array may be broken in the returned
  /// lease. reset_query repairs them, and only then — the common path pays
  /// nothing.
  bool labels_dirty = false;

  /// Prepares every slot for a new query: rebuilds the slot array if the
  /// worker pool grew past it (so local() never clamps), resets the
  /// accumulators, clears the stop flag, repairs exception-dirtied labels.
  /// Warm buffers survive.
  void reset_query() {
    if (workers.size() < static_cast<std::size_t>(num_workers()))
      workers = PerWorker<CliqueScratch>();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      CliqueScratch& w = workers.slot(i);
      w.reset_query();
      if (labels_dirty) std::fill(w.label.begin(), w.label.end(), 0);
    }
    labels_dirty = false;
    stop.store(false, std::memory_order_relaxed);
  }

  /// The calling worker's scratch.
  [[nodiscard]] CliqueScratch& local() noexcept { return workers.local(); }

  /// Drains every slot's count and counters into `result` after a search.
  void merge_into(CliqueResult& result) const {
    for (std::size_t i = 0; i < workers.size(); ++i)
      merge_stats(result, workers.slot(i).count, workers.slot(i).ctr);
  }
};

/// RAII checkout of one QueryScratch from an engine's pool.
using ScratchLease = ScratchPool<QueryScratch>::Lease;

}  // namespace c3
