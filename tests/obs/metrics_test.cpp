// Tests for the metrics registry: counter/gauge/histogram semantics, the
// same-(name,labels)-same-object contract, and the Prometheus exposition.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace c3 {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

// Each test registers under a unique label so runs in one process (the whole
// registry is process-global) never collide.
std::string unique_label(const char* tag) {
  static std::atomic<int> next{0};
  return std::string("test=\"") + tag + "_" + std::to_string(next.fetch_add(1)) + "\"";
}

TEST(ObsCounter, AddAndMergeOnRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.increment();
  EXPECT_EQ(c.value(), 43u);
}

TEST(ObsCounter, ConcurrentAddsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsGauge, AddSubSet) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.sub(10);
  EXPECT_EQ(g.value(), -7);  // gauges may go negative
  g.set(123);
  EXPECT_EQ(g.value(), 123);
}

TEST(ObsHistogram, CountSumAndBucketBoundsMonotone) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.observe(0.001);
  h.observe(0.002);
  h.observe(0.004);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum_seconds(), 0.007, 1e-6);
  double prev = 0.0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const double b = Histogram::bucket_upper_bound(i);
    EXPECT_GT(b, prev) << "bucket " << i;
    prev = b;
  }
  // The documented span: first bound ~1us, last covers ~2 minutes.
  EXPECT_NEAR(Histogram::bucket_upper_bound(0), Histogram::kMinSeconds, 1e-9);
  EXPECT_GE(Histogram::bucket_upper_bound(Histogram::kBuckets - 1), 120.0);
}

TEST(ObsHistogram, QuantileWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(0.010);  // all in one bucket
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  // Bucket ratio is 2^(1/4) ~ 1.19: the estimate is within ~19% of truth.
  EXPECT_GT(p50, 0.010 / 1.2);
  EXPECT_LT(p50, 0.010 * 1.2);
  EXPECT_GE(p99, p50);
  // Out-of-range observations clamp to the edge buckets instead of dropping.
  Histogram edges;
  edges.observe(1e-9);
  edges.observe(1e9);
  EXPECT_EQ(edges.count(), 2u);
  const auto counts = edges.snapshot();
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 1u);
}

TEST(ObsRegistry, SameNameAndLabelsSameObject) {
  Registry& reg = Registry::global();
  const std::string label = unique_label("same");
  Counter& a = reg.counter("c3_test_same_total", label);
  Counter& b = reg.counter("c3_test_same_total", label);
  EXPECT_EQ(&a, &b);
  // Different labels under the same name are distinct series.
  Counter& c = reg.counter("c3_test_same_total", unique_label("same"));
  EXPECT_NE(&a, &c);
}

TEST(ObsRegistry, TypeMismatchThrows) {
  Registry& reg = Registry::global();
  const std::string label = unique_label("mismatch");
  (void)reg.counter("c3_test_mismatch", label);
  EXPECT_THROW((void)reg.gauge("c3_test_mismatch", label), std::exception);
  EXPECT_THROW((void)reg.histogram("c3_test_mismatch", label), std::exception);
}

TEST(ObsRegistry, RenderIsValidExposition) {
  Registry& reg = Registry::global();
  const std::string label = unique_label("render");
  reg.counter("c3_test_render_total", label).add(7);
  reg.gauge("c3_test_render_gauge", label).set(-3);
  reg.histogram("c3_test_render_seconds", label).observe(0.5);

  const std::string text = reg.render();
  // Terminator contract: ends with "# EOF\n", exactly once, at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Counter and gauge samples carry their labels and values.
  EXPECT_NE(text.find("# TYPE c3_test_render_total counter"), std::string::npos);
  EXPECT_NE(text.find("c3_test_render_total{" + label + "} 7"), std::string::npos);
  EXPECT_NE(text.find("c3_test_render_gauge{" + label + "} -3"), std::string::npos);
  // Histograms render as summaries: three quantiles plus _sum and _count.
  EXPECT_NE(text.find("# TYPE c3_test_render_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("c3_test_render_seconds_count{" + label + "} 1"), std::string::npos);
  EXPECT_NE(text.find("c3_test_render_seconds_sum{" + label + "}"), std::string::npos);
  // Every non-comment line is `name{labels} value` or `name value`.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "unterminated line";
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    // The value parses as a double.
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(ObsEnabled, ToggleRoundTrips) {
  const bool before = obs::enabled();
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(before);
}

}  // namespace
}  // namespace c3
